//! Quickstart: the three ways to write an OpenMP-style loop in romp.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use romp::prelude::*;

fn main() {
    let n = 4_000_000usize;
    let h = 1.0 / n as f64;

    // 1. Directive macros — pragma-text clauses, like the paper's
    //    comment directives for Zig.
    let t0 = omp_get_wtime();
    let (pi_macro,) = omp_parallel_for!(
        schedule(static), reduction(+ : pi_macro = 0.0),
        for i in 0..(n) {
            let x = h * (i as f64 + 0.5);
            pi_macro += 4.0 / (1.0 + x * x);
        }
    );
    let t_macro = omp_get_wtime() - t0;

    // 2. The typed builder API — what the macros desugar to.
    let t0 = omp_get_wtime();
    let pi_builder =
        par_for(0..n)
            .schedule(Schedule::static_block())
            .reduce(SumOp, 0.0, |i, acc| {
                let x = h * (i as f64 + 0.5);
                *acc += 4.0 / (1.0 + x * x);
            });
    let t_builder = omp_get_wtime() - t0;

    // 3. A full region with explicit constructs: worksharing, single,
    //    critical and a barrier — the general shape of ported codes.
    let partials = std::sync::Mutex::new(Vec::new());
    let t0 = omp_get_wtime();
    omp_parallel!(|ctx| {
        omp_single!(ctx, nowait, {
            println!(
                "team of {} threads on {} hardware threads",
                ctx.num_threads(),
                omp_get_num_procs()
            );
        });
        let mut local = 0.0f64;
        omp_for!(ctx, schedule(static), reduction(+ : local), for i in 0..(n) {
            let x = h * (i as f64 + 0.5);
            local += 4.0 / (1.0 + x * x);
        });
        omp_barrier!(ctx);
        omp_master!(ctx, {
            partials.lock().unwrap().push(local);
        });
    });
    let t_region = omp_get_wtime() - t0;
    let pi_region = partials.into_inner().unwrap()[0];

    let exact = std::f64::consts::PI;
    println!(
        "pi (macros ) = {:.12}  err {:+.2e}  {:.4}s",
        pi_macro * h,
        pi_macro * h - exact,
        t_macro
    );
    println!(
        "pi (builder) = {:.12}  err {:+.2e}  {:.4}s",
        pi_builder * h,
        pi_builder * h - exact,
        t_builder
    );
    println!(
        "pi (region ) = {:.12}  err {:+.2e}  {:.4}s",
        pi_region * h,
        pi_region * h - exact,
        t_region
    );
    assert!((pi_macro * h - exact).abs() < 1e-9);
    assert!((pi_builder * h - exact).abs() < 1e-9);
    assert!((pi_region * h - exact).abs() < 1e-9);
    println!("all three agree with pi to 1e-9 — quickstart OK");
}
