//! Server-shaped soak: a bounded job queue drained by many concurrent
//! masters, each job a full NPB kernel run on the romp runtime.
//!
//! This is the deployment shape the sharded worker pool exists for —
//! not one long-lived data-parallel program, but a service whose
//! request handlers each open small parallel regions: M masters pull
//! kernel jobs (EP / CG / IS / Mandelbrot / sparse CARP-CG, class S,
//! mixed round-robin)
//! off a bounded queue and run them to completion, verification
//! included, while the pool circulates the same few workers between
//! them. The soak fails loudly if any kernel misverifies, if the pool
//! exceeds the thread limit, or if workers are stranded (not back on an
//! idle list) once the queue drains.
//!
//! ```text
//! cargo run --release --example service -- \
//!     [--masters 4] [--jobs 64] [--queue-depth 8] [--threads 2]
//! ```
//!
//! Raise `--jobs` (e.g. 10000) for a long-running soak; the defaults
//! finish in seconds so the example doubles as a CI smoke.

use romp::npb::{carp, cg, ep, is, mandelbrot, Class, KernelResult};
use romp::runtime::stats::{display_stats, stats};
use romp::runtime::{icv, pool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const KERNELS: [&str; 5] = ["EP", "CG", "IS", "Mandelbrot", "CARP"];

fn run_kernel(which: usize, threads: usize) -> KernelResult {
    match which % KERNELS.len() {
        0 => ep::romp::run(Class::S, threads),
        1 => cg::romp::run(Class::S, threads),
        2 => is::romp::run(Class::S, threads),
        3 => mandelbrot::romp::run(Class::S, threads),
        // The sparse job: its parallel structure (coloring, zone
        // partition, SELL layout, CSR-vs-SELL variant choice) is
        // computed at run time, so the many-master path exercises
        // runtime-computed parallelism, not just fixed loop nests.
        _ => carp::romp::run(Class::S, threads),
    }
}

fn arg(name: &str, default: usize) -> usize {
    let flag = format!("--{name}");
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == &flag)
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let masters = arg("masters", 4).max(1);
    let jobs = arg("jobs", 64).max(1);
    let depth = arg("queue-depth", 8).max(1);
    let threads = arg("threads", 2).max(1);

    println!(
        "service soak: {masters} masters, {jobs} jobs (queue depth {depth}), \
         class S kernels @ {threads} threads, {} pool shards",
        pool::shard_count()
    );

    // Bounded queue: the producer blocks once `depth` jobs are in
    // flight, like an admission-controlled request queue. `Receiver`
    // is single-consumer, so the masters share it behind a mutex —
    // the kernel work dwarfs that pop.
    let (tx, rx) = sync_channel::<usize>(depth);
    let rx = Arc::new(Mutex::new(rx));
    let failures = Arc::new(AtomicUsize::new(0));
    let per_kernel = Arc::new([
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ]);

    let before = stats().snapshot();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..masters)
        .map(|m| {
            let rx = rx.clone();
            let failures = failures.clone();
            let per_kernel = per_kernel.clone();
            std::thread::Builder::new()
                .name(format!("service-master-{m}"))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    let Ok(job) = job else { break };
                    let which = job % KERNELS.len();
                    let r = run_kernel(which, threads);
                    per_kernel[which].fetch_add(1, Ordering::Relaxed);
                    if !r.verified {
                        failures.fetch_add(1, Ordering::Relaxed);
                        eprintln!("job {job}: {r}");
                    }
                })
                .unwrap()
        })
        .collect();
    for job in 0..jobs {
        tx.send(job).expect("all masters died");
    }
    drop(tx);
    for h in handles {
        h.join().expect("service master panicked");
    }
    let wall = t0.elapsed().as_secs_f64();

    // Every worker the pool created must come back to an idle list once
    // the masters are gone — a stranded worker here is a leaked lease
    // or a mis-homed release.
    let deadline = Instant::now() + Duration::from_secs(30);
    while pool::idle_workers() != pool::pool_size() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stranded = pool::pool_size() - pool::idle_workers();
    let limit = icv::current().thread_limit;
    let d = before.delta(&stats().snapshot());

    println!();
    for (i, name) in KERNELS.iter().enumerate() {
        println!(
            "  {name:<12} {} jobs",
            per_kernel[i].load(Ordering::Relaxed)
        );
    }
    println!(
        "\n{jobs} jobs in {wall:.2}s = {:.1} jobs/s; pool {} workers \
         ({} idle), limit {limit}; forks: {} hot hits, {} local + {} stolen \
         pool acquires, {} shard-lock contentions",
        jobs as f64 / wall,
        pool::pool_size(),
        pool::idle_workers(),
        d.hot_team_hits,
        d.pool_acquires_local,
        d.pool_acquires_stolen,
        d.pool_shard_contention,
    );
    if std::env::var_os("ROMP_STATS").is_some() {
        println!("\n{}", display_stats());
    }

    let failed = failures.load(Ordering::Relaxed);
    let over_limit = pool::pool_size() > limit.saturating_sub(1);
    if failed > 0 || stranded > 0 || over_limit {
        eprintln!(
            "SOAK FAILED: {failed} misverified jobs, {stranded} stranded \
             workers, over_limit={over_limit}"
        );
        std::process::exit(1);
    }
    println!("SOAK OK");
}
