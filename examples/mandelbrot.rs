//! The paper's Mandelbrot benchmark as a schedule-clause showcase:
//! renders the set, prints a small ASCII view, then times every
//! schedule kind on the imbalanced row loop (ablation A1).
//!
//! ```text
//! cargo run --release --example mandelbrot [-- <class S|W|A>]
//! ```

use romp::npb::mandelbrot::{escape_time, X_MAX, X_MIN, Y_MAX, Y_MIN};
use romp::npb::{mandelbrot, verify::Variant, Class};
use romp::prelude::*;

fn ascii_render(width: usize, height: usize) {
    const SHADES: &[u8] = b" .:-=+*#%@";
    for row in 0..height {
        let cy = Y_MIN + (Y_MAX - Y_MIN) * (row as f64 + 0.5) / height as f64;
        let mut line = String::with_capacity(width);
        for col in 0..width {
            let cx = X_MIN + (X_MAX - X_MIN) * (col as f64 + 0.5) / width as f64;
            let t = escape_time(cx, cy, 100);
            let shade = SHADES[(t as usize * (SHADES.len() - 1)) / 100];
            line.push(shade as char);
        }
        println!("{line}");
    }
}

fn main() {
    let class: Class = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "S".into())
        .parse()
        .expect("valid class");
    let threads = omp_get_num_procs();

    println!("Mandelbrot, class {class}, {threads} threads\n");
    ascii_render(72, 24);
    println!();

    let serial = mandelbrot::run_serial(class);
    println!(
        "serial reference: {:.3}s (checksum {})\n",
        serial.1, serial.0
    );

    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "schedule", "time (s)", "speedup", "verified"
    );
    for (label, sched) in [
        ("static", Schedule::static_block()),
        ("static,8", Schedule::static_chunk(8)),
        ("dynamic,1", Schedule::dynamic()),
        ("dynamic,4", Schedule::dynamic_chunk(4)),
        ("guided", Schedule::guided()),
    ] {
        let r = mandelbrot::run_with_schedule(class, threads, sched, Variant::Romp);
        println!(
            "{:<12} {:>9.3} {:>8.2}x {:>9}",
            label,
            r.time_s,
            serial.1 / r.time_s,
            r.verified
        );
        assert!(r.verified, "checksum mismatch under {label}");
    }
    println!(
        "\nWith >1 core, dynamic/guided should lead static: interior rows cost\n\
         far more than edge rows, and static assigns rows blindly."
    );
}
