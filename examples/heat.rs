//! A *native* romp benchmark — the paper's stated future work
//! ("developing native Zig benchmarks"): 2-D heat diffusion (Jacobi
//! iteration) written directly against the directive layer rather than
//! ported from Fortran/C.
//!
//! The stencil sweep is the archetypal OpenMP loop nest: a `parallel`
//! region around the time loop, a worksharing loop over rows per sweep,
//! a max-residual reduction every few steps, and a buffer swap guarded
//! by a barrier.
//!
//! ```text
//! cargo run --release --example heat [-- <n> <steps>]
//! ```

use romp::core::slice::SharedSlice;
use romp::prelude::*;

fn serial_sweeps(grid: &mut Vec<f64>, next: &mut Vec<f64>, n: usize, steps: usize) -> f64 {
    let mut residual = 0.0f64;
    for _ in 0..steps {
        residual = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let idx = i * n + j;
                let v = 0.25 * (grid[idx - 1] + grid[idx + 1] + grid[idx - n] + grid[idx + n]);
                next[idx] = v;
                residual = residual.max((v - grid[idx]).abs());
            }
        }
        std::mem::swap(grid, next);
    }
    residual
}

fn init(n: usize) -> Vec<f64> {
    let mut g = vec![0.0f64; n * n];
    // Hot top edge, cold elsewhere.
    for cell in g.iter_mut().take(n) {
        *cell = 100.0;
    }
    g
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(512);
    let steps: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(200);
    let threads = omp_get_num_procs();
    println!("2-D heat diffusion, {n}x{n} grid, {steps} sweeps, {threads} threads");

    // Serial baseline. The scratch buffer starts as a full copy so the
    // (constant) boundary rows survive the buffer swaps.
    let mut g_serial = init(n);
    let mut scratch = g_serial.clone();
    let t0 = omp_get_wtime();
    let serial_res = serial_sweeps(&mut g_serial, &mut scratch, n, steps);
    let t_serial = omp_get_wtime() - t0;

    // Parallel version: one region for the whole time loop; each sweep
    // is a worksharing loop over interior rows with a max-residual
    // reduction; the swap happens on the master between barriers.
    let mut grid = init(n);
    let mut next = grid.clone();
    let residual = std::sync::Mutex::new(0.0f64);
    let t0 = omp_get_wtime();
    {
        let g = SharedSlice::new(&mut grid);
        let x = SharedSlice::new(&mut next);
        omp_parallel!(|ctx| {
            for step in 0..steps {
                // Which buffer is current this step? (Swap by parity —
                // all threads compute the same answer, no master swap
                // needed.)
                let (src, dst) = if step % 2 == 0 { (&g, &x) } else { (&x, &g) };
                let mut res = 0.0f64;
                omp_for!(ctx, schedule(static), reduction(max : res), for i in (1..n - 1) {
                    for j in 1..n - 1 {
                        let idx = i * n + j;
                        // SAFETY: row i belongs to exactly one thread;
                        // src was fully written before the previous
                        // barrier.
                        unsafe {
                            let v = 0.25
                                * (src.read(idx - 1)
                                    + src.read(idx + 1)
                                    + src.read(idx - n)
                                    + src.read(idx + n));
                            dst.write(idx, v);
                            res = res.max((v - src.read(idx)).abs());
                        }
                    }
                });
                if step == steps - 1 {
                    omp_master!(ctx, {
                        *residual.lock().unwrap() = res;
                    });
                }
            }
        });
    }
    let t_par = omp_get_wtime() - t0;
    let par_res = *residual.lock().unwrap();
    let result = if steps % 2 == 1 { &next } else { &grid };

    // Compare full fields.
    let max_diff = result
        .iter()
        .zip(&g_serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("serial:   {t_serial:.3}s  residual {serial_res:.6e}");
    println!("parallel: {t_par:.3}s  residual {par_res:.6e}");
    println!("max field difference: {max_diff:.3e}");
    assert!(max_diff < 1e-12, "parallel field diverged from serial");
    assert!((serial_res - par_res).abs() < 1e-12);
    println!("fields identical — native heat benchmark OK");
}
