//! A *native* romp benchmark — the paper's stated future work
//! ("developing native Zig benchmarks"): 2-D heat diffusion (Jacobi
//! iteration) written directly against the directive layer rather than
//! ported from Fortran/C.
//!
//! The stencil sweep is the archetypal OpenMP loop nest: each sweep is
//! a worksharing loop over interior rows whose `dst[i][j] = …` writes
//! go through the **safe**
//! [`write_chunks_into`](romp::core::ParFor::write_chunks_into) output
//! layer — each thread owns whole output rows as exclusive `&mut`
//! subslices, while the source buffer is read through a plain shared
//! borrow. No `unsafe`, no `SharedSlice` escape hatch: the fork-join
//! around each sweep is the barrier pair, and the borrow checker sees
//! it.
//!
//! ```text
//! cargo run --release --example heat [-- <n> <steps>]
//! ```

use romp::prelude::*;

fn serial_sweeps(grid: &mut Vec<f64>, next: &mut Vec<f64>, n: usize, steps: usize) -> f64 {
    let mut residual = 0.0f64;
    for _ in 0..steps {
        residual = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let idx = i * n + j;
                let v = 0.25 * (grid[idx - 1] + grid[idx + 1] + grid[idx - n] + grid[idx + n]);
                next[idx] = v;
                residual = residual.max((v - grid[idx]).abs());
            }
        }
        std::mem::swap(grid, next);
    }
    residual
}

fn init(n: usize) -> Vec<f64> {
    let mut g = vec![0.0f64; n * n];
    // Hot top edge, cold elsewhere.
    for cell in g.iter_mut().take(n) {
        *cell = 100.0;
    }
    g
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(512);
    let steps: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(200);
    let threads = omp_get_num_procs();
    println!("2-D heat diffusion, {n}x{n} grid, {steps} sweeps, {threads} threads");

    // Serial baseline. The scratch buffer starts as a full copy so the
    // (constant) boundary rows survive the buffer swaps.
    let mut g_serial = init(n);
    let mut scratch = g_serial.clone();
    let t0 = omp_get_wtime();
    let serial_res = serial_sweeps(&mut g_serial, &mut scratch, n, steps);
    let t_serial = omp_get_wtime() - t0;

    // Parallel version: one fork per sweep. The interior rows of the
    // destination buffer (`dst[n .. n*(n-1)]`, rows 1..n-1) are the
    // safe mutable output: `write_chunks_into` hands each thread its
    // claimed rows as an exclusive `&mut` subslice while `src` is read
    // through an ordinary shared borrow.
    let mut grid = init(n);
    let mut next = grid.clone();
    let t0 = omp_get_wtime();
    for _ in 0..steps {
        let (src, dst) = (&grid, &mut next);
        let src: &[f64] = src;
        par_for(1..n - 1)
            .schedule(Schedule::static_block())
            .write_chunks_into(&mut dst[n..n * (n - 1)], |rows, out| {
                for (i, row_out) in rows.zip(out.chunks_mut(n)) {
                    for (j, cell) in row_out.iter_mut().enumerate().take(n - 1).skip(1) {
                        let idx = i * n + j;
                        *cell = 0.25 * (src[idx - 1] + src[idx + 1] + src[idx - n] + src[idx + n]);
                    }
                }
            });
        std::mem::swap(&mut grid, &mut next);
    }
    // Final residual: max |last - previous| over the interior (the
    // last sweep wrote `grid`; `next` still holds the field before it).
    let par_res = {
        let (last, prev): (&[f64], &[f64]) = (&grid, &next);
        par_for_2d(1..n - 1, 1..n - 1).reduce(MaxOp, 0.0f64, |(i, j), acc| {
            let idx = i * n + j;
            *acc = acc.max((last[idx] - prev[idx]).abs());
        })
    };
    let t_par = omp_get_wtime() - t0;
    let result = &grid;

    // Compare full fields.
    let max_diff = result
        .iter()
        .zip(&g_serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("serial:   {t_serial:.3}s  residual {serial_res:.6e}");
    println!("parallel: {t_par:.3}s  residual {par_res:.6e}");
    println!("max field difference: {max_diff:.3e}");
    assert!(max_diff < 1e-12, "parallel field diverged from serial");
    assert!((serial_res - par_res).abs() < 1e-12);
    println!("fields identical — native heat benchmark OK");
}
