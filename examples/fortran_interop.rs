//! The paper's Zig↔Fortran interop recipe, demonstrated: call "Fortran"
//! BLAS kernels through C-linkage-style mangled names with by-reference
//! arguments and a column-major matrix, from inside a romp parallel
//! region.
//!
//! ```text
//! cargo run --release --example fortran_interop
//! ```

use romp::fortran::{global_registry, mangle, ArgRef, ArgVal, FMatrix};
use romp::prelude::*;

fn main() {
    println!("Fortran interop simulation (paper §3.1: C-linkage + underscore mangling)\n");

    // The mangling rule the paper applies to Fortran procedure names.
    for name in ["DAXPY", "conj_grad", "DGEMV"] {
        println!("  {name:>10}  ->  {}", mangle(name));
    }
    println!();

    // y = A·x through dgemv_, with A column-major and 1-based, exactly
    // as a Fortran callee expects.
    let m = 4usize;
    let n = 3usize;
    let a = FMatrix::from_fn(m, n, |i, j| (10 * i + j) as f64);
    let x = vec![1.0, 0.5, 0.25];
    let mut y = vec![0.0; m];
    let m_arg = ArgVal::I64(m as i64);
    let n_arg = ArgVal::I64(n as i64);
    global_registry()
        .call(
            "dgemv_",
            &mut [
                m_arg.by_ref(),
                n_arg.by_ref(),
                ArgRef::F64Slice(a.as_slice()),
                ArgRef::F64Slice(&x),
                ArgRef::F64SliceMut(&mut y),
            ],
        )
        .expect("dgemv_ resolves");
    println!("A =\n{a}");
    println!("x = {x:?}");
    println!("y = A*x = {y:?}\n");

    // Expected: y_i = sum_j A(i,j) * x_j.
    for i in 1..=m {
        let want: f64 = (1..=n).map(|j| a.get(i, j) * x[j - 1]).sum();
        assert!((y[i - 1] - want).abs() < 1e-12);
    }

    // Legacy kernels called from a worksharing loop: each thread runs
    // daxpy_ on its own rows — the "Zig calling Fortran inside OpenMP"
    // pattern of the paper.
    let rows = 64usize;
    let cols = 512usize;
    let mut data = vec![1.0f64; rows * cols];
    let unit = vec![1.0f64; cols];
    {
        let view = romp::core::slice::SharedSlice::new(&mut data);
        omp_parallel!(|ctx| {
            omp_for!(
                ctx,
                schedule(dynamic),
                for row in 0..(rows) {
                    // SAFETY: each row is owned by exactly one thread.
                    let row_slice = unsafe {
                        std::slice::from_raw_parts_mut(
                            view.as_ptr().add(row * cols) as *mut f64,
                            cols,
                        )
                    };
                    let n_arg = ArgVal::I64(cols as i64);
                    let alpha = ArgVal::F64(row as f64);
                    global_registry()
                        .call(
                            "daxpy_",
                            &mut [
                                n_arg.by_ref(),
                                alpha.by_ref(),
                                ArgRef::F64Slice(&unit),
                                ArgRef::F64SliceMut(row_slice),
                            ],
                        )
                        .expect("daxpy_ resolves");
                }
            );
        });
    }
    for (row, chunk) in data.chunks(cols).enumerate() {
        assert!(chunk.iter().all(|&v| v == 1.0 + row as f64));
    }
    println!("parallel daxpy_ over {rows} rows from a worksharing loop — OK");

    // And the failure mode the mangling exists to avoid:
    let err = global_registry().call("DAXPY", &mut []).unwrap_err();
    println!("\ncalling the unmangled name fails like a linker would:\n  {err}");
}
