//! Run the NPB EP benchmark end to end — the NPB-style report: class,
//! threads, timing, MOP/s, Gaussian-pair counts and the official
//! verification.
//!
//! ```text
//! cargo run --release --example npb_ep [-- <class S|W|A|B|C>]
//! ```

use romp::npb::{ep, Class};
use romp::prelude::*;

fn main() {
    let class: Class = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "S".into())
        .parse()
        .expect("valid class");
    let threads = omp_get_num_procs();

    println!(" NAS Parallel Benchmarks (romp reproduction) — EP Benchmark\n");
    println!(
        " Number of random numbers generated: 2^{}",
        class.ep_m() + 1
    );
    println!(" Number of available threads:        {threads}\n");

    let result = ep::romp::run(class, threads);

    // Recompute the detail for the NPB-style printout.
    let (out, _) = ep::run_serial(Class::S); // cheap; only for the layout demo at S
    let detail = if class == Class::S {
        out
    } else {
        // For bigger classes reuse the parallel run's figures only.
        ep::EpOutput {
            sx: result.checksum,
            sy: f64::NAN,
            q: [0; 10],
        }
    };

    println!(" EP Benchmark Results:\n");
    println!(" CPU Time = {:.4} seconds", result.time_s);
    println!(" N = 2^{}", class.ep_m());
    println!(" Sums = {:25.15e} (sx)", result.checksum);
    if class == Class::S {
        println!("        {:25.15e} (sy)", detail.sy);
        println!(" Counts:");
        for (l, q) in detail.q.iter().enumerate() {
            if *q > 0 {
                println!("  {l} {q:>12}");
            }
        }
    }
    println!(
        "\n Verification = {}",
        if result.verified {
            "SUCCESSFUL"
        } else {
            "FAILED"
        }
    );
    println!(" Mop/s total  = {:.2}", result.mops);
    assert!(result.verified);
}
