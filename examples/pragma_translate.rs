//! The Figure-1 pipeline as a library call: take a directive-annotated
//! source string, show each stage (scan → lex → parse → extract →
//! generate), then prove the translation is faithful by running the
//! same computation through the directive macros and comparing.
//!
//! ```text
//! cargo run --example pragma_translate
//! ```

use romp::prelude::*;

const ANNOTATED: &str = r#"
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    //#omp parallel for schedule(static) reduction(+ : sum)
    for i in 0..(a.len()) {
        sum += a[i] * b[i];
    }
    sum
}
"#;

fn main() {
    println!("=== input (Rust with //#omp comment directives) ===");
    println!("{ANNOTATED}");

    println!("=== the five pipeline stages (paper Figure 1) ===");
    print!("{}", romp::pragma::pipeline_stages(ANNOTATED));

    // What rompcc generates is ordinary Rust calling the directive
    // layer; run the equivalent here and check the value.
    let n = 100_000usize;
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).cos()).collect();
    let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();

    // This is the exact code shape `rompcc` emits for the annotated
    // loop above (reduction write-back included).
    let mut sum = 0.0f64;
    {
        let (__omp_red_0,) = omp_parallel_for!(
            schedule(static), reduction(+ : __omp_red_0 = sum),
            for i in 0..(a.len()) {
                __omp_red_0 += a[i] * b[i];
            }
        );
        sum = __omp_red_0;
    }

    println!("\n=== execution check ===");
    println!("serial     dot = {serial:.9}");
    println!("translated dot = {sum:.9}");
    assert!((serial - sum).abs() < 1e-9);
    println!("translated code computes the same value — pipeline OK");
}
