//! Blocked Smith-Waterman-style wavefront through the task dependence
//! graph: block `(i, j)` depends on `(i-1, j)` and `(i, j-1)`, so the
//! scheduler discovers the anti-diagonal wavefront by itself.
//!
//! ```sh
//! OMP_NUM_THREADS=4 cargo run --release --example wavefront [-- --class S]
//! ```

use romp::npb::{sw, Class};

fn main() {
    let class = std::env::args()
        .skip_while(|a| a != "--class")
        .nth(1)
        .and_then(|c| match c.as_str() {
            "S" => Some(Class::S),
            "W" => Some(Class::W),
            "A" => Some(Class::A),
            _ => None,
        })
        .unwrap_or(Class::S);
    let threads = romp::runtime::omp_get_max_threads();
    let (n, m, block) = sw::dims(class);
    println!(
        "SW wavefront class {class}: {n}x{m} cells, {block}x{block} blocks, team of {threads}"
    );

    let before = romp::runtime::stats::stats().snapshot();
    let serial = sw::run_serial(class);
    println!("  {serial}");
    for r in [
        sw::romp::run(class, threads),
        sw::romp::run(class, 2 * threads),
    ] {
        println!("  {r}");
        assert_eq!(
            r.checksum, serial.checksum,
            "task graph diverged from the sequential reference"
        );
    }
    let after = romp::runtime::stats::stats().snapshot();
    print!(
        "{}",
        romp::runtime::stats::display_stats_snapshot(&before.delta(&after))
    );
}
