//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of `parking_lot`'s API that romp uses —
//! [`Mutex`], [`Condvar`], [`RwLock`] — backed by `std::sync`. The key
//! API difference from `std` is preserved: `lock()`/`read()`/`write()`
//! return guards directly (poisoning is swallowed, matching
//! `parking_lot`'s poison-free semantics).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s poison-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back
    // while the caller keeps holding `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait; reports whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end by timeout (rather than notification)?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard moved during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard moved during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
