//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset romp's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), `prop_assert!`/
//! `prop_assert_eq!`, range strategies over integers and floats,
//! `collection::vec`, `bool::ANY`, and string-pattern strategies for
//! the simple regex subset romp's tests write (`[class]`, `.`, and
//! `{m,n}` repetition). Generation is a deterministic SplitMix64 stream
//! seeded from the test name, so failures reproduce; there is no
//! shrinking.

#![warn(missing_docs)]

pub mod rng;
pub mod strategy;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `size`
    /// and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `proptest::bool` — strategies for booleans.
pub mod bool {
    /// Uniformly random booleans.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges stay in bounds.
        #[test]
        fn int_ranges_in_bounds(a in 3usize..17, b in -5i64..5, c in 0u32..1) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert_eq!(c, 0);
        }

        /// Vec strategy honours the size range and element bounds.
        #[test]
        fn vec_strategy_bounds(v in crate::collection::vec(1u64..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..4).contains(&x)));
        }

        /// String patterns: class, repetition, and `.` all generate.
        #[test]
        fn string_patterns(s in "[A-Za-z][A-Za-z0-9_]{0,30}", any in ".{0,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 31);
            let mut chars = s.chars();
            prop_assert!(chars.next().unwrap().is_ascii_alphabetic());
            prop_assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'));
            prop_assert!(any.len() <= 12);
        }
    }

    #[test]
    fn runs_expanded_tests() {
        int_ranges_in_bounds();
        vec_strategy_bounds();
        string_patterns();
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = crate::rng::TestRng::from_name("float_range");
        for _ in 0..100 {
            let x = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn bool_any_hits_both() {
        let mut rng = crate::rng::TestRng::from_name("bool_any");
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[crate::bool::ANY.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn determinism() {
        let mut a = crate::rng::TestRng::from_name("same");
        let mut b = crate::rng::TestRng::from_name("same");
        for _ in 0..10 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
