//! Deterministic SplitMix64 generator used by all strategies.

/// A small, fast, deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed deterministically from a test name (FNV-1a hash), so each
    /// property gets an independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); bias is
        // negligible for testing purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
