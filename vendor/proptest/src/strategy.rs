//! Value-generation strategies: ranges, collections, booleans, and a
//! small string-pattern language.

use crate::rng::TestRng;
use std::ops::Range;

/// Something that can generate values of one type from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start);
                let off = rng.below(span as u64);
                // Wrapping add in the unsigned domain handles signed
                // ranges spanning zero without overflow.
                <$t>::wrapping_add(self.start, off as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the exclusive endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

/// Uniformly random booleans (`proptest::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

/// `Vec` strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    /// Element strategy.
    pub element: S,
    /// Length range (half-open).
    pub size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start < self.size.end {
            self.size.generate(rng)
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// String patterns: proptest treats `&str` as a regex to generate from.
/// This stand-in supports the subset romp's tests use: literal chars,
/// `.` (printable ASCII), `[...]` classes with ranges, and `{m,n}`
/// repetition of the preceding atom.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    /// Choose uniformly among these chars.
    Class(Vec<char>),
    /// Printable ASCII plus newline (stand-in for regex `.`).
    Dot,
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Class(vec![unescape(chars[i - 1])])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let (lo, hi, next) = parse_repeat(&chars, i + 1);
            i = next;
            (lo, hi)
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(match &atom {
                Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
                Atom::Dot => {
                    // Printable ASCII 0x20..=0x7e.
                    char::from(0x20 + rng.below(0x5f) as u8)
                }
            });
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse a `[...]` class starting just after the `[`; returns the
/// expanded char set and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        // Range `a-z` (a `-` just before `]` is a literal).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern");
    (set, i + 1)
}

/// Parse `{m,n}` or `{m}` starting just after the `{`; returns
/// `(m, n, index past the closing brace)`.
fn parse_repeat(chars: &[char], mut i: usize) -> (usize, usize, usize) {
    let mut lo = 0usize;
    while i < chars.len() && chars[i].is_ascii_digit() {
        lo = lo * 10 + chars[i].to_digit(10).unwrap() as usize;
        i += 1;
    }
    let hi = if i < chars.len() && chars[i] == ',' {
        i += 1;
        let mut h = 0usize;
        while i < chars.len() && chars[i].is_ascii_digit() {
            h = h * 10 + chars[i].to_digit(10).unwrap() as usize;
            i += 1;
        }
        h
    } else {
        lo
    };
    debug_assert!(i < chars.len() && chars[i] == '}', "malformed repetition");
    (lo, hi.max(lo), i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_newline() {
        let mut rng = TestRng::from_name("class");
        for _ in 0..50 {
            let s = "[ -~\n]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literal_and_fixed_repeat() {
        let mut rng = TestRng::from_name("lit");
        assert_eq!("abc".generate(&mut rng), "abc");
        assert_eq!("a{3}".generate(&mut rng), "aaa");
    }

    #[test]
    fn signed_range_spans_zero() {
        let mut rng = TestRng::from_name("signed");
        for _ in 0..200 {
            let v = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&v));
        }
    }

    #[test]
    fn extreme_i64_range() {
        let mut rng = TestRng::from_name("extreme");
        for _ in 0..200 {
            let v = (i64::MIN / 2..i64::MAX / 2).generate(&mut rng);
            assert!((i64::MIN / 2..i64::MAX / 2).contains(&v));
        }
    }
}
