//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset romp's benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`] — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery. Each
//! benchmark reports min/mean over `sample_size` samples to stdout.
//!
//! A `--filter <substr>` argument (or a bare positional substring, as
//! cargo-bench passes) restricts which benchmarks run.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (used inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` `sample_size` times, recording the wall-clock time of each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up run outside measurement.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// The top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut args = std::env::args().skip(1);
        let mut filter = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--filter" => filter = args.next(),
                // cargo bench forwards `--bench`; ignore harness flags.
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&self.filter, &id.full, 10, f);
        self
    }

    fn matches(&self, full: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full.contains(f))
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness has no time target.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_one(&None, &full, self.sample_size, f);
        }
        self
    }

    /// Benchmark `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_one(&None, &full, self.sample_size, |b| f(b, input));
        }
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(filter: &Option<String>, full: &str, samples: usize, mut f: F) {
    if let Some(flt) = filter {
        if !full.contains(flt.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        sample_size: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full:<50} (no samples)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{full:<50} min {:>12.3?}   mean {:>12.3?}   ({} samples)",
        min,
        mean,
        b.samples.len()
    );
}

/// Collect benchmark functions into a single runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("a", 4).to_string(), "a/4");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn bencher_records_samples() {
        let mut calls = 0u32;
        run_one(&None, "unit/bench", 3, |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filter_skips() {
        let mut ran = false;
        run_one(&Some("nomatch".into()), "unit/other", 2, |_| ran = true);
        assert!(!ran);
    }
}
