//! Cancellation conformance: `cancel` / `cancellation point` across
//! construct kinds, schedules, team shapes and cancelling threads.
//!
//! The load-bearing invariants, in the order the suite pins them:
//!
//! * the three directive front ends (macro, builder, `//#omp`
//!   translator) agree bit-exactly on the early-exit search result at
//!   every team shape;
//! * cancellation of a worksharing construct is **chunk-granular**: a
//!   chunk already claimed runs to completion, and after the request
//!   is visible each sibling can start at most the one chunk whose
//!   flag check raced ahead — no chunk starts after the cancelling
//!   construct's closing rendezvous (the region would have to re-enter
//!   the construct, and the generation-scoped flag has expired by
//!   then);
//! * `cancel taskgroup` discards exactly the member tasks that have
//!   not started: bodies of discarded tasks never run, tasks already
//!   running complete, and the group wait still drains;
//! * with `cancel-var=false` (the `OMP_CANCELLATION` default) `cancel`
//!   is a no-op returning `false`, `cancellation point` reports
//!   `false`, and loops execute in full.
//!
//! Every test arms/disarms `cancel-var` through the per-thread
//! override, so the suite is hermetic under any `OMP_CANCELLATION`
//! environment — CI runs it both ways.

// `rustfmt::skip`: the golden file must stay byte-identical to rompcc
// output; formatting it would break `search_translation_matches_golden`.
#[rustfmt::skip]
#[path = "fixtures/search_translated.rs"]
mod translated;

use proptest::prelude::*;
use romp::prelude::*;
use romp_npb::search::{self, ArmCancellation};
use romp_npb::Class;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const ANNOTATED: &str = include_str!("fixtures/search_annotated.rs");
const GOLDEN: &str = include_str!("fixtures/search_translated.rs");

#[test]
fn search_translation_matches_golden() {
    let out = romp_pragma::translate(ANNOTATED).expect("search fixture translates cleanly");
    assert_eq!(
        out, GOLDEN,
        "rompcc output drifted from tests/fixtures/search_translated.rs; \
         regenerate with `cargo run -p romp-pragma --bin rompcc -- \
         tests/fixtures/search_annotated.rs -o tests/fixtures/search_translated.rs`"
    );
}

/// The acceptance bar of the cancellation feature: macro, builder and
/// translator front ends produce bit-identical, serially-verified
/// early-exit search results at 1/2/4/oversubscribed threads.
#[test]
fn search_front_ends_agree_at_every_team_shape() {
    let want = search::expected_index(Class::S);
    let hay = search::haystack(Class::S);
    let nd = search::needle(&hay);
    let oversubscribed = 2 * romp::runtime::omp_get_num_procs().max(2);
    for threads in [1, 2, 4, oversubscribed] {
        assert_eq!(
            search::search_macro(Class::S, threads),
            want,
            "macro front end diverged at {threads} threads"
        );
        assert_eq!(
            search::search_builder(Class::S, threads),
            want,
            "builder front end diverged at {threads} threads"
        );
        let _arm = ArmCancellation::new();
        assert_eq!(
            translated::first_match(&hay, &nd, threads),
            want,
            "translated front end diverged at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Worksharing cancellation over (schedule × threads × cancelling
    /// thread × cancel position): after the cancel request is visible,
    /// each sibling starts at most one further chunk (the one whose
    /// pre-grab flag check raced the request), the cancelling thread
    /// none — and the construct's rendezvous still completes (the test
    /// returning at all proves no thread hung).
    #[test]
    fn no_chunk_starts_after_the_cancelling_episode(
        sched_idx in 0usize..5,
        threads in 1usize..5,
        canceller in 0usize..4,
        cancel_at_chunk in 0usize..6,
        use_point in proptest::bool::ANY,
    ) {
        let _arm = ArmCancellation::new();
        let scheds = [
            Schedule::static_block(),
            Schedule::static_chunk(7),
            Schedule::dynamic_chunk(16),
            Schedule::guided_chunk(8),
            Schedule::dynamic(),
        ];
        let sched = scheds[sched_idx];
        let canceller = canceller % threads;
        let trip = 4096usize;
        let clock = AtomicUsize::new(1);
        let cancel_event = AtomicUsize::new(usize::MAX);
        let late_chunks = AtomicUsize::new(0);
        let my_chunks: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        parallel().num_threads(threads).run(|ctx| {
            let t = ctx.thread_num();
            ctx.ws_for_chunks(0..trip, sched, false, |r| {
                let start = clock.fetch_add(1, Ordering::SeqCst);
                if start > cancel_event.load(Ordering::SeqCst) {
                    late_chunks.fetch_add(1, Ordering::SeqCst);
                }
                let k = my_chunks[t].fetch_add(1, Ordering::SeqCst);
                if t == canceller && k == cancel_at_chunk {
                    assert!(cancel(ctx, CancelKind::For));
                    cancel_event.store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                }
                if use_point {
                    // Smoke: a cancellation point inside the construct
                    // is callable from any thread at any time.
                    let _ = cancellation_point(ctx, CancelKind::For);
                }
                let _ = r;
            });
        });
        // One racing chunk per sibling is legal; anything more means a
        // dispatch happened after the request was globally visible.
        prop_assert!(
            late_chunks.load(Ordering::SeqCst) <= threads,
            "{} chunks started after the cancel request (threads {threads}, sched {sched})",
            late_chunks.load(Ordering::SeqCst)
        );
        // The canceller itself dispatched nothing past its cancelling
        // chunk.
        prop_assert!(my_chunks[canceller].load(Ordering::SeqCst) <= cancel_at_chunk + 1);
    }

    /// `sections` cancellation: single-threaded it is exact — the
    /// cancelling section is the last one claimed; multi-threaded each
    /// sibling can add at most its one in-flight section.
    #[test]
    fn cancelled_sections_stop_claiming(
        threads in 1usize..5,
        count in 1usize..24,
        cancel_at in 0usize..24,
    ) {
        let _arm = ArmCancellation::new();
        let cancel_at = cancel_at % count;
        let claimed = AtomicUsize::new(0);
        parallel().num_threads(threads).run(|ctx| {
            ctx.sections(count, false, |i| {
                claimed.fetch_add(1, Ordering::SeqCst);
                if i == cancel_at {
                    assert!(cancel(ctx, CancelKind::Sections));
                }
            });
        });
        let got = claimed.load(Ordering::SeqCst);
        if threads == 1 {
            prop_assert_eq!(got, cancel_at + 1);
        } else {
            prop_assert!(got <= (cancel_at + 1) + 2 * (threads - 1) && got <= count);
        }
    }

    /// `cancel taskgroup` over (threads × task count): every member
    /// task either runs exactly once or is discarded, the group wait
    /// drains, and single-threaded (nobody can steal before the cancel)
    /// exactly zero bodies run.
    #[test]
    fn taskgroup_cancel_discards_unstarted_members(
        threads in 1usize..5,
        ntasks in 1usize..24,
    ) {
        let _arm = ArmCancellation::new();
        let ran: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
        let before = romp::runtime::stats::stats().snapshot();
        {
            let ran = &ran;
            omp_parallel!(num_threads(threads), |ctx| {
                omp_single!(ctx, nowait, {
                    omp_taskgroup!(ctx, {
                        for slot in ran.iter() {
                            omp_task!(ctx, {
                                slot.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        assert!(omp_cancel!(ctx, taskgroup));
                    });
                    // The group wait has completed: every member is
                    // retired (run or discarded) by now.
                    for r in ran.iter() {
                        assert!(r.load(Ordering::SeqCst) <= 1);
                    }
                });
            });
        }
        let executed: usize = ran.iter().map(|r| r.load(Ordering::SeqCst)).sum();
        if threads == 1 {
            prop_assert_eq!(executed, 0, "no thread could have started a member");
        }
        let d = before.delta(&romp::runtime::stats::stats().snapshot());
        // Global counter (other tests may add discards), but ours alone
        // guarantee the floor.
        prop_assert!(d.tasks_discarded as usize >= ntasks - executed);
    }

    /// `cancel-var=false` (the default): `cancel` is a no-op returning
    /// `false`, `cancellation point` reports `false`, and every
    /// construct runs to completion — for all construct kinds.
    #[test]
    fn disarmed_cancel_is_a_noop_everywhere(
        threads in 1usize..5,
        sched_idx in 0usize..3,
    ) {
        let prev = romp::runtime::icv::set_cancellation_override(Some(false));
        let scheds = [
            Schedule::static_block(),
            Schedule::dynamic_chunk(8),
            Schedule::guided(),
        ];
        let sched = scheds[sched_idx];
        let iters = AtomicUsize::new(0);
        let sections_run = AtomicUsize::new(0);
        let tasks_run = AtomicUsize::new(0);
        parallel().num_threads(threads).run(|ctx| {
            ctx.ws_for(0..512, sched, false, |_| {
                iters.fetch_add(1, Ordering::Relaxed);
                assert!(!cancel(ctx, CancelKind::For));
                assert!(!cancellation_point(ctx, CancelKind::For));
            });
            ctx.sections(6, false, |_| {
                sections_run.fetch_add(1, Ordering::Relaxed);
                assert!(!cancel(ctx, CancelKind::Sections));
            });
            if ctx.is_master() {
                ctx.taskgroup(|| {
                    for _ in 0..4 {
                        let t = &tasks_run;
                        ctx.task(move || {
                            t.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    assert!(!cancel(ctx, CancelKind::Taskgroup));
                    assert!(!cancellation_point(ctx, CancelKind::Taskgroup));
                });
            }
            assert!(!cancel(ctx, CancelKind::Parallel));
            assert!(!cancellation_point(ctx, CancelKind::Parallel));
        });
        romp::runtime::icv::set_cancellation_override(prev);
        prop_assert_eq!(iters.load(Ordering::Relaxed), 512);
        prop_assert_eq!(sections_run.load(Ordering::Relaxed), 6);
        prop_assert_eq!(tasks_run.load(Ordering::Relaxed), 4);
    }

    /// `cancel parallel` from an arbitrary thread: every sibling —
    /// including ones blocked at an explicit barrier — reaches the
    /// region end, unstarted tasks are discarded, and the next fork
    /// from the same master delivers a sane team.
    #[test]
    fn cancel_parallel_releases_blocked_siblings(
        threads in 2usize..6,
        canceller in 0usize..6,
        spawn_tasks in proptest::bool::ANY,
    ) {
        let _arm = ArmCancellation::new();
        let canceller = canceller % threads;
        let reached_end = AtomicUsize::new(0);
        let task_ran = AtomicUsize::new(0);
        parallel().num_threads(threads).run(|ctx| {
            if ctx.thread_num() == canceller {
                if spawn_tasks {
                    for _ in 0..8 {
                        let t = &task_ran;
                        ctx.task(move || {
                            t.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                }
                assert!(cancel(ctx, CancelKind::Parallel));
            } else {
                // Cancellation must release this wait.
                ctx.barrier();
            }
            reached_end.fetch_add(1, Ordering::SeqCst);
        });
        prop_assert_eq!(reached_end.load(Ordering::SeqCst), threads);
        // The region after a cancelled one must be fully functional.
        let sane = AtomicUsize::new(0);
        parallel().num_threads(threads).run(|ctx| {
            ctx.ws_for(0..threads * 8, Schedule::dynamic(), false, |_| {
                sane.fetch_add(1, Ordering::SeqCst);
            });
        });
        prop_assert_eq!(sane.load(Ordering::SeqCst), threads * 8);
    }
}

/// The OpenMP-canonical placement: `cancel taskgroup` from *inside a
/// member task's body*. The task closure must be `Send` and cannot
/// capture `&ThreadCtx`, so the front ends route `taskgroup` requests
/// through the context-free entry points — this test exists chiefly to
/// prove that lowering *compiles* and binds to the right group.
#[test]
fn cancel_taskgroup_from_inside_a_member_task() {
    let _arm = ArmCancellation::new();
    let cancel_seen = AtomicBool::new(false);
    let ran = AtomicUsize::new(0);
    {
        let (cancel_seen, ran) = (&cancel_seen, &ran);
        omp_parallel!(num_threads(2), |ctx| {
            omp_single!(ctx, nowait, {
                // Outside any taskgroup, a cancellation point reports
                // false (and must not panic).
                assert!(!cancellation_point_taskgroup());
                omp_taskgroup!(ctx, {
                    omp_task!(ctx, {
                        // `ctx` here is macro syntax only — the
                        // expansion is context-free, so the closure
                        // stays `Send`.
                        if omp_cancel!(ctx, taskgroup) {
                            cancel_seen.store(true, Ordering::SeqCst);
                        }
                        if omp_cancellation_point!(ctx, taskgroup) {
                            return;
                        }
                    });
                    for _ in 0..16 {
                        omp_task!(ctx, {
                            ran.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        });
    }
    assert!(
        cancel_seen.load(Ordering::SeqCst),
        "the member task's cancel must observe the armed group"
    );
    assert!(ran.load(Ordering::SeqCst) <= 16);
}

/// A member task that is already running when its group is cancelled
/// runs to completion; dependence-stalled successors are discarded
/// without ever executing.
#[test]
fn running_member_completes_stalled_successors_discard() {
    let _arm = ArmCancellation::new();
    let head_started = AtomicBool::new(false);
    let head_finished = AtomicBool::new(false);
    let release = AtomicBool::new(false);
    let succ_ran = AtomicUsize::new(0);
    let tok = 0u8;
    {
        let (head_started, head_finished, release, succ_ran, tok) =
            (&head_started, &head_finished, &release, &succ_ran, &tok);
        omp_parallel!(num_threads(2), |ctx| {
            omp_single!(ctx, nowait, {
                omp_taskgroup!(ctx, {
                    omp_task!(ctx, depend(out: *tok), {
                        head_started.store(true, Ordering::SeqCst);
                        while !release.load(Ordering::SeqCst) {
                            std::hint::spin_loop();
                        }
                        head_finished.store(true, Ordering::SeqCst);
                    });
                    for _ in 0..6 {
                        omp_task!(ctx, depend(inout: *tok), {
                            succ_ran.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    // Wait until the head is provably *running* (the
                    // sibling thread picked it up), then cancel: the
                    // head must finish, the stalled chain must die.
                    while !head_started.load(Ordering::SeqCst) {
                        std::hint::spin_loop();
                    }
                    assert!(omp_cancel!(ctx, taskgroup));
                    release.store(true, Ordering::SeqCst);
                });
            });
        });
    }
    assert!(
        head_finished.load(Ordering::SeqCst),
        "running member must complete"
    );
    assert_eq!(
        succ_ran.load(Ordering::SeqCst),
        0,
        "dependence-stalled members of a cancelled group must be discarded"
    );
}

/// The banner exposes the new counters, and a cancelled search bumps
/// them.
#[test]
fn cancellation_is_observable_in_stats() {
    let before = romp::runtime::stats::stats().snapshot();
    let _ = search::search_macro(Class::S, 2);
    let d = before.delta(&romp::runtime::stats::stats().snapshot());
    assert!(d.cancels_activated >= 1, "{d:?}");
    let banner = romp::runtime::stats::display_stats();
    assert!(banner.contains("cancels_activated"), "{banner}");
    assert!(banner.contains("tasks_discarded"), "{banner}");
}

/// `omp_get_cancellation` reports the team's fork-time snapshot.
#[test]
fn omp_get_cancellation_reports_the_snapshot() {
    let _arm = ArmCancellation::new();
    parallel().num_threads(2).run(|ctx| {
        let _ = ctx;
        assert!(romp::runtime::omp_get_cancellation());
    });
    let prev = romp::runtime::icv::set_cancellation_override(Some(false));
    parallel().num_threads(2).run(|ctx| {
        let _ = ctx;
        assert!(!romp::runtime::omp_get_cancellation());
    });
    romp::runtime::icv::set_cancellation_override(prev);
}
