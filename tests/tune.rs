//! End-to-end tests for the adaptive schedule autotuner: convergence of
//! `schedule(auto)` on a skewed loop, site-key identity (stable across
//! repeated forks, distinct across distinct sites), and the disarmed
//! (`ROMP_TUNE=0`) no-op pin.
//!
//! CI runs this binary three ways: plain (hardware default threads),
//! env-pinned at `OMP_NUM_THREADS=2` and `4`, and with `ROMP_TUNE=0`.
//! The armed tests return early when tuning is disarmed and vice versa,
//! so every leg is meaningful.

use proptest::prelude::*;
use romp::prelude::*;
use romp::runtime::tune::{self, trip_bucket, SiteId, SiteKey};
use std::hint::black_box;

fn tuning_disarmed() -> bool {
    matches!(
        std::env::var("ROMP_TUNE").ok().as_deref(),
        Some("0") | Some("off")
    )
}

const SKEW_TRIP: usize = 2048;

/// One pass of a triangular loop: iteration `i` costs O(i), the classic
/// skew that block-static handles worst and chunked/guided handle well.
fn skewed_pass(site: &'static str) {
    omp_parallel_for!(
        schedule(auto),
        site(site),
        for i in 0..SKEW_TRIP {
            let mut acc = 0u64;
            for k in 0..i {
                acc = acc.wrapping_add(black_box(k as u64));
            }
            black_box(acc);
        }
    );
}

#[test]
fn auto_schedule_converges_on_a_skewed_loop() {
    if tuning_disarmed() {
        return;
    }
    // 4 candidate arms x 3 probe rounds = 12 measured constructs before
    // the learner locks; run extra passes so the test also exercises
    // the post-lock fast path.
    for _ in 0..20 {
        skewed_pass("skew-convergence");
    }
    let samples = tune::dump();
    let s = samples
        .iter()
        .find(|s| s.site == "skew-convergence")
        .unwrap_or_else(|| panic!("site never recorded; dump: {samples:?}"));
    assert!(s.converged, "learner still probing after 20 passes: {s:?}");
    assert!(s.chosen.is_some(), "{s:?}");
    assert!(s.probes >= 12, "{s:?}");
}

#[test]
fn repeated_forks_share_one_site_entry() {
    if tuning_disarmed() {
        return;
    }
    for _ in 0..6 {
        skewed_pass("skew-stable");
    }
    let hits: Vec<_> = tune::dump()
        .into_iter()
        .filter(|s| s.site == "skew-stable")
        .collect();
    // Same site name + same trip -> one history entry, accumulating.
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].probes >= 6, "{hits:?}");
}

fn auto_loop_here() {
    par_for(0usize..512).schedule(Schedule::Auto).run(|i| {
        black_box(i);
    });
}

fn auto_loop_there() {
    par_for(0usize..512).schedule(Schedule::Auto).run(|i| {
        black_box(i);
    });
}

#[test]
fn caller_stamped_sites_are_distinct() {
    if tuning_disarmed() {
        return;
    }
    // No explicit site: `#[track_caller]` stamps the `par_for(..)`
    // expression inside each helper, so the two loops must land in two
    // distinct history entries keyed by this file's line numbers.
    for _ in 0..3 {
        auto_loop_here();
        auto_loop_there();
    }
    let sites: Vec<String> = tune::dump()
        .into_iter()
        .filter(|s| s.site.contains("tune.rs") && s.bucket == trip_bucket(512))
        .map(|s| s.site)
        .collect();
    assert!(
        sites.len() >= 2,
        "expected two caller-stamped sites, got {sites:?}"
    );
    assert!(
        sites
            .iter()
            .all(|s| sites.iter().filter(|t| *t == s).count() == 1),
        "duplicate site entries: {sites:?}"
    );
}

#[test]
fn disarmed_tuning_records_nothing() {
    if !tuning_disarmed() {
        return;
    }
    // With ROMP_TUNE=0 the fork snapshots tuning off: auto loops take
    // the plain resolved-schedule path and the history table stays
    // untouched (the armed tests above all early-return in this leg,
    // so the table is empty process-wide).
    for _ in 0..4 {
        skewed_pass("skew-disarmed");
    }
    auto_loop_here();
    assert!(tune::dump().is_empty(), "{:?}", tune::dump());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The history-table key is a pure function of (site, log2 trip
    /// bucket): stable across repeated construction, shared within a
    /// bucket, distinct across sites and across buckets.
    #[test]
    fn site_key_is_stable_and_bucketed(trip in 1u64..1_000_000_000) {
        let a = SiteKey::new(SiteId::Named("pk-a"), trip);
        prop_assert_eq!(a, SiteKey::new(SiteId::Named("pk-a"), trip));
        prop_assert_eq!(a.bucket, trip_bucket(trip));

        // Distinct site names never collide, whatever the trip.
        prop_assert_ne!(a, SiteKey::new(SiteId::Named("pk-b"), trip));

        // The smallest trip in the same power-of-two bucket shares the
        // key; doubling the trip always moves to the next bucket.
        let lo = 1u64 << (a.bucket - 1);
        prop_assert_eq!(a, SiteKey::new(SiteId::Named("pk-a"), lo));
        let doubled = SiteKey::new(SiteId::Named("pk-a"), trip * 2);
        prop_assert_eq!(doubled.bucket, a.bucket + 1);
    }
}
