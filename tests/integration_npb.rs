//! Cross-crate integration: the NPB kernels through the `romp` facade —
//! serial/parallel/reference agreement and official verification.

use romp::npb::{cg, ep, is, mandelbrot, search, sw, Class};

#[test]
fn ep_all_variants_agree_and_verify() {
    let (serial, _) = ep::run_serial(Class::S);
    let romp_r = ep::romp::run(Class::S, 4);
    let refr = ep::reference::run(Class::S, 4);
    assert!(romp_r.verified && refr.verified);
    // sx agreement up to FP-reduction reassociation noise (relative).
    let rel = |a: f64, b: f64| ((a - b) / b).abs();
    assert!(rel(romp_r.checksum, serial.sx) < 1e-11);
    assert!(rel(refr.checksum, serial.sx) < 1e-11);
}

#[test]
fn cg_all_variants_agree_and_verify() {
    let setup = cg::setup(Class::S);
    let serial = cg::run_serial_with(&setup);
    let romp_r = cg::romp::run_with(&setup, 4);
    let refr = cg::reference::run_with(&setup, 4);
    assert!(serial.verified && romp_r.verified && refr.verified);
    assert!((romp_r.checksum - serial.checksum).abs() < 1e-10);
    assert!((refr.checksum - serial.checksum).abs() < 1e-10);
}

#[test]
fn is_variants_verify() {
    assert!(is::run_serial(Class::S).verified);
    assert!(is::romp::run(Class::S, 4).verified);
    assert!(is::reference::run(Class::S, 4).verified);
}

#[test]
fn mandelbrot_variants_agree_exactly() {
    let (serial, _) = mandelbrot::run_serial(Class::S);
    let a = mandelbrot::romp::run(Class::S, 4);
    let b = mandelbrot::reference::run(Class::S, 4);
    assert_eq!(a.checksum as u64, serial);
    assert_eq!(b.checksum as u64, serial);
}

#[test]
fn ep_is_thread_count_invariant() {
    // The annulus counts are integers: any thread count must reproduce
    // them exactly.
    let (serial, _) = ep::run_serial(Class::S);
    for threads in [1usize, 2, 3, 5, 8] {
        let blocks = ep::blocks(Class::S);
        // Recompute via the block decomposition the parallel path uses.
        let mut q = [0u64; 10];
        let chunk = blocks / threads as u64;
        let mut lo = 0;
        for t in 0..threads as u64 {
            let hi = if t == threads as u64 - 1 {
                blocks
            } else {
                lo + chunk
            };
            let part = ep::accumulate_blocks(lo, hi);
            for (ql, pl) in q.iter_mut().zip(&part.q) {
                *ql += pl;
            }
            lo = hi;
        }
        assert_eq!(q, serial.q, "threads={threads}");
    }
}

#[test]
fn cg_matrix_is_deterministic() {
    let a = cg::setup(Class::S);
    let b = cg::setup(Class::S);
    assert_eq!(a.mat.rowstr, b.mat.rowstr);
    assert_eq!(a.mat.colidx, b.mat.colidx);
    assert_eq!(a.mat.a, b.mat.a);
}

#[test]
fn is_keys_deterministic_across_threads() {
    let a = is::generate_keys(Class::S, 1);
    let b = is::generate_keys(Class::S, 3);
    let c = is::generate_keys(Class::S, 8);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

/// Class-S verification matrix: every kernel, in both configurations,
/// must pass the official NPB `verify` thresholds single-threaded and
/// multi-threaded (the paper's correctness bar for its Zig ports).
#[test]
fn class_s_verification_single_and_multi_threaded() {
    let cg_setup = cg::setup(Class::S);
    for threads in [1usize, 4] {
        for (name, result) in [
            ("cg/romp", cg::romp::run_with(&cg_setup, threads)),
            ("cg/reference", cg::reference::run_with(&cg_setup, threads)),
            ("ep/romp", ep::romp::run(Class::S, threads)),
            ("ep/reference", ep::reference::run(Class::S, threads)),
            ("is/romp", is::romp::run(Class::S, threads)),
            ("is/reference", is::reference::run(Class::S, threads)),
            ("mandelbrot/romp", mandelbrot::romp::run(Class::S, threads)),
            (
                "mandelbrot/reference",
                mandelbrot::reference::run(Class::S, threads),
            ),
            ("sw/romp", sw::romp::run(Class::S, threads)),
            ("fs/romp", search::romp::run(Class::S, threads)),
        ] {
            assert!(
                result.verified,
                "{name} failed official class-S verification on {threads} thread(s): {result}"
            );
            assert_eq!(
                result.threads, threads,
                "{name} reported wrong thread count"
            );
        }
    }
}

#[test]
fn sw_wavefront_agrees_with_serial_and_verifies() {
    let serial = sw::run_serial(Class::S);
    assert!(serial.verified, "{serial}");
    for threads in [1usize, 2, 4] {
        let r = sw::romp::run(Class::S, threads);
        assert!(r.verified, "{r}");
        assert_eq!(r.checksum, serial.checksum, "threads={threads}");
    }
}

/// The env-pinned path CI exercises at 1 and 4 threads: the team size
/// comes from `OMP_NUM_THREADS`, so both the all-inline and the
/// stealing schedulers run the same dependence graph.
#[test]
fn sw_wavefront_env_resolved_threads() {
    let r = sw::romp::run_env(Class::S);
    assert!(r.verified, "{r}");
    assert_eq!(
        r.threads,
        romp::runtime::omp_get_max_threads(),
        "run_env must use the ICV-resolved team size"
    );
}

#[test]
fn fs_search_agrees_with_serial_and_verifies() {
    let serial = search::run_serial(Class::S);
    assert!(serial.verified, "{serial}");
    for threads in [1usize, 2, 4] {
        let r = search::romp::run(Class::S, threads);
        assert!(r.verified, "{r}");
        assert_eq!(r.checksum, serial.checksum, "threads={threads}");
    }
}

#[test]
fn kernel_results_render() {
    let r = ep::romp::run(Class::S, 2);
    let s = r.to_string();
    assert!(s.contains("EP") && s.contains("class S"), "{s}");
}
