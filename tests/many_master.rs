//! Many-master stress suite: M OS threads forking concurrently.
//!
//! The sharded worker pool (`romp_runtime::pool`) exists for exactly
//! this shape of load — many concurrent masters, each forking small
//! parallel regions — so this suite drives it from M independent OS
//! threads doing cold forks, hot-team forks and resize churn at the
//! same time, and pins the invariants that are easy to break under
//! concurrency:
//!
//! * **Sane geometry** — every delivered team reports one consistent
//!   `num_threads` in `1..=requested`, and each member runs exactly
//!   once with a distinct `thread_num`.
//! * **Thread-limit accounting** — `pool_size()` (the atomic
//!   reservation counter) never exceeds `thread-limit-var − 1`, even
//!   while many masters race reservations.
//! * **No stranded workers** — once every master has exited (leases
//!   dropped, cold workers self-released), every worker the pool ever
//!   created is findable on some shard's idle list: `idle_workers()`
//!   converges to `pool_size()`. A worker lost to a mis-homed release
//!   or a consumed-but-never-honored wake would hang this forever.
//!
//! Discipline: every fork happens on a freshly-spawned master thread,
//! never on a test-harness thread — harness threads outlive the test,
//! so a hot-team lease parked on one would hold workers out of the
//! idle list and fail the convergence check spuriously. Tests that
//! flip process-global ICVs serialize on `ICV_LOCK` and restore the
//! previous value. CI runs this suite under `ROMP_HOT_TEAMS=0/1` and
//! `OMP_WAIT_POLICY=passive`; the assertions hold in every regime.

use romp::runtime::stats::stats;
use romp::runtime::{fork, icv, pool, ForkSpec};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

static ICV_LOCK: Mutex<()> = Mutex::new(());

/// One master's region: fork `want` threads, assert geometry.
fn checked_fork(want: usize) {
    let seen = Mutex::new(HashSet::new());
    let team_size = AtomicUsize::new(0);
    fork(ForkSpec::with_num_threads(want), |ctx| {
        let n = ctx.num_threads();
        assert!(
            (1..=want).contains(&n),
            "delivered size {n} vs requested {want}"
        );
        assert!(ctx.thread_num() < n, "thread_num out of range");
        let prev = team_size.swap(n, Ordering::SeqCst);
        assert!(
            prev == 0 || prev == n,
            "members disagree on team size: {prev} vs {n}"
        );
        assert!(
            seen.lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(ctx.thread_num()),
            "duplicate thread_num {}",
            ctx.thread_num()
        );
    });
    let n = team_size.load(Ordering::SeqCst);
    let members = seen.into_inner().unwrap_or_else(|e| e.into_inner()).len();
    assert_eq!(members, n, "every member must run exactly once");
}

/// Wait until every pool worker is back on an idle list. Generous
/// deadline: concurrently-running tests in this binary may still hold
/// workers mid-fork, but all of them terminate well within it.
fn assert_no_stranded_workers() {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let total = pool::pool_size();
        let idle = pool::idle_workers();
        if idle == total {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "stranded workers: {idle} idle of {total} alive (shards: {:?})",
            pool::shard_counters()
        );
        std::thread::yield_now();
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn many_masters_mixed_churn_geometry_and_no_strand() {
    const MASTERS: usize = 6;
    const ROUNDS: usize = 30;
    let gate = Arc::new(Barrier::new(MASTERS));
    let handles: Vec<_> = (0..MASTERS)
        .map(|m| {
            let gate = gate.clone();
            std::thread::Builder::new()
                .name(format!("mm-churn-{m}"))
                .spawn(move || {
                    gate.wait();
                    for r in 0..ROUNDS {
                        // Cycle the requested shape so the hot path sees
                        // resize churn (re-acquire from the pool every
                        // round) and the cold path sees plain churn.
                        let want = 2 + (r + m) % 3;
                        checked_fork(want);
                        if r % 10 == 9 {
                            // A nested fork mid-churn must respect
                            // max-active-levels without disturbing the
                            // pool accounting: serialized at the
                            // default of 1; genuinely parallel when CI
                            // pins OMP_MAX_ACTIVE_LEVELS=2 (delivery
                            // may still be short under pool pressure).
                            let mal = icv::current().max_active_levels;
                            fork(ForkSpec::with_num_threads(2), |_| {
                                fork(ForkSpec::with_num_threads(2), |inner| {
                                    if mal <= 1 {
                                        assert_eq!(inner.num_threads(), 1);
                                    } else {
                                        assert!(inner.num_threads() <= 2);
                                    }
                                });
                            });
                        }
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_no_stranded_workers();
}

#[test]
fn many_masters_cold_storm_respects_thread_limit() {
    let _g = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, false));
    let limit = icv::current().thread_limit;

    const MASTERS: usize = 8;
    const ROUNDS: usize = 40;
    let stop = Arc::new(AtomicBool::new(false));
    // A sampler races the storm, asserting the reservation counter
    // never exceeds the worker cap even transiently (a rollback bug or
    // a double-count would show up here).
    let sampler = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut max_seen = 0;
            while !stop.load(Ordering::Acquire) {
                max_seen = max_seen.max(pool::pool_size());
                std::thread::yield_now();
            }
            max_seen
        })
    };
    let before = stats().snapshot();
    let gate = Arc::new(Barrier::new(MASTERS));
    let handles: Vec<_> = (0..MASTERS)
        .map(|m| {
            let gate = gate.clone();
            std::thread::Builder::new()
                .name(format!("mm-cold-{m}"))
                .spawn(move || {
                    gate.wait();
                    for r in 0..ROUNDS {
                        checked_fork(2 + (r + m) % 3);
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let max_alive = sampler.join().unwrap();
    assert!(
        max_alive <= limit.saturating_sub(1),
        "pool grew past the thread limit: {max_alive} workers vs limit {limit}"
    );
    let d = before.delta(&stats().snapshot());
    // 320 cold regions must overwhelmingly reuse pooled workers, not
    // spawn fresh ones; local + stolen acquires prove the sharded free
    // lists circulated them.
    assert!(
        d.pool_acquires_local + d.pool_acquires_stolen >= (MASTERS * ROUNDS) as u64 / 4,
        "cold storm barely reused the pool: {d:?}"
    );
    icv::with_global_mut(|i| i.hot_teams = prev);
    assert_no_stranded_workers();
}

#[test]
fn many_masters_hot_teams_stay_independent() {
    let _g = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, true));

    const MASTERS: usize = 4;
    const ROUNDS: usize = 25;
    let before = stats().snapshot();
    let gate = Arc::new(Barrier::new(MASTERS));
    let handles: Vec<_> = (0..MASTERS)
        .map(|m| {
            let gate = gate.clone();
            std::thread::Builder::new()
                .name(format!("mm-hot-{m}"))
                .spawn(move || {
                    gate.wait();
                    // Same shape every round: after the first build,
                    // every fork from this master must hit its own
                    // cached team — per-master caches never interfere,
                    // whichever shard their workers came from.
                    for _ in 0..ROUNDS {
                        checked_fork(2);
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let d = before.delta(&stats().snapshot());
    assert!(
        d.hot_team_hits >= (MASTERS * (ROUNDS - 1)) as u64,
        "concurrent masters should each hit their own hot team: {d:?}"
    );
    icv::with_global_mut(|i| i.hot_teams = prev);
    assert_no_stranded_workers();
}

#[test]
fn many_masters_oversized_requests_are_clamped_not_leaked() {
    // Masters ask for far more threads than the box has; deliveries may
    // be short (spec-legal) but accounting must stay exact and workers
    // must all come home.
    const MASTERS: usize = 4;
    let limit = icv::current().thread_limit;
    let gate = Arc::new(Barrier::new(MASTERS));
    let handles: Vec<_> = (0..MASTERS)
        .map(|m| {
            let gate = gate.clone();
            std::thread::Builder::new()
                .name(format!("mm-big-{m}"))
                .spawn(move || {
                    gate.wait();
                    for _ in 0..5 {
                        checked_fork(16);
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(pool::pool_size() <= limit.saturating_sub(1));
    assert_no_stranded_workers();
}
