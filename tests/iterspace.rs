//! The `IterSpace` conformance suite: API parity across spaces, and
//! property tests that every `(space, schedule, nthreads)` combination
//! decodes each point of the space **exactly once** — the same contract
//! `tests/conformance_schedules.rs` pins for plain ranges, extended to
//! signed bounds, strides (both directions) and collapsed nests,
//! including degenerate/empty dimensions.

use proptest::prelude::*;
use romp::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------
// API parity: the one generic builder exposes the *full* clause set for
// every space kind (the seed's `ParFor2` lacked `if_clause` and all
// chunked variants — this pins that gap shut structurally).
// ---------------------------------------------------------------------

/// Exercise every builder method on one space, checking the space's
/// point count comes out of each entry point.
fn assert_full_clause_set<S>(space: S, expect_points: usize)
where
    S: IterSpace + 'static,
{
    // run + schedule + num_threads + if_clause
    let count = AtomicUsize::new(0);
    par_for(space.clone())
        .schedule(Schedule::dynamic_chunk(3))
        .num_threads(3)
        .if_clause(true)
        .run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    assert_eq!(count.load(Ordering::Relaxed), expect_points, "run");

    // run_chunks
    let count = AtomicUsize::new(0);
    par_for(space.clone())
        .schedule(Schedule::guided())
        .num_threads(2)
        .run_chunks(|c| {
            count.fetch_add(c.count(), Ordering::Relaxed);
        });
    assert_eq!(count.load(Ordering::Relaxed), expect_points, "run_chunks");

    // reduce (+ if_clause(false): serialized but still exact)
    let n = par_for(space.clone())
        .if_clause(false)
        .reduce(SumOp, 0usize, |_, acc| *acc += 1);
    assert_eq!(n, expect_points, "reduce");

    // reduce_chunks
    let n = par_for(space.clone())
        .schedule(Schedule::static_chunk(2))
        .num_threads(4)
        .reduce_chunks(SumOp, 0usize, |c, acc| *acc += c.count());
    assert_eq!(n, expect_points, "reduce_chunks");

    // write_into: every slot written exactly once.
    let mut out = vec![0u32; expect_points];
    par_for(space.clone())
        .num_threads(3)
        .schedule(Schedule::dynamic())
        .write_into(&mut out, |_, slot| *slot += 1);
    assert!(out.iter().all(|&v| v == 1), "write_into");

    // write_chunks_into with a 2-wide output stride.
    let mut out = vec![0u32; expect_points * 2];
    par_for(space)
        .num_threads(4)
        .write_chunks_into(&mut out, |_, slots| {
            for s in slots {
                *s += 1;
            }
        });
    assert!(out.iter().all(|&v| v == 1), "write_chunks_into");
}

#[test]
fn every_space_kind_has_the_full_clause_set() {
    assert_full_clause_set(0..23usize, 23);
    assert_full_clause_set(-11i64..6, 17);
    assert_full_clause_set(StridedRange::new(0, 50, 7), 8);
    assert_full_clause_set(StridedRange::new(9, -9, -4), 5);
    assert_full_clause_set(collapse2(0..5usize, 0..4usize), 20);
    assert_full_clause_set(collapse2(-2i64..2, StridedRange::new(10, 0, -5)), 8);
    assert_full_clause_set(collapse3(0..3usize, 0..2usize, 0..4usize), 24);
    // Degenerate dimensions: everything still works, with zero points.
    assert_full_clause_set(collapse2(0..9usize, 3..3usize), 0);
    assert_full_clause_set(collapse3(0..0usize, 0..9usize, 0..9usize), 0);
}

// ---------------------------------------------------------------------
// Exactly-once decode properties.
// ---------------------------------------------------------------------

fn pick_schedule(pick: usize, chunk: u64) -> Schedule {
    match pick {
        0 => Schedule::static_block(),
        1 => Schedule::static_chunk(chunk),
        2 => Schedule::dynamic_chunk(chunk),
        3 => Schedule::guided_chunk(chunk),
        _ => Schedule::Auto,
    }
}

/// Run `space` under the builder and assert the multiset of observed
/// indices equals the serial enumeration of the space.
fn assert_decodes_exactly_once<S>(space: S, sched: Schedule, threads: usize)
where
    S: IterSpace + 'static,
    S::Index: Ord + std::fmt::Debug,
{
    let serial: Vec<S::Index> = {
        let mut v: Vec<S::Index> = (0..space.trip()).map(|k| space.decode(k)).collect();
        v.sort_unstable();
        v
    };
    let seen = Mutex::new(Vec::new());
    par_for(space)
        .num_threads(threads)
        .schedule(sched)
        .run(|idx| seen.lock().unwrap().push(idx));
    let mut got = seen.into_inner().unwrap();
    got.sort_unstable();
    assert_eq!(got, serial, "{sched} on {threads} threads");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Signed ranges: every point exactly once, negative bounds included.
    #[test]
    fn signed_range_decodes_exactly_once(
        start in -500i64..500,
        len in 0i64..400,
        threads in 1usize..6,
        pick in 0usize..5,
        chunk in 1u64..32,
    ) {
        assert_decodes_exactly_once(start..start + len, pick_schedule(pick, chunk), threads);
    }

    /// Strided spaces: both stride directions, any alignment of the
    /// final partial step.
    #[test]
    fn strided_decodes_exactly_once(
        start in -300i64..300,
        span in 0i64..300,
        step in 1i64..23,
        down in proptest::bool::ANY,
        threads in 1usize..6,
        pick in 0usize..5,
        chunk in 1u64..32,
    ) {
        let (end, step) = if down { (start - span, -step) } else { (start + span, step) };
        assert_decodes_exactly_once(
            StridedRange::new(start, end, step),
            pick_schedule(pick, chunk),
            threads,
        );
    }

    /// collapse(2) over mixed component spaces, including empty and
    /// one-wide dimensions.
    #[test]
    fn collapse2_decodes_exactly_once(
        ao in -40i64..40,
        aw in 0i64..24,
        bo in -40i64..40,
        bw in 0i64..24,
        threads in 1usize..6,
        pick in 0usize..5,
        chunk in 1u64..32,
    ) {
        assert_decodes_exactly_once(
            collapse2(ao..ao + aw, bo..bo + bw),
            pick_schedule(pick, chunk),
            threads,
        );
    }

    /// collapse(3) with a strided middle dimension: the flattened space
    /// still partitions exactly.
    #[test]
    fn collapse3_decodes_exactly_once(
        aw in 0usize..7,
        step in 1i64..6,
        bw in 0i64..20,
        cw in 0usize..7,
        threads in 1usize..6,
        pick in 0usize..5,
        chunk in 1u64..32,
    ) {
        assert_decodes_exactly_once(
            collapse3(0..aw, StridedRange::new(0, bw, step), 0..cw),
            pick_schedule(pick, chunk),
            threads,
        );
    }

    /// `write_into` lands every slot exactly once for arbitrary spaces
    /// and schedules (the disjointness contract of the safe output
    /// layer).
    #[test]
    fn write_into_slots_exactly_once(
        start in -200i64..200,
        span in 0i64..300,
        step in 1i64..17,
        threads in 1usize..6,
        pick in 0usize..5,
        chunk in 1u64..32,
    ) {
        let space = StridedRange::new(start, start + span, step);
        let mut out = vec![0u32; space.trip() as usize];
        par_for(space)
            .num_threads(threads)
            .schedule(pick_schedule(pick, chunk))
            .write_into(&mut out, |_, slot| *slot += 1);
        prop_assert!(out.iter().all(|&v| v == 1));
    }
}
