//! Acceptance suite for the sparse solver layer: the multi-colored
//! KACZ sweep and the CARP-CG solver verify against the sequential
//! reference at 1/2/4/oversubscribed threads **across all three
//! directive front ends** (macro, builder, `//#omp` translator), the
//! sweeps bitwise and the solver residual-bounded; the convergence
//! early-exit goes through `omp_cancel!` and is observable in the
//! runtime stats when `cancel-var` is armed, and degrades to a plain
//! SPMD break when it is not.

// `rustfmt::skip`: the golden file must stay byte-identical to rompcc
// output; formatting it would break `kacz_translation_matches_golden`.
#[rustfmt::skip]
#[path = "fixtures/kacz_translated.rs"]
mod translated;

use romp::prelude::*;
use romp_core::slice::SharedSlice;
use romp_npb::search::ArmCancellation;
use romp_sparse::prelude::*;

const ANNOTATED: &str = include_str!("fixtures/kacz_annotated.rs");
const GOLDEN: &str = include_str!("fixtures/kacz_translated.rs");

#[test]
fn kacz_translation_matches_golden() {
    let out = romp_pragma::translate(ANNOTATED).expect("kacz fixture translates cleanly");
    assert_eq!(
        out, GOLDEN,
        "rompcc output drifted from tests/fixtures/kacz_translated.rs; \
         regenerate with `cargo run -p romp-pragma --bin rompcc -- \
         tests/fixtures/kacz_annotated.rs -o tests/fixtures/kacz_translated.rs`"
    );
}

fn team_ladder() -> [usize; 4] {
    let oversubscribed = 2 * romp::runtime::omp_get_num_procs().max(2);
    [1, 2, 4, oversubscribed]
}

/// The sweep acceptance bar: macro, builder and translator front ends
/// produce **bitwise** the sequential Kaczmarz sweep in multicolor
/// order, at every team shape, forward and backward (the translated
/// fixture is forward-only, as written in the annotated source).
#[test]
fn kacz_front_ends_agree_at_every_team_shape() {
    let n = 160;
    let mat = matgen::random_sparse(n, 4, 20_240_808);
    let coloring = greedy_multicolor(&mat);
    let norms = mat.row_norms_sq();
    let b = matgen::consistent_rhs(&mat);
    let bounds = coloring.phase_boundaries();
    let x0: Vec<f64> = (0..n).map(|i| (i % 11) as f64 * 0.125 - 0.5).collect();
    for dir in [Direction::Forward, Direction::Backward] {
        let mut want = x0.clone();
        sweep_seq(&mat, &norms, &coloring.order, &mut want, &b, 1.0, dir);
        for threads in team_ladder() {
            let mut got = x0.clone();
            sweep_csr_macro(&mat, &norms, &coloring, &mut got, &b, 1.0, dir, threads);
            assert_eq!(got, want, "macro front end diverged at {threads} threads");
            let mut got = x0.clone();
            sweep_csr_builder(
                &mat,
                &norms,
                &coloring,
                &mut got,
                &b,
                1.0,
                dir,
                threads,
                Schedule::Runtime,
            );
            assert_eq!(got, want, "builder front end diverged at {threads} threads");
            if dir == Direction::Forward {
                let mut got = x0.clone();
                {
                    let view = SharedSlice::new(&mut got);
                    translated::kacz_sweep_colored(
                        &mat.rowptr,
                        &mat.cols,
                        &mat.vals,
                        &norms,
                        &coloring.order,
                        &bounds,
                        &view,
                        &b,
                        1.0,
                        threads,
                    );
                }
                assert_eq!(
                    got, want,
                    "translated front end diverged at {threads} threads"
                );
            }
        }
    }
}

/// The SELL-C-σ tiles inherit the same bar: the colored tile sweep is
/// bitwise the sequential sweep on the layout's own permuted order at
/// every team shape.
#[test]
fn sell_sweep_agrees_at_every_team_shape() {
    let n = 192;
    let mat = matgen::banded(n, 4);
    let coloring = color::auto(&mat, 4);
    let cs = ColoredSell::build(&mat, &coloring, 8, 32);
    let norms = mat.row_norms_sq();
    let b = matgen::consistent_rhs(&mat);
    let order = cs.sweep_order();
    let x0: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.25).collect();
    for dir in [Direction::Forward, Direction::Backward] {
        let mut want = x0.clone();
        sweep_seq(&mat, &norms, &order, &mut want, &b, 1.0, dir);
        for threads in team_ladder() {
            let mut got = x0.clone();
            cs.sweep_builder(&norms, &mut got, &b, 1.0, dir, threads, Schedule::Runtime);
            assert_eq!(got, want, "SELL sweep diverged at {threads} threads");
        }
    }
}

/// The solver acceptance bar: parallel CARP-CG converges and stays
/// within tolerance of the sequential reference at every team shape,
/// over both operator formats (sweeps are bitwise; the solver iterates
/// differ only by reduction combine order, so the bound is tight).
#[test]
fn carp_cg_verifies_at_every_team_shape() {
    let n = 400;
    let mat = matgen::banded(n, 4);
    let coloring = color::auto(&mat, 4);
    let cs = ColoredSell::build(&mat, &coloring, 8, 32);
    let norms = mat.row_norms_sq();
    let b = matgen::consistent_rhs(&mat);
    let seq = carp_cg_seq(&mat, &norms, &coloring.order, &b, &CarpOptions::default());
    assert!(seq.converged, "reference failed to converge: {seq:?}");
    assert!(seq.rel_residual < 1e-7);
    let csr_op = SweepMat::Csr {
        mat: &mat,
        coloring: &coloring,
    };
    let sell_op = SweepMat::Sell(&cs);
    for threads in team_ladder() {
        for (fmt, op) in [("csr", &csr_op), ("sell", &sell_op)] {
            let opts = CarpOptions {
                threads,
                ..Default::default()
            };
            let out = carp_cg(op, &norms, &b, &opts);
            assert!(
                out.converged,
                "{fmt} solver did not converge at {threads} threads ({} iters)",
                out.iters
            );
            assert!(
                out.rel_residual < 1e-7,
                "{fmt} residual {} at {threads} threads",
                out.rel_residual
            );
            let dx = out
                .x
                .iter()
                .zip(&seq.x)
                .map(|(a, c)| (a - c).abs())
                .fold(0.0, f64::max);
            assert!(
                dx < 1e-6,
                "{fmt} solution drifted {dx} from reference at {threads} threads"
            );
        }
    }
}

/// With `cancel-var` armed, the convergence exit raises a real
/// `cancel parallel` (reported in the outcome and the runtime stats);
/// disarmed (the `OMP_CANCELLATION` default), the same exit is a plain
/// SPMD break and the solver still converges.
#[test]
fn convergence_exit_cancels_when_armed_breaks_when_not() {
    let n = 240;
    let mat = matgen::banded(n, 3);
    let coloring = color::auto(&mat, 4);
    let norms = mat.row_norms_sq();
    let b = matgen::consistent_rhs(&mat);
    let op = SweepMat::Csr {
        mat: &mat,
        coloring: &coloring,
    };
    let opts = CarpOptions {
        threads: 4,
        ..Default::default()
    };

    {
        let _arm = ArmCancellation::new();
        let before = romp::runtime::stats::stats().snapshot();
        let out = carp_cg(&op, &norms, &b, &opts);
        assert!(out.converged && out.rel_residual < 1e-7, "{out:?}");
        assert!(
            out.cancelled,
            "armed convergence exit must go through omp_cancel!"
        );
        let d = before.delta(&romp::runtime::stats::stats().snapshot());
        assert!(d.cancels_activated >= 1, "{d:?}");
    }

    let prev = romp::runtime::icv::set_cancellation_override(Some(false));
    let out = carp_cg(&op, &norms, &b, &opts);
    romp::runtime::icv::set_cancellation_override(prev);
    assert!(out.converged && out.rel_residual < 1e-7, "{out:?}");
    assert!(
        !out.cancelled,
        "disarmed cancel must report false and fall back to the break"
    );
}
