//! End-to-end translator test: the checked-in annotated fixture must
//! translate exactly to the checked-in golden output, and the golden
//! output must *compile and compute correctly* (it is included below as
//! a real module).

// `rustfmt::skip`: the golden file must stay byte-identical to rompcc
// output; formatting it would break `translation_matches_golden`.
#[rustfmt::skip]
#[path = "fixtures/pi_translated.rs"]
mod translated;

const ANNOTATED: &str = include_str!("fixtures/pi_annotated.rs");
const GOLDEN: &str = include_str!("fixtures/pi_translated.rs");

#[test]
fn translation_matches_golden() {
    let out = romp_pragma::translate(ANNOTATED).expect("fixture translates cleanly");
    assert_eq!(
        out, GOLDEN,
        "rompcc output drifted from the checked-in golden file; \
         regenerate with `cargo run -p romp-pragma --bin rompcc -- \
         tests/fixtures/pi_annotated.rs -o tests/fixtures/pi_translated.rs`"
    );
}

#[test]
fn translated_pi_computes_pi() {
    let pi = translated::compute_pi(2_000_000);
    assert!(
        (pi - std::f64::consts::PI).abs() < 1e-9,
        "translated compute_pi returned {pi}"
    );
}

#[test]
fn translated_histogram_is_exact() {
    let keys: Vec<usize> = (0..100_000).map(|i| i * 7919).collect();
    let bins = 97;
    let hist = translated::histogram(&keys, bins);
    let mut expect = vec![0usize; bins];
    for &k in &keys {
        expect[k % bins] += 1;
    }
    assert_eq!(hist, expect);
    assert_eq!(hist.iter().sum::<usize>(), keys.len());
}

#[test]
fn fixture_has_directives_and_golden_has_none() {
    assert!(romp_pragma::find_directives(ANNOTATED).len() >= 4);
    assert!(romp_pragma::find_directives(GOLDEN).is_empty());
}

#[test]
fn pipeline_stages_on_fixture() {
    let stages = romp_pragma::pipeline_stages(ANNOTATED);
    assert!(stages.contains("stage 1"));
    assert!(stages.contains("ParallelFor"));
    assert!(stages.contains("romp_core::omp_parallel!"));
}
