//! Runtime conformance: the schedule matrix.
//!
//! OpenMP's contract for a worksharing loop is schedule-independent:
//! whatever `schedule` clause is in force, every iteration of the loop
//! runs **exactly once** — no loss, no duplication — for any trip
//! count and any team size. The paper relies on libomp honouring this
//! for its `schedule` clause; this suite pins romp's runtime to the
//! same contract across every `Schedule` variant (`static`,
//! `static,chunk`, `dynamic`, `guided`, `runtime`, `auto`) × chunk
//! size × thread count (1, 2, 4, oversubscribed) × iteration space
//! (empty, single, prime-sized, huge-stride).

use romp::runtime::{fork, icv, omp_set_schedule, ForkSpec, Schedule};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread counts exercised for every (schedule, trip) cell: serial,
/// small teams, and an oversubscribed team (more threads than cores).
fn team_sizes() -> Vec<usize> {
    let mut sizes = vec![1usize, 2, 4, icv::hardware_threads() + 3];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// Trip counts: empty, single-iteration, prime-sized (indivisible by
/// any team size or chunk), and a larger prime.
const TRIPS: &[usize] = &[0, 1, 101, 1009];

/// The full set of schedule variants under test. `Runtime` is covered
/// separately (it resolves through the `run-sched-var` ICV).
fn schedule_matrix() -> Vec<Schedule> {
    let mut m = vec![Schedule::static_block(), Schedule::Auto];
    for chunk in [1u64, 3, 16, 1000] {
        m.push(Schedule::static_chunk(chunk));
        m.push(Schedule::dynamic_chunk(chunk));
        m.push(Schedule::guided_chunk(chunk));
    }
    m
}

/// Run `0..trip` under `sched` on a team of `threads` and assert the
/// exact-partition contract, plus that all work happened inside the
/// requested team.
fn assert_exact_partition(trip: usize, threads: usize, sched: Schedule) {
    let hits: Vec<AtomicU32> = (0..trip).map(|_| AtomicU32::new(0)).collect();
    let total = AtomicUsize::new(0);
    fork(ForkSpec::with_num_threads(threads), |ctx| {
        assert!(ctx.num_threads() >= 1);
        assert!(ctx.thread_num() < ctx.num_threads());
        ctx.ws_for(0..trip, sched, false, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            total.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(
        total.load(Ordering::Relaxed),
        trip,
        "{sched} on {threads} threads: ran {} of {trip} iterations",
        total.load(Ordering::Relaxed)
    );
    for (i, h) in hits.iter().enumerate() {
        let n = h.load(Ordering::Relaxed);
        assert_eq!(
            n, 1,
            "{sched} on {threads} threads: iteration {i} ran {n} times"
        );
    }
}

#[test]
fn schedule_matrix_partitions_exactly() {
    for sched in schedule_matrix() {
        for &threads in &team_sizes() {
            for &trip in TRIPS {
                assert_exact_partition(trip, threads, sched);
            }
        }
    }
}

/// `schedule(runtime)` defers to the `run-sched-var` ICV: whatever that
/// ICV resolves to, the contract must hold. One test covers all
/// resolutions so the global ICV is mutated from a single place.
#[test]
fn runtime_schedule_follows_run_sched_var() {
    let prior = romp::runtime::omp_get_schedule();
    for resolved in [
        Schedule::static_block(),
        Schedule::static_chunk(5),
        Schedule::dynamic_chunk(2),
        Schedule::guided_chunk(3),
        Schedule::Auto,
    ] {
        omp_set_schedule(resolved);
        for &threads in &team_sizes() {
            for &trip in TRIPS {
                assert_exact_partition(trip, threads, Schedule::Runtime);
            }
        }
    }
    omp_set_schedule(prior);
}

/// Huge-stride spaces: `ws_for_step` must hit exactly the arithmetic
/// progression, including steps in the billions (where any chunk
/// arithmetic done in the user's iteration domain would overflow), and
/// negative strides.
#[test]
fn huge_stride_spaces_hit_exact_progression() {
    let step = 1_000_000_007i64; // prime, > 2^29
    let cases: &[(i64, i64, i64)] = &[
        // (start, step, len): end computed as start + len*step.
        (-3_000_000_000, step, 23),
        (0, step, 1),
        (0, step, 0),
        (i64::MIN / 4, step, 17),
        // Negative stride, walking down.
        (3_000_000_000, -step, 23),
        (42, -1, 101),
    ];
    for sched in [
        Schedule::static_block(),
        Schedule::static_chunk(3),
        Schedule::dynamic_chunk(2),
        Schedule::guided(),
        Schedule::Auto,
    ] {
        for &(start, step, len) in cases {
            for &threads in &team_sizes() {
                let end = start + len * step;
                let hits = Mutex::new(Vec::new());
                fork(ForkSpec::with_num_threads(threads), |ctx| {
                    ctx.ws_for_step(start, end, step, sched, false, |i| {
                        hits.lock().unwrap().push(i);
                    });
                });
                let mut got = hits.into_inner().unwrap();
                let mut want: Vec<i64> = (0..len).map(|k| start + k * step).collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(
                    got, want,
                    "{sched} on {threads} threads: stride {step} from {start}"
                );
            }
        }
    }
}

/// `nowait` must not change the partition (only the end-of-loop
/// synchronization): back-to-back nowait loops still cover each space
/// exactly once.
#[test]
fn nowait_loops_still_partition_exactly() {
    for sched in [
        Schedule::static_block(),
        Schedule::static_chunk(7),
        Schedule::dynamic_chunk(3),
        Schedule::guided(),
    ] {
        for &threads in &team_sizes() {
            let a: Vec<AtomicU32> = (0..101).map(|_| AtomicU32::new(0)).collect();
            let b: Vec<AtomicU32> = (0..101).map(|_| AtomicU32::new(0)).collect();
            fork(ForkSpec::with_num_threads(threads), |ctx| {
                ctx.ws_for(0..101, sched, true, |i| {
                    a[i].fetch_add(1, Ordering::Relaxed);
                });
                ctx.ws_for(0..101, sched, true, |i| {
                    b[i].fetch_add(1, Ordering::Relaxed);
                });
                // Rejoin before leaving the region so the asserts below
                // observe completed loops.
                ctx.barrier();
            });
            for hits in [&a, &b] {
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "{sched} on {threads} threads: nowait loop lost/duplicated iterations"
                );
            }
        }
    }
}

/// Chunked schedules must hand bodies chunk-shaped pieces: under
/// `static,c` every thread's chunks (except possibly the last of the
/// whole space) are exactly `c` long, and chunks rotate round-robin.
#[test]
fn static_chunk_geometry() {
    let trip = 101usize;
    for &chunk in &[1u64, 3, 16] {
        for &threads in &team_sizes() {
            let owner: Vec<AtomicU32> = (0..trip).map(|_| AtomicU32::new(u32::MAX)).collect();
            fork(ForkSpec::with_num_threads(threads), |ctx| {
                let t = ctx.thread_num() as u32;
                ctx.ws_for(0..trip, Schedule::static_chunk(chunk), false, |i| {
                    owner[i].store(t, Ordering::Relaxed);
                });
            });
            // Reconstruct ownership and check the round-robin pattern:
            // iteration i belongs to chunk i/c, owned by (i/c) % team.
            let team = owner
                .iter()
                .map(|o| o.load(Ordering::Relaxed))
                .max()
                .unwrap()
                + 1;
            for (i, o) in owner.iter().enumerate() {
                let expect = (i as u64 / chunk) % team as u64;
                assert_eq!(
                    o.load(Ordering::Relaxed) as u64,
                    expect,
                    "static,{chunk} with {team}-thread team: iteration {i} owner"
                );
            }
        }
    }
}

/// Guided schedules must never hand out a chunk smaller than the
/// requested minimum except the final remainder chunk.
#[test]
fn guided_min_chunk_respected() {
    for &min in &[4u64, 10] {
        for &threads in &team_sizes() {
            let sizes = Mutex::new(Vec::new());
            fork(ForkSpec::with_num_threads(threads), |ctx| {
                ctx.ws_for_chunks(0..1009, Schedule::guided_chunk(min), false, |r| {
                    sizes.lock().unwrap().push((r.start, r.len() as u64));
                });
            });
            let mut sizes = sizes.into_inner().unwrap();
            // The chunk covering the end of the space is the only one
            // allowed to undercut the minimum.
            sizes.sort_unstable();
            let covered: u64 = sizes.iter().map(|&(_, n)| n).sum();
            assert_eq!(covered, 1009);
            for (idx, &(_, n)) in sizes.iter().enumerate() {
                if idx + 1 < sizes.len() {
                    assert!(
                        n >= min,
                        "guided,{min} on {threads} threads: interior chunk of {n}"
                    );
                }
            }
        }
    }
}

/// ICV coherence: inside a region, every team thread's
/// `omp_get_schedule` must report the `run-sched-var` the team actually
/// uses for `schedule(runtime)` loops — the master's fork-time value —
/// even though `omp_set_schedule` is an override on the master thread
/// only. Nested regions inherit the same snapshot.
#[test]
fn run_sched_var_coherent_across_team_and_nesting() {
    use romp::runtime::omp_get_schedule;
    let prior = omp_get_schedule();
    let set = Schedule::dynamic_chunk(2);
    omp_set_schedule(set);
    assert_eq!(omp_get_schedule(), set);
    fork(ForkSpec::with_num_threads(4), |ctx| {
        assert_eq!(
            omp_get_schedule(),
            set,
            "thread {} disagrees with the team's run-sched-var",
            ctx.thread_num()
        );
        // A nested (serialized) region forked by any team thread
        // inherits the enclosing team's snapshot, not the worker's own
        // view of the global ICV.
        fork(ForkSpec::new(), |_inner| {
            assert_eq!(omp_get_schedule(), set, "nested region lost run-sched-var");
        });
    });
    omp_set_schedule(prior);
}

/// A worker's own `omp_set_schedule` inside one region must not leak
/// into teams it serves later: each implicit task starts from a fresh
/// data environment.
#[test]
fn worker_tls_overrides_do_not_leak_across_regions() {
    use romp::runtime::omp_get_schedule;
    let leak = Schedule::guided_chunk(9);
    fork(ForkSpec::with_num_threads(4), |ctx| {
        if ctx.thread_num() != 0 {
            // Workers override their own run-sched-var mid-region.
            omp_set_schedule(leak);
            assert_eq!(omp_get_schedule(), leak);
        }
    });
    // New region on the same (pooled) workers: the master did not set
    // anything, so no thread may still see the workers' old override.
    let default = romp::runtime::icv::current().run_sched;
    for _ in 0..5 {
        fork(ForkSpec::with_num_threads(4), |ctx| {
            assert_eq!(
                omp_get_schedule(),
                default,
                "stale omp_set_schedule leaked into thread {} of a later team",
                ctx.thread_num()
            );
        });
    }
}
