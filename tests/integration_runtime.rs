//! Cross-crate integration: runtime behaviours end to end through the
//! facade — nesting, ICVs, stats, tasking patterns, stress.

use romp::prelude::*;
use romp::runtime::{icv, stats, BarrierKind};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn nested_parallelism_when_enabled() {
    icv::with_global_mut(|i| i.max_active_levels = 2);
    let inner_sizes = Mutex::new(Vec::new());
    omp_parallel!(num_threads(2), |outer| {
        let outer_level = outer.level();
        let sizes = &inner_sizes;
        fork(ForkSpec::with_num_threads(2), move |inner| {
            assert_eq!(inner.level(), outer_level + 1);
            sizes.lock().unwrap().push(inner.num_threads());
        });
    });
    icv::with_global_mut(|i| i.max_active_levels = 1);
    let sizes = inner_sizes.into_inner().unwrap();
    // 2 outer threads × their inner teams; each inner region ran with
    // up to 2 threads (may shrink if the pool is saturated).
    assert!(sizes.len() >= 2, "{sizes:?}");
    assert!(sizes.iter().all(|&s| (1..=2).contains(&s)), "{sizes:?}");
}

#[test]
fn dynamic_dispatch_actually_dispatches() {
    let before = stats::stats().snapshot();
    omp_parallel!(num_threads(4), |ctx| {
        omp_for!(
            ctx,
            schedule(dynamic, 1),
            for _i in 0..256 {
                std::hint::black_box(0);
            }
        );
    });
    let after = stats::stats().snapshot();
    let d = before.delta(&after);
    assert!(
        d.dispatched_chunks >= 256,
        "dynamic,1 over 256 iterations must dispatch >= 256 chunks, saw {}",
        d.dispatched_chunks
    );
}

#[test]
fn static_schedule_dispatches_nothing() {
    let before = stats::stats().snapshot();
    let local_sum = AtomicU64::new(0);
    // Run alone-ish: measure delta only of this construct pattern.
    omp_parallel!(num_threads(2), |ctx| {
        omp_for!(ctx, schedule(static), for i in 0..1000 {
            local_sum.fetch_add(i as u64, Ordering::Relaxed);
        });
    });
    let after = stats::stats().snapshot();
    let d = before.delta(&after);
    // Other tests may run concurrently, so allow noise, but a purely
    // static loop itself contributes zero dispatched chunks; verify
    // correctness of the sum regardless.
    assert_eq!(local_sum.load(Ordering::Relaxed), 499_500);
    let _ = d;
}

#[test]
fn tasks_fib_with_taskgroup() {
    // Recursive task decomposition: fib via tasks with a cutoff —
    // the canonical OpenMP tasking example.
    fn fib_serial(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_serial(n - 1) + fib_serial(n - 2)
        }
    }
    let results = Mutex::new(Vec::new());

    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, {
            // Tasks must borrow only 'env data: use an atomic tree sum.
            let total = &results;
            // Spawn one task per top-level split; each computes serially.
            omp_taskgroup!(ctx, {
                for k in 0..8u64 {
                    omp_task!(ctx, {
                        total.lock().unwrap().push((k, fib_serial(12 + (k % 4))));
                    });
                }
            });
            assert_eq!(total.lock().unwrap().len(), 8);
        });
    });
    let got = results.into_inner().unwrap();
    for (k, v) in got {
        assert_eq!(v, fib_serial(12 + (k % 4)));
    }
}

#[test]
fn many_regions_reuse_pool() {
    let spawned_before = stats::stats().snapshot().workers_spawned;
    for _ in 0..100 {
        omp_parallel!(num_threads(3), |_ctx| {});
    }
    let spawned_after = stats::stats().snapshot().workers_spawned;
    assert!(
        spawned_after - spawned_before < 100,
        "100 identical regions must not each spawn a team: {spawned_before} -> {spawned_after}"
    );
}

#[test]
fn barrier_kinds_both_work_end_to_end() {
    for kind in [BarrierKind::Central, BarrierKind::Dissemination] {
        icv::with_global_mut(|i| i.barrier_kind = kind);
        let phase = AtomicUsize::new(0);
        omp_parallel!(num_threads(4), |ctx| {
            phase.fetch_add(1, Ordering::SeqCst);
            omp_barrier!(ctx);
            assert_eq!(phase.load(Ordering::SeqCst), 4, "{kind:?}");
        });
        icv::with_global_mut(|i| i.barrier_kind = BarrierKind::Central);
    }
}

#[test]
fn contended_critical_sections_under_stress() {
    let mut counter = 0u64;
    {
        let addr = &mut counter as *mut u64 as usize;
        omp_parallel!(num_threads(8), |_ctx| {
            for _ in 0..5_000 {
                omp_critical!(stress_counter, {
                    unsafe { *(addr as *mut u64) += 1 };
                });
            }
        });
    }
    assert_eq!(counter, 40_000);
}

#[test]
fn passive_wait_policy_regions_work() {
    use romp::runtime::WaitPolicy;
    icv::with_global_mut(|i| i.wait_policy = WaitPolicy::Passive);
    let sum = AtomicU64::new(0);
    omp_parallel!(num_threads(4), |ctx| {
        omp_for!(
            ctx,
            schedule(dynamic),
            for i in 0..500 {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            }
        );
        omp_barrier!(ctx);
    });
    icv::with_global_mut(|i| i.wait_policy = WaitPolicy::Hybrid);
    assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2);
}

#[test]
fn thread_limit_caps_team_size() {
    let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.thread_limit, 3));
    let sizes = Mutex::new(Vec::new());
    // Request far more than the limit allows.
    omp_parallel!(num_threads(64), |ctx| {
        sizes.lock().unwrap().push(ctx.num_threads());
    });
    icv::with_global_mut(|i| i.thread_limit = prev);
    let sizes = sizes.into_inner().unwrap();
    // thread-limit 3 = at most 2 workers + master (other tests may hold
    // pool workers, so the team can also be smaller).
    assert!(!sizes.is_empty());
    assert!(sizes.iter().all(|&s| s <= 3), "{sizes:?}");
}

#[test]
fn single_copyprivate_broadcasts() {
    let observed = Mutex::new(Vec::new());
    omp_parallel!(num_threads(4), |ctx| {
        let v: u64 = ctx.single_copy(|| 0xDEADBEEF);
        observed.lock().unwrap().push(v);
    });
    let got = observed.into_inner().unwrap();
    assert_eq!(got.len(), 4);
    assert!(got.iter().all(|&v| v == 0xDEADBEEF));
}

#[test]
fn schedule_runtime_respects_icv() {
    romp::runtime::omp_set_schedule(Schedule::dynamic_chunk(2));
    let before = stats::stats().snapshot();
    omp_parallel!(num_threads(2), |ctx| {
        omp_for!(
            ctx,
            schedule(runtime),
            for _i in 0..64 {
                std::hint::black_box(0);
            }
        );
    });
    let after = stats::stats().snapshot();
    assert!(
        before.delta(&after).dispatched_chunks >= 32,
        "schedule(runtime) with run-sched=dynamic,2 must use the dispatcher"
    );
    // Point the run-sched ICV back at the default for later tests on
    // this thread (omp_set_schedule is a per-thread override).
    romp::runtime::omp_set_schedule(Schedule::static_block());
}
