//! Property coverage of the coloring and layout invariants the sparse
//! solvers stand on. `Coloring::validate` re-proves disjointness
//! exactly, but these tests re-derive the claims *independently* (set
//! arithmetic over the raw structures, not the validator), so a bug
//! shared by the construction and the validator cannot hide:
//!
//! * no two rows sharing a column receive the same color;
//! * the colors cover all rows exactly once;
//! * the permuted SELL-C-σ layout visits exactly the same row set as
//!   the CSR reference within every color phase;
//! * the parallel colored sweep stays bitwise equal to the sequential
//!   reference under arbitrary matrices, schedules and team sizes.

use proptest::prelude::*;
use romp::prelude::*;
use romp_sparse::prelude::*;
use romp_sparse::sell::PAD;
use std::collections::{HashMap, HashSet};

/// Number of distinct occurrences of every row index in `order`.
fn occurrence_counts(order: &[usize]) -> HashMap<usize, usize> {
    let mut counts = HashMap::new();
    for &row in order {
        *counts.entry(row).or_insert(0) += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Multicoloring invariant #1, re-proved by hand: within one color
    /// phase no column is touched by two different rows (which is
    /// exactly "rows sharing a column never share a color").
    #[test]
    fn no_two_rows_sharing_a_column_get_one_color(
        n in 8usize..96,
        extra in 0usize..6,
        seed in 1u64..1_000_000,
    ) {
        let mat = matgen::random_sparse(n, extra, seed);
        let coloring = greedy_multicolor(&mat);
        prop_assert_eq!(coloring.validate(&mat), Ok(()));
        prop_assert!(coloring.singleton_blocks());
        let bounds = coloring.phase_boundaries();
        for p in 0..coloring.nphases() {
            // column → the row of this phase that claimed it.
            let mut owner: HashMap<usize, usize> = HashMap::new();
            for &row in &coloring.order[bounds[p]..bounds[p + 1]] {
                let (cols, _) = mat.row(row);
                for &c in cols {
                    if let Some(&other) = owner.get(&c) {
                        prop_assert_eq!(
                            other, row,
                            "rows {} and {} share column {} in color {}",
                            other, row, c, p
                        );
                    }
                    owner.insert(c, row);
                }
            }
        }
    }

    /// Multicoloring invariant #2: the colors partition the rows — every
    /// row of `0..n` appears in exactly one color, and the phase spans
    /// tile the order exactly.
    #[test]
    fn colors_cover_all_rows_exactly_once(
        n in 8usize..96,
        extra in 0usize..6,
        seed in 1u64..1_000_000,
    ) {
        let mat = matgen::random_sparse(n, extra, seed);
        let coloring = greedy_multicolor(&mat);
        let counts = occurrence_counts(&coloring.order);
        prop_assert_eq!(counts.len(), n, "some row is missing");
        prop_assert!(counts.values().all(|&c| c == 1), "some row repeats");
        prop_assert!(counts.keys().all(|&r| r < n), "out-of-range row");
        let bounds = coloring.phase_boundaries();
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(*bounds.last().unwrap(), n);
        prop_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "empty color");
    }

    /// Zoning on banded matrices: when `red_black_zones` accepts a zone
    /// count it validates exactly and still covers every row once; when
    /// it rejects, `auto` falls back to a multicoloring that validates.
    #[test]
    fn zoning_validates_or_auto_falls_back(
        n in 8usize..96,
        half_bw in 1usize..6,
        pairs in 1usize..5,
    ) {
        let mat = matgen::banded(n, half_bw);
        if let Ok(zoned) = red_black_zones(&mat, pairs) {
            prop_assert_eq!(zoned.validate(&mat), Ok(()));
            prop_assert!(zoned.nphases() <= 2);
            let counts = occurrence_counts(&zoned.order);
            prop_assert_eq!(counts.len(), n);
            prop_assert!(counts.values().all(|&c| c == 1));
        }
        let coloring = color::auto(&mat, pairs);
        prop_assert_eq!(coloring.validate(&mat), Ok(()));
    }

    /// SELL-C-σ layout invariant: per color phase, the permuted SELL
    /// sweep visits exactly the same row set as the CSR reference — the
    /// σ-sort may reorder rows *within* a phase segment but can never
    /// move a row across a phase boundary or drop/duplicate one; the
    /// padding lanes account for every slot the rows do not.
    #[test]
    fn sell_visits_the_same_row_set_per_color(
        n in 8usize..96,
        extra in 0usize..6,
        seed in 1u64..1_000_000,
        c_pick in 0usize..4,
        sigma_pick in 0usize..4,
    ) {
        let c = [1usize, 2, 4, 8][c_pick];
        let sigma = [1usize, 4, 16, 64][sigma_pick];
        let mat = matgen::random_sparse(n, extra, seed);
        let coloring = greedy_multicolor(&mat);
        let cs = ColoredSell::build(&mat, &coloring, c, sigma);
        let sell_order = cs.sweep_order();
        let bounds = coloring.phase_boundaries();
        // Whole-matrix cover first: the SELL sweep order is itself a
        // permutation of 0..n.
        let counts = occurrence_counts(&sell_order);
        prop_assert_eq!(counts.len(), n);
        prop_assert!(counts.values().all(|&k| k == 1));
        // Then phase by phase against the CSR reference order.
        for p in 0..coloring.nphases() {
            let span = bounds[p]..bounds[p + 1];
            let csr_rows: HashSet<usize> =
                coloring.order[span.clone()].iter().copied().collect();
            let sell_rows: HashSet<usize> =
                sell_order[span.clone()].iter().copied().collect();
            prop_assert_eq!(
                &sell_rows, &csr_rows,
                "color {} row sets diverge between SELL and CSR", p
            );
            // The same claim read off the raw tiles: the phase's chunk
            // run holds exactly these rows plus padding.
            let (c0, c1) = (
                cs.sell.segment_chunk_ptr[p],
                cs.sell.segment_chunk_ptr[p + 1],
            );
            let mut tile_rows = HashSet::new();
            let mut pad_slots = 0usize;
            for slot in (c0 * cs.sell.c)..(c1 * cs.sell.c) {
                match cs.sell.slot_row[slot] {
                    PAD => pad_slots += 1,
                    row => {
                        prop_assert!(tile_rows.insert(row), "row {} tiled twice", row);
                    }
                }
            }
            prop_assert_eq!(&tile_rows, &csr_rows);
            prop_assert_eq!(tile_rows.len() + pad_slots, (c1 - c0) * cs.sell.c);
        }
    }

    /// The payoff of the invariants above: a colored parallel sweep is
    /// bitwise the sequential sweep, for arbitrary matrices, schedules
    /// and team sizes, forward and backward, CSR and SELL.
    #[test]
    fn colored_sweeps_stay_bitwise_sequential(
        n in 8usize..80,
        extra in 0usize..5,
        seed in 1u64..1_000_000,
        threads in 1usize..5,
        sched_pick in 0usize..4,
        backward in proptest::bool::ANY,
    ) {
        let sched = [
            Schedule::static_block(),
            Schedule::static_chunk(2),
            Schedule::dynamic_chunk(1),
            Schedule::guided(),
        ][sched_pick];
        let dir = if backward { Direction::Backward } else { Direction::Forward };
        let mat = matgen::random_sparse(n, extra, seed);
        let coloring = greedy_multicolor(&mat);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        let x0: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.5 - 1.0).collect();

        let mut want = x0.clone();
        sweep_seq(&mat, &norms, &coloring.order, &mut want, &b, 1.0, dir);
        let mut got = x0.clone();
        sweep_csr_builder(&mat, &norms, &coloring, &mut got, &b, 1.0, dir, threads, sched);
        prop_assert_eq!(got, want, "CSR sweep diverged");

        let cs = ColoredSell::build(&mat, &coloring, 4, 8);
        let mut want_sell = x0.clone();
        sweep_seq(&mat, &norms, &cs.sweep_order(), &mut want_sell, &b, 1.0, dir);
        let mut got_sell = x0.clone();
        cs.sweep_builder(&norms, &mut got_sell, &b, 1.0, dir, threads, sched);
        prop_assert_eq!(got_sell, want_sell, "SELL sweep diverged");
    }
}
