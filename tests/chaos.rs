//! Chaos soak: seeded fault injection across the runtime's decision
//! edges (see `romp_runtime::chaos` for the injection layer itself).
//!
//! The soak arms a randomized [`ChaosPlan`] per iteration and drives a
//! mixed workload — fork/join churn, dependence-graph task storms, a
//! multi-colored KACZ sweep, CARP-CG with the convergence-cancel path
//! armed — then asserts the runtime came back whole:
//!
//! * **No stranded workers**: the pool quiesces to
//!   `idle_workers() == pool_size()` once the iteration's master thread
//!   is gone.
//! * **No leaked tasks**: the task ledger closes —
//!   `spawned == executed + discarded + purged` over the iteration.
//! * **Hot-team leases recycle/evict cleanly** and every post-fault
//!   fork delivers a spec-legal team (exact geometry, distinct thread
//!   numbers).
//!
//! A failing or wedged iteration prints a replayable
//! `ROMP_CHAOS_SEED=<n>` line; exporting that variable re-runs exactly
//! that plan first. `ROMP_CHAOS_ITERS` bounds the iteration count
//! (default 200) so CI stays within budget.
//!
//! The deterministic tests at the bottom pin one regression per fault
//! class with probability-1.0 single-rule plans: panic-in-chunk,
//! cancel-at-barrier, delayed-doorbell, spawn-failure-mid-acquire.

#![cfg(feature = "chaos")]

use romp::runtime::chaos::{self, ChaosPlan, Fault, Site};
use romp::runtime::stats::stats;
use romp::runtime::{fork, icv, pool, ForkSpec, Schedule, TaskDeps};
use romp_sparse::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Arming chaos is process-global, and every scenario below reads
/// stats deltas and/or mutates global ICVs — scenarios must not
/// interleave within this binary.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Wait for every pool worker to return to the idle set. Returns
/// `false` on timeout — a stranded worker (or leaked reservation).
fn quiesce(timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while pool::idle_workers() != pool::pool_size() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// [`assert_geometry`] on a throwaway master thread: with hot teams on,
/// a fork leases workers to the forking thread until it exits, so a
/// geometry probe from a long-lived thread would itself strand workers
/// from [`quiesce`]'s point of view.
fn assert_geometry_fresh(n: usize) {
    std::thread::Builder::new()
        .name("chaos-geometry-probe".into())
        .spawn(move || assert_geometry(n))
        .unwrap()
        .join()
        .unwrap();
}

/// Fork a team of `n` with chaos disarmed and assert exact, spec-legal
/// geometry: the post-fault "runtime still delivers real teams" check.
fn assert_geometry(n: usize) {
    let hits = AtomicUsize::new(0);
    let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    fork(ForkSpec::with_num_threads(n), |ctx| {
        assert_eq!(ctx.num_threads(), n, "team size must be exact");
        hits.fetch_add(1, Ordering::SeqCst);
        seen.lock().unwrap().push(ctx.thread_num());
    });
    assert_eq!(hits.load(Ordering::SeqCst), n, "one body run per thread");
    let mut tn = seen.into_inner().unwrap();
    tn.sort_unstable();
    assert_eq!(tn, (0..n).collect::<Vec<_>>(), "thread numbers 0..n once");
}

// ---------------------------------------------------------------------
// The seeded soak
// ---------------------------------------------------------------------

/// Immutable sparse fixture shared by every soak iteration.
struct Fixture {
    mat: Csr,
    coloring: Coloring,
    norms: Vec<f64>,
    b: Vec<f64>,
}

impl Fixture {
    fn build() -> Self {
        let mat = matgen::random_sparse(96, 4, 20_240_808);
        let coloring = greedy_multicolor(&mat);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        Fixture {
            mat,
            coloring,
            norms,
            b,
        }
    }
}

/// Team width for the chaos workloads: honors the CI matrix's
/// `OMP_NUM_THREADS` (1 and 4 legs) when set, capped so
/// oversubscription noise does not blow the per-iteration deadline.
/// Unset, it pins 4 regardless of core count — an oversubscribed team
/// interleaves *more* adversarially, which is the point here.
fn soak_threads() -> usize {
    if std::env::var_os("OMP_NUM_THREADS").is_some() {
        romp::runtime::omp_get_max_threads().clamp(1, 4)
    } else {
        4
    }
}

/// Fork/join churn: short regions of varying shape with a mid-region
/// barrier. Injected panics unwind out of `fork` and are swallowed
/// here; the post-iteration invariants judge the wreckage.
fn churn_workload(salt: u64, threads: usize) {
    for round in 0..6u64 {
        let n = 1 + ((salt + round) as usize % threads.max(2));
        let _ = catch_unwind(AssertUnwindSafe(|| {
            fork(ForkSpec::with_num_threads(n), |ctx| {
                std::hint::black_box(ctx.thread_num());
                ctx.barrier();
            });
        }));
    }
}

/// Dependence-graph storm: serial `inout` chains plus untracked tasks,
/// left for the implicit region-end barrier (or an abort purge) to
/// retire. Counts are *not* asserted here — under injected panics the
/// runtime may legally purge the tail; the ledger invariant checks
/// that every spawned closure is accounted for.
fn task_graph_workload(threads: usize) {
    let hits = AtomicU64::new(0);
    let token = 0u8;
    let (hits, token) = (&hits, &token);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            if ctx.thread_num() == 0 {
                for _ in 0..24 {
                    ctx.task_depend(TaskDeps::new().inout(token), move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            for _ in 0..8 {
                ctx.task(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
}

/// One multi-colored KACZ sweep on a dynamic schedule (maximum
/// chunk-grab traffic). Results are unchecked: an injected cancel
/// legally truncates the sweep.
fn kacz_workload(fx: &Fixture, threads: usize) {
    let mut x = vec![0.0; fx.mat.n];
    let _ = catch_unwind(AssertUnwindSafe(|| {
        sweep_csr_builder(
            &fx.mat,
            &fx.norms,
            &fx.coloring,
            &mut x,
            &fx.b,
            1.0,
            Direction::Forward,
            threads,
            Schedule::dynamic(),
        );
    }));
}

/// A few CARP-CG iterations with `cancel-var` armed, so injected
/// `CancelCheck` faults exercise the real cancellation machinery the
/// solver's convergence exit uses.
fn carp_workload(fx: &Fixture, threads: usize) {
    let prev = icv::set_cancellation_override(Some(true));
    let op = SweepMat::Csr {
        mat: &fx.mat,
        coloring: &fx.coloring,
    };
    let opts = CarpOptions {
        threads,
        max_iters: 30,
        ..Default::default()
    };
    let _ = catch_unwind(AssertUnwindSafe(|| {
        std::hint::black_box(carp_cg(&op, &fx.norms, &fx.b, &opts));
    }));
    icv::set_cancellation_override(prev);
}

/// Run one seeded iteration: arm, drive the mixed workload on a fresh
/// master thread (its exit also exercises lease release), then check
/// the convergence invariants. Any failure names the seed.
fn soak_iteration(fx: &Arc<Fixture>, seed: u64, deadline: Duration) {
    let before = stats().snapshot();
    let guard = chaos::arm(ChaosPlan::from_seed(seed));

    let fx2 = fx.clone();
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name(format!("chaos-soak-{seed:#x}"))
        .spawn(move || {
            let threads = soak_threads();
            churn_workload(seed, threads);
            task_graph_workload(threads);
            kacz_workload(&fx2, threads);
            carp_workload(&fx2, threads);
            churn_workload(seed ^ 0xFF, threads);
            tx.send(()).ok();
        })
        .unwrap();
    match rx.recv_timeout(deadline) {
        Ok(()) => worker.join().expect("soak master signalled then died"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The master thread itself panicked (the workloads swallow
            // expected chaos panics, so this is a real bug).
            let err = worker.join().unwrap_err();
            eprintln!("ROMP_CHAOS_SEED={seed} # iteration master died; replay with this env var");
            std::panic::resume_unwind(err);
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // A wedged runtime (lost wakeup / stranded join) cannot be
            // unwound past — print the replay line and abort so the
            // harness reports the failure instead of hanging forever.
            eprintln!(
                "ROMP_CHAOS_SEED={seed} # iteration wedged for {deadline:?}; \
                 replay: ROMP_CHAOS_SEED={seed} cargo test --features chaos --test chaos"
            );
            std::process::abort();
        }
    }

    let injected = guard.injected();
    drop(guard); // disarm before judging the wreckage

    // The runtime must come back whole: a clean, exactly-shaped team
    // (run before the quiesce check so its own lease is gone by then).
    assert_geometry_fresh(soak_threads().max(2));

    assert!(
        quiesce(Duration::from_secs(30)),
        "ROMP_CHAOS_SEED={seed} stranded workers: idle {} != pool {} \
         (injected: {injected:?})",
        pool::idle_workers(),
        pool::pool_size(),
    );
    let d = before.delta(&stats().snapshot());
    assert_eq!(
        d.tasks_spawned,
        d.tasks_executed + d.tasks_discarded + d.tasks_purged,
        "ROMP_CHAOS_SEED={seed} task ledger leak: {d:?} (injected: {injected:?})"
    );
}

#[test]
fn seeded_soak_mixed_workloads() {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let iters: u64 = std::env::var("ROMP_CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let base: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let replay: Option<u64> = std::env::var("ROMP_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    eprintln!("chaos soak: {iters} iterations, base seed {base} (replay: {replay:?})");

    let fx = Arc::new(Fixture::build());
    let per_iter = Duration::from_secs(60);
    if let Some(seed) = replay {
        soak_iteration(&fx, seed, per_iter);
    }
    for i in 0..iters {
        soak_iteration(&fx, base.wrapping_add(i), per_iter);
    }
}

// ---------------------------------------------------------------------
// Deterministic per-fault-class regressions (probability-1.0 plans)
// ---------------------------------------------------------------------

/// Run `f` on a dedicated master thread under the suite lock.
fn on_fresh_master(f: impl FnOnce() + Send + 'static) {
    let _g = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::Builder::new()
        .name("chaos-regression-master".into())
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

/// Fault class 1: a panic injected at the chunk-grab edge of a
/// worksharing loop unwinds out of `fork` with the [`chaos::ChaosPanic`]
/// payload, and the very next fork delivers a clean team.
#[test]
fn panic_in_chunk_grab_unwinds_cleanly() {
    on_fresh_master(|| {
        let guard = chaos::arm(
            ChaosPlan::bare(0xC0)
                .with_rule(Site::ChunkGrab, Fault::Panic, 1.0)
                .with_budget(1),
        );
        let err = catch_unwind(AssertUnwindSafe(|| {
            fork(ForkSpec::with_num_threads(4), |ctx| {
                ctx.ws_for(0..256, Schedule::dynamic(), false, |i| {
                    std::hint::black_box(i);
                });
            });
        }))
        .expect_err("the injected chunk-grab panic must propagate to the master");
        assert!(
            err.is::<chaos::ChaosPanic>(),
            "the rethrown payload must be the chaos marker, not a real bug's"
        );
        assert_eq!(guard.injected().panics, 1);
        drop(guard);
        assert_geometry(4);
    });
}

/// Fault class 2: a spurious (armed, self-gating) cancel request at
/// barrier entry cancels the region cooperatively — every thread still
/// reaches the region end, nobody deadlocks in the barrier.
#[test]
fn cancel_at_barrier_releases_the_team() {
    on_fresh_master(|| {
        let prev = icv::set_cancellation_override(Some(true));
        let before = stats().snapshot();
        let guard = chaos::arm(
            ChaosPlan::bare(0xC1)
                .with_rule(Site::CancelCheck, Fault::Cancel, 1.0)
                .with_budget(1),
        );
        let reached = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(4), |ctx| {
            ctx.barrier();
            reached.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(
            reached.load(Ordering::SeqCst),
            4,
            "a cancelled barrier must release every sibling to the region end"
        );
        assert_eq!(guard.injected().cancels, 1);
        drop(guard);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.cancels_activated >= 1,
            "the injected request must activate real cancellation: {d:?}"
        );
        icv::set_cancellation_override(prev);
        assert_geometry(4);
    });
}

/// Fault class 3: delays injected between doorbell prime and ring — the
/// exact schedule that exposes a lost hot-team wakeup — must never
/// wedge a hot fork. (A lost wakeup hangs this test; the CI timeout is
/// the detector, and the seed is right here in the source.)
#[test]
fn delayed_doorbell_does_not_lose_wakeups() {
    on_fresh_master(|| {
        icv::with_global_mut(|i| i.hot_teams = true);
        assert_geometry(4); // build the lease cold, before arming
        let guard = chaos::arm(
            ChaosPlan::bare(0xC2)
                .with_rule(Site::DoorbellPrime, Fault::Delay, 1.0)
                .with_rule(Site::DoorbellRing, Fault::Delay, 1.0)
                .with_rule(Site::Park, Fault::Delay, 1.0)
                .with_budget(64)
                .with_delay(Duration::from_millis(2)),
        );
        for _ in 0..5 {
            assert_geometry(4); // hot forks under stretched wake windows
        }
        assert!(
            guard.injected().delays >= 1,
            "the hot path must actually cross the doorbell sites: {:?}",
            guard.injected()
        );
        drop(guard);
    });
}

/// Fault class 4: a spawn failure injected mid-`Pool::acquire` degrades
/// the fork to a short team (never a panic, never a leaked thread-limit
/// reservation), and the next unchaosed fork is whole again.
#[test]
fn spawn_failure_mid_acquire_degrades_gracefully() {
    on_fresh_master(|| {
        let prev_hot = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, false));
        let before = stats().snapshot();
        let guard = chaos::arm(
            ChaosPlan::bare(0xC3)
                .with_rule(Site::WorkerSpawn, Fault::SpawnFail, 1.0)
                .with_budget(2),
        );
        let ran = AtomicUsize::new(0);
        // 32 is far above anything this binary pools, so real spawn
        // attempts are guaranteed and the first two of them fail.
        fork(ForkSpec::with_num_threads(32), |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        let injected = guard.injected();
        drop(guard);
        let delivered = ran.load(Ordering::SeqCst);
        assert!(
            (1..32).contains(&delivered),
            "the fork must deliver a short but live team: {delivered}"
        );
        assert!(injected.spawn_fails >= 1, "{injected:?}");
        let d = before.delta(&stats().snapshot());
        assert!(
            d.worker_spawn_failures >= 1,
            "the degradation path must be the recorded one: {d:?}"
        );
        // Reservation rollback: the pool can still reach full shape.
        assert_geometry(4);
        icv::with_global_mut(|i| i.hot_teams = prev_hot);
    });
}
