//! Property-based tests over the public API: scheduling exactness,
//! reduction correctness, RNG leapfrogging, sorting, mangling, and
//! parser robustness.

use proptest::prelude::*;
use romp::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every schedule kind covers every iteration exactly once for
    /// arbitrary trip counts and team sizes.
    #[test]
    fn schedules_partition_exactly(
        trip in 0usize..600,
        threads in 1usize..6,
        pick in 0usize..5,
        chunk in 1u64..40,
    ) {
        let sched = match pick {
            0 => Schedule::static_block(),
            1 => Schedule::static_chunk(chunk),
            2 => Schedule::dynamic_chunk(chunk),
            3 => Schedule::guided_chunk(chunk),
            _ => Schedule::Auto,
        };
        let hits: Vec<AtomicU32> = (0..trip).map(|_| AtomicU32::new(0)).collect();
        par_for(0..trip).num_threads(threads).schedule(sched).run(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Parallel reduction equals the serial fold for arbitrary data,
    /// schedules and team sizes (within FP reassociation noise).
    #[test]
    fn reduction_matches_serial_fold(
        data in proptest::collection::vec(-1e6f64..1e6, 0..500),
        threads in 1usize..6,
        dynamic in proptest::bool::ANY,
    ) {
        let sched = if dynamic { Schedule::dynamic_chunk(7) } else { Schedule::static_block() };
        let serial: f64 = data.iter().sum();
        let par = par_for(0..data.len())
            .num_threads(threads)
            .schedule(sched)
            .reduce(SumOp, 0.0, |i, acc| *acc += data[i]);
        prop_assert!((par - serial).abs() <= 1e-6 * (1.0 + serial.abs()));
    }

    /// Integer min/max reductions are exact.
    #[test]
    fn minmax_reductions_exact(
        data in proptest::collection::vec(i64::MIN/2..i64::MAX/2, 1..300),
        threads in 1usize..5,
    ) {
        let lo = par_for(0..data.len()).num_threads(threads)
            .reduce(MinOp, i64::MAX, |i, acc| *acc = (*acc).min(data[i]));
        let hi = par_for(0..data.len()).num_threads(threads)
            .reduce(MaxOp, i64::MIN, |i, acc| *acc = (*acc).max(data[i]));
        prop_assert_eq!(lo, *data.iter().min().unwrap());
        prop_assert_eq!(hi, *data.iter().max().unwrap());
    }

    /// RNG leapfrog: skipping ahead equals stepping, at any offset.
    #[test]
    fn rng_skip_equals_step(n in 0u64..5_000) {
        use romp::npb::rng::{Randlc, SEED_EP};
        let mut stepped = Randlc::new(SEED_EP);
        for _ in 0..n { stepped.next_f64(); }
        let mut skipped = Randlc::new(SEED_EP);
        skipped.skip(n);
        prop_assert_eq!(stepped.state(), skipped.state());
    }

    /// Fortran mangling is idempotent-safe and deterministic.
    #[test]
    fn mangling_properties(name in "[A-Za-z][A-Za-z0-9_]{0,30}") {
        let m = romp::fortran::mangle(&name);
        prop_assert!(m.ends_with('_'));
        prop_assert_eq!(m.to_ascii_lowercase(), m.clone());
        prop_assert_eq!(romp::fortran::mangle(&name), m);
    }

    /// The directive parser never panics on arbitrary input.
    #[test]
    fn directive_parser_total(text in ".{0,120}") {
        let _ = romp::pragma::parse_directive(&text);
    }

    /// The translator never panics on arbitrary "source".
    #[test]
    fn translator_total(src in ".{0,300}") {
        let _ = romp::pragma::translate(&src);
    }

    /// Successful translation consumes every directive: running the
    /// translator on its own output is the identity.
    #[test]
    fn translator_idempotent_on_success(src in "[ -~\n]{0,200}") {
        if let Ok(out) = romp::pragma::translate(&src) {
            prop_assert!(romp::pragma::find_directives(&out).is_empty());
            if let Ok(out2) = romp::pragma::translate(&out) {
                prop_assert_eq!(out2, out);
            }
        }
    }

    /// Worksharing chunks are contiguous, ordered per thread, and the
    /// strided loop hits exactly the arithmetic progression.
    #[test]
    fn strided_loop_exact(
        start in -1000i64..1000,
        len in 0i64..200,
        step in 1i64..17,
        threads in 1usize..5,
    ) {
        let end = start + len * step;
        let hits = std::sync::Mutex::new(Vec::new());
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            ctx.ws_for_step(start, end, step, Schedule::dynamic_chunk(3), false, |i| {
                hits.lock().unwrap().push(i);
            });
        });
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        let want: Vec<i64> = (0..len).map(|k| start + k * step).collect();
        prop_assert_eq!(got, want);
    }

    /// Sections run each block exactly once regardless of team size.
    #[test]
    fn sections_exactly_once(threads in 1usize..6, count in 1usize..12) {
        let hits: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            ctx.sections(count, false, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// IS bucket sort produces a sorted permutation for arbitrary keys
    /// (exercising the same histogram/prefix machinery as the kernel).
    #[test]
    fn counting_sort_invariants(
        keys in proptest::collection::vec(0u32..512, 0..2000),
        threads in 1usize..4,
    ) {
        let max_key = 512usize;
        let counts: Vec<AtomicU32> = (0..max_key).map(|_| AtomicU32::new(0)).collect();
        par_for(0..keys.len()).num_threads(threads).run(|i| {
            counts[keys[i] as usize].fetch_add(1, Ordering::Relaxed);
        });
        let counts: Vec<u32> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        prop_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), keys.len());
        // Reconstructed array is sorted and a permutation.
        let mut sorted = Vec::with_capacity(keys.len());
        for (k, &c) in counts.iter().enumerate() {
            sorted.extend(std::iter::repeat_n(k as u32, c as usize));
        }
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }
}
