//! Hot-team cache conformance.
//!
//! The fork/join fast path caches the master's last team (workers stay
//! bound to doorbells between regions — see `romp_runtime::pool`). That
//! cache must be *observationally invisible*: `omp_get_num_threads`
//! geometry stays exact when `omp_set_num_threads`, `OMP_DYNAMIC`, the
//! wait policy or the barrier algorithm change between back-to-back
//! regions (the team resizes or rebuilds), per-fork ICV snapshots
//! (`schedule(runtime)` resolution, `proc_bind`) are re-taken on every
//! recycle, and a panic inside a region must never poison the cached
//! team — the next fork from the same master rebuilds cleanly.
//!
//! Each scenario runs on its own freshly-spawned thread: the hot-team
//! cache is per master OS thread, so a dedicated thread gives a
//! deterministic cold start and exercises the lease-release-on-exit
//! (TLS drop) path as a bonus. Every scenario holds `ICV_LOCK` for its
//! whole duration — several mutate process-global ICVs (wait policy,
//! `dyn-var`, `hot_teams`) and several assert global stats-counter
//! deltas, so scenarios must not interleave.

use romp::runtime::stats::stats;
use romp::runtime::{
    fork, icv, omp_get_num_threads, omp_get_schedule, omp_set_num_threads, omp_set_schedule,
    BarrierKind, ForkSpec, Schedule, WaitPolicy,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static ICV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` on a dedicated OS thread (its own hot-team cache), holding
/// the suite lock for the whole scenario. The suite is *about* the hot
/// path, so it force-enables it even when the surrounding environment
/// set `ROMP_HOT_TEAMS=0`.
fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
    let _g = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    icv::with_global_mut(|i| i.hot_teams = true);
    std::thread::Builder::new()
        .name("hot-team-test-master".into())
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

/// Fork a team of `n` and assert exact geometry (every thread sees the
/// requested size, all thread numbers distinct).
fn assert_geometry(n: usize) {
    let hits = AtomicUsize::new(0);
    let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    fork(ForkSpec::with_num_threads(n), |ctx| {
        assert_eq!(ctx.num_threads(), n, "team size must be exact");
        assert_eq!(omp_get_num_threads(), n);
        hits.fetch_add(1, Ordering::SeqCst);
        seen.lock().unwrap().push(ctx.thread_num());
    });
    assert_eq!(hits.load(Ordering::SeqCst), n, "one body run per thread");
    let mut tn = seen.into_inner().unwrap();
    tn.sort_unstable();
    assert_eq!(tn, (0..n).collect::<Vec<_>>(), "thread numbers 0..n once");
}

#[test]
fn consecutive_same_shape_regions_hit_the_cache() {
    on_fresh_thread(|| {
        assert_geometry(3); // build
        let before = stats().snapshot();
        for _ in 0..25 {
            assert_geometry(3);
        }
        let d = before.delta(&stats().snapshot());
        // Other test threads can only add hits, never subtract.
        assert!(
            d.hot_team_hits >= 25,
            "same-shape regions must reuse the team (hits: {})",
            d.hot_team_hits
        );
    });
}

#[test]
fn omp_set_num_threads_between_regions_resizes_exactly() {
    on_fresh_thread(|| {
        // Warm a 2-thread team, then steer sizes through the nthreads-var
        // (TLS override — no clause), checking exact geometry each time.
        assert_geometry(2);
        let before = stats().snapshot();
        for &n in &[3usize, 2, 4, 2, 3] {
            omp_set_num_threads(n);
            let sizes = Mutex::new(Vec::new());
            fork(ForkSpec::new(), |ctx| {
                sizes.lock().unwrap().push(ctx.num_threads());
            });
            let sizes = sizes.into_inner().unwrap();
            assert_eq!(sizes.len(), n, "nthreads-var {n} must produce {n} bodies");
            assert!(sizes.iter().all(|&s| s == n));
        }
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes >= 5,
            "five size changes must resize the hot team (resizes: {})",
            d.hot_team_resizes
        );
        // Serialized regions run inline and must NOT evict the lease:
        // n=1 geometry is exact, and the 3-thread team still hits.
        let before = stats().snapshot();
        omp_set_num_threads(1);
        assert_geometry(1);
        omp_set_num_threads(3);
        assert_geometry(3);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes == 0 || d.hot_team_hits >= 1,
            "a serial region must not thrash the multi-thread lease"
        );
    });
}

#[test]
fn resize_reuses_released_workers_synchronously() {
    on_fresh_thread(|| {
        // Warm both shapes, then alternate. A resize drops the lease and
        // immediately re-acquires: the released workers must be back on
        // the idle list by then (synchronous handback), or every resize
        // would spawn fresh OS threads and creep toward thread-limit-var.
        assert_geometry(4);
        assert_geometry(2);
        let before = stats().snapshot();
        for _ in 0..20 {
            assert_geometry(4);
            assert_geometry(2);
        }
        let d = before.delta(&stats().snapshot());
        assert_eq!(
            d.workers_spawned, 0,
            "alternating shapes must reuse released workers"
        );
    });
}

#[test]
fn geometry_stays_exact_across_alternating_shapes() {
    on_fresh_thread(|| {
        for &n in &[1usize, 4, 2, 4, 1, 3, 4, 2] {
            assert_geometry(n);
        }
    });
}

#[test]
fn wait_policy_change_rebuilds_the_team() {
    on_fresh_thread(|| {
        assert_geometry(2);
        assert_geometry(2); // warmed, hitting
        let before = stats().snapshot();
        // Flip to whichever policy differs from the current one (the
        // suite may run under OMP_WAIT_POLICY=passive already).
        let flipped = if icv::current().wait_policy == WaitPolicy::Passive {
            WaitPolicy::Hybrid
        } else {
            WaitPolicy::Passive
        };
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.wait_policy, flipped));
        assert_geometry(2);
        icv::with_global_mut(|i| i.wait_policy = prev);
        assert_geometry(2);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes >= 2,
            "wait-policy flips must rebuild (resizes: {})",
            d.hot_team_resizes
        );
    });
}

#[test]
fn omp_dynamic_change_rebuilds_the_team() {
    on_fresh_thread(|| {
        assert_geometry(2);
        let before = stats().snapshot();
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.dynamic, true));
        assert_geometry(2);
        icv::with_global_mut(|i| i.dynamic = prev);
        assert_geometry(2);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes >= 2,
            "dyn-var flips must rebuild (resizes: {})",
            d.hot_team_resizes
        );
    });
}

#[test]
fn barrier_kind_change_rebuilds_the_team() {
    on_fresh_thread(|| {
        assert_geometry(3);
        let before = stats().snapshot();
        // Flip to whichever kind differs from the current one (the
        // suite may run under ROMP_BARRIER=dissemination already).
        let flipped = if icv::current().barrier_kind == BarrierKind::Dissemination {
            BarrierKind::Central
        } else {
            BarrierKind::Dissemination
        };
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.barrier_kind, flipped));
        // The rebuilt team's barrier must actually work.
        fork(ForkSpec::with_num_threads(3), |ctx| {
            for _ in 0..5 {
                ctx.barrier();
            }
        });
        icv::with_global_mut(|i| i.barrier_kind = prev);
        assert_geometry(3);
        let d = before.delta(&stats().snapshot());
        assert!(d.hot_team_resizes >= 2);
    });
}

#[test]
fn hot_teams_disabled_still_runs_and_releases_the_lease() {
    on_fresh_thread(|| {
        assert_geometry(2); // lease a hot team first
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, false));
        // The next fork drops the lease and serves from the cold pool.
        for _ in 0..5 {
            assert_geometry(2);
        }
        icv::with_global_mut(|i| i.hot_teams = prev);
        assert_geometry(2); // re-leases
    });
}

#[test]
fn panic_does_not_poison_the_cached_team() {
    on_fresh_thread(|| {
        // Warm the cache so the panic tears through a *recycled* team.
        assert_geometry(4);
        assert_geometry(4);
        let before = stats().snapshot();
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(4), |ctx| {
                if ctx.thread_num() == 1 {
                    panic!("hot worker exploded");
                }
                // Siblings park at a barrier; the abort must free them.
                ctx.barrier();
            });
        });
        let payload = r.expect_err("panic must propagate to the master");
        assert_eq!(
            payload.downcast_ref::<&str>().copied().unwrap_or(""),
            "hot worker exploded"
        );
        // The next forks from the same master rebuild cleanly and run
        // green with exact geometry — repeatedly.
        for _ in 0..10 {
            assert_geometry(4);
        }
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_misses >= 1,
            "the panic must invalidate the cache (misses: {})",
            d.hot_team_misses
        );
    });
}

#[test]
fn panic_drops_leftover_tasks_before_fork_returns() {
    use std::sync::atomic::AtomicBool;
    // A panicking region can strand never-run tasks (queued or
    // dependence-stalled). Their closures may borrow the caller's stack
    // frame, so the runtime must drop them on the master before `fork`
    // returns — deferring the drop to whichever worker releases the
    // last team reference would run drop glue against a dead frame.
    on_fresh_thread(|| {
        assert_geometry(3); // warm the hot team
        let dropped = AtomicBool::new(false);
        struct SetOnDrop<'a>(&'a AtomicBool);
        impl Drop for SetOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let token = 0u8;
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(3), |ctx| {
                if ctx.thread_num() == 0 {
                    let guard = SetOnDrop(&dropped);
                    ctx.task_spec(romp::runtime::TaskSpec::new().output(&token), || {
                        panic!("producer exploded");
                    });
                    // Stalled behind the panicking producer; captures a
                    // borrow of the enclosing frame through the guard.
                    ctx.task_spec(romp::runtime::TaskSpec::new().input(&token), move || {
                        drop(guard);
                    });
                }
            });
        });
        assert!(r.is_err(), "producer panic must propagate");
        assert!(
            dropped.load(Ordering::SeqCst),
            "stranded task closures must be dropped before fork returns"
        );
        // The runtime stays usable.
        assert_geometry(3);
    });
}

#[test]
fn panic_storm_never_wedges_the_runtime() {
    on_fresh_thread(|| {
        for round in 0..8 {
            let r = std::panic::catch_unwind(|| {
                fork(ForkSpec::with_num_threads(3), |ctx| {
                    if ctx.thread_num() == round % 3 {
                        panic!("boom");
                    }
                });
            });
            assert!(r.is_err());
            assert_geometry(3);
        }
    });
}

#[test]
fn cancelled_hot_region_is_recycled_not_evicted() {
    // A cancelled region completes normally (cancellation is
    // cooperative, not a panic), so the hot team must survive:
    // `Team::recycle` clears the cancel flags and the next same-shape
    // fork is a hit, reusing the bound workers.
    on_fresh_thread(|| {
        romp::runtime::icv::set_cancellation_override(Some(true));
        assert_geometry(3); // build + verify the lease
        let before = stats().snapshot();
        for round in 0..10 {
            let reached = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(3), |ctx| {
                if ctx.thread_num() == round % 3 {
                    // Leave some never-started tasks behind too: they
                    // must be discarded, not leak into the next region.
                    let r = &reached;
                    ctx.task(move || {
                        let _ = r;
                    });
                    assert!(ctx.cancel(romp::runtime::CancelKind::Parallel));
                } else {
                    // A sibling blocked at a barrier must be released.
                    ctx.barrier();
                }
                reached.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(
                reached.load(Ordering::SeqCst),
                3,
                "round {round}: a thread never reached the region end"
            );
            // The very next fork must deliver a clean, exact team.
            assert_geometry(3);
        }
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_hits >= 20,
            "cancelled regions must recycle the hot team, not tear it down \
             (hits: {}, misses: {}, resizes: {})",
            d.hot_team_hits,
            d.hot_team_misses,
            d.hot_team_resizes
        );
        assert_eq!(
            d.workers_spawned, 0,
            "cancellation must not strand or respawn workers"
        );
        romp::runtime::icv::set_cancellation_override(None);
    });
}

#[test]
fn cancelled_cold_region_leaves_the_pool_sane() {
    // Same stress with hot teams off (the CI matrix also runs this
    // whole file under OMP_WAIT_POLICY=passive and ROMP_HOT_TEAMS=0):
    // a cancelled cold region must return every worker to the pool.
    on_fresh_thread(|| {
        romp::runtime::icv::set_cancellation_override(Some(true));
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, false));
        for round in 0..6 {
            let reached = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(3), |ctx| {
                if ctx.thread_num() == round % 3 {
                    assert!(ctx.cancel(romp::runtime::CancelKind::Parallel));
                } else {
                    ctx.barrier();
                }
                reached.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(reached.load(Ordering::SeqCst), 3, "round {round}");
            assert_geometry(3);
        }
        icv::with_global_mut(|i| i.hot_teams = prev);
        romp::runtime::icv::set_cancellation_override(None);
    });
}

#[test]
fn recycled_team_retakes_the_run_sched_snapshot() {
    on_fresh_thread(|| {
        omp_set_schedule(Schedule::dynamic_chunk(3));
        fork(ForkSpec::with_num_threads(2), |_| {
            assert_eq!(omp_get_schedule(), Schedule::Dynamic { chunk: 3 });
        });
        // Same shape → recycled team; the snapshot must still move.
        omp_set_schedule(Schedule::guided_chunk(2));
        fork(ForkSpec::with_num_threads(2), |_| {
            assert_eq!(omp_get_schedule(), Schedule::Guided { chunk: 2 });
        });
    });
}

#[test]
fn worksharing_state_is_clean_after_recycle() {
    on_fresh_thread(|| {
        // Drive constructs that dirty every recycled subsystem — slots
        // (dynamic loop + single), reduction cells, task deques — then
        // run the exact same region again on the recycled team and
        // check the results are identical.
        for round in 0..6 {
            let sum = AtomicUsize::new(0);
            let singles = AtomicUsize::new(0);
            let tasks = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(4), |ctx| {
                ctx.ws_for(0..100, Schedule::dynamic_chunk(7), false, |i| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
                if ctx.single(false, || ()).is_some() {
                    singles.fetch_add(1, Ordering::Relaxed);
                }
                let r = ctx.reduce_value(romp::runtime::SumOp, 1usize);
                assert_eq!(r, 4);
                ctx.task(|| {
                    tasks.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950, "round {round}");
            assert_eq!(singles.load(Ordering::Relaxed), 1, "round {round}");
            assert_eq!(tasks.load(Ordering::Relaxed), 4, "round {round}");
        }
    });
}
