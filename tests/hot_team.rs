//! Hot-team cache conformance.
//!
//! The fork/join fast path caches the master's last team (workers stay
//! bound to doorbells between regions — see `romp_runtime::pool`). That
//! cache must be *observationally invisible*: `omp_get_num_threads`
//! geometry stays exact when `omp_set_num_threads`, `OMP_DYNAMIC`, the
//! wait policy or the barrier algorithm change between back-to-back
//! regions (the team resizes or rebuilds), per-fork ICV snapshots
//! (`schedule(runtime)` resolution, `proc_bind`) are re-taken on every
//! recycle, and a panic inside a region must never poison the cached
//! team — the next fork from the same master rebuilds cleanly.
//!
//! The second half of the file covers the *hierarchical* cache: nested
//! forks lease one sub-team per (master thread, nesting level), so a
//! warmed 2×2 nest must spawn zero OS threads, survive `proc_bind`
//! changes (placement is re-snapshotted, not part of the cache key),
//! keep the level/ancestor APIs exact at every depth, and confine
//! cancellation to the inner team it was requested in.
//!
//! Each scenario runs on its own freshly-spawned thread: the hot-team
//! cache is per master OS thread, so a dedicated thread gives a
//! deterministic cold start and exercises the lease-release-on-exit
//! (TLS drop) path as a bonus. Every scenario holds `ICV_LOCK` for its
//! whole duration — several mutate process-global ICVs (wait policy,
//! `dyn-var`, `hot_teams`) and several assert global stats-counter
//! deltas, so scenarios must not interleave.

use romp::runtime::stats::stats;
use romp::runtime::{
    fork, icv, omp_get_active_level, omp_get_ancestor_thread_num, omp_get_level,
    omp_get_num_threads, omp_get_proc_bind, omp_get_schedule, omp_get_team_size,
    omp_set_num_threads, omp_set_schedule, BarrierKind, ForkSpec, ProcBind, Schedule, WaitPolicy,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

static ICV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` on a dedicated OS thread (its own hot-team cache), holding
/// the suite lock for the whole scenario. The suite is *about* the hot
/// path, so it force-enables it even when the surrounding environment
/// set `ROMP_HOT_TEAMS=0`.
fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
    let _g = ICV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    icv::with_global_mut(|i| i.hot_teams = true);
    std::thread::Builder::new()
        .name("hot-team-test-master".into())
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

/// Fork a team of `n` and assert exact geometry (every thread sees the
/// requested size, all thread numbers distinct).
fn assert_geometry(n: usize) {
    let hits = AtomicUsize::new(0);
    let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    fork(ForkSpec::with_num_threads(n), |ctx| {
        assert_eq!(ctx.num_threads(), n, "team size must be exact");
        assert_eq!(omp_get_num_threads(), n);
        hits.fetch_add(1, Ordering::SeqCst);
        seen.lock().unwrap().push(ctx.thread_num());
    });
    assert_eq!(hits.load(Ordering::SeqCst), n, "one body run per thread");
    let mut tn = seen.into_inner().unwrap();
    tn.sort_unstable();
    assert_eq!(tn, (0..n).collect::<Vec<_>>(), "thread numbers 0..n once");
}

#[test]
fn consecutive_same_shape_regions_hit_the_cache() {
    on_fresh_thread(|| {
        assert_geometry(3); // build
        let before = stats().snapshot();
        for _ in 0..25 {
            assert_geometry(3);
        }
        let d = before.delta(&stats().snapshot());
        // Other test threads can only add hits, never subtract.
        assert!(
            d.hot_team_hits >= 25,
            "same-shape regions must reuse the team (hits: {})",
            d.hot_team_hits
        );
    });
}

#[test]
fn omp_set_num_threads_between_regions_resizes_exactly() {
    on_fresh_thread(|| {
        // Warm a 2-thread team, then steer sizes through the nthreads-var
        // (TLS override — no clause), checking exact geometry each time.
        assert_geometry(2);
        let before = stats().snapshot();
        for &n in &[3usize, 2, 4, 2, 3] {
            omp_set_num_threads(n);
            let sizes = Mutex::new(Vec::new());
            fork(ForkSpec::new(), |ctx| {
                sizes.lock().unwrap().push(ctx.num_threads());
            });
            let sizes = sizes.into_inner().unwrap();
            assert_eq!(sizes.len(), n, "nthreads-var {n} must produce {n} bodies");
            assert!(sizes.iter().all(|&s| s == n));
        }
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes >= 5,
            "five size changes must resize the hot team (resizes: {})",
            d.hot_team_resizes
        );
        // Serialized regions run inline and must NOT evict the lease:
        // n=1 geometry is exact, and the 3-thread team still hits.
        let before = stats().snapshot();
        omp_set_num_threads(1);
        assert_geometry(1);
        omp_set_num_threads(3);
        assert_geometry(3);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes == 0 || d.hot_team_hits >= 1,
            "a serial region must not thrash the multi-thread lease"
        );
    });
}

#[test]
fn resize_reuses_released_workers_synchronously() {
    on_fresh_thread(|| {
        // Warm both shapes, then alternate. A resize drops the lease and
        // immediately re-acquires: the released workers must be back on
        // the idle list by then (synchronous handback), or every resize
        // would spawn fresh OS threads and creep toward thread-limit-var.
        assert_geometry(4);
        assert_geometry(2);
        let before = stats().snapshot();
        for _ in 0..20 {
            assert_geometry(4);
            assert_geometry(2);
        }
        let d = before.delta(&stats().snapshot());
        assert_eq!(
            d.workers_spawned, 0,
            "alternating shapes must reuse released workers"
        );
    });
}

#[test]
fn geometry_stays_exact_across_alternating_shapes() {
    on_fresh_thread(|| {
        for &n in &[1usize, 4, 2, 4, 1, 3, 4, 2] {
            assert_geometry(n);
        }
    });
}

#[test]
fn wait_policy_change_rebuilds_the_team() {
    on_fresh_thread(|| {
        assert_geometry(2);
        assert_geometry(2); // warmed, hitting
        let before = stats().snapshot();
        // Flip to whichever policy differs from the current one (the
        // suite may run under OMP_WAIT_POLICY=passive already).
        let flipped = if icv::current().wait_policy == WaitPolicy::Passive {
            WaitPolicy::Hybrid
        } else {
            WaitPolicy::Passive
        };
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.wait_policy, flipped));
        assert_geometry(2);
        icv::with_global_mut(|i| i.wait_policy = prev);
        assert_geometry(2);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes >= 2,
            "wait-policy flips must rebuild (resizes: {})",
            d.hot_team_resizes
        );
    });
}

#[test]
fn omp_dynamic_change_rebuilds_the_team() {
    on_fresh_thread(|| {
        assert_geometry(2);
        let before = stats().snapshot();
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.dynamic, true));
        assert_geometry(2);
        icv::with_global_mut(|i| i.dynamic = prev);
        assert_geometry(2);
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_resizes >= 2,
            "dyn-var flips must rebuild (resizes: {})",
            d.hot_team_resizes
        );
    });
}

#[test]
fn barrier_kind_change_rebuilds_the_team() {
    on_fresh_thread(|| {
        assert_geometry(3);
        let before = stats().snapshot();
        // Flip to whichever kind differs from the current one (the
        // suite may run under ROMP_BARRIER=dissemination already).
        let flipped = if icv::current().barrier_kind == BarrierKind::Dissemination {
            BarrierKind::Central
        } else {
            BarrierKind::Dissemination
        };
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.barrier_kind, flipped));
        // The rebuilt team's barrier must actually work.
        fork(ForkSpec::with_num_threads(3), |ctx| {
            for _ in 0..5 {
                ctx.barrier();
            }
        });
        icv::with_global_mut(|i| i.barrier_kind = prev);
        assert_geometry(3);
        let d = before.delta(&stats().snapshot());
        assert!(d.hot_team_resizes >= 2);
    });
}

#[test]
fn hot_teams_disabled_still_runs_and_releases_the_lease() {
    on_fresh_thread(|| {
        assert_geometry(2); // lease a hot team first
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, false));
        // The next fork drops the lease and serves from the cold pool.
        for _ in 0..5 {
            assert_geometry(2);
        }
        icv::with_global_mut(|i| i.hot_teams = prev);
        assert_geometry(2); // re-leases
    });
}

#[test]
fn panic_does_not_poison_the_cached_team() {
    on_fresh_thread(|| {
        // Warm the cache so the panic tears through a *recycled* team.
        assert_geometry(4);
        assert_geometry(4);
        let before = stats().snapshot();
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(4), |ctx| {
                if ctx.thread_num() == 1 {
                    panic!("hot worker exploded");
                }
                // Siblings park at a barrier; the abort must free them.
                ctx.barrier();
            });
        });
        let payload = r.expect_err("panic must propagate to the master");
        assert_eq!(
            payload.downcast_ref::<&str>().copied().unwrap_or(""),
            "hot worker exploded"
        );
        // The next forks from the same master rebuild cleanly and run
        // green with exact geometry — repeatedly.
        for _ in 0..10 {
            assert_geometry(4);
        }
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_misses >= 1,
            "the panic must invalidate the cache (misses: {})",
            d.hot_team_misses
        );
    });
}

#[test]
fn panic_drops_leftover_tasks_before_fork_returns() {
    use std::sync::atomic::AtomicBool;
    // A panicking region can strand never-run tasks (queued or
    // dependence-stalled). Their closures may borrow the caller's stack
    // frame, so the runtime must drop them on the master before `fork`
    // returns — deferring the drop to whichever worker releases the
    // last team reference would run drop glue against a dead frame.
    on_fresh_thread(|| {
        assert_geometry(3); // warm the hot team
        let dropped = AtomicBool::new(false);
        struct SetOnDrop<'a>(&'a AtomicBool);
        impl Drop for SetOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let token = 0u8;
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(3), |ctx| {
                if ctx.thread_num() == 0 {
                    let guard = SetOnDrop(&dropped);
                    ctx.task_spec(romp::runtime::TaskSpec::new().output(&token), || {
                        panic!("producer exploded");
                    });
                    // Stalled behind the panicking producer; captures a
                    // borrow of the enclosing frame through the guard.
                    ctx.task_spec(romp::runtime::TaskSpec::new().input(&token), move || {
                        drop(guard);
                    });
                }
            });
        });
        assert!(r.is_err(), "producer panic must propagate");
        assert!(
            dropped.load(Ordering::SeqCst),
            "stranded task closures must be dropped before fork returns"
        );
        // The runtime stays usable.
        assert_geometry(3);
    });
}

#[test]
fn panic_storm_never_wedges_the_runtime() {
    on_fresh_thread(|| {
        for round in 0..8 {
            let r = std::panic::catch_unwind(|| {
                fork(ForkSpec::with_num_threads(3), |ctx| {
                    if ctx.thread_num() == round % 3 {
                        panic!("boom");
                    }
                });
            });
            assert!(r.is_err());
            assert_geometry(3);
        }
    });
}

/// One per spawned task closure; `Drop` bumps the shared counter
/// whether the closure ran to completion, unwound, or was purged
/// without ever running.
struct DropToken(Arc<AtomicUsize>);
impl Drop for DropToken {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn panicked_hot_join_drops_every_env_borrowing_task_closure() {
    // A worker-side panic aborts the hot join while deferred tasks that
    // borrow the master's stack (`'env`) are still queued. The fork
    // must not return (unwind) to the master until every one of those
    // closures has been destroyed — executed, unwound, or purged — or
    // the borrow it holds would dangle the moment `data` drops below.
    on_fresh_thread(|| {
        for round in 0..6 {
            let dropped = Arc::new(AtomicUsize::new(0));
            let created = AtomicUsize::new(0);
            let data = vec![round; 64]; // the 'env borrow target
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fork(ForkSpec::with_num_threads(4), |ctx| {
                    for _ in 0..8 {
                        let token = DropToken(dropped.clone());
                        created.fetch_add(1, Ordering::SeqCst);
                        let d = &data;
                        ctx.task(move || {
                            assert_eq!(d[0], round);
                            let _keep = &token;
                        });
                    }
                    // A *worker* (never thread 0) panics: the master is
                    // parked in the hot join when the abort lands.
                    if ctx.thread_num() == 1 + (round % 3) {
                        panic!("injected worker-side abort");
                    }
                });
            }));
            assert!(r.is_err(), "round {round}: the panic must propagate");
            assert_eq!(
                dropped.load(Ordering::SeqCst),
                created.load(Ordering::SeqCst),
                "round {round}: every task closure must be dropped before \
                 fork returns (leaked closures still borrow the dead frame)"
            );
            drop(data); // the borrow has provably ended
                        // The same master's next fork delivers a clean team.
            assert_geometry(4);
        }
    });
}

#[test]
fn cancelled_hot_region_is_recycled_not_evicted() {
    // A cancelled region completes normally (cancellation is
    // cooperative, not a panic), so the hot team must survive:
    // `Team::recycle` clears the cancel flags and the next same-shape
    // fork is a hit, reusing the bound workers.
    on_fresh_thread(|| {
        romp::runtime::icv::set_cancellation_override(Some(true));
        assert_geometry(3); // build + verify the lease
        let before = stats().snapshot();
        for round in 0..10 {
            let reached = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(3), |ctx| {
                if ctx.thread_num() == round % 3 {
                    // Leave some never-started tasks behind too: they
                    // must be discarded, not leak into the next region.
                    let r = &reached;
                    ctx.task(move || {
                        let _ = r;
                    });
                    assert!(ctx.cancel(romp::runtime::CancelKind::Parallel));
                } else {
                    // A sibling blocked at a barrier must be released.
                    ctx.barrier();
                }
                reached.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(
                reached.load(Ordering::SeqCst),
                3,
                "round {round}: a thread never reached the region end"
            );
            // The very next fork must deliver a clean, exact team.
            assert_geometry(3);
        }
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_hits >= 20,
            "cancelled regions must recycle the hot team, not tear it down \
             (hits: {}, misses: {}, resizes: {})",
            d.hot_team_hits,
            d.hot_team_misses,
            d.hot_team_resizes
        );
        assert_eq!(
            d.workers_spawned, 0,
            "cancellation must not strand or respawn workers"
        );
        romp::runtime::icv::set_cancellation_override(None);
    });
}

#[test]
fn cancelled_cold_region_leaves_the_pool_sane() {
    // Same stress with hot teams off (the CI matrix also runs this
    // whole file under OMP_WAIT_POLICY=passive and ROMP_HOT_TEAMS=0):
    // a cancelled cold region must return every worker to the pool.
    on_fresh_thread(|| {
        romp::runtime::icv::set_cancellation_override(Some(true));
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.hot_teams, false));
        for round in 0..6 {
            let reached = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(3), |ctx| {
                if ctx.thread_num() == round % 3 {
                    assert!(ctx.cancel(romp::runtime::CancelKind::Parallel));
                } else {
                    ctx.barrier();
                }
                reached.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(reached.load(Ordering::SeqCst), 3, "round {round}");
            assert_geometry(3);
        }
        icv::with_global_mut(|i| i.hot_teams = prev);
        romp::runtime::icv::set_cancellation_override(None);
    });
}

#[test]
fn recycled_team_retakes_the_run_sched_snapshot() {
    on_fresh_thread(|| {
        omp_set_schedule(Schedule::dynamic_chunk(3));
        fork(ForkSpec::with_num_threads(2), |_| {
            assert_eq!(omp_get_schedule(), Schedule::Dynamic { chunk: 3 });
        });
        // Same shape → recycled team; the snapshot must still move.
        omp_set_schedule(Schedule::guided_chunk(2));
        fork(ForkSpec::with_num_threads(2), |_| {
            assert_eq!(omp_get_schedule(), Schedule::Guided { chunk: 2 });
        });
    });
}

// ---------------------------------------------------------------------------
// Hierarchical cache: nested forks, placement, level APIs, cancellation.
// ---------------------------------------------------------------------------

/// A synthetic four-place list (`{0},{1},{2},{3}`). Partition geometry
/// is computed from the list alone, so these tests stay exact even on a
/// one-CPU container where binding to CPUs 1–3 degrades gracefully.
fn four_places() -> Arc<Vec<Vec<usize>>> {
    Arc::new((0..4).map(|c| vec![c]).collect())
}

#[test]
fn hot_reuse_survives_proc_bind_change() {
    // Placement is deliberately NOT part of the hot-team cache key: the
    // fork snapshot (and with it the place partition) is rewritten on
    // every recycle. A bind change between same-shape regions must
    // therefore still hit, while the *reported* bind and the partition
    // each thread inherits move to the new policy.
    on_fresh_thread(|| {
        let prev_p = icv::set_places_override(Some(four_places()));
        let prev_b = icv::set_proc_bind_override(Some(vec![ProcBind::Spread]));
        fork(ForkSpec::with_num_threads(2), |ctx| {
            assert_eq!(omp_get_proc_bind(), ProcBind::Spread);
            // Spread splits the four places into disjoint halves.
            let want = if ctx.thread_num() == 0 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            assert_eq!(ctx.place_partition(), want);
        });
        let before = stats().snapshot();
        icv::set_proc_bind_override(Some(vec![ProcBind::Close]));
        fork(ForkSpec::with_num_threads(2), |ctx| {
            assert_eq!(omp_get_proc_bind(), ProcBind::Close);
            // Close keeps the master's whole partition for everyone and
            // packs threads onto consecutive places.
            assert_eq!(ctx.place_partition(), vec![0, 1, 2, 3]);
            assert_eq!(ctx.place_num(), Some(ctx.thread_num()));
        });
        let d = before.delta(&stats().snapshot());
        assert!(
            d.hot_team_hits >= 1,
            "a bind change must not evict the lease (hits: {}, misses: {})",
            d.hot_team_hits,
            d.hot_team_misses
        );
        assert_eq!(
            d.workers_spawned, 0,
            "re-pinning must reuse the bound workers"
        );
        icv::set_proc_bind_override(prev_b);
        icv::set_places_override(prev_p);
    });
}

#[test]
fn spread_team_workers_inherit_disjoint_place_partitions() {
    on_fresh_thread(|| {
        let prev_p = icv::set_places_override(Some(four_places()));
        let prev_b = icv::set_proc_bind_override(Some(vec![ProcBind::Spread]));
        let parts: Mutex<Vec<Vec<usize>>> = Mutex::new(Vec::new());
        fork(ForkSpec::with_num_threads(2), |ctx| {
            parts.lock().unwrap().push(ctx.place_partition());
        });
        let parts = parts.into_inner().unwrap();
        assert_eq!(parts.len(), 2);
        assert!(
            parts.iter().all(|p| p.len() == 2),
            "balanced halves: {parts:?}"
        );
        // Covering every place exactly once == disjoint + complete.
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![0, 1, 2, 3],
            "partitions must tile the place list: {parts:?}"
        );
        icv::set_proc_bind_override(prev_b);
        icv::set_places_override(prev_p);
    });
}

/// Run a 2×2 nest `rounds` times, asserting exact inner geometry.
fn run_2x2_nest(rounds: usize) {
    for _ in 0..rounds {
        let inner_bodies = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(2), |_| {
            fork(ForkSpec::with_num_threads(2), |ctx| {
                assert_eq!(ctx.num_threads(), 2);
                assert_eq!(omp_get_level(), 2);
                assert_eq!(omp_get_active_level(), 2);
                inner_bodies.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(
            inner_bodies.load(Ordering::SeqCst),
            4,
            "2 teams x 2 threads"
        );
    }
}

#[test]
fn warmed_nested_forks_spawn_no_new_threads() {
    // The headline property of the hierarchical cache: once the team
    // *tree* is warm (outer team + one sub-team per outer thread), a
    // 2×2 nested fork touches no OS thread creation at all — every
    // inner fork is answered from the forking thread's own lease.
    on_fresh_thread(|| {
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.max_active_levels, 2));
        run_2x2_nest(3); // warm the whole tree
        let before = stats().snapshot();
        run_2x2_nest(20);
        let d = before.delta(&stats().snapshot());
        icv::with_global_mut(|i| i.max_active_levels = prev);
        assert_eq!(
            d.workers_spawned, 0,
            "warmed nested forks must spawn zero OS threads"
        );
        assert!(
            d.hot_team_nested_hits >= 40,
            "every inner fork (2 per round) must be served from the lease tree \
             (nested hits: {}, nested misses: {})",
            d.hot_team_nested_hits,
            d.hot_team_nested_misses
        );
    });
}

/// Walk a 2×2 nest (plus one serialized level-3 fork) asserting the
/// level/ancestor/team-size APIs return exact values at every depth.
/// Requires `max-active-levels >= 2`.
fn assert_level_apis_through_a_2x2_nest() {
    assert_eq!(omp_get_level(), 0);
    assert_eq!(omp_get_active_level(), 0);
    assert_eq!(omp_get_ancestor_thread_num(0), Some(0));
    assert_eq!(omp_get_team_size(0), Some(1));
    assert_eq!(omp_get_ancestor_thread_num(1), None);
    fork(ForkSpec::with_num_threads(2), |octx| {
        let outer_tn = octx.thread_num();
        assert_eq!(omp_get_level(), 1);
        assert_eq!(omp_get_active_level(), 1);
        assert_eq!(omp_get_ancestor_thread_num(0), Some(0));
        assert_eq!(omp_get_ancestor_thread_num(1), Some(outer_tn));
        assert_eq!(omp_get_ancestor_thread_num(2), None);
        assert_eq!(omp_get_team_size(0), Some(1));
        assert_eq!(omp_get_team_size(1), Some(2));
        assert_eq!(omp_get_team_size(2), None);
        fork(ForkSpec::with_num_threads(2), |ictx| {
            let inner_tn = ictx.thread_num();
            assert_eq!(omp_get_level(), 2);
            assert_eq!(omp_get_active_level(), 2);
            assert_eq!(omp_get_ancestor_thread_num(0), Some(0));
            assert_eq!(omp_get_ancestor_thread_num(1), Some(outer_tn));
            assert_eq!(omp_get_ancestor_thread_num(2), Some(inner_tn));
            assert_eq!(omp_get_ancestor_thread_num(3), None);
            assert_eq!(omp_get_team_size(1), Some(2));
            assert_eq!(omp_get_team_size(2), Some(2));
            // One level past max-active-levels: the fork serializes
            // (team of one) but still nests — the level counter moves,
            // the active-level counter does not.
            fork(ForkSpec::with_num_threads(2), |sctx| {
                assert_eq!(sctx.num_threads(), 1);
                assert_eq!(omp_get_level(), 3);
                assert_eq!(omp_get_active_level(), 2);
                assert_eq!(omp_get_ancestor_thread_num(1), Some(outer_tn));
                assert_eq!(omp_get_ancestor_thread_num(2), Some(inner_tn));
                assert_eq!(omp_get_ancestor_thread_num(3), Some(0));
                assert_eq!(omp_get_team_size(3), Some(1));
            });
        });
    });
}

#[test]
fn level_apis_are_exact_on_the_nested_hot_path() {
    on_fresh_thread(|| {
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.max_active_levels, 2));
        // Twice: the first walk builds the team tree cold, the second
        // runs entirely on recycled leases — the hit path re-derives
        // nothing, so its geometry must be just as exact.
        assert_level_apis_through_a_2x2_nest();
        assert_level_apis_through_a_2x2_nest();
        icv::with_global_mut(|i| i.max_active_levels = prev);
    });
}

#[test]
fn level_apis_are_exact_with_hot_teams_disabled() {
    on_fresh_thread(|| {
        let (prev_hot, prev_mal) = icv::with_global_mut(|i| {
            (
                std::mem::replace(&mut i.hot_teams, false),
                std::mem::replace(&mut i.max_active_levels, 2),
            )
        });
        assert_level_apis_through_a_2x2_nest();
        assert_level_apis_through_a_2x2_nest();
        icv::with_global_mut(|i| {
            i.hot_teams = prev_hot;
            i.max_active_levels = prev_mal;
        });
    });
}

#[test]
fn inner_cancel_does_not_poison_the_outer_team() {
    // `cancel parallel` is scoped to the innermost region: the inner
    // team winds down early, but the *outer* region's barrier and the
    // whole lease tree must come through unscathed — cancellation is
    // cooperative completion, not a panic.
    on_fresh_thread(|| {
        let (prev_mal, prev_cancel) = icv::with_global_mut(|i| {
            (
                std::mem::replace(&mut i.max_active_levels, 2),
                std::mem::replace(&mut i.cancellation, true),
            )
        });
        run_2x2_nest(2); // warm the tree
        let before = stats().snapshot();
        for round in 0..8 {
            let inner_done = AtomicUsize::new(0);
            let outer_done = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(2), |octx| {
                fork(ForkSpec::with_num_threads(2), |ictx| {
                    if ictx.thread_num() == round % 2 {
                        assert!(ictx.cancel(romp::runtime::CancelKind::Parallel));
                    } else {
                        // Blocked at the inner barrier; the cancel must
                        // release it without touching the outer team.
                        ictx.barrier();
                    }
                    inner_done.fetch_add(1, Ordering::SeqCst);
                });
                octx.barrier();
                outer_done.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(inner_done.load(Ordering::SeqCst), 4, "round {round}");
            assert_eq!(outer_done.load(Ordering::SeqCst), 2, "round {round}");
        }
        let d = before.delta(&stats().snapshot());
        icv::with_global_mut(|i| {
            i.max_active_levels = prev_mal;
            i.cancellation = prev_cancel;
        });
        assert_eq!(
            d.workers_spawned, 0,
            "cancelled inner regions must recycle their sub-teams"
        );
    });
}

#[test]
fn nested_dependence_tasks_drain_before_inner_join() {
    // Dependence-ordered tasks spawned at level 2 must run in order and
    // be fully drained by the *inner* join — the outer region observes
    // the completed chain immediately after the inner fork returns.
    on_fresh_thread(|| {
        let prev = icv::with_global_mut(|i| std::mem::replace(&mut i.max_active_levels, 2));
        for _ in 0..4 {
            let chains = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(2), |_| {
                let stamp = AtomicUsize::new(0);
                let token = 0u8;
                fork(ForkSpec::with_num_threads(2), |ictx| {
                    if ictx.thread_num() == 0 {
                        let s = &stamp;
                        ictx.task_spec(romp::runtime::TaskSpec::new().output(&token), move || {
                            s.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                                .expect("producer must run first");
                        });
                        ictx.task_spec(romp::runtime::TaskSpec::new().input(&token), move || {
                            s.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                                .expect("consumer must run after the producer");
                        });
                    }
                });
                assert_eq!(
                    stamp.load(Ordering::SeqCst),
                    2,
                    "the inner join must have drained the dependence chain"
                );
                chains.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(chains.load(Ordering::SeqCst), 2);
        }
        icv::with_global_mut(|i| i.max_active_levels = prev);
    });
}

#[test]
fn worksharing_state_is_clean_after_recycle() {
    on_fresh_thread(|| {
        // Drive constructs that dirty every recycled subsystem — slots
        // (dynamic loop + single), reduction cells, task deques — then
        // run the exact same region again on the recycled team and
        // check the results are identical.
        for round in 0..6 {
            let sum = AtomicUsize::new(0);
            let singles = AtomicUsize::new(0);
            let tasks = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(4), |ctx| {
                ctx.ws_for(0..100, Schedule::dynamic_chunk(7), false, |i| {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
                if ctx.single(false, || ()).is_some() {
                    singles.fetch_add(1, Ordering::Relaxed);
                }
                let r = ctx.reduce_value(romp::runtime::SumOp, 1usize);
                assert_eq!(r, 4);
                ctx.task(|| {
                    tasks.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950, "round {round}");
            assert_eq!(singles.load(Ordering::Relaxed), 1, "round {round}");
            assert_eq!(tasks.load(Ordering::Relaxed), 4, "round {round}");
        }
    });
}
