//! Fixture: the cancellation-driven first-match search written with
//! `//#omp` comment directives, translated by `rompcc` into
//! `search_translated.rs` (checked in; the translator test asserts the
//! translation is reproduced byte-for-byte, and the translated module
//! is compiled and must produce results identical to the macro and
//! builder front ends).

use std::sync::atomic::{AtomicUsize, Ordering};

/// First index whose 4-byte window equals `needle` — exact under the
/// dynamic schedule's monotone chunk dispatch (see `romp_npb::search`).
/// The caller arms cancellation (`ArmCancellation`) around the call.
pub fn first_match(hay: &[u8], needle: &[u8; 4], threads: usize) -> usize {
    let found = AtomicUsize::new(usize::MAX);
    let last = hay.len() - 3;
    {
        let found = &found;
        //#omp parallel num_threads(threads)
        {
            //#omp for schedule(dynamic, 512)
            for i in 0..last {
                if hay[i..i + 4] == needle[..] {
                    found.fetch_min(i, Ordering::Relaxed);
                    //#omp cancel for
                }
                //#omp cancellation point for
            }
        }
    }
    found.load(Ordering::Relaxed)
}
