//! Fixture: one multi-colored Kaczmarz sweep written with `//#omp`
//! comment directives, translated by `rompcc` into
//! `kacz_translated.rs` (checked in; the translator test asserts the
//! translation is reproduced byte-for-byte, and the translated module
//! must produce results bitwise identical to the sequential reference
//! and the other two front ends).

use romp_core::slice::SharedSlice;

/// One forward KACZ sweep over raw CSR arrays in multicolor order:
/// `order[phase_ptr[p]..phase_ptr[p + 1]]` lists the rows of color `p`,
/// pairwise column-disjoint, so the worksharing loop's interleaving
/// cannot change the result bitwise. One parallel region per color
/// phase; the `schedule(runtime)` loop resolves through the
/// `run-sched-var` ICV (`OMP_SCHEDULE=auto` hands it to the tuner).
#[allow(clippy::too_many_arguments)]
pub fn kacz_sweep_colored(
    rowptr: &[usize],
    cols: &[usize],
    vals: &[f64],
    norms: &[f64],
    order: &[usize],
    phase_ptr: &[usize],
    x: &SharedSlice<'_, f64>,
    b: &[f64],
    omega: f64,
    threads: usize,
) {
    for p in 0..phase_ptr.len() - 1 {
        let base = phase_ptr[p];
        let width = phase_ptr[p + 1] - base;
        romp_core::omp_parallel!(num_threads(threads), |__omp_ctx_0| {
            romp_core::omp_for!(__omp_ctx_0, schedule(runtime), site("rompcc:34"), for u in (0..width) {
                let row = order[base + u];
                let nrm = norms[row];
                if nrm != 0.0 {
                    let lo = rowptr[row];
                    let hi = rowptr[row + 1];
                    let mut dot = 0.0;
                    for j in lo..hi {
                        dot += vals[j] * unsafe { x.read(cols[j]) };
                    }
                    let scale = omega * (b[row] - dot) / nrm;
                    for j in lo..hi {
                        let c = cols[j];
                        unsafe { x.write(c, x.read(c) + scale * vals[j]) };
                    }
                }
            });
        });
    }
}
