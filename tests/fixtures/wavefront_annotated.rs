//! Fixture: the blocked-wavefront task graph written with `//#omp`
//! comment directives, translated by `rompcc` into
//! `wavefront_translated.rs` (checked in; the translator test asserts
//! the translation is reproduced byte-for-byte, and the translated
//! module is compiled and must produce results identical to the macro
//! and builder front ends).

use romp_core::slice::SharedSlice;
use romp_npb::sw;
use romp_npb::Class;

/// Smith-Waterman-style blocked wavefront: block `(bi, bj)` is one
/// task depending on its north and west neighbours through dependence
/// tokens (halo-padded so edge blocks need no special cases).
pub fn wavefront(class: Class, threads: usize) -> i64 {
    let (n, m, block) = sw::dims(class);
    let nbi = n.div_ceil(block);
    let nbj = m.div_ceil(block);
    let (a, b) = sw::sequences(class);
    let mut h = vec![0i64; (n + 1) * (m + 1)];
    let tokens = vec![0u8; (nbi + 1) * (nbj + 1)];
    {
        let view = SharedSlice::new(&mut h);
        let view = &view;
        let a = &a;
        let b = &b;
        let tokens = &tokens;
        //#omp parallel num_threads(threads)
        {
            //#omp single nowait
            {
                for bi in 0..nbi {
                    for bj in 0..nbj {
                        let i0 = 1 + bi * block;
                        let j0 = 1 + bj * block;
                        let ri = (i0, (i0 + block).min(n + 1));
                        let rj = (j0, (j0 + block).min(m + 1));
                        let me = (bi + 1) * (nbj + 1) + (bj + 1);
                        let up = me - (nbj + 1);
                        let left = me - 1;
                        //#omp task depend(in: tokens[up], tokens[left]) depend(out: tokens[me])
                        {
                            sw::process_block(view, a, b, ri, rj);
                        }
                    }
                }
            }
        }
    }
    sw::checksum(&h)
}
