//! Fixture: a directive-annotated source file, translated by `rompcc`
//! into `pi_translated.rs` (checked in; the translator test asserts the
//! translation is reproduced byte-for-byte, and the translated module
//! is compiled and executed by the same test).

/// Midpoint-rule integration of 4/(1+x^2) over [0,1].
pub fn compute_pi(n: usize) -> f64 {
    let h = 1.0 / n as f64;
    let mut sum = 0.0f64;
    //#omp parallel for schedule(static) reduction(+ : sum)
    for i in 0..n {
        let x = h * (i as f64 + 0.5);
        sum += 4.0 / (1.0 + x * x);
    }
    sum * h
}

/// Histogram with a region, a dynamic worksharing loop and a critical
/// merge — the general shape of ported OpenMP codes.
pub fn histogram(keys: &[usize], bins: usize) -> Vec<usize> {
    let merged = std::sync::Mutex::new(vec![0usize; bins]);
    //#omp parallel default(shared)
    {
        let mut local = vec![0usize; bins];
        //#omp for schedule(dynamic, 64) nowait
        for i in 0..keys.len() {
            local[keys[i] % bins] += 1;
        }
        //#omp critical (hist_merge)
        {
            let mut m = merged.lock().unwrap();
            for b in 0..bins {
                m[b] += local[b];
            }
        }
    }
    merged.into_inner().unwrap()
}
