//! Task-dependence-graph end-to-end tests: the three directive front
//! ends (macro, builder, `//#omp` translator) must produce identical,
//! verified wavefront results on every team shape, and randomly
//! generated dependence sets must always execute in a legal topological
//! order, exactly once, under work stealing and on the serial
//! `if(false)` path.

// `rustfmt::skip`: the golden file must stay byte-identical to rompcc
// output; formatting it would break `wavefront_translation_matches_golden`.
#[rustfmt::skip]
#[path = "fixtures/wavefront_translated.rs"]
mod translated;

use proptest::prelude::*;
use romp::prelude::*;
use romp_npb::sw;
use romp_npb::Class;
use std::sync::atomic::{AtomicUsize, Ordering};

const ANNOTATED: &str = include_str!("fixtures/wavefront_annotated.rs");
const GOLDEN: &str = include_str!("fixtures/wavefront_translated.rs");

#[test]
fn wavefront_translation_matches_golden() {
    let out = romp_pragma::translate(ANNOTATED).expect("wavefront fixture translates cleanly");
    assert_eq!(
        out, GOLDEN,
        "rompcc output drifted from tests/fixtures/wavefront_translated.rs; \
         regenerate with `cargo run -p romp-pragma --bin rompcc -- \
         tests/fixtures/wavefront_annotated.rs -o tests/fixtures/wavefront_translated.rs`"
    );
}

/// The acceptance bar of the tasking refactor: macro, builder and
/// translator front ends produce bit-identical, verified results at
/// 1/2/4/oversubscribed threads.
#[test]
fn wavefront_front_ends_agree_at_every_team_shape() {
    let want = sw::expected_checksum(Class::S);
    let oversubscribed = 2 * romp::runtime::omp_get_num_procs().max(2);
    for threads in [1, 2, 4, oversubscribed] {
        assert_eq!(
            sw::compute_tasks_macro(Class::S, threads),
            want,
            "macro front end diverged at {threads} threads"
        );
        assert_eq!(
            sw::compute_tasks_builder(Class::S, threads),
            want,
            "builder front end diverged at {threads} threads"
        );
        assert_eq!(
            translated::wavefront(Class::S, threads),
            want,
            "translated front end diverged at {threads} threads"
        );
    }
}

/// One splitmix64 step — the deterministic source of the random
/// dependence sets below (reproducible per proptest case).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Per-task dependence choice derived from the seed stream.
struct TaskPlan {
    ins: Vec<usize>,
    outs: Vec<usize>,
    undeferred: bool,
}

fn make_plans(seed: u64, ntasks: usize, naddr: usize, with_undeferred: bool) -> Vec<TaskPlan> {
    let mut s = seed | 1;
    (0..ntasks)
        .map(|_| {
            let r = splitmix(&mut s);
            TaskPlan {
                ins: (0..naddr).filter(|a| (r >> a) & 1 == 1).collect(),
                outs: (0..naddr).filter(|a| (r >> (a + 8)) & 1 == 1).collect(),
                undeferred: with_undeferred && (r >> 16) & 3 == 0,
            }
        })
        .collect()
}

/// The OpenMP serialization rules, applied sequentially: the ordered
/// pairs `(pred, succ)` the scheduler must honor.
fn expected_orderings(plans: &[TaskPlan], naddr: usize) -> Vec<(usize, usize)> {
    let mut last_writer: Vec<Option<usize>> = vec![None; naddr];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); naddr];
    let mut pairs = Vec::new();
    for (t, plan) in plans.iter().enumerate() {
        for &a in &plan.ins {
            if let Some(w) = last_writer[a] {
                pairs.push((w, t));
            }
            readers[a].push(t);
        }
        for &a in &plan.outs {
            if let Some(w) = last_writer[a] {
                pairs.push((w, t));
            }
            for &r in &readers[a] {
                if r != t {
                    pairs.push((r, t));
                }
            }
            last_writer[a] = Some(t);
            readers[a].clear();
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random dependence sets over (address pool × threads × deferral
    /// mix) always run exactly once, and every serialization pair
    /// finishes-before-starts in the global event order.
    #[test]
    fn random_dependence_sets_execute_legally(
        seed in 0u64..1_000_000_000,
        ntasks in 1usize..24,
        naddr in 1usize..6,
        threads in 1usize..5,
        with_undeferred in proptest::bool::ANY,
    ) {
        let plans = make_plans(seed, ntasks, naddr, with_undeferred);
        let expected = expected_orderings(&plans, naddr);

        // One global event clock; each task stamps its start and end.
        let clock = AtomicUsize::new(1);
        let starts: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
        let ends: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
        let runs: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
        let tokens: Vec<u8> = vec![0; naddr];
        {
            let (clock, starts, ends, runs, tokens, plans) =
                (&clock, &starts, &ends, &runs, &tokens, &plans);
            omp_parallel!(num_threads(threads), |ctx| {
                omp_single!(ctx, nowait, {
                    for (t, plan) in plans.iter().enumerate() {
                        let mut spec = TaskSpec::new();
                        for &a in &plan.ins {
                            spec = spec.input(&tokens[a]);
                        }
                        for &a in &plan.outs {
                            spec = spec.output(&tokens[a]);
                        }
                        if plan.undeferred {
                            spec = spec.if_clause(false);
                        }
                        ctx.task_spec(spec, move || {
                            starts[t].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                            runs[t].fetch_add(1, Ordering::SeqCst);
                            ends[t].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                        });
                    }
                });
            });
        }

        for (t, r) in runs.iter().enumerate() {
            prop_assert_eq!(r.load(Ordering::SeqCst), 1, "task {} ran wrong number of times", t);
        }
        for &(p, s) in &expected {
            let (pe, ss) = (ends[p].load(Ordering::SeqCst), starts[s].load(Ordering::SeqCst));
            prop_assert!(
                pe < ss,
                "serialization violated: task {} (end event {}) must finish before task {} \
                 (start event {}) — seed {}, {} threads",
                p, pe, s, ss, seed, threads
            );
        }
    }

    /// The all-undeferred (`if(false)`) path is fully sequential in
    /// spawn order, dependences or not.
    #[test]
    fn undeferred_path_is_sequential(
        seed in 0u64..1_000_000_000,
        ntasks in 1usize..16,
        naddr in 1usize..4,
    ) {
        let plans = make_plans(seed, ntasks, naddr, false);
        let order = std::sync::Mutex::new(Vec::new());
        let tokens: Vec<u8> = vec![0; naddr];
        {
            let (order, tokens, plans) = (&order, &tokens, &plans);
            omp_parallel!(num_threads(2), |ctx| {
                omp_single!(ctx, nowait, {
                    for (t, plan) in plans.iter().enumerate() {
                        let mut spec = TaskSpec::new().if_clause(false);
                        for &a in &plan.ins {
                            spec = spec.input(&tokens[a]);
                        }
                        for &a in &plan.outs {
                            spec = spec.output(&tokens[a]);
                        }
                        ctx.task_spec(spec, move || {
                            order.lock().unwrap().push(t);
                        });
                    }
                });
            });
        }
        let got = order.into_inner().unwrap();
        prop_assert_eq!(got, (0..ntasks).collect::<Vec<_>>());
    }
}

/// Dependence stalls show up in the exported stats when a wavefront
/// actually runs through the graph.
#[test]
fn task_stats_observe_the_dependence_graph() {
    let before = romp::runtime::stats::stats().snapshot();
    let _ = sw::compute_tasks_macro(Class::S, 4);
    let after = romp::runtime::stats::stats().snapshot();
    let d = before.delta(&after);
    assert!(d.tasks_spawned >= 64, "{d:?}");
    assert!(d.tasks_executed >= 64, "{d:?}");
    let banner = romp::runtime::stats::display_stats();
    assert!(banner.contains("tasks_dep_stalled"), "{banner}");
}
