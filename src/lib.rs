//! # romp — OpenMP-style parallelism for Rust
//!
//! A reproduction of *"Implementing OpenMP for Zig to Enable Its Use in
//! HPC Context"* (Kacs, Brown, Lee — ICPP 2024 workshops) with Rust as
//! the host language. The paper adds OpenMP's `parallel` and
//! worksharing-loop directives (plus the `shared`/`private`/
//! `firstprivate`, `schedule` and `reduction` clauses) to Zig through a
//! compiler preprocessing pass that outlines annotated blocks and calls
//! the LLVM OpenMP runtime; romp builds the same stack for Rust, from
//! scratch:
//!
//! * [`runtime`] — a fork-join runtime (worker pool, teams, schedules,
//!   barriers, reductions, locks, tasks, ICVs) standing in for libomp;
//! * [`core`] — the directive layer: `omp_parallel!`,
//!   `omp_parallel_for!` and friends, plus a typed builder API;
//! * [`pragma`] — `rompcc`, a source-to-source translator for `//#omp`
//!   comment directives (the compiler-pass analogue, since Rust, like
//!   Zig, has no native pragmas);
//! * [`fortran`] — the paper's Zig↔Fortran interop recipe, simulated
//!   (trailing-underscore mangling, by-reference args, column-major
//!   arrays);
//! * [`npb`] — the evaluation workloads: NPB CG, EP, IS and Mandelbrot,
//!   in reference and romp configurations, with official verification.
//!
//! ## Quick start
//!
//! ```
//! use romp::prelude::*;
//!
//! let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
//! let (sum,) = omp_parallel_for!(
//!     num_threads(4), schedule(static), reduction(+ : sum = 0.0),
//!     for i in 0..(data.len()) { sum += data[i]; }
//! );
//! assert_eq!(sum, (0..10_000).map(|i| i as f64).sum());
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub use romp_core as core;
pub use romp_fortran as fortran;
pub use romp_npb as npb;
pub use romp_pragma as pragma;
pub use romp_runtime as runtime;
pub use romp_sparse as sparse;

/// Everything a typical romp program needs in scope.
pub mod prelude {
    pub use romp_core::prelude::*;
}

// The kernel-variant registry (`romp::variants::run` and friends): N
// interchangeable implementations of a kernel, measured and locked to
// the fastest. See `romp_runtime::tune`.
pub use romp_runtime::variants;

// Re-export the directive macros at the crate root (macro_export places
// them at `romp_core`'s root; alias the crate so `romp::omp_parallel!`
// also works through the prelude).
pub use romp_core::{
    omp_barrier, omp_cancel, omp_cancellation_point, omp_critical, omp_for, omp_master,
    omp_ordered, omp_parallel, omp_parallel_for, omp_sections, omp_single, omp_task, omp_taskgroup,
    omp_taskloop, omp_taskwait,
};
