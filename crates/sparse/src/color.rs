//! Coloring and zoning: turning a sequential-by-construction solver
//! into legal parallel sweeps.
//!
//! A Kaczmarz projection of row `i` reads and writes `x[c]` for every
//! column `c` in row `i`, so two rows may be projected concurrently
//! **iff their column footprints are disjoint**. This module produces
//! and *proves* such partitions, in one unified representation:
//!
//! * [`Coloring::order`] — a permutation of `0..n`: the sweep order.
//! * [`Coloring::block_ptr`] — splits `order` into **blocks**; a block
//!   is the unit of parallel work and is swept *sequentially* inside.
//! * [`Coloring::phase_ptr`] — splits the blocks into **phases**;
//!   blocks within one phase run concurrently, phases are separated by
//!   barriers.
//!
//! Two constructions are provided, matching GHOST's two strategies for
//! SELL-format KACZ:
//!
//! * [`greedy_multicolor`] — general sparsity. Rows sharing a column
//!   get different colors; each color becomes a phase of singleton
//!   blocks (every row its own parallel unit).
//! * [`red_black_zones`] — banded matrices. Rows are cut into `2z`
//!   contiguous zones; even zones form the *red* phase, odd zones the
//!   *black* phase; each zone is one block (swept sequentially, so a
//!   zone only talks to its neighbours, which are in the other phase).
//!
//! Either way, [`Coloring::validate`] re-checks the disjointness claim
//! *exactly* against the matrix (a column→block stamp pass, not a
//! bandwidth argument), so a caller can trust any `Coloring` it did
//! not construct itself — and [`auto`] uses the same check to fall
//! back from zoning to multicoloring when the band assumption fails.

use crate::csr::Csr;
use std::ops::Range;

/// A proven row partition: sweep order, parallel blocks, barrier
/// phases. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Permutation of `0..n`: the order rows are swept in.
    pub order: Vec<usize>,
    /// Block `b` covers `order[block_ptr[b]..block_ptr[b+1]]`.
    pub block_ptr: Vec<usize>,
    /// Phase `p` covers blocks `phase_ptr[p]..phase_ptr[p+1]`.
    pub phase_ptr: Vec<usize>,
}

/// Why a [`Coloring`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// `order` is not a permutation of `0..n` (a row is missing,
    /// repeated, or out of range).
    NotAPermutation {
        /// The offending row index.
        row: usize,
    },
    /// Two blocks of one phase touch the same column.
    ColumnConflict {
        /// The phase in which the conflict occurs.
        phase: usize,
        /// The shared column.
        col: usize,
    },
    /// Structural breakage: pointers not monotone / not covering.
    Malformed,
}

impl std::fmt::Display for ColoringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColoringError::NotAPermutation { row } => {
                write!(f, "order is not a permutation (row {row})")
            }
            ColoringError::ColumnConflict { phase, col } => {
                write!(f, "phase {phase}: two blocks share column {col}")
            }
            ColoringError::Malformed => write!(f, "malformed block/phase pointers"),
        }
    }
}

impl std::error::Error for ColoringError {}

impl Coloring {
    /// Number of barrier phases.
    pub fn nphases(&self) -> usize {
        self.phase_ptr.len() - 1
    }

    /// Total number of parallel blocks.
    pub fn nblocks(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// The block indices making up phase `p`.
    pub fn phase_blocks(&self, p: usize) -> Range<usize> {
        self.phase_ptr[p]..self.phase_ptr[p + 1]
    }

    /// The rows of block `b`, in sweep order.
    pub fn block_rows(&self, b: usize) -> &[usize] {
        &self.order[self.block_ptr[b]..self.block_ptr[b + 1]]
    }

    /// Are all blocks single rows? (True for multicoloring; the SELL
    /// layout uses this to decide whether chunks may span blocks.)
    pub fn singleton_blocks(&self) -> bool {
        self.block_ptr.windows(2).all(|w| w[1] - w[0] <= 1)
    }

    /// Block boundaries as positions into `order` (for SELL segment
    /// alignment): `block_ptr` itself.
    pub fn block_boundaries(&self) -> &[usize] {
        &self.block_ptr
    }

    /// Phase boundaries as positions into `order`.
    pub fn phase_boundaries(&self) -> Vec<usize> {
        self.phase_ptr.iter().map(|&b| self.block_ptr[b]).collect()
    }

    /// Prove the partition against `mat`: `order` is a permutation of
    /// `0..n`, the pointer arrays are well-formed, and within every
    /// phase the blocks' column footprints are pairwise disjoint
    /// (checked exactly with a column→block stamp array).
    pub fn validate(&self, mat: &Csr) -> Result<(), ColoringError> {
        let n = mat.n;
        if self.order.len() != n
            || self.block_ptr.first() != Some(&0)
            || self.block_ptr.last() != Some(&n)
            || self.block_ptr.windows(2).any(|w| w[0] > w[1])
            || self.phase_ptr.first() != Some(&0)
            || self.phase_ptr.last() != Some(&self.nblocks())
            || self.phase_ptr.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(ColoringError::Malformed);
        }
        let mut seen = vec![false; n];
        for &row in &self.order {
            if row >= n || seen[row] {
                return Err(ColoringError::NotAPermutation { row });
            }
            seen[row] = true;
        }
        // Exact disjointness: stamp every column a block touches with
        // (phase, block); a column already stamped by a *different*
        // block of the *same* phase is a conflict.
        let mut stamp: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); n];
        for p in 0..self.nphases() {
            for b in self.phase_blocks(p) {
                for &row in self.block_rows(b) {
                    let (cols, _) = mat.row(row);
                    for &c in cols {
                        if stamp[c].0 == p && stamp[c].1 != b {
                            return Err(ColoringError::ColumnConflict { phase: p, col: c });
                        }
                        stamp[c] = (p, b);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Greedy multicoloring in natural row order: each row gets the
/// smallest color not used by any already-colored row sharing a
/// column with it. Every color becomes one phase of singleton blocks.
/// The result always validates (and is validated in debug builds).
pub fn greedy_multicolor(mat: &Csr) -> Coloring {
    let n = mat.n;
    // Column → rows containing it (the conflict adjacency, implicitly).
    let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = mat.row(i);
        for &c in cols {
            col_rows[c].push(i as u32);
        }
    }
    const UNSET: u32 = u32::MAX;
    let mut color = vec![UNSET; n];
    // forbidden[k] == i marks color k as taken by a neighbour of row i.
    let mut forbidden: Vec<usize> = Vec::new();
    let mut ncolors = 0usize;
    for i in 0..n {
        let (cols, _) = mat.row(i);
        for &c in cols {
            for &j in &col_rows[c] {
                let cj = color[j as usize];
                if cj != UNSET {
                    if cj as usize >= forbidden.len() {
                        forbidden.resize(cj as usize + 1, usize::MAX);
                    }
                    forbidden[cj as usize] = i;
                }
            }
        }
        let mut k = 0usize;
        while k < forbidden.len() && forbidden[k] == i {
            k += 1;
        }
        color[i] = k as u32;
        ncolors = ncolors.max(k + 1);
    }
    // Bucket rows by color, natural order within a color.
    let mut counts = vec![0usize; ncolors];
    for &c in &color {
        counts[c as usize] += 1;
    }
    let mut phase_start = vec![0usize; ncolors + 1];
    for k in 0..ncolors {
        phase_start[k + 1] = phase_start[k] + counts[k];
    }
    let mut order = vec![0usize; n];
    let mut cursor = phase_start.clone();
    for (i, &c) in color.iter().enumerate() {
        order[cursor[c as usize]] = i;
        cursor[c as usize] += 1;
    }
    let coloring = Coloring {
        order,
        block_ptr: (0..=n).collect(),
        phase_ptr: phase_start,
    };
    debug_assert_eq!(coloring.validate(mat), Ok(()));
    coloring
}

/// Red-black zoning for banded matrices: cut `0..n` into `2 * pairs`
/// contiguous zones (identity sweep order), even zones in the red
/// phase, odd zones in the black phase, each zone one sequential
/// block. Valid iff no row's footprint reaches past its neighbouring
/// zones into a same-phase zone — checked exactly; an `Err` means the
/// matrix is not banded enough for this zone count.
pub fn red_black_zones(mat: &Csr, pairs: usize) -> Result<Coloring, ColoringError> {
    let n = mat.n;
    let nz = (2 * pairs.max(1)).min(n.max(1));
    // Balanced contiguous zone boundaries.
    let mut block_ptr = Vec::with_capacity(nz + 1);
    for z in 0..=nz {
        block_ptr.push(z * n / nz);
    }
    block_ptr.dedup();
    let nblocks = block_ptr.len() - 1;
    // Phase 0 = even zones, phase 1 = odd zones: reorder the blocks so
    // phases are contiguous runs of blocks, rebuilding order/pointers.
    let mut order = Vec::with_capacity(n);
    let mut new_block_ptr = vec![0usize];
    let mut reds = 0usize;
    for parity in 0..2usize {
        for b in (parity..nblocks).step_by(2) {
            order.extend(block_ptr[b]..block_ptr[b + 1]);
            new_block_ptr.push(order.len());
            if parity == 0 {
                reds += 1;
            }
        }
    }
    let nb = new_block_ptr.len() - 1;
    let phase_ptr = if nb == reds {
        vec![0, reds]
    } else {
        vec![0, reds, nb]
    };
    let coloring = Coloring {
        order,
        block_ptr: new_block_ptr,
        phase_ptr,
    };
    coloring.validate(mat)?;
    Ok(coloring)
}

/// The production entry point: try red-black zoning at a zone-pair
/// count matched to `threads`, fall back to greedy multicoloring when
/// the exact validation rejects it (matrix not banded enough).
pub fn auto(mat: &Csr, threads: usize) -> Coloring {
    match red_black_zones(mat, threads.max(2)) {
        Ok(c) => c,
        Err(_) => greedy_multicolor(mat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn multicolor_tridiagonal_validates_with_few_colors() {
        let m = tridiag(64);
        let c = greedy_multicolor(&m);
        assert_eq!(c.validate(&m), Ok(()));
        // A tridiagonal conflict graph needs ≤ 3 colors greedily.
        assert!(c.nphases() <= 3, "got {} phases", c.nphases());
        assert!(c.singleton_blocks());
    }

    #[test]
    fn red_black_zones_validate_on_banded() {
        let m = tridiag(100);
        let c = red_black_zones(&m, 4).expect("tridiagonal zones");
        assert_eq!(c.validate(&m), Ok(()));
        assert_eq!(c.nphases(), 2);
        assert_eq!(c.nblocks(), 8);
        assert!(!c.singleton_blocks());
    }

    #[test]
    fn red_black_rejects_dense_row() {
        // Row 0 touches every column: any two same-phase zones conflict
        // through it once there are ≥ 2 zones in a phase.
        let n = 40;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 1.0));
            t.push((0, i, 1.0));
        }
        let m = Csr::from_triplets(n, &t);
        assert!(red_black_zones(&m, 4).is_err());
        // auto() falls back to a valid multicoloring.
        let c = auto(&m, 4);
        assert_eq!(c.validate(&m), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_partitions() {
        let m = tridiag(8);
        // Adjacent rows in one phase: conflict.
        let bad = Coloring {
            order: (0..8).collect(),
            block_ptr: (0..=8).collect(),
            phase_ptr: vec![0, 8],
        };
        assert!(matches!(
            bad.validate(&m),
            Err(ColoringError::ColumnConflict { .. })
        ));
        // Repeated row: not a permutation.
        let dup = Coloring {
            order: vec![0; 8],
            block_ptr: (0..=8).collect(),
            phase_ptr: vec![0, 8],
        };
        assert!(matches!(
            dup.validate(&m),
            Err(ColoringError::NotAPermutation { .. })
        ));
    }
}
