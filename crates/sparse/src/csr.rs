//! Compressed Sparse Row: the baseline format every other piece of the
//! crate is defined against.
//!
//! CSR is the format the solver-side mathematics is easiest to state
//! in (a row is a contiguous `cols`/`vals` run), so it serves three
//! roles here: the construction format ([`Csr::from_triplets`]), the
//! sequential-reference format for the Kaczmarz verification ladder,
//! and the baseline the SELL-C-σ kernels are benchmarked against.
//!
//! Bit-exactness contract: [`Csr::row_dot`] accumulates a row's
//! products strictly left to right in stored-nonzero order. The
//! SELL-C-σ kernels preserve each row's nonzero order when they
//! re-lay the matrix out, so per-row dot products — and therefore
//! whole Kaczmarz projections — are bitwise identical across formats.

use romp_core::prelude::*;

/// A sparse `n × n` matrix in compressed sparse row form (0-based,
/// rows sorted by column, duplicates combined).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Matrix dimension (square: rows == columns == `n`).
    pub n: usize,
    /// Row `i`'s nonzeros live at `rowptr[i]..rowptr[i+1]`.
    pub rowptr: Vec<usize>,
    /// Column index of each stored nonzero.
    pub cols: Vec<usize>,
    /// Value of each stored nonzero.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Build from `(row, col, value)` triplets: entries are sorted by
    /// `(row, col)` and duplicate coordinates are summed. Panics on
    /// out-of-range coordinates.
    pub fn from_triplets(n: usize, entries: &[(usize, usize, f64)]) -> Csr {
        let mut sorted: Vec<(usize, usize, f64)> = entries.to_vec();
        for &(r, c, _) in &sorted {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
        }
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut rowptr = vec![0usize; n + 1];
        let mut cols = Vec::with_capacity(sorted.len());
        let mut vals = Vec::with_capacity(sorted.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(r, c, v) in &sorted {
            if prev == Some((r, c)) {
                // Duplicate coordinate (adjacent after the sort): combine.
                let last = vals.last_mut().expect("non-empty when combining");
                *last += v;
            } else {
                cols.push(c);
                vals.push(v);
                rowptr[r + 1] += 1;
                prev = Some((r, c));
            }
        }
        for i in 0..n {
            rowptr[i + 1] += rowptr[i];
        }
        Csr {
            n,
            rowptr,
            cols,
            vals,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row `i` as parallel `(cols, vals)` slices.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.rowptr[i]..self.rowptr[i + 1];
        (&self.cols[span.clone()], &self.vals[span])
    }

    /// `⟨a_i, x⟩`, accumulated strictly in stored-nonzero order (the
    /// cross-format bit-exactness anchor — see the module docs).
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let (cols, vals) = self.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c];
        }
        acc
    }

    /// `‖a_i‖²` for every row, in stored-nonzero order.
    pub fn row_norms_sq(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                let (_, vals) = self.row(i);
                let mut acc = 0.0;
                for &v in vals {
                    acc += v * v;
                }
                acc
            })
            .collect()
    }

    /// Half bandwidth: `max |i − col|` over stored nonzeros (0 for a
    /// diagonal or empty matrix).
    pub fn half_bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for i in 0..self.n {
            let (cols, _) = self.row(i);
            for &c in cols {
                bw = bw.max(i.abs_diff(c));
            }
        }
        bw
    }

    /// Sequential `y = A·x`.
    pub fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, slot) in y.iter_mut().enumerate() {
            *slot = self.row_dot(i, x);
        }
    }

    /// Parallel `y = A·x` over `threads` with the given row schedule —
    /// one safe `write_into` slot per row, so the result is bitwise
    /// equal to [`Csr::spmv_serial`] under any schedule.
    pub fn spmv(&self, x: &[f64], y: &mut [f64], threads: usize, sched: Schedule) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        par_for(0..self.n)
            .num_threads(threads)
            .schedule(sched)
            .write_into(y, |row, slot| *slot = self.row_dot(row, x));
    }

    /// Convenience serial `A·x` into a fresh vector.
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.spmv_serial(x, &mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 2 1 0 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn triplets_sorted_and_combined() {
        let m = Csr::from_triplets(2, &[(1, 0, 1.0), (0, 0, 2.0), (1, 0, 0.5)]);
        assert_eq!(m.rowptr, vec![0, 1, 2]);
        assert_eq!(m.cols, vec![0, 0]);
        assert_eq!(m.vals, vec![2.0, 1.5]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn row_dot_and_spmv_agree() {
        let m = small();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.row_dot(0, &x), 4.0);
        assert_eq!(m.mul(&x), vec![4.0, 6.0, 19.0]);
        let mut y = vec![0.0; 3];
        m.spmv(&x, &mut y, 4, Schedule::dynamic_chunk(1));
        assert_eq!(y, vec![4.0, 6.0, 19.0]);
    }

    #[test]
    fn norms_and_bandwidth() {
        let m = small();
        assert_eq!(m.row_norms_sq(), vec![5.0, 9.0, 41.0]);
        assert_eq!(m.half_bandwidth(), 2);
    }
}
