//! Deterministic test/bench matrix generators.
//!
//! Everything here is seeded and platform-independent (xorshift over
//! `u64`, exact dyadic scaling), so verification baselines and bench
//! matrices are reproducible bit-for-bit across runs and machines.

use crate::csr::Csr;

/// Minimal xorshift64 generator (Marsaglia): enough statistical
/// quality for sparsity patterns, zero dependencies.
#[derive(Debug, Clone)]
pub struct XorShift64(u64);

impl XorShift64 {
    /// Seeded constructor (seed 0 is remapped — xorshift's fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[0, 1)` with exactly 53 random bits (dyadic, so
    /// bit-reproducible everywhere).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `0..bound`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// Diagonally dominant banded matrix: off-diagonals `−1/(1+|d|)` for
/// `1 ≤ |d| ≤ half_bw` (clipped at the edges), diagonal = sum of the
/// row's off-diagonal magnitudes + 2. Banded ⇒ red-black zoning
/// applies; dominance ⇒ Kaczmarz converges briskly.
pub fn banded(n: usize, half_bw: usize) -> Csr {
    let mut t = Vec::new();
    for i in 0..n {
        let mut mag = 0.0;
        for d in 1..=half_bw {
            let v = -1.0 / (1.0 + d as f64);
            if i >= d {
                t.push((i, i - d, v));
                mag += v.abs();
            }
            if i + d < n {
                t.push((i, i + d, v));
                mag += v.abs();
            }
        }
        t.push((i, i, mag + 2.0));
    }
    Csr::from_triplets(n, &t)
}

/// General (unsymmetric) random sparse matrix: per row, a dominant
/// diagonal plus `extra` off-diagonal entries at seeded random columns
/// with values in `[−1, 1)`. Not banded — the multicoloring path.
pub fn random_sparse(n: usize, extra: usize, seed: u64) -> Csr {
    let mut rng = XorShift64::new(seed);
    let mut t = Vec::new();
    for i in 0..n {
        let mut mag = 0.0;
        for _ in 0..extra {
            let c = rng.next_below(n);
            if c != i {
                let v = 2.0 * rng.next_f64() - 1.0;
                t.push((i, c, v));
                mag += v.abs();
            }
        }
        t.push((i, i, mag + 2.0));
    }
    Csr::from_triplets(n, &t)
}

/// A deterministic "true" solution vector (bounded, non-trivial).
pub fn x_true(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 40;
            1.0 + (h % 1000) as f64 / 1000.0
        })
        .collect()
}

/// Consistent right-hand side for [`x_true`]: `b = A·x_true`, so the
/// system has an exact solution and the solver's residual can reach
/// machine precision.
pub fn consistent_rhs(mat: &Csr) -> Vec<f64> {
    mat.mul(&x_true(mat.n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(banded(50, 3), banded(50, 3));
        assert_eq!(random_sparse(40, 4, 7), random_sparse(40, 4, 7));
        assert_ne!(
            random_sparse(40, 4, 7).vals,
            random_sparse(40, 4, 8).vals,
            "different seeds differ"
        );
    }

    #[test]
    fn banded_is_banded_and_dominant() {
        let m = banded(64, 4);
        assert!(m.half_bandwidth() <= 4);
        for i in 0..m.n {
            let (cols, vals) = m.row(i);
            let diag: f64 = cols
                .iter()
                .zip(vals)
                .filter(|(&c, _)| c == i)
                .map(|(_, &v)| v)
                .sum();
            let off: f64 = cols
                .iter()
                .zip(vals)
                .filter(|(&c, _)| c != i)
                .map(|(_, &v)| v.abs())
                .sum();
            assert!(diag > off, "row {i} not dominant");
        }
    }

    #[test]
    fn rhs_is_consistent() {
        let m = random_sparse(30, 3, 42);
        let b = consistent_rhs(&m);
        assert_eq!(b, m.mul(&x_true(30)));
    }
}
