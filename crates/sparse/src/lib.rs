//! # romp-sparse — the paper's performance core
//!
//! Hardware-efficient sparse kernels and the solver family the source
//! paper's evaluation targets: SELL-C-σ storage, colored Kaczmarz
//! sweeps (KACZ) and the CARP-CG solver, all running on romp's
//! OpenMP-style constructs.
//!
//! * [`csr`] — the CSR baseline format (construction, spmv, the
//!   bitwise accumulation contract every other kernel inherits);
//! * [`sell`] — SELL-C-σ (σ-window sorting, chunk-height-C tiles,
//!   padding stats, row-permutation map) plus the format-adaptive
//!   spmv entry;
//! * [`color`] — coloring/zoning passes (greedy multicolor, red-black
//!   zones) with *exact* disjointness validation;
//! * [`kacz`] — forward/backward colored Kaczmarz sweeps over both
//!   formats through all three front ends, bitwise-verified against a
//!   sequential reference;
//! * [`carp`] — the CARP-CG (CGMN) solver: one parallel region,
//!   `site("kacz")` `schedule(runtime)` sweeps the romp-tune learner
//!   can adapt, team reductions, `omp_cancel!` convergence exit;
//! * [`matgen`] — deterministic banded/random test matrices and
//!   consistent right-hand sides.
//!
//! ```
//! use romp_sparse::prelude::*;
//!
//! let mat = matgen::banded(200, 4);
//! let coloring = color::auto(&mat, 4);
//! let norms = mat.row_norms_sq();
//! let b = matgen::consistent_rhs(&mat);
//! let op = SweepMat::Csr { mat: &mat, coloring: &coloring };
//! let opts = CarpOptions { threads: 4, ..Default::default() };
//! let out = carp_cg(&op, &norms, &b, &opts);
//! assert!(out.converged && out.rel_residual < 1e-7);
//! ```

#![warn(missing_docs)]

pub mod carp;
pub mod color;
pub mod csr;
pub mod kacz;
pub mod matgen;
pub mod sell;

/// The crate's working set in one import.
pub mod prelude {
    pub use crate::carp::{carp_cg, carp_cg_adaptive, carp_cg_seq, CarpOptions, CarpOutcome};
    pub use crate::color::{self, greedy_multicolor, red_black_zones, Coloring, ColoringError};
    pub use crate::csr::Csr;
    pub use crate::kacz::{
        sweep_csr_builder, sweep_csr_ctx, sweep_csr_macro, sweep_seq, ColoredSell, Direction,
        SweepMat,
    };
    pub use crate::matgen;
    pub use crate::sell::{spmv_adaptive, Sell};
}

pub use prelude::*;
