//! SELL-C-σ: the sliced-ELLPACK format the paper's kernels run on.
//!
//! Rows are grouped into *chunks* of height `C`; within a chunk the
//! nonzeros are stored column-major (`vals[chunk_ptr[ch] + j*C + lane]`
//! is the `j`-th nonzero of the chunk's `lane`-th row), every row
//! padded to the chunk's widest row so a chunk is a dense `C ×
//! chunk_len` tile — the unit SIMD/streaming kernels want. To keep the
//! padding small, rows are sorted by descending length within *sorting
//! windows* of `σ` rows before chunking (full-matrix sorting would
//! destroy locality; `σ = 1` is plain SELL-C).
//!
//! Two properties matter for correctness here:
//!
//! * **Within-row nonzero order is preserved** from the source CSR, and
//!   every kernel accumulates per-row strictly in that order guarded by
//!   the true row length ([`Sell::slot_len`]) rather than relying on
//!   `0.0 × x` padding terms — so per-row dots are *bitwise* equal to
//!   the CSR ones, which is what makes cross-format Kaczmarz
//!   verification exact.
//! * **Chunks never cross segment boundaries** passed to
//!   [`Sell::from_csr_ordered`]. The Kaczmarz layer passes coloring
//!   block/phase boundaries there, so a chunk never mixes rows from
//!   different parallel units ([`crate::color`]); each segment is
//!   padded up to a multiple of `C` independently ([`Sell::slot_row`]
//!   holds [`PAD`] in the filler lanes).

use crate::csr::Csr;
use romp_core::prelude::*;
use romp_core::slice::SharedSlice;

/// Sentinel in [`Sell::slot_row`] for padding lanes (no source row).
pub const PAD: usize = usize::MAX;

/// A sparse matrix in SELL-C-σ form. See the module docs for layout.
#[derive(Debug, Clone)]
pub struct Sell {
    /// Matrix dimension.
    pub n: usize,
    /// Chunk height.
    pub c: usize,
    /// Sorting-window size (in rows).
    pub sigma: usize,
    /// Stored nonzeros (excluding padding).
    pub nnz: usize,
    /// Slot → source row (`slot = chunk * c + lane`), [`PAD`] for
    /// padding lanes. This is the row-permutation map.
    pub slot_row: Vec<usize>,
    /// Chunk `ch`'s tile starts at `chunk_ptr[ch]` in `cols`/`vals`.
    pub chunk_ptr: Vec<usize>,
    /// Width (longest row) of each chunk.
    pub chunk_len: Vec<usize>,
    /// True row length of each slot (0 for padding lanes): the
    /// accumulation guard that keeps kernels bitwise-equal to CSR.
    pub slot_len: Vec<usize>,
    /// Column index per tile entry (0 in padding positions).
    pub cols: Vec<usize>,
    /// Value per tile entry (0.0 in padding positions).
    pub vals: Vec<f64>,
    /// Chunk index at which each input segment starts (one entry per
    /// segment boundary, `segment_chunk_ptr.last() == nchunks`).
    pub segment_chunk_ptr: Vec<usize>,
}

impl Sell {
    /// Convert from CSR with identity row order and a single segment.
    pub fn from_csr(mat: &Csr, c: usize, sigma: usize) -> Sell {
        let order: Vec<usize> = (0..mat.n).collect();
        Sell::from_csr_ordered(mat, c, sigma, &order, &[0, mat.n])
    }

    /// Convert from CSR laying rows out in `order`, σ-sorting and
    /// chunking independently within each segment
    /// `order[boundaries[s]..boundaries[s+1]]` (each segment padded to
    /// a multiple of `c`, so chunks never straddle a boundary).
    ///
    /// `boundaries` must be ascending positions into `order` starting
    /// at 0 and ending at `order.len()`; `order` must be a permutation
    /// of `0..mat.n`.
    pub fn from_csr_ordered(
        mat: &Csr,
        c: usize,
        sigma: usize,
        order: &[usize],
        boundaries: &[usize],
    ) -> Sell {
        let n = mat.n;
        let c = c.max(1);
        let sigma = sigma.max(1);
        assert_eq!(order.len(), n, "order must cover every row");
        assert!(
            boundaries.first() == Some(&0) && boundaries.last() == Some(&n),
            "boundaries must span 0..=n"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be ascending"
        );

        let mut slot_row = Vec::new();
        let mut chunk_ptr = vec![0usize];
        let mut chunk_len = Vec::new();
        let mut slot_len = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut segment_chunk_ptr = vec![0usize];

        let rowlen = |r: usize| mat.rowptr[r + 1] - mat.rowptr[r];
        for seg in boundaries.windows(2) {
            let mut rows: Vec<usize> = order[seg[0]..seg[1]].to_vec();
            // σ-window sort: stable, by descending row length, window
            // by window so locality survives.
            for w in rows.chunks_mut(sigma) {
                w.sort_by_key(|&r| std::cmp::Reverse(rowlen(r)));
            }
            // Chunk in groups of C, padding the segment's last chunk.
            for chunk in rows.chunks(c) {
                let width = chunk.iter().map(|&r| rowlen(r)).max().unwrap_or(0);
                let base = *chunk_ptr.last().expect("non-empty");
                cols.resize(base + width * c, 0);
                vals.resize(base + width * c, 0.0);
                for lane in 0..c {
                    match chunk.get(lane) {
                        Some(&r) => {
                            slot_row.push(r);
                            slot_len.push(rowlen(r));
                            let (rcols, rvals) = mat.row(r);
                            for (j, (&rc, &rv)) in rcols.iter().zip(rvals).enumerate() {
                                cols[base + j * c + lane] = rc;
                                vals[base + j * c + lane] = rv;
                            }
                        }
                        None => {
                            slot_row.push(PAD);
                            slot_len.push(0);
                        }
                    }
                }
                chunk_ptr.push(base + width * c);
                chunk_len.push(width);
            }
            segment_chunk_ptr.push(chunk_len.len());
        }

        Sell {
            n,
            c,
            sigma,
            nnz: mat.nnz(),
            slot_row,
            chunk_ptr,
            chunk_len,
            slot_len,
            cols,
            vals,
            segment_chunk_ptr,
        }
    }

    /// Number of chunks.
    pub fn nchunks(&self) -> usize {
        self.chunk_len.len()
    }

    /// Stored entries including padding (`β⁻¹ · nnz` in SELL papers).
    pub fn padded_nnz(&self) -> usize {
        *self.chunk_ptr.last().expect("chunk_ptr non-empty")
    }

    /// Padding overhead: stored entries (incl. padding) over true nnz
    /// (1.0 = no fill; the acceptance bar for class S is < 2.0).
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_nnz() as f64 / self.nnz as f64
        }
    }

    /// `⟨a_row, x⟩` for the row in `(chunk, lane)`, accumulated in
    /// stored order and guarded by the true row length (bitwise equal
    /// to [`Csr::row_dot`] on the same row).
    #[inline]
    pub fn slot_dot(&self, chunk: usize, lane: usize, x: &[f64]) -> f64 {
        let base = self.chunk_ptr[chunk];
        let len = self.slot_len[chunk * self.c + lane];
        let mut acc = 0.0;
        for j in 0..len {
            let idx = base + j * self.c + lane;
            acc += self.vals[idx] * x[self.cols[idx]];
        }
        acc
    }

    /// Rows in slot order skipping padding: the sweep order a
    /// sequential Kaczmarz reference must use to match the SELL
    /// kernels bitwise.
    pub fn sweep_order(&self) -> Vec<usize> {
        self.slot_row
            .iter()
            .copied()
            .filter(|&r| r != PAD)
            .collect()
    }

    /// Sequential `y = A·x` (y indexed by original row numbers).
    pub fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for ch in 0..self.nchunks() {
            for lane in 0..self.c {
                let row = self.slot_row[ch * self.c + lane];
                if row != PAD {
                    y[row] = self.slot_dot(ch, lane, x);
                }
            }
        }
    }

    /// Parallel `y = A·x` over `threads`, one chunk tile per
    /// worksharing iteration. The σ-sort scatters each chunk's rows, so
    /// the writes go through a [`SharedSlice`]; the permutation map
    /// guarantees each `y[row]` has exactly one writer.
    pub fn spmv(&self, x: &[f64], y: &mut [f64], threads: usize, sched: Schedule) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let view = SharedSlice::new(y);
        par_for(0..self.nchunks())
            .num_threads(threads)
            .schedule(sched)
            .run(|ch| {
                for lane in 0..self.c {
                    let row = self.slot_row[ch * self.c + lane];
                    if row != PAD {
                        // SAFETY: slot_row is a permutation of rows
                        // (plus PAD), so no other iteration writes row.
                        unsafe { view.write(row, self.slot_dot(ch, lane, x)) };
                    }
                }
            });
    }
}

/// Format-adaptive `y = A·x`: the kernel-variant registry
/// (`romp::variants`, name `"sparse-spmv"`, keyed by the nnz bucket)
/// measures the CSR row kernel against the SELL chunk kernel and locks
/// to the faster — the GHOST dispatch table, learned at run time.
/// Returns the variant index it ran (0 = CSR, 1 = SELL).
pub fn spmv_adaptive(
    csr: &Csr,
    sell: &Sell,
    x: &[f64],
    y: &mut [f64],
    threads: usize,
    sched: Schedule,
) -> usize {
    debug_assert_eq!(csr.nnz(), sell.nnz);
    romp_core::variants::run("sparse-spmv", csr.nnz() as u64, 2, |which| {
        match which {
            0 => csr.spmv(x, y, threads, sched),
            _ => sell.spmv(x, y, threads, sched),
        }
        which
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ragged(n: usize) -> Csr {
        // Row i has 1 + i % 5 nonzeros spread around the diagonal.
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0 + i as f64));
            for k in 1..=(i % 5) {
                t.push((i, (i + 3 * k) % n, 1.0 / k as f64));
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn layout_roundtrips_every_row() {
        let m = ragged(37);
        let s = Sell::from_csr(&m, 4, 8);
        assert_eq!(s.sweep_order().len(), m.n);
        let mut seen = vec![false; m.n];
        for &r in &s.sweep_order() {
            assert!(!seen[r]);
            seen[r] = true;
        }
        // Chunk count covers padded rows; padded nnz ≥ nnz.
        assert_eq!(s.nchunks(), m.n.div_ceil(4));
        assert!(s.padded_nnz() >= m.nnz());
        assert!(s.fill_ratio() >= 1.0);
    }

    #[test]
    fn spmv_matches_csr_bitwise() {
        let m = ragged(53);
        let x: Vec<f64> = (0..m.n).map(|i| 0.1 + (i as f64).sin()).collect();
        let want = m.mul(&x);
        for (c, sigma) in [(1, 1), (4, 1), (4, 16), (8, 53), (16, 8)] {
            let s = Sell::from_csr(&m, c, sigma);
            let mut y = vec![0.0; m.n];
            s.spmv_serial(&x, &mut y);
            assert_eq!(y, want, "serial C={c} sigma={sigma}");
            let mut y2 = vec![0.0; m.n];
            s.spmv(&x, &mut y2, 4, Schedule::dynamic_chunk(2));
            assert_eq!(y2, want, "parallel C={c} sigma={sigma}");
        }
    }

    #[test]
    fn segments_never_share_chunks() {
        let m = ragged(20);
        let order: Vec<usize> = (0..20).collect();
        let s = Sell::from_csr_ordered(&m, 4, 4, &order, &[0, 7, 13, 20]);
        // Segment sizes 7, 6, 7 each pad to a multiple of C=4.
        assert_eq!(s.segment_chunk_ptr, vec![0, 2, 4, 6]);
        for (seg, w) in s.segment_chunk_ptr.windows(2).enumerate() {
            let rows: Vec<usize> = (w[0] * 4..w[1] * 4)
                .map(|slot| s.slot_row[slot])
                .filter(|&r| r != PAD)
                .collect();
            let want: std::collections::BTreeSet<usize> = order[[0, 7, 13][seg]..[7, 13, 20][seg]]
                .iter()
                .copied()
                .collect();
            assert_eq!(
                rows.iter()
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>(),
                want
            );
        }
    }

    #[test]
    fn sigma_sorting_reduces_fill() {
        let m = ragged(200);
        let plain = Sell::from_csr(&m, 8, 1);
        let sorted = Sell::from_csr(&m, 8, 64);
        assert!(sorted.fill_ratio() <= plain.fill_ratio());
    }
}
