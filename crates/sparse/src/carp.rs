//! CARP-CG: conjugate gradient acceleration of double Kaczmarz sweeps
//! (the CGMN method of Björck & Elfving, the solver GHOST's
//! `sell_kacz` kernels feed).
//!
//! One application of the operator is a **DKSWP** double sweep — a
//! forward then a backward colored Kaczmarz sweep with relaxation `ω`
//! — which is a symmetric positive-semidefinite affine map of `x`, so
//! CG applies to the fixed-point system `x = DKSWP(x, b)`:
//!
//! ```text
//! r₀ = DKSWP(0, b)            p₀ = r₀
//! qₖ = pₖ − DKSWP(pₖ, 0)      α = ⟨r,r⟩/⟨p,q⟩
//! x += α p                    r −= α q
//! β = ⟨r',r'⟩/⟨r,r⟩           p = r + β p
//! ```
//!
//! The parallel solver runs the whole iteration inside **one**
//! `parallel` region: sweeps are in-region colored KACZ constructs
//! (`schedule(runtime)`, `site("kacz")` — the learner tunes them),
//! vector updates are worksharing loops, scalars come from
//! `reduce_value` team reductions (every thread receives the same
//! combined value, so control flow stays lockstep), and the
//! convergence exit goes through `omp_cancel!(ctx, parallel)` — armed
//! cancellation releases the team early exactly like the paper's
//! `!omp cancel` convergence pattern, and the disarmed build falls
//! back to the plain SPMD break.
//!
//! Verification contract: the team reductions combine partials in
//! arrival order, so the parallel iterates are *not* bitwise equal to
//! [`carp_cg_seq`] — the solver is verified by residual tolerance
//! (while the sweep layer underneath is verified bitwise; see
//! [`crate::kacz`]).

use crate::kacz::{Direction, SweepMat};
use romp_core::prelude::*;
use romp_core::slice::SharedSlice;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Solver knobs.
#[derive(Debug, Clone)]
pub struct CarpOptions {
    /// Kaczmarz relaxation factor (1.0 = pure projections).
    pub omega: f64,
    /// Relative residual target: stop when `⟨r,r⟩ ≤ tol²·⟨b,b⟩` (in the
    /// sweep-operator norm).
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Team size for the parallel solver.
    pub threads: usize,
    /// Schedule for the KACZ worksharing loops (`Runtime` by default,
    /// so `OMP_SCHEDULE=auto` hands them to the romp-tune learner).
    pub sched: Schedule,
}

impl Default for CarpOptions {
    fn default() -> Self {
        CarpOptions {
            omega: 1.0,
            tol: 1e-9,
            max_iters: 1000,
            threads: 1,
            sched: Schedule::Runtime,
        }
    }
}

/// Solver result.
#[derive(Debug, Clone)]
pub struct CarpOutcome {
    /// The iterate.
    pub x: Vec<f64>,
    /// CG iterations performed.
    pub iters: usize,
    /// Did the residual reach the tolerance?
    pub converged: bool,
    /// True relative residual `‖b − A·x‖ / ‖b‖` (computed serially
    /// after the solve — the cross-format verification number).
    pub rel_residual: f64,
    /// Did the convergence exit go through an *armed* `omp_cancel!`
    /// (false when `OMP_CANCELLATION` is off and the SPMD break was
    /// the fallback)?
    pub cancelled: bool,
}

fn rel_residual_of(ax: &[f64], b: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (ai, bi) in ax.iter().zip(b) {
        num += (bi - ai) * (bi - ai);
        den += bi * bi;
    }
    if den > 0.0 {
        (num / den).sqrt()
    } else {
        num.sqrt()
    }
}

/// Sequential CARP-CG reference: the identical CGMN recurrence with
/// sequential sweeps over the CSR storage in `order` (pass the
/// operator's [`SweepMat::sweep_order`] to mirror a specific layout).
pub fn carp_cg_seq(
    mat: &crate::csr::Csr,
    norms: &[f64],
    order: &[usize],
    b: &[f64],
    opts: &CarpOptions,
) -> CarpOutcome {
    let n = mat.n;
    let omega = opts.omega;
    let zeros = vec![0.0; n];
    let dkswp = |v: &mut Vec<f64>, rhs: &[f64]| {
        crate::kacz::sweep_seq(mat, norms, order, v, rhs, omega, Direction::Forward);
        crate::kacz::sweep_seq(mat, norms, order, v, rhs, omega, Direction::Backward);
    };
    let mut x = vec![0.0; n];
    let mut r = vec![0.0; n];
    dkswp(&mut r, b);
    let mut p = r.clone();
    let bb: f64 = b.iter().map(|v| v * v).sum();
    let thresh = if bb > 0.0 {
        opts.tol * opts.tol * bb
    } else {
        opts.tol * opts.tol
    };
    let mut rho: f64 = r.iter().map(|v| v * v).sum();
    let mut iters = 0;
    let mut converged = rho <= thresh;
    while !converged && iters < opts.max_iters {
        let mut q = p.clone();
        dkswp(&mut q, &zeros);
        for (qi, pi) in q.iter_mut().zip(&p) {
            *qi = pi - *qi;
        }
        let pq: f64 = p.iter().zip(&q).map(|(a, c)| a * c).sum();
        if !pq.is_finite() || pq == 0.0 {
            break;
        }
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho_new / rho;
        rho = rho_new;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        iters += 1;
        converged = rho <= thresh;
    }
    let rel_residual = rel_residual_of(&mat.mul(&x), b);
    CarpOutcome {
        x,
        iters,
        converged,
        rel_residual,
        cancelled: false,
    }
}

/// Parallel CARP-CG: one region, in-region colored sweeps, team
/// reductions, cancellation-based convergence exit. See the module
/// docs for structure and the verification contract.
pub fn carp_cg(op: &SweepMat<'_>, norms: &[f64], b: &[f64], opts: &CarpOptions) -> CarpOutcome {
    let n = op.n();
    let mut x = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut q = vec![0.0; n];
    let zeros = vec![0.0; n];
    let iters_out = AtomicUsize::new(0);
    let converged_out = AtomicBool::new(false);
    let cancelled_out = AtomicBool::new(false);
    {
        let xs = SharedSlice::new(&mut x);
        let rs = SharedSlice::new(&mut r);
        let ps = SharedSlice::new(&mut p);
        let qs = SharedSlice::new(&mut q);
        let sched = opts.sched;
        let omega = opts.omega;
        // Per-construct-barrier discipline inside the region: every
        // worksharing loop below has its implied barrier (nowait only
        // on the dot-product loops, whose reduce_value synchronizes),
        // so each construct reads only vectors published by the
        // previous one.
        parallel().num_threads(opts.threads).run(|ctx| {
            let dot = |f: &dyn Fn(usize) -> f64| {
                let mut part = 0.0;
                ctx.ws_for(0..n, Schedule::static_block(), true, |i| part += f(i));
                ctx.reduce_value(SumOp, part)
            };
            // r = DKSWP(0, b).
            ctx.ws_for(0..n, Schedule::static_block(), false, |i| {
                // SAFETY: worksharing assigns i to one thread.
                unsafe { rs.write(i, 0.0) };
            });
            op.sweep_ctx(ctx, norms, &rs, b, omega, Direction::Forward, sched);
            op.sweep_ctx(ctx, norms, &rs, b, omega, Direction::Backward, sched);
            // p = r.
            ctx.ws_for(0..n, Schedule::static_block(), false, |i| {
                // SAFETY: as above; rs published by the sweep barrier.
                unsafe { ps.write(i, rs.read(i)) };
            });
            let bb = dot(&|i| b[i] * b[i]);
            let thresh = if bb > 0.0 {
                opts.tol * opts.tol * bb
            } else {
                opts.tol * opts.tol
            };
            let mut rho = dot(&|i| unsafe { rs.read(i) * rs.read(i) });
            let mut iters = 0usize;
            let mut converged = rho <= thresh;
            let mut fired = false;
            while !converged && iters < opts.max_iters {
                // q = p − DKSWP(p, 0), computed in place on q.
                ctx.ws_for(0..n, Schedule::static_block(), false, |i| {
                    // SAFETY: disjoint slots; ps published.
                    unsafe { qs.write(i, ps.read(i)) };
                });
                op.sweep_ctx(ctx, norms, &qs, &zeros, omega, Direction::Forward, sched);
                op.sweep_ctx(ctx, norms, &qs, &zeros, omega, Direction::Backward, sched);
                ctx.ws_for(0..n, Schedule::static_block(), false, |i| {
                    // SAFETY: disjoint slots; qs published by the sweep.
                    unsafe { qs.write(i, ps.read(i) - qs.read(i)) };
                });
                let pq = dot(&|i| unsafe { ps.read(i) * qs.read(i) });
                if !pq.is_finite() || pq == 0.0 {
                    // Breakdown: every thread sees the same pq (the
                    // reduction hands all threads one combined value),
                    // so the whole team leaves together.
                    break;
                }
                let alpha = rho / pq;
                ctx.ws_for(0..n, Schedule::static_block(), false, |i| {
                    // SAFETY: disjoint slots; inputs published.
                    unsafe {
                        xs.write(i, xs.read(i) + alpha * ps.read(i));
                        rs.write(i, rs.read(i) - alpha * qs.read(i));
                    }
                });
                let rho_new = dot(&|i| unsafe { rs.read(i) * rs.read(i) });
                let beta = rho_new / rho;
                rho = rho_new;
                ctx.ws_for(0..n, Schedule::static_block(), false, |i| {
                    // SAFETY: disjoint slots; rs published.
                    unsafe { ps.write(i, rs.read(i) + beta * ps.read(i)) };
                });
                iters += 1;
                converged = rho <= thresh;
                if converged {
                    // Convergence exit via cancellation: with
                    // OMP_CANCELLATION armed this raises the team's
                    // cancel-parallel flag (observable in the runtime
                    // stats) and the break branches to the region end,
                    // the OpenMP-canonical early exit; disarmed, the
                    // SPMD break alone ends the lockstep loop.
                    fired = omp_cancel!(ctx, parallel);
                }
            }
            if ctx.thread_num() == 0 {
                iters_out.store(iters, Ordering::Relaxed);
                converged_out.store(converged, Ordering::Relaxed);
                cancelled_out.store(fired, Ordering::Relaxed);
            }
        });
    }
    let rel_residual = rel_residual_of(&op.mul(&x), b);
    CarpOutcome {
        x,
        iters: iters_out.load(Ordering::Relaxed),
        converged: converged_out.load(Ordering::Relaxed),
        rel_residual,
        cancelled: cancelled_out.load(Ordering::Relaxed),
    }
}

/// Format-adaptive CARP-CG: let the kernel-variant registry pick CSR
/// or SELL-C-σ for this problem size (`variants::select("carp-dkswp")`)
/// and report the measured solve back. The choice is made **once per
/// solve** — CG requires a fixed operator, so the format cannot change
/// mid-iteration.
pub fn carp_cg_adaptive(
    csr_op: &SweepMat<'_>,
    sell_op: &SweepMat<'_>,
    norms: &[f64],
    b: &[f64],
    opts: &CarpOptions,
) -> (CarpOutcome, usize) {
    let work = match csr_op {
        SweepMat::Csr { mat, .. } => mat.nnz() as u64,
        SweepMat::Sell(cs) => cs.sell.nnz as u64,
    };
    let choice = romp_core::variants::select("carp-dkswp", work, 2);
    let which = choice.index();
    let t0 = romp_core::get_wtime();
    let out = carp_cg(if which == 0 { csr_op } else { sell_op }, norms, b, opts);
    romp_core::variants::record(choice, romp_core::get_wtime() - t0);
    (out, which)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{auto, greedy_multicolor};
    use crate::kacz::ColoredSell;
    use crate::matgen;

    #[test]
    fn sequential_solver_reaches_the_generating_solution() {
        let mat = matgen::banded(200, 4);
        let coloring = greedy_multicolor(&mat);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        let out = carp_cg_seq(&mat, &norms, &coloring.order, &b, &CarpOptions::default());
        assert!(out.converged, "no convergence in {} iters", out.iters);
        assert!(out.rel_residual < 1e-7, "residual {}", out.rel_residual);
        let xt = matgen::x_true(200);
        let err = out
            .x
            .iter()
            .zip(&xt)
            .map(|(a, t)| (a - t).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-5, "max err {err}");
    }

    #[test]
    fn parallel_solver_matches_reference_within_tolerance() {
        let mat = matgen::random_sparse(150, 5, 11);
        let coloring = greedy_multicolor(&mat);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        let op = SweepMat::Csr {
            mat: &mat,
            coloring: &coloring,
        };
        let opts = CarpOptions {
            threads: 4,
            ..Default::default()
        };
        let par = carp_cg(&op, &norms, &b, &opts);
        let seq = carp_cg_seq(&mat, &norms, &coloring.order, &b, &opts);
        assert!(par.converged && seq.converged);
        assert!(par.rel_residual < 1e-7, "par residual {}", par.rel_residual);
        let dx = par
            .x
            .iter()
            .zip(&seq.x)
            .map(|(a, c)| (a - c).abs())
            .fold(0.0, f64::max);
        assert!(dx < 1e-6, "par vs seq drifted {dx}");
    }

    #[test]
    fn sell_operator_converges_too() {
        let mat = matgen::banded(256, 5);
        let coloring = auto(&mat, 4);
        let cs = ColoredSell::build(&mat, &coloring, 8, 32);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        let op = SweepMat::Sell(&cs);
        let opts = CarpOptions {
            threads: 3,
            ..Default::default()
        };
        let out = carp_cg(&op, &norms, &b, &opts);
        assert!(out.converged);
        assert!(out.rel_residual < 1e-7, "residual {}", out.rel_residual);
    }

    #[test]
    fn adaptive_picks_a_format_and_solves() {
        let mat = matgen::banded(128, 3);
        let coloring = auto(&mat, 2);
        let cs = ColoredSell::build(&mat, &coloring, 4, 16);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        let csr_op = SweepMat::Csr {
            mat: &mat,
            coloring: &coloring,
        };
        let sell_op = SweepMat::Sell(&cs);
        let opts = CarpOptions {
            threads: 2,
            ..Default::default()
        };
        for _ in 0..3 {
            let (out, which) = carp_cg_adaptive(&csr_op, &sell_op, &norms, &b, &opts);
            assert!(which < 2);
            assert!(out.converged);
            assert!(out.rel_residual < 1e-7);
        }
    }
}
