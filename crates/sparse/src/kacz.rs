//! Multi-colored Kaczmarz sweeps (KACZ), over CSR and SELL-C-σ.
//!
//! One Kaczmarz step projects the iterate onto row `i`'s hyperplane:
//!
//! ```text
//! x ← x + ω · (b_i − ⟨a_i, x⟩) / ‖a_i‖² · a_i
//! ```
//!
//! A sweep applies the step to every row once, in order; the sweep is
//! sequential by construction because step `i+1` reads what step `i`
//! wrote. A [`Coloring`] breaks exactly that
//! chain: within one phase, the parallel blocks touch pairwise-disjoint
//! column sets (proved by `Coloring::validate`), so the projections of
//! concurrent blocks read and write *disjoint* entries of `x` — any
//! thread interleaving produces **bitwise** the result of the
//! sequential sweep in the same permuted order. That makes the
//! verification contract exact, not approximate: every parallel front
//! end here is tested bitwise against [`sweep_seq`] on the matching
//! order ([`SweepMat::sweep_order`]).
//!
//! The worksharing loops run `schedule(runtime)` by default and are
//! named `site("kacz")`, so with `OMP_SCHEDULE=auto` the romp-tune
//! learner picks the chunking per phase shape — the GHOST
//! `sell_kacz_rb` kernels' `#pragma omp parallel for schedule(runtime)`
//! made adaptive.

use crate::color::Coloring;
use crate::csr::Csr;
use crate::sell::{Sell, PAD};
use romp_core::prelude::*;
use romp_core::slice::SharedSlice;

/// Sweep direction. A backward sweep visits rows in exactly the
/// reverse of the forward order (phases, blocks-in-unit and
/// rows-in-block all reversed), which is what makes the double sweep
/// (DKSWP) operator symmetric for CARP-CG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Sweep rows in the coloring's order.
    Forward,
    /// Sweep rows in the exact reverse order.
    Backward,
}

/// The tuned-site name every KACZ worksharing loop carries.
pub const KACZ_SITE: &str = "kacz";

/// Project `x` onto row `row`'s hyperplane (serial `&mut` variant).
#[inline]
pub fn project_row(mat: &Csr, norms: &[f64], row: usize, x: &mut [f64], b: &[f64], omega: f64) {
    let nrm = norms[row];
    if nrm == 0.0 {
        return;
    }
    let (cols, vals) = mat.row(row);
    let mut dot = 0.0;
    for (&c, &v) in cols.iter().zip(vals) {
        dot += v * x[c];
    }
    let scale = omega * (b[row] - dot) / nrm;
    for (&c, &v) in cols.iter().zip(vals) {
        x[c] += scale * v;
    }
}

/// [`project_row`] against a shared view of `x`.
///
/// # Safety
///
/// No other thread may concurrently access any column of `row` — the
/// obligation a validated [`Coloring`] discharges for rows of
/// concurrent blocks within one phase.
#[inline]
unsafe fn project_row_shared(
    mat: &Csr,
    norms: &[f64],
    row: usize,
    x: &SharedSlice<'_, f64>,
    b: &[f64],
    omega: f64,
) {
    let nrm = norms[row];
    if nrm == 0.0 {
        return;
    }
    let (cols, vals) = mat.row(row);
    let mut dot = 0.0;
    for (&c, &v) in cols.iter().zip(vals) {
        // SAFETY: caller guarantees exclusivity of this row's columns.
        dot += v * unsafe { x.read(c) };
    }
    let scale = omega * (b[row] - dot) / nrm;
    for (&c, &v) in cols.iter().zip(vals) {
        // SAFETY: as above.
        unsafe {
            let slot = x.get_mut(c);
            *slot += scale * v;
        }
    }
}

/// The sequential reference: one Kaczmarz sweep over `order` (reversed
/// for [`Direction::Backward`]). Every parallel sweep in this module
/// is bitwise-equal to this on its matching order.
pub fn sweep_seq(
    mat: &Csr,
    norms: &[f64],
    order: &[usize],
    x: &mut [f64],
    b: &[f64],
    omega: f64,
    dir: Direction,
) {
    match dir {
        Direction::Forward => {
            for &row in order {
                project_row(mat, norms, row, x, b, omega);
            }
        }
        Direction::Backward => {
            for &row in order.iter().rev() {
                project_row(mat, norms, row, x, b, omega);
            }
        }
    }
}

/// Sweep one coloring block sequentially (rows reversed when going
/// backward).
///
/// # Safety
///
/// Same column-exclusivity obligation as [`project_row_shared`], for
/// every row of the block.
unsafe fn project_block(
    mat: &Csr,
    norms: &[f64],
    rows: &[usize],
    x: &SharedSlice<'_, f64>,
    b: &[f64],
    omega: f64,
    dir: Direction,
) {
    match dir {
        Direction::Forward => {
            for &row in rows {
                // SAFETY: forwarded obligation.
                unsafe { project_row_shared(mat, norms, row, x, b, omega) };
            }
        }
        Direction::Backward => {
            for &row in rows.iter().rev() {
                // SAFETY: forwarded obligation.
                unsafe { project_row_shared(mat, norms, row, x, b, omega) };
            }
        }
    }
}

/// In-region colored sweep over CSR: one worksharing loop per phase
/// (blocks are the parallel units), `site("kacz")` named, construct
/// barriers separating phases. This is the building block CARP-CG
/// calls from inside its single long-lived region.
#[allow(clippy::too_many_arguments)] // mirrors the OpenMP kernel signature
pub fn sweep_csr_ctx(
    ctx: &ThreadCtx,
    mat: &Csr,
    norms: &[f64],
    coloring: &Coloring,
    x: &SharedSlice<'_, f64>,
    b: &[f64],
    omega: f64,
    dir: Direction,
    sched: Schedule,
) {
    let phases = coloring.nphases();
    for i in 0..phases {
        let p = match dir {
            Direction::Forward => i,
            Direction::Backward => phases - 1 - i,
        };
        let blocks = coloring.phase_blocks(p);
        let base = blocks.start;
        let _site = romp_core::runtime::tune::site_override(KACZ_SITE);
        ctx.ws_for(0..blocks.len(), sched, false, |u| {
            // SAFETY: blocks of one phase have disjoint column
            // footprints (Coloring::validate), so this block's columns
            // are untouched by every concurrent iteration; the
            // construct barrier orders phases.
            unsafe { project_block(mat, norms, coloring.block_rows(base + u), x, b, omega, dir) };
        });
    }
}

/// Colored sweep over CSR, builder front end: forks a team per phase
/// (`par_for(...).site("kacz")`), the fork-join pair standing in for
/// the phase barrier.
#[allow(clippy::too_many_arguments)] // mirrors the OpenMP kernel signature
pub fn sweep_csr_builder(
    mat: &Csr,
    norms: &[f64],
    coloring: &Coloring,
    x: &mut [f64],
    b: &[f64],
    omega: f64,
    dir: Direction,
    threads: usize,
    sched: Schedule,
) {
    let view = SharedSlice::new(x);
    let phases = coloring.nphases();
    for i in 0..phases {
        let p = match dir {
            Direction::Forward => i,
            Direction::Backward => phases - 1 - i,
        };
        let blocks = coloring.phase_blocks(p);
        let base = blocks.start;
        par_for(0..blocks.len())
            .num_threads(threads)
            .schedule(sched)
            .site(KACZ_SITE)
            .run(|u| {
                // SAFETY: same-phase blocks are column-disjoint
                // (Coloring::validate); the join publishes the phase.
                unsafe {
                    project_block(
                        mat,
                        norms,
                        coloring.block_rows(base + u),
                        &view,
                        b,
                        omega,
                        dir,
                    )
                };
            });
    }
}

/// Colored sweep over CSR, macro front end: `omp_parallel!` region with
/// one `omp_for!(schedule(runtime), site("kacz"))` construct per phase.
#[allow(clippy::too_many_arguments)] // mirrors the OpenMP kernel signature
pub fn sweep_csr_macro(
    mat: &Csr,
    norms: &[f64],
    coloring: &Coloring,
    x: &mut [f64],
    b: &[f64],
    omega: f64,
    dir: Direction,
    threads: usize,
) {
    let view = SharedSlice::new(x);
    let phases = coloring.nphases();
    omp_parallel!(num_threads(threads), |ctx| {
        for i in 0..phases {
            let p = match dir {
                Direction::Forward => i,
                Direction::Backward => phases - 1 - i,
            };
            let blocks = coloring.phase_blocks(p);
            let base = blocks.start;
            omp_for!(
                ctx,
                schedule(runtime),
                site("kacz"),
                for u in 0..(blocks.len()) {
                    // SAFETY: same-phase blocks are column-disjoint
                    // (Coloring::validate); the construct barrier
                    // orders phases.
                    unsafe {
                        project_block(
                            mat,
                            norms,
                            coloring.block_rows(base + u),
                            &view,
                            b,
                            omega,
                            dir,
                        )
                    };
                }
            );
        }
    });
}

/// A SELL-C-σ matrix paired with the coloring that laid it out: the
/// chunks of each parallel unit are contiguous and never mix rows of
/// different units, so a unit sweep is a dense run of tiles.
#[derive(Debug, Clone)]
pub struct ColoredSell {
    /// The SELL-C-σ storage (rows laid out in coloring order, chunks
    /// aligned to unit boundaries).
    pub sell: Sell,
    /// Parallel units as `(first_chunk, end_chunk)` ranges, grouped by
    /// phase through `phase_unit_ptr`.
    unit_chunks: Vec<(usize, usize)>,
    /// Phase `p` owns units `phase_unit_ptr[p]..phase_unit_ptr[p+1]`.
    phase_unit_ptr: Vec<usize>,
}

impl ColoredSell {
    /// Lay `mat` out in SELL-C-σ form aligned to `coloring`:
    /// multicolorings (singleton blocks) segment by *phase* — any chunk
    /// of a phase is a parallel unit, since all its rows share a color
    /// — while zonings segment by *block* (a unit is a zone's chunk
    /// run, swept sequentially inside). σ-sorting stays within a
    /// segment, so it can only reorder rows that are already
    /// interchangeable.
    pub fn build(mat: &Csr, coloring: &Coloring, c: usize, sigma: usize) -> ColoredSell {
        debug_assert_eq!(coloring.validate(mat), Ok(()));
        let singleton = coloring.singleton_blocks();
        let boundaries: Vec<usize> = if singleton {
            coloring.phase_boundaries()
        } else {
            coloring.block_boundaries().to_vec()
        };
        let sell = Sell::from_csr_ordered(mat, c, sigma, &coloring.order, &boundaries);
        let mut unit_chunks = Vec::new();
        let mut phase_unit_ptr = vec![0usize];
        if singleton {
            // Segment s == phase s: every chunk is its own unit.
            for s in 0..coloring.nphases() {
                let (c0, c1) = (sell.segment_chunk_ptr[s], sell.segment_chunk_ptr[s + 1]);
                for ch in c0..c1 {
                    unit_chunks.push((ch, ch + 1));
                }
                phase_unit_ptr.push(unit_chunks.len());
            }
        } else {
            // Segment b == block b: a unit is the block's chunk run.
            for p in 0..coloring.nphases() {
                for blk in coloring.phase_blocks(p) {
                    unit_chunks
                        .push((sell.segment_chunk_ptr[blk], sell.segment_chunk_ptr[blk + 1]));
                }
                phase_unit_ptr.push(unit_chunks.len());
            }
        }
        ColoredSell {
            sell,
            unit_chunks,
            phase_unit_ptr,
        }
    }

    /// Number of barrier phases.
    pub fn nphases(&self) -> usize {
        self.phase_unit_ptr.len() - 1
    }

    /// The order a sequential reference must sweep in to match this
    /// layout bitwise (slot order, padding skipped).
    pub fn sweep_order(&self) -> Vec<usize> {
        self.sell.sweep_order()
    }

    /// Sweep one unit's chunk run sequentially (everything reversed
    /// when going backward).
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access any column touched by
    /// the unit's rows.
    unsafe fn project_unit(
        &self,
        unit: usize,
        norms: &[f64],
        x: &SharedSlice<'_, f64>,
        b: &[f64],
        omega: f64,
        dir: Direction,
    ) {
        let (c0, c1) = self.unit_chunks[unit];
        let s = &self.sell;
        let slot = |ch: usize, lane: usize| {
            let row = s.slot_row[ch * s.c + lane];
            if row == PAD {
                return;
            }
            let nrm = norms[row];
            if nrm == 0.0 {
                return;
            }
            let base = s.chunk_ptr[ch];
            let len = s.slot_len[ch * s.c + lane];
            let mut dot = 0.0;
            for j in 0..len {
                let idx = base + j * s.c + lane;
                // SAFETY: forwarded obligation (unit exclusivity).
                dot += s.vals[idx] * unsafe { x.read(s.cols[idx]) };
            }
            let scale = omega * (b[row] - dot) / nrm;
            for j in 0..len {
                let idx = base + j * s.c + lane;
                // SAFETY: as above.
                unsafe {
                    let cell = x.get_mut(s.cols[idx]);
                    *cell += scale * s.vals[idx];
                }
            }
        };
        match dir {
            Direction::Forward => {
                for ch in c0..c1 {
                    for lane in 0..s.c {
                        slot(ch, lane);
                    }
                }
            }
            Direction::Backward => {
                for ch in (c0..c1).rev() {
                    for lane in (0..s.c).rev() {
                        slot(ch, lane);
                    }
                }
            }
        }
    }

    /// In-region colored sweep over the SELL tiles: one `site("kacz")`
    /// worksharing loop per phase, units as iterations.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_ctx(
        &self,
        ctx: &ThreadCtx,
        norms: &[f64],
        x: &SharedSlice<'_, f64>,
        b: &[f64],
        omega: f64,
        dir: Direction,
        sched: Schedule,
    ) {
        let phases = self.nphases();
        for i in 0..phases {
            let p = match dir {
                Direction::Forward => i,
                Direction::Backward => phases - 1 - i,
            };
            let units = self.phase_unit_ptr[p]..self.phase_unit_ptr[p + 1];
            let base = units.start;
            let _site = romp_core::runtime::tune::site_override(KACZ_SITE);
            ctx.ws_for(0..units.len(), sched, false, |u| {
                // SAFETY: units of one phase cover column-disjoint row
                // sets (Coloring::validate on the layout's coloring);
                // the construct barrier orders phases.
                unsafe { self.project_unit(base + u, norms, x, b, omega, dir) };
            });
        }
    }

    /// Colored sweep, builder front end (fork-join per phase).
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_builder(
        &self,
        norms: &[f64],
        x: &mut [f64],
        b: &[f64],
        omega: f64,
        dir: Direction,
        threads: usize,
        sched: Schedule,
    ) {
        let view = SharedSlice::new(x);
        let phases = self.nphases();
        for i in 0..phases {
            let p = match dir {
                Direction::Forward => i,
                Direction::Backward => phases - 1 - i,
            };
            let units = self.phase_unit_ptr[p]..self.phase_unit_ptr[p + 1];
            let base = units.start;
            par_for(0..units.len())
                .num_threads(threads)
                .schedule(sched)
                .site(KACZ_SITE)
                .run(|u| {
                    // SAFETY: same-phase units are column-disjoint; the
                    // join publishes the phase.
                    unsafe { self.project_unit(base + u, norms, &view, b, omega, dir) };
                });
        }
    }
}

/// A sweepable operator: CSR + coloring, or a coloring-aligned
/// SELL-C-σ layout. CARP-CG is format-generic through this (and the
/// variant registry picks the format at run time).
#[derive(Debug, Clone, Copy)]
pub enum SweepMat<'a> {
    /// Sweep the CSR storage in coloring order.
    Csr {
        /// The matrix.
        mat: &'a Csr,
        /// Its proven row partition.
        coloring: &'a Coloring,
    },
    /// Sweep the SELL-C-σ tiles.
    Sell(&'a ColoredSell),
}

impl SweepMat<'_> {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        match self {
            SweepMat::Csr { mat, .. } => mat.n,
            SweepMat::Sell(cs) => cs.sell.n,
        }
    }

    /// The sequential-reference sweep order matching this operator
    /// bitwise.
    pub fn sweep_order(&self) -> Vec<usize> {
        match self {
            SweepMat::Csr { coloring, .. } => coloring.order.clone(),
            SweepMat::Sell(cs) => cs.sweep_order(),
        }
    }

    /// Serial `A·x` (for residual checks; format-dispatched).
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        match self {
            SweepMat::Csr { mat, .. } => mat.mul(x),
            SweepMat::Sell(cs) => {
                let mut y = vec![0.0; cs.sell.n];
                cs.sell.spmv_serial(x, &mut y);
                y
            }
        }
    }

    /// In-region colored sweep (dispatches to the format's kernel).
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_ctx(
        &self,
        ctx: &ThreadCtx,
        norms: &[f64],
        x: &SharedSlice<'_, f64>,
        b: &[f64],
        omega: f64,
        dir: Direction,
        sched: Schedule,
    ) {
        match self {
            SweepMat::Csr { mat, coloring } => {
                sweep_csr_ctx(ctx, mat, norms, coloring, x, b, omega, dir, sched)
            }
            SweepMat::Sell(cs) => cs.sweep_ctx(ctx, norms, x, b, omega, dir, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{greedy_multicolor, red_black_zones};
    use crate::matgen;

    fn setup(n: usize) -> (Csr, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mat = matgen::banded(n, 3);
        let norms = mat.row_norms_sq();
        let xt = matgen::x_true(n);
        let b = mat.mul(&xt);
        let x0: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.25).collect();
        (mat, norms, b, x0)
    }

    #[test]
    fn colored_csr_sweep_is_bitwise_sequential() {
        let (mat, norms, b, x0) = setup(97);
        let coloring = greedy_multicolor(&mat);
        for dir in [Direction::Forward, Direction::Backward] {
            let mut want = x0.clone();
            sweep_seq(&mat, &norms, &coloring.order, &mut want, &b, 1.0, dir);
            for threads in [1, 2, 4] {
                let mut got = x0.clone();
                sweep_csr_builder(
                    &mat,
                    &norms,
                    &coloring,
                    &mut got,
                    &b,
                    1.0,
                    dir,
                    threads,
                    Schedule::dynamic_chunk(1),
                );
                assert_eq!(got, want, "builder threads={threads} dir={dir:?}");
                let mut got_m = x0.clone();
                sweep_csr_macro(&mat, &norms, &coloring, &mut got_m, &b, 1.0, dir, threads);
                assert_eq!(got_m, want, "macro threads={threads} dir={dir:?}");
            }
        }
    }

    #[test]
    fn zoned_sell_sweep_is_bitwise_sequential() {
        let (mat, norms, b, x0) = setup(128);
        let coloring = red_black_zones(&mat, 4).expect("banded zones");
        let cs = ColoredSell::build(&mat, &coloring, 4, 8);
        let order = cs.sweep_order();
        for dir in [Direction::Forward, Direction::Backward] {
            let mut want = x0.clone();
            sweep_seq(&mat, &norms, &order, &mut want, &b, 1.0, dir);
            for threads in [1, 3] {
                let mut got = x0.clone();
                cs.sweep_builder(&norms, &mut got, &b, 1.0, dir, threads, Schedule::guided());
                assert_eq!(got, want, "sell threads={threads} dir={dir:?}");
            }
        }
    }

    #[test]
    fn multicolored_sell_matches_its_reference() {
        let (mat, norms, b, x0) = setup(75);
        let coloring = greedy_multicolor(&mat);
        let cs = ColoredSell::build(&mat, &coloring, 4, 16);
        let order = cs.sweep_order();
        let mut want = x0.clone();
        sweep_seq(&mat, &norms, &order, &mut want, &b, 1.0, Direction::Forward);
        let mut got = x0.clone();
        cs.sweep_builder(
            &norms,
            &mut got,
            &b,
            1.0,
            Direction::Forward,
            4,
            Schedule::dynamic_chunk(1),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn sweeps_converge_toward_the_solution() {
        let (mat, norms, b, mut x) = setup(60);
        let xt = matgen::x_true(60);
        let coloring = greedy_multicolor(&mat);
        let r0: f64 = {
            let ax = mat.mul(&x);
            ax.iter().zip(&b).map(|(a, bi)| (bi - a) * (bi - a)).sum()
        };
        for _ in 0..50 {
            sweep_csr_builder(
                &mat,
                &norms,
                &coloring,
                &mut x,
                &b,
                1.0,
                Direction::Forward,
                2,
                Schedule::static_block(),
            );
        }
        let r1: f64 = {
            let ax = mat.mul(&x);
            ax.iter().zip(&b).map(|(a, bi)| (bi - a) * (bi - a)).sum()
        };
        assert!(r1 < r0 * 1e-3, "residual {r0} -> {r1} did not drop");
        // And it is heading toward the generating solution.
        let err: f64 = x
            .iter()
            .zip(&xt)
            .map(|(a, t)| (a - t).abs())
            .fold(0.0, f64::max);
        assert!(err < 1.0, "max err {err}");
    }
}
