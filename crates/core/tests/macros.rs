//! End-to-end tests of the directive macros over the real runtime.

use romp_core::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn parallel_runs_on_every_thread() {
    let seen = Mutex::new(Vec::new());
    omp_parallel!(num_threads(4), |ctx| {
        seen.lock().unwrap().push(ctx.thread_num());
    });
    let mut v = seen.into_inner().unwrap();
    v.sort_unstable();
    assert_eq!(v, vec![0, 1, 2, 3]);
}

#[test]
fn parallel_no_clauses() {
    let hits = AtomicUsize::new(0);
    omp_parallel!(|ctx| {
        assert!(ctx.num_threads() >= 1);
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.load(Ordering::Relaxed) >= 1);
}

#[test]
fn parallel_if_clause_false_serializes() {
    omp_parallel!(num_threads(8), if(false), |ctx| {
        assert_eq!(ctx.num_threads(), 1);
    });
}

#[test]
fn firstprivate_clones_per_thread() {
    let v = vec![1, 2, 3];
    let sum = AtomicUsize::new(0);
    omp_parallel!(num_threads(3), firstprivate(v), |_ctx| {
        // Each thread owns a private clone it may mutate freely.
        let mut v = v; // (already a clone; reassert ownership for push)
        v.push(4);
        sum.fetch_add(v.iter().sum::<usize>(), Ordering::Relaxed);
    });
    assert_eq!(sum.load(Ordering::Relaxed), 3 * 10);
}

#[test]
fn private_declares_uninitialized_copy() {
    let x = 42i32; // outer `x` must remain untouched
    let witness = AtomicI64::new(0);
    omp_parallel!(num_threads(2), private(x), |_ctx| {
        x = 7; // deferred initialization of the private copy
        witness.fetch_add(x as i64, Ordering::Relaxed);
    });
    assert_eq!(witness.load(Ordering::Relaxed), 14);
    assert_eq!(x, 42);
}

#[test]
fn shared_and_default_clauses_are_accepted() {
    let data = vec![1u64; 100];
    let total = AtomicUsize::new(0);
    omp_parallel!(
        num_threads(2),
        default(shared),
        shared(data, total),
        |ctx| {
            omp_for!(
                ctx,
                for i in 0..100 {
                    total.fetch_add(data[i] as usize, Ordering::Relaxed);
                }
            );
        }
    );
    assert_eq!(total.load(Ordering::Relaxed), 100);
}

#[test]
fn omp_for_all_schedules_cover_exactly() {
    for n in [0usize, 1, 17, 1000] {
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        omp_parallel!(num_threads(4), |ctx| {
            omp_for!(ctx, schedule(static), for i in 0..(n) { hits[i].fetch_add(1, Ordering::Relaxed); });
            omp_for!(ctx, schedule(static, 7), for i in 0..(n) { hits[i].fetch_add(1, Ordering::Relaxed); });
            omp_for!(
                ctx,
                schedule(dynamic),
                for i in 0..(n) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
            omp_for!(
                ctx,
                schedule(dynamic, 16),
                for i in 0..(n) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
            omp_for!(
                ctx,
                schedule(guided),
                for i in 0..(n) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
            omp_for!(
                ctx,
                schedule(guided, 4),
                for i in 0..(n) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
            omp_for!(
                ctx,
                schedule(runtime),
                for i in 0..(n) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
            omp_for!(
                ctx,
                schedule(auto),
                for i in 0..(n) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 8),
            "n={n}: some index not hit once per schedule"
        );
    }
}

#[test]
fn omp_for_nowait_allows_overlap() {
    // Just exercises the nowait path for correctness (coverage, no hang).
    let a = AtomicUsize::new(0);
    let b = AtomicUsize::new(0);
    omp_parallel!(num_threads(4), |ctx| {
        omp_for!(
            ctx,
            schedule(dynamic, 1),
            nowait,
            for _i in 0..64 {
                a.fetch_add(1, Ordering::Relaxed);
            }
        );
        omp_for!(
            ctx,
            schedule(dynamic, 1),
            for _i in 0..64 {
                b.fetch_add(1, Ordering::Relaxed);
            }
        );
    });
    assert_eq!(a.load(Ordering::Relaxed), 64);
    assert_eq!(b.load(Ordering::Relaxed), 64);
}

#[test]
fn omp_for_range_expression_form() {
    let data: Vec<usize> = (0..50).collect();
    let total = AtomicUsize::new(0);
    omp_parallel!(num_threads(3), |ctx| {
        omp_for!(
            ctx,
            for i in (0..data.len()) {
                total.fetch_add(data[i], Ordering::Relaxed);
            }
        );
    });
    assert_eq!(total.load(Ordering::Relaxed), 49 * 50 / 2);
}

#[test]
fn omp_for_step_by_form() {
    let hit = Mutex::new(Vec::new());
    omp_parallel!(num_threads(2), |ctx| {
        omp_for!(
            ctx,
            schedule(dynamic),
            for i in (3..20).step_by(4) {
                hit.lock().unwrap().push(i);
            }
        );
    });
    let mut v = hit.into_inner().unwrap();
    v.sort_unstable();
    assert_eq!(v, vec![3, 7, 11, 15, 19]);
}

#[test]
fn omp_for_reduction_combines_across_threads() {
    let data: Vec<i64> = (0..10_000).map(|i| i % 101 - 50).collect();
    let expect: i64 = data.iter().sum();
    let results = Mutex::new(Vec::new());
    omp_parallel!(num_threads(4), |ctx| {
        let mut sum = 0i64;
        omp_for!(ctx, schedule(static), reduction(+ : sum), for i in 0..(data.len()) {
            sum += data[i];
        });
        // All threads observe the combined value.
        results.lock().unwrap().push(sum);
    });
    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|&s| s == expect));
}

#[test]
fn omp_for_reduction_multiple_vars() {
    let results = Mutex::new(Vec::new());
    omp_parallel!(num_threads(3), |ctx| {
        let mut sx = 0.0f64;
        let mut sy = 0.0f64;
        omp_for!(ctx, reduction(+ : sx, sy), for i in 0..1000 {
            sx += i as f64;
            sy += (i * 2) as f64;
        });
        results.lock().unwrap().push((sx, sy));
    });
    for (sx, sy) in results.into_inner().unwrap() {
        assert_eq!(sx, 499_500.0);
        assert_eq!(sy, 999_000.0);
    }
}

#[test]
fn omp_for_reduction_min_max() {
    let data: Vec<i64> = (0..997).map(|i| (i * 7919) % 1009).collect();
    omp_parallel!(num_threads(4), |ctx| {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        omp_for!(ctx, schedule(dynamic, 13), reduction(min : lo), for i in 0..(data.len()) {
            lo = lo.min(data[i]);
        });
        omp_for!(ctx, schedule(guided), reduction(max : hi), for i in 0..(data.len()) {
            hi = hi.max(data[i]);
        });
        assert_eq!(lo, *data.iter().min().unwrap());
        assert_eq!(hi, *data.iter().max().unwrap());
    });
}

#[test]
fn parallel_for_returns_reduction_tuple() {
    let (sum, cnt) = {
        let (sum,) = omp_parallel_for!(
            num_threads(4), schedule(dynamic, 32), reduction(+ : sum = 0i64),
            for i in 0..10000 { sum += i as i64; }
        );
        let (cnt,) = omp_parallel_for!(
            reduction(+ : cnt = 0usize),
            for _i in 0..10000 { cnt += 1; }
        );
        (sum, cnt)
    };
    assert_eq!(sum, 49_995_000);
    assert_eq!(cnt, 10_000);
}

#[test]
fn parallel_for_reduction_init_folded_once() {
    // init is folded exactly once regardless of team size.
    for nt in [1usize, 2, 3, 8] {
        let (s,) = omp_parallel_for!(
            num_threads(nt), reduction(+ : s = 1000i64),
            for i in 0..10 { s += i as i64; }
        );
        assert_eq!(s, 1000 + 45, "team size {nt}");
    }
}

#[test]
fn parallel_for_multiple_reduction_vars() {
    let v: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.37).sin()).collect();
    let (sx, sy) = omp_parallel_for!(
        num_threads(4), schedule(static, 64), reduction(+ : sx = 0.0, sy = 0.0),
        for i in 0..(v.len()) { sx += v[i]; sy += v[i] * v[i]; }
    );
    let ex: f64 = v.iter().sum();
    let ey: f64 = v.iter().map(|x| x * x).sum();
    assert!((sx - ex).abs() < 1e-9);
    assert!((sy - ey).abs() < 1e-9);
}

#[test]
fn parallel_for_without_reduction() {
    let flags: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
    omp_parallel_for!(
        num_threads(4),
        schedule(guided, 2),
        for i in 0..257 {
            flags[i].fetch_add(1, Ordering::Relaxed);
        }
    );
    assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
}

#[test]
fn single_executes_exactly_once() {
    let count = AtomicUsize::new(0);
    omp_parallel!(num_threads(4), |ctx| {
        for _ in 0..10 {
            omp_single!(ctx, {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 10);
}

#[test]
fn single_nowait_executes_exactly_once() {
    let count = AtomicUsize::new(0);
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, nowait, {
            count.fetch_add(1, Ordering::Relaxed);
        });
        ctx.barrier();
    });
    assert_eq!(count.load(Ordering::Relaxed), 1);
}

#[test]
fn master_runs_on_thread_zero_only() {
    let who = Mutex::new(Vec::new());
    omp_parallel!(num_threads(4), |ctx| {
        omp_master!(ctx, {
            who.lock().unwrap().push(ctx.thread_num());
        });
        ctx.barrier();
    });
    assert_eq!(*who.lock().unwrap(), vec![0]);
}

#[test]
fn critical_sections_serialize() {
    let mut counter = 0u64;
    let cref = &mut counter as *mut u64 as usize;
    omp_parallel!(num_threads(4), |_ctx| {
        for _ in 0..10_000 {
            omp_critical!(bump_counter, {
                // Deliberate unsynchronized access, protected by the
                // named critical section.
                unsafe { *(cref as *mut u64) += 1 };
            });
        }
    });
    assert_eq!(counter, 40_000);
}

#[test]
fn sections_each_run_once() {
    let a = AtomicUsize::new(0);
    let b = AtomicUsize::new(0);
    let c = AtomicUsize::new(0);
    omp_parallel!(num_threads(2), |ctx| {
        omp_sections!(ctx,
            { a.fetch_add(1, Ordering::Relaxed); }
            { b.fetch_add(2, Ordering::Relaxed); }
            { c.fetch_add(3, Ordering::Relaxed); }
        );
    });
    assert_eq!(a.load(Ordering::Relaxed), 1);
    assert_eq!(b.load(Ordering::Relaxed), 2);
    assert_eq!(c.load(Ordering::Relaxed), 3);
}

#[test]
fn sections_more_sections_than_threads() {
    let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
    omp_parallel!(num_threads(2), |ctx| {
        omp_sections!(ctx, nowait,
            { hits[0].fetch_add(1, Ordering::Relaxed); }
            { hits[1].fetch_add(1, Ordering::Relaxed); }
            { hits[2].fetch_add(1, Ordering::Relaxed); }
            { hits[3].fetch_add(1, Ordering::Relaxed); }
            { hits[4].fetch_add(1, Ordering::Relaxed); }
        );
        ctx.barrier();
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn tasks_execute_with_taskwait() {
    let done = AtomicUsize::new(0);
    let done = &done; // tasks capture by move; move the reference
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, {
            for _ in 0..100 {
                omp_task!(ctx, {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            omp_taskwait!(ctx);
            assert_eq!(done.load(Ordering::Relaxed), 100);
        });
    });
    assert_eq!(done.load(Ordering::Relaxed), 100);
}

#[test]
fn tasks_drain_at_region_end_without_taskwait() {
    let done = AtomicUsize::new(0);
    let done = &done; // tasks capture by move; move the reference
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, nowait, {
            for _ in 0..50 {
                omp_task!(ctx, {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(done.load(Ordering::Relaxed), 50);
}

#[test]
fn task_if_false_runs_inline() {
    // Task closures must outlive the region (`'env`), so the witness
    // lives outside; one slot per thread.
    let ran_on: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let ran_on = &ran_on;
    omp_parallel!(num_threads(2), |ctx| {
        let me = romp_core::omp_get_thread_num();
        omp_task!(ctx, if(false), {
            ran_on[me].store(romp_core::omp_get_thread_num(), Ordering::Relaxed);
        });
        assert_eq!(
            ran_on[me].load(Ordering::Relaxed),
            me,
            "undeferred task runs inline on the encountering thread"
        );
    });
}

#[test]
fn taskgroup_waits_for_nested_tasks() {
    let done = AtomicUsize::new(0);
    let done = &done; // tasks capture by move; move the reference
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, {
            omp_taskgroup!(ctx, {
                for _ in 0..10 {
                    omp_task!(ctx, {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(done.load(Ordering::Relaxed), 10, "taskgroup drained");
        });
    });
}

#[test]
fn taskloop_covers_range_exactly() {
    let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
    let hits = &hits;
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, {
            omp_taskloop!(
                ctx,
                grainsize(13),
                for i in (0..500) {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            );
            // The implicit taskgroup means everything is done here.
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    });
}

#[test]
fn taskloop_default_grainsize() {
    let total = AtomicUsize::new(0);
    let total = &total;
    omp_parallel!(num_threads(3), |ctx| {
        omp_single!(ctx, {
            omp_taskloop!(
                ctx,
                for i in (10..110) {
                    total.fetch_add(i, Ordering::Relaxed);
                }
            );
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), (10..110).sum::<usize>());
}

#[test]
fn barrier_macro_synchronizes_phases() {
    let phase: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
    omp_parallel!(num_threads(4), |ctx| {
        phase[0].fetch_add(1, Ordering::SeqCst);
        omp_barrier!(ctx);
        assert_eq!(phase[0].load(Ordering::SeqCst), 4);
        phase[1].fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(phase[1].load(Ordering::SeqCst), 4);
}

#[test]
fn nested_constructs_compose() {
    // parallel -> for -> critical inside, then single + sections.
    let acc = AtomicI64::new(0);
    omp_parallel!(num_threads(4), |ctx| {
        omp_for!(
            ctx,
            schedule(dynamic, 8),
            for i in 0..256 {
                if i % 64 == 0 {
                    omp_critical!({
                        acc.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
        );
        omp_single!(ctx, {
            acc.fetch_add(100, Ordering::Relaxed);
        });
    });
    assert_eq!(acc.load(Ordering::Relaxed), 4 + 100);
}

#[test]
fn ordered_loop_runs_in_iteration_order() {
    let order = Mutex::new(Vec::new());
    omp_parallel!(num_threads(4), |ctx| {
        ctx.ws_for_ordered(0..50, Schedule::dynamic_chunk(3), false, |i, ord| {
            omp_ordered!(ord, {
                order.lock().unwrap().push(i);
            });
        });
    });
    let v = order.into_inner().unwrap();
    assert_eq!(v, (0..50).collect::<Vec<_>>());
}

#[test]
fn reduction_all_operators() {
    let (s,) = omp_parallel_for!(num_threads(3), reduction(* : s = 1u64),
        for i in 1..10 { s *= i as u64; });
    assert_eq!(s, 362_880);

    let (band,) = omp_parallel_for!(num_threads(3), reduction(& : band = !0u32),
        for i in 0..8 { band &= !(1 << i) | 0xFF00; });
    assert_eq!(band, 0xFFFF_FF00);

    let (bor,) = omp_parallel_for!(num_threads(3), reduction(| : bor = 0u32),
        for i in 0..8 { bor |= 1 << i; });
    assert_eq!(bor, 0xFF);

    let (bxor,) = omp_parallel_for!(num_threads(3), reduction(^ : bxor = 0u32),
        for i in 0..8 { bxor ^= 1 << i; });
    assert_eq!(bxor, 0xFF);

    let (all,) = omp_parallel_for!(num_threads(3), reduction(&& : all = true),
        for i in 0..100 { all = all && (i < 100); });
    assert!(all);

    let (any,) = omp_parallel_for!(num_threads(3), reduction(|| : any = false),
        for i in 0..100 { any = any || (i == 73); });
    assert!(any);
}

#[test]
fn step_clause_strides_signed_spaces() {
    // Upward stride.
    let seen = Mutex::new(Vec::new());
    omp_parallel!(num_threads(3), |ctx| {
        omp_for!(
            ctx,
            schedule(dynamic),
            step(3),
            for i in 0..10 {
                seen.lock().unwrap().push(i);
            }
        );
    });
    let mut v = seen.into_inner().unwrap();
    v.sort_unstable();
    assert_eq!(v, vec![0i64, 3, 6, 9]);

    // Downward stride over negative ground.
    let seen = Mutex::new(Vec::new());
    omp_parallel!(num_threads(4), |ctx| {
        omp_for!(
            ctx,
            step(-4),
            for i in 5..(-7) {
                seen.lock().unwrap().push(i);
            }
        );
    });
    let mut v = seen.into_inner().unwrap();
    v.sort_unstable();
    assert_eq!(v, vec![-3i64, 1, 5]);
}

#[test]
fn parallel_for_step_clause() {
    let sum = AtomicI64::new(0);
    omp_parallel_for!(
        num_threads(4),
        schedule(guided),
        step(7),
        for i in 0..100 {
            sum.fetch_add(i, Ordering::Relaxed);
        }
    );
    assert_eq!(
        sum.load(Ordering::Relaxed),
        (0..100).step_by(7).sum::<usize>() as i64
    );
}

#[test]
fn collapse2_tuple_header_covers_rectangle() {
    let hits: Vec<AtomicUsize> = (0..12 * 9).map(|_| AtomicUsize::new(0)).collect();
    omp_parallel_for!(
        num_threads(4),
        schedule(dynamic, 5),
        collapse(2),
        for (i, j) in (0..12, 0..9) {
            hits[i * 9 + j].fetch_add(1, Ordering::Relaxed);
        }
    );
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn collapse3_tuple_header_inside_region() {
    let hits: Vec<AtomicUsize> = (0..3 * 4 * 5).map(|_| AtomicUsize::new(0)).collect();
    omp_parallel!(num_threads(3), |ctx| {
        omp_for!(
            ctx,
            collapse(3),
            schedule(guided),
            for (i, j, k) in (0..3, 0..4, 0..5) {
                hits[(i * 4 + j) * 5 + k].fetch_add(1, Ordering::Relaxed);
            }
        );
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn collapse2_with_reduction_matches_serial() {
    let (s,) = omp_parallel_for!(num_threads(4), collapse(2),
        reduction(+ : s = 0usize),
        for (i, j) in (1..5, 2..6) { s += i * j; });
    let want: usize = (1..5usize)
        .flat_map(|i| (2..6usize).map(move |j| i * j))
        .sum();
    assert_eq!(s, want);
}

#[test]
fn step_with_reduction_inside_region() {
    omp_parallel!(num_threads(4), |ctx| {
        let mut sum = 0i64;
        omp_for!(ctx, step(5), reduction(+ : sum), for i in 0..47 {
            sum += i;
        });
        assert_eq!(sum, (0..47).step_by(5).sum::<usize>() as i64);
    });
}

// ---------------------------------------------------------------------
// Task dependence clauses
// ---------------------------------------------------------------------

#[test]
fn task_depend_chain_serializes() {
    let log = Mutex::new(Vec::new());
    let log = &log;
    let token = 0u8;
    let token = &token;
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, nowait, {
            for step in 0..20 {
                omp_task!(ctx, depend(inout: *token), {
                    log.lock().unwrap().push(step);
                });
            }
        });
    });
    assert_eq!(*log.lock().unwrap(), (0..20).collect::<Vec<_>>());
}

#[test]
fn task_depend_in_out_groups_in_one_clause() {
    let a = AtomicUsize::new(0);
    let b = AtomicUsize::new(0);
    let c = AtomicUsize::new(0);
    let (a, b, c) = (&a, &b, &c);
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, nowait, {
            omp_task!(ctx, depend(out: *a), { a.store(5, Ordering::Relaxed); });
            omp_task!(ctx, depend(out: *b), { b.store(7, Ordering::Relaxed); });
            omp_task!(ctx, depend(in: *a, *b; out: *c), {
                c.store(
                    a.load(Ordering::Relaxed) + b.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
            });
        });
    });
    assert_eq!(c.load(Ordering::Relaxed), 12);
}

#[test]
fn task_depend_separate_clauses_accumulate() {
    let x = AtomicUsize::new(0);
    let y = AtomicUsize::new(0);
    let (x, y) = (&x, &y);
    omp_parallel!(num_threads(2), |ctx| {
        omp_single!(ctx, nowait, {
            omp_task!(ctx, depend(out: *x), { x.store(1, Ordering::Relaxed); });
            omp_task!(ctx, depend(out: *y), { y.store(2, Ordering::Relaxed); });
            omp_task!(ctx, depend(in: *x), depend(in: *y), if(false), {
                // Undeferred reader: both writers must already be done.
                assert_eq!(x.load(Ordering::Relaxed), 1);
                assert_eq!(y.load(Ordering::Relaxed), 2);
            });
        });
    });
}

#[test]
fn task_final_runs_inline() {
    let ran = AtomicUsize::new(usize::MAX);
    let ran = &ran;
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, nowait, {
            let me = omp_get_thread_num();
            omp_task!(ctx, final(true), {
                ran.store(omp_get_thread_num(), Ordering::Relaxed);
            });
            assert_eq!(
                ran.load(Ordering::Relaxed),
                me,
                "final task executes undeferred on the encountering thread"
            );
        });
    });
}

#[test]
fn final_task_descendants_are_included() {
    // A task created while a final task executes must itself run
    // undeferred, even through a nested region's fresh context.
    let order = Mutex::new(Vec::new());
    let order = &order;
    omp_parallel!(num_threads(2), |ctx| {
        omp_single!(ctx, nowait, {
            omp_task!(ctx, final(true), {
                omp_parallel!(num_threads(1), |inner| {
                    omp_task!(inner, {
                        order.lock().unwrap().push("child");
                    });
                    // An included child completed synchronously; a merely
                    // deferred one would drain only at the region end.
                    order.lock().unwrap().push("after-spawn");
                });
            });
        });
    });
    assert_eq!(*order.lock().unwrap(), vec!["child", "after-spawn"]);
}

#[test]
fn taskloop_num_tasks_controls_grain() {
    // Team of one: the implicit taskgroup drains the just-spawned tasks
    // LIFO from the spawner's own deque, so the recorded iteration
    // order exposes the task boundaries directly — num_tasks(4) over
    // 0..1000 must carve exactly 4 tasks of 250 contiguous iterations.
    let order = Mutex::new(Vec::new());
    let order = &order;
    omp_parallel!(num_threads(1), |ctx| {
        omp_single!(ctx, {
            omp_taskloop!(
                ctx,
                num_tasks(4),
                for i in (0..1000) {
                    order.lock().unwrap().push(i);
                }
            );
        });
    });
    let want: Vec<usize> = (750..1000)
        .chain(500..750)
        .chain(250..500)
        .chain(0..250)
        .collect();
    assert_eq!(*order.lock().unwrap(), want);
}

#[test]
fn taskloop_nogroup_defers_to_taskwait() {
    let total = AtomicUsize::new(0);
    let total = &total;
    omp_parallel!(num_threads(4), |ctx| {
        omp_single!(ctx, nowait, {
            omp_taskloop!(
                ctx,
                grainsize(16),
                nogroup,
                for i in (0..256) {
                    total.fetch_add(i, Ordering::Relaxed);
                }
            );
            omp_taskwait!(ctx);
            assert_eq!(total.load(Ordering::Relaxed), (0..256).sum::<usize>());
        });
    });
}

#[test]
fn builder_task_graph_diamond() {
    use romp_core::builder::task;
    let a = AtomicUsize::new(0);
    let b = AtomicUsize::new(0);
    let c = AtomicUsize::new(0);
    let (a, b, c) = (&a, &b, &c);
    parallel().num_threads(4).run(|ctx| {
        ctx.single(true, || {
            task(ctx)
                .depend_out(a)
                .spawn(|| a.store(3, Ordering::Relaxed));
            task(ctx)
                .depend_out(b)
                .spawn(|| b.store(4, Ordering::Relaxed));
            task(ctx).depend_in(a).depend_in(b).depend_out(c).spawn(|| {
                c.store(
                    a.load(Ordering::Relaxed) * b.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                )
            });
        });
    });
    assert_eq!(c.load(Ordering::Relaxed), 12);
}

#[test]
fn final_inclusion_crosses_nested_region_threads() {
    // A final task forks a nested region of two threads; tasks spawned
    // by *either* inner thread must be included (run synchronously on
    // their spawner), because every implicit task of a region forked
    // from a final task is itself final.
    let exec_thread: [AtomicUsize; 2] =
        [AtomicUsize::new(usize::MAX), AtomicUsize::new(usize::MAX)];
    let exec_thread = &exec_thread;
    omp_parallel!(num_threads(2), |ctx| {
        omp_single!(ctx, nowait, {
            omp_task!(ctx, final(true), {
                romp_core::omp_set_max_active_levels(2);
                omp_parallel!(num_threads(2), |inner| {
                    let me = inner.thread_num();
                    omp_task!(inner, {
                        exec_thread[me].store(romp_core::omp_get_thread_num(), Ordering::SeqCst);
                    });
                    assert_eq!(
                        exec_thread[me].load(Ordering::SeqCst),
                        me,
                        "task spawned by inner thread {me} was deferred, not included"
                    );
                });
                romp_core::omp_set_max_active_levels(1);
            });
        });
    });
}

#[test]
fn proc_bind_clause_recorded_through_all_front_ends() {
    use romp_core::builder::parallel;
    use romp_core::runtime::{omp_get_proc_bind, ProcBind};

    // Macro front end (bare parallel and combined parallel-for).
    omp_parallel!(num_threads(2), proc_bind(spread), |_ctx| {
        assert_eq!(omp_get_proc_bind(), ProcBind::Spread);
    });
    omp_parallel_for!(
        num_threads(2),
        proc_bind(close),
        for _i in 0..8 {
            assert_eq!(omp_get_proc_bind(), ProcBind::Close);
        }
    );
    // `primary` is the modern spelling of `master`.
    omp_parallel!(proc_bind(primary), num_threads(2), |_ctx| {
        assert_eq!(omp_get_proc_bind(), ProcBind::Master);
    });

    // Builder front end; the clause is also visible on the context.
    parallel()
        .num_threads(2)
        .proc_bind(ProcBind::Close)
        .run(|ctx| {
            assert_eq!(ctx.proc_bind(), ProcBind::Close);
            assert_eq!(omp_get_proc_bind(), ProcBind::Close);
        });

    // Without a clause, the bind-var ICV shows through (default false,
    // but CI also runs this suite under OMP_PROC_BIND=spread).
    let env_bind = romp_core::runtime::icv::current().proc_bind_for_level(0);
    omp_parallel!(num_threads(2), |ctx| {
        assert_eq!(ctx.proc_bind(), env_bind);
    });
}
