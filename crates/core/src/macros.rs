//! OpenMP-style directive macros.
//!
//! The clause syntax deliberately mirrors OpenMP pragma text, the way the
//! paper's comment directives mirror `#pragma omp` lines in C. The
//! correspondence:
//!
//! | OpenMP | romp |
//! |---|---|
//! | `#pragma omp parallel num_threads(4)` + block | `omp_parallel!(num_threads(4), \|ctx\| { … })` |
//! | `#pragma omp parallel for schedule(dynamic,4) reduction(+:s)` | `omp_parallel_for!(schedule(dynamic,4), reduction(+ : s = 0.0), for i in 0..n { … })` |
//! | `#pragma omp for schedule(guided) nowait` | `omp_for!(ctx, schedule(guided), nowait, for i in 0..n { … })` |
//! | `#pragma omp parallel for collapse(2)` + nest | `omp_parallel_for!(collapse(2), for (i, j) in (0..n, 0..m) { … })` |
//! | `#pragma omp for collapse(3)` + nest | `omp_for!(ctx, collapse(3), for (i, j, k) in (0..n, 0..m, 0..p) { … })` |
//! | `for (i = a; i < b; i += s)` loop header | `omp_for!(ctx, step(s), for i in a..b { … })` (`i: i64`; `s` may be negative) |
//! | `#pragma omp teams num_teams(4)` + block | `omp_teams!(num_teams(4), \|ctx\| { … })` |
//! | `#pragma omp single` | `omp_single!(ctx, { … })` |
//! | `#pragma omp master` | `omp_master!(ctx, { … })` |
//! | `#pragma omp critical [(name)]` | `omp_critical!([name,] { … })` |
//! | `#pragma omp barrier` | `omp_barrier!(ctx)` |
//! | `#pragma omp sections` | `omp_sections!(ctx, { … } { … })` |
//! | `#pragma omp task` / `taskwait` | `omp_task!(ctx, { … })` / `omp_taskwait!(ctx)` |
//! | `#pragma omp task depend(in: a) depend(out: b) final(f) if(c)` | `omp_task!(ctx, depend(in: a; out: b), final(f), if(c), { … })` |
//! | `#pragma omp taskloop grainsize(g) num_tasks(n) nogroup` | `omp_taskloop!(ctx, grainsize(g), num_tasks(n), nogroup, for i in (r) { … })` |
//! | `#pragma omp cancel for [if(e)]` | `if omp_cancel!(ctx, for[, if(e)]) { return; }` |
//! | `#pragma omp cancellation point parallel` | `if omp_cancellation_point!(ctx, parallel) { return; }` |
//!
//! ## Data environment
//!
//! * `shared(x, y)` — documentation only: Rust closures already capture
//!   by reference, which *is* `shared`.
//! * `private(x)` — declares a fresh, uninitialized per-thread `x`
//!   shadowing the outer one (assign before use, as in OpenMP).
//! * `firstprivate(x)` — per-thread `x` initialized by `Clone` from the
//!   outer value.
//! * `reduction(op : var …)` — see below.
//!
//! ## Reduction semantics
//!
//! `omp_parallel_for!` takes `reduction(op : var = init, …)` and
//! **returns** the combined values as a tuple (private copies start at
//! the operator identity; `init` is folded exactly once, matching the
//! spec's treatment of the original variable):
//!
//! ```
//! use romp_core::prelude::*;
//! let (sum,) = omp_parallel_for!(
//!     reduction(+ : sum = 0u64),
//!     for i in 0..1000 { sum += i as u64; }
//! );
//! assert_eq!(sum, 499_500);
//! ```
//!
//! `omp_for!` (inside a region) reduces an existing thread-local binding
//! in place; **every thread's incoming value is folded**, so initialize
//! it to the operator identity for standard OpenMP behaviour:
//!
//! ```
//! use romp_core::prelude::*;
//! omp_parallel!(num_threads(4), |ctx| {
//!     let mut sum = 0u64; // identity of `+` on every thread
//!     omp_for!(ctx, schedule(static), reduction(+ : sum),
//!         for i in 0..1000 { sum += i as u64; });
//!     assert_eq!(sum, 499_500); // combined value visible on all threads
//! });
//! ```
//!
//! ## Loop headers
//!
//! Plain headers take three forms, all over `usize`: `for i in lo..hi
//! { … }` where `lo`/`hi` are single tokens or parenthesized
//! expressions, `for i in (range_expr) { … }`, and `for i in
//! (range_expr).step_by(s) { … }`. Two clause forms extend them:
//!
//! * `step(s)` — the OpenMP strided loop: `for i in a..b` then iterates
//!   `a, a+s, …` short of `b`. Bounds and `s` are taken as `i64` (so
//!   negative bounds and downward strides work) and `i` is bound as
//!   `i64`.
//! * `collapse(2)` / `collapse(3)` — with a tuple header
//!   `for (i, j) in (ra, rb) { … }` the loops fuse into one
//!   [`IterSpace`](crate::space::IterSpace) so the schedule balances
//!   across the whole rectangle. The tuple header alone is what
//!   triggers the fusion; the clause documents it (and is validated to
//!   be 1, 2 or 3).
//!
//! Every form lowers through the [`crate::space`] machinery — the same
//! lowering the [`ParFor`](crate::builder::ParFor) builder uses, which
//! `omp_parallel_for!` invokes directly when no per-thread data clause
//! forces an explicit region.
//!
//! ## Adaptive scheduling and the `site` clause
//!
//! `schedule(auto)` is **adaptive** in romp (see `romp_runtime::tune`):
//! the runtime measures the loop and converges on the fastest schedule
//! per call site. Sites are stamped automatically via `#[track_caller]`
//! — every `omp_for!`/`omp_parallel_for!` invocation in user code is
//! its own site. The optional `site("name")` clause names the site
//! explicitly, so loops at different code locations (or across builds)
//! can share learning history:
//!
//! ```
//! use romp_core::prelude::*;
//! omp_parallel_for!(num_threads(2), schedule(auto), site("hot-loop"),
//!     for i in 0..256 { std::hint::black_box(i); });
//! ```
//!
//! A chunk size on `schedule(auto)` or `schedule(runtime)` is rejected
//! at expansion time (OpenMP 5.2 §11.5.3: chunk is only valid for
//! `static`, `dynamic` and `guided`).

/// `parallel` construct. Clauses: `num_threads(e)`, `if(e)`,
/// `default(shared|none)`, `shared(..)`, `private(..)`,
/// `firstprivate(..)`, `proc_bind(kind)`. Body: `|ctx| { … }`.
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits = AtomicUsize::new(0);
/// let base = 10usize;
/// omp_parallel!(num_threads(3), firstprivate(base), |ctx| {
///     // `base` is a per-thread clone here.
///     hits.fetch_add(base + ctx.thread_num(), Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 30 + 0 + 1 + 2);
/// ```
#[macro_export]
macro_rules! omp_parallel {
    ($($t:tt)*) => {
        $crate::__omp_parallel!(@ {$crate::runtime::ForkSpec::new()} [] [] ; $($t)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_parallel {
    // --- clauses ---
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; num_threads($e:expr), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec.num_threads($e)} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; if($e:expr), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec.if_clause($e)} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; default(shared), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; default(none), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; shared($($s:ident),*), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; proc_bind($k:ident), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec.proc_bind($crate::__omp_proc_bind!($k))} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; num_teams($e:expr), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec.teams($e)} [$($fp)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; firstprivate($($v:ident),*), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec} [$($fp)* $($v)*] [$($pv)*] ; $($rest)*)
    };
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; private($($v:ident),*), $($rest:tt)*) => {
        $crate::__omp_parallel!(@ {$spec} [$($fp)*] [$($pv)* $($v)*] ; $($rest)*)
    };
    // --- terminal: the region body ---
    (@ {$spec:expr} [$($fp:ident)*] [$($pv:ident)*] ; |$ctx:ident| $body:block) => {{
        let __romp_spec = $spec;
        $crate::runtime::fork(__romp_spec, |__romp_ctx: &$crate::runtime::ThreadCtx<'_>| {
            $(
                #[allow(unused_mut)]
                let mut $fp = ::std::clone::Clone::clone(&$fp);
            )*
            $(
                #[allow(unused_mut, unused_assignments)]
                let mut $pv;
            )*
            let $ctx = __romp_ctx;
            $body
        });
    }};
}

/// `teams` construct: a league of initial teams, lowered onto an outer
/// parallel region that spreads across the place partition (so nested
/// `parallel` regions inside each team inherit a disjoint slice of the
/// machine — see `romp_runtime::affinity`). Clauses: `num_teams(e)`
/// plus everything [`omp_parallel!`] accepts; an explicit
/// `proc_bind(kind)` overrides the spread default. Body: `|ctx| { … }`;
/// league geometry is reported by `omp_get_num_teams` /
/// `omp_get_team_num`.
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let seen = AtomicUsize::new(0);
/// omp_teams!(num_teams(2), |ctx| {
///     assert_eq!(romp_core::runtime::omp_get_num_teams(), 2);
///     seen.fetch_add(romp_core::runtime::omp_get_team_num() + 1, Ordering::Relaxed);
/// });
/// assert_eq!(seen.load(Ordering::Relaxed), 1 + 2);
/// ```
#[macro_export]
macro_rules! omp_teams {
    ($($t:tt)*) => {
        $crate::__omp_parallel!(@ {{
            let mut __romp_spec = $crate::runtime::ForkSpec::new();
            __romp_spec.league = true;
            __romp_spec
        }} [] [] ; $($t)*)
    };
}

/// Worksharing `for` inside an existing region. Clauses: `schedule(..)`,
/// `nowait`, `reduction(op : var, …)`, `step(e)`, `collapse(2|3)`,
/// `site("name")` (names the `schedule(auto)` autotuner site; see the
/// module docs).
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let total = AtomicU64::new(0);
/// omp_parallel!(num_threads(4), |ctx| {
///     omp_for!(ctx, schedule(dynamic, 16), for i in 0..100 {
///         total.fetch_add(i as u64, Ordering::Relaxed);
///     });
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 4950);
/// ```
#[macro_export]
macro_rules! omp_for {
    ($ctx:ident, $($t:tt)*) => {
        $crate::__omp_for!(@ $ctx {$crate::runtime::Schedule::Static { chunk: ::std::option::Option::None }} {false} {} [] ; $($t)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_for {
    // --- clauses ---
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [$($red:tt)*] ; schedule($($s:tt)*), $($rest:tt)*) => {
        $crate::__omp_for!(@ $ctx {$crate::__omp_sched!($($s)*)} {$nw} {$($step)*} [$($red)*] ; $($rest)*)
    };
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [$($red:tt)*] ; nowait, $($rest:tt)*) => {
        $crate::__omp_for!(@ $ctx {$sched} {true} {$($step)*} [$($red)*] ; $($rest)*)
    };
    // `site("name")`: name this loop's autotuner site. `omp_for!`
    // expands inside the region body, so every team thread installs the
    // thread-local override; the construct consumes it on entry and the
    // guard restores the previous override when the block ends.
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [$($red:tt)*] ; site($s:expr), $($rest:tt)*) => {{
        let _romp_site_guard = $crate::runtime::tune::site_override($s);
        $crate::__omp_for!(@ $ctx {$sched} {$nw} {$($step)*} [$($red)*] ; $($rest)*)
    }};
    (@ $ctx:ident {$sched:expr} {$nw:expr} {} [$($red:tt)*] ; step($e:expr), $($rest:tt)*) => {
        $crate::__omp_for!(@ $ctx {$sched} {$nw} {$e} [$($red)*] ; $($rest)*)
    };
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [$($red:tt)*] ; collapse($n:tt), $($rest:tt)*) => {{
        $crate::__omp_collapse_ok!($n);
        $crate::__omp_for!(@ $ctx {$sched} {$nw} {$($step)*} [$($red)*] ; $($rest)*)
    }};
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [] ; reduction($op:tt : $($var:ident),+), $($rest:tt)*) => {
        $crate::__omp_for!(@ $ctx {$sched} {$nw} {$($step)*} [$op $($var)+] ; $($rest)*)
    };
    // --- terminal without reduction ---
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [] ; $($loop:tt)*) => {
        $crate::__omp_loop_body!($ctx, $sched, $nw, {$($step)*}, $($loop)*)
    };
    // --- terminal with reduction: nowait the loop (the reduction itself
    //     synchronizes), then combine each variable team-wide ---
    (@ $ctx:ident {$sched:expr} {$nw:expr} {$($step:tt)*} [$op:tt $($var:ident)+] ; $($loop:tt)*) => {{
        $crate::__omp_loop_body!($ctx, $sched, true, {$($step)*}, $($loop)*);
        $( $var = $ctx.reduce_value($crate::__red_op!($op), $var); )+
    }};
}

/// Map a `proc_bind(kind)` clause argument onto the runtime's
/// [`ProcBind`](crate::runtime::ProcBind) policy at expansion time
/// (unknown kinds are a compile error, like in a real front end).
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_proc_bind {
    (master) => {
        $crate::runtime::ProcBind::Master
    };
    (primary) => {
        $crate::runtime::ProcBind::Master
    };
    (close) => {
        $crate::runtime::ProcBind::Close
    };
    (spread) => {
        $crate::runtime::ProcBind::Spread
    };
    ($other:ident) => {
        compile_error!("proc_bind(kind) supports master, primary, close or spread")
    };
}

/// Validate a `collapse(n)` clause argument at expansion time. The
/// tuple loop header is what actually selects the fused space; the
/// clause documents intent (and rejects unsupported depths).
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_collapse_ok {
    (1) => {};
    (2) => {};
    (3) => {};
    ($other:tt) => {
        compile_error!("collapse(n) supports n = 1, 2 or 3");
    };
}

/// Lower one accepted loop header onto the [`IterSpace`] machinery in
/// `$crate::space` — the same engine the `ParFor` builder drives. The
/// fourth argument is the `step(..)` clause state: `{}` (absent) or
/// `{expr}`.
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_loop_body {
    // --- collapse(2)/collapse(3) tuple headers ---
    ($ctx:ident, $sched:expr, $nw:expr, {}, for ($i:ident, $j:ident) in ($ra:expr, $rb:expr) $body:block) => {{
        let __romp_ra: ::std::ops::Range<usize> = $ra;
        let __romp_rb: ::std::ops::Range<usize> = $rb;
        $crate::space::ws_space(
            $ctx,
            &$crate::space::collapse2(__romp_ra, __romp_rb),
            $sched,
            $nw,
            |($i, $j)| $body,
        )
    }};
    ($ctx:ident, $sched:expr, $nw:expr, {}, for ($i:ident, $j:ident, $k:ident) in ($ra:expr, $rb:expr, $rc:expr) $body:block) => {{
        let __romp_ra: ::std::ops::Range<usize> = $ra;
        let __romp_rb: ::std::ops::Range<usize> = $rb;
        let __romp_rc: ::std::ops::Range<usize> = $rc;
        $crate::space::ws_space(
            $ctx,
            &$crate::space::collapse3(__romp_ra, __romp_rb, __romp_rc),
            $sched,
            $nw,
            |($i, $j, $k)| $body,
        )
    }};
    // --- `.step_by` header: usize semantics (historic form) ---
    ($ctx:ident, $sched:expr, $nw:expr, {}, for $i:ident in ($range:expr).step_by($s:expr) $body:block) => {{
        let __romp_r: ::std::ops::Range<usize> = $range;
        let __romp_step: usize = $s;
        $crate::space::ws_space(
            $ctx,
            &$crate::space::StridedRange::new(
                __romp_r.start as i64,
                __romp_r.end as i64,
                __romp_step as i64,
            ),
            $sched,
            $nw,
            |__romp_i| {
                let $i = __romp_i as usize;
                $body
            },
        )
    }};
    // --- plain headers: usize ranges, as the directive layer always
    //     accepted (the type pin keeps integer literals inferring) ---
    ($ctx:ident, $sched:expr, $nw:expr, {}, for $i:ident in ($range:expr) $body:block) => {{
        let __romp_r: ::std::ops::Range<usize> = $range;
        $crate::space::ws_space($ctx, &__romp_r, $sched, $nw, |$i| $body)
    }};
    ($ctx:ident, $sched:expr, $nw:expr, {}, for $i:ident in $lo:tt .. $hi:tt $body:block) => {{
        let __romp_r: ::std::ops::Range<usize> = ($lo)..($hi);
        $crate::space::ws_space($ctx, &__romp_r, $sched, $nw, |$i| $body)
    }};
    // --- step(e) clause: signed strided space, `$i: i64` ---
    ($ctx:ident, $sched:expr, $nw:expr, {$step:expr}, for $i:ident in ($range:expr) $body:block) => {{
        let __romp_r = $range;
        $crate::space::ws_space(
            $ctx,
            &$crate::space::StridedRange::new(
                __romp_r.start as i64,
                __romp_r.end as i64,
                ($step) as i64,
            ),
            $sched,
            $nw,
            |$i| $body,
        )
    }};
    ($ctx:ident, $sched:expr, $nw:expr, {$step:expr}, for $i:ident in $lo:tt .. $hi:tt $body:block) => {
        $crate::space::ws_space(
            $ctx,
            &$crate::space::StridedRange::new(($lo) as i64, ($hi) as i64, ($step) as i64),
            $sched,
            $nw,
            |$i| $body,
        )
    };
}

/// Combined `parallel for`. Clauses: `num_threads(e)`, `if(e)`,
/// `proc_bind(kind)`, `schedule(..)`, `default(..)`, `shared(..)`,
/// `firstprivate(..)`, `reduction(op : var = init, …)`, `step(e)`,
/// `collapse(2|3)`, `site("name")` (names the `schedule(auto)`
/// autotuner site; see the module docs for this and the
/// strided/collapsed loop headers).
///
/// With a `reduction` clause the macro **returns the combined values as
/// a tuple** (one element per variable, in clause order):
///
/// ```
/// use romp_core::prelude::*;
/// let v = [3.0f64, -1.0, 7.5, 2.0];
/// let (sum, hi) = {
///     let (sum,) = omp_parallel_for!(reduction(+ : sum = 0.0),
///         for i in 0..4 { sum += v[i]; });
///     let (hi,) = omp_parallel_for!(reduction(max : hi = f64::NEG_INFINITY),
///         for i in 0..4 { hi = hi.max(v[i]); });
///     (sum, hi)
/// };
/// assert_eq!(sum, 11.5);
/// assert_eq!(hi, 7.5);
/// ```
#[macro_export]
macro_rules! omp_parallel_for {
    ($($t:tt)*) => {
        $crate::__omp_parallel_for!(@ {$crate::runtime::ForkSpec::new()} {$crate::runtime::Schedule::Static { chunk: ::std::option::Option::None }} {} {} [] [] ; $($t)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_parallel_for {
    // State: {spec} {sched} {site} {step} [firstprivate] [reduction].
    // The `site` slot rides as explicit state (not a thread-local guard
    // like `omp_for!`'s) because this macro expands on the *master* —
    // the construct itself runs inside the fork closure on every team
    // thread, where a master-side override would be invisible.
    // --- clauses ---
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; num_threads($e:expr), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec.num_threads($e)} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; if($e:expr), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec.if_clause($e)} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; schedule($($s:tt)*), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$crate::__omp_sched!($($s)*)} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; site($s:expr), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$s} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {} [$($fp:ident)*] [$($red:tt)*] ; step($e:expr), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$($site)*} {$e} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; collapse($n:tt), $($rest:tt)*) => {{
        $crate::__omp_collapse_ok!($n);
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    }};
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; proc_bind($k:ident), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec.proc_bind($crate::__omp_proc_bind!($k))} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; default($k:ident), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; shared($($s:ident),*), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$($red:tt)*] ; firstprivate($($v:ident),*), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$($site)*} {$($step)*} [$($fp)* $($v)*] [$($red)*] ; $($rest)*)
    };
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [] ; reduction($op:tt : $($var:ident = $init:expr),+), $($rest:tt)*) => {
        $crate::__omp_parallel_for!(@ {$spec} {$sched} {$($site)*} {$($step)*} [$($fp)*] [$op $(($var $init))+] ; $($rest)*)
    };
    // --- terminal without reduction or firstprivate: straight through
    //     the generic `ParFor` builder ---
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [] [] ; $($loop:tt)*) => {
        $crate::__omp_pf_builder!({$spec} {$sched} {$($site)*} {$($step)*}, $($loop)*)
    };
    // --- terminal with firstprivate (per-thread clones need an
    //     explicit region prologue) ---
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)+] [] ; $($loop:tt)*) => {{
        let __romp_spec = $spec;
        $crate::runtime::fork(__romp_spec, |__romp_ctx: &$crate::runtime::ThreadCtx<'_>| {
            $crate::__omp_site_guard!({$($site)*});
            $(
                #[allow(unused_mut)]
                let mut $fp = ::std::clone::Clone::clone(&$fp);
            )+
            $crate::__omp_loop_body!(__romp_ctx, $sched, true, {$($step)*}, $($loop)*);
        });
    }};
    // --- terminal with reduction: returns the combined tuple ---
    (@ {$spec:expr} {$sched:expr} {$($site:tt)*} {$($step:tt)*} [$($fp:ident)*] [$op:tt $(($var:ident $init:expr))+] ; $($loop:tt)*) => {{
        let __romp_spec = $spec;
        let __romp_out = ::std::sync::Mutex::new(::std::option::Option::None);
        $crate::runtime::fork(__romp_spec, |__romp_ctx: &$crate::runtime::ThreadCtx<'_>| {
            $crate::__omp_site_guard!({$($site)*});
            $(
                #[allow(unused_mut)]
                let mut $fp = ::std::clone::Clone::clone(&$fp);
            )*
            $(
                let mut $var = if __romp_ctx.is_master() {
                    $init
                } else {
                    $crate::runtime::ReduceOp::identity(&$crate::__red_op!($op))
                };
            )+
            $crate::__omp_loop_body!(__romp_ctx, $sched, true, {$($step)*}, $($loop)*);
            $( $var = __romp_ctx.reduce_value($crate::__red_op!($op), $var); )+
            if __romp_ctx.is_master() {
                *__romp_out.lock().unwrap() = ::std::option::Option::Some(($($var),+ ,));
            }
        });
        __romp_out
            .into_inner()
            .unwrap()
            .expect("parallel-for reduction produced a value")
    }};
}

/// Install a `site("…")` autotuner override for the current thread when
/// the site state slot is non-empty; expands to nothing otherwise. The
/// guard binding lives to the end of the enclosing block, covering the
/// worksharing construct that consumes the override.
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_site_guard {
    ({}) => {};
    ({$s:expr}) => {
        let _romp_site_guard = $crate::runtime::tune::site_override($s);
    };
}

/// Apply the `site` state slot to a `ParFor` builder expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_apply_site {
    ($b:expr, {}) => {
        $b
    };
    ($b:expr, {$s:expr}) => {
        $b.site($s)
    };
}

/// Lower a clause-free combined `parallel for` directly onto the
/// generic [`ParFor`](crate::builder::ParFor) builder — the same
/// header grammar as [`__omp_loop_body`].
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_pf_builder {
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {}, for ($i:ident, $j:ident) in ($ra:expr, $rb:expr) $body:block) => {{
        let __romp_ra: ::std::ops::Range<usize> = $ra;
        let __romp_rb: ::std::ops::Range<usize> = $rb;
        $crate::__omp_apply_site!(
            $crate::builder::par_for($crate::space::collapse2(__romp_ra, __romp_rb)),
            {$($site)*}
        )
        .fork_spec($spec)
        .schedule($sched)
        .run(|($i, $j)| $body);
    }};
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {}, for ($i:ident, $j:ident, $k:ident) in ($ra:expr, $rb:expr, $rc:expr) $body:block) => {{
        let __romp_ra: ::std::ops::Range<usize> = $ra;
        let __romp_rb: ::std::ops::Range<usize> = $rb;
        let __romp_rc: ::std::ops::Range<usize> = $rc;
        $crate::__omp_apply_site!(
            $crate::builder::par_for($crate::space::collapse3(__romp_ra, __romp_rb, __romp_rc)),
            {$($site)*}
        )
        .fork_spec($spec)
        .schedule($sched)
        .run(|($i, $j, $k)| $body);
    }};
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {}, for $i:ident in ($range:expr).step_by($s:expr) $body:block) => {{
        let __romp_r: ::std::ops::Range<usize> = $range;
        let __romp_step: usize = $s;
        $crate::__omp_apply_site!(
            $crate::builder::par_for($crate::space::StridedRange::new(
                __romp_r.start as i64,
                __romp_r.end as i64,
                __romp_step as i64,
            )),
            {$($site)*}
        )
        .fork_spec($spec)
        .schedule($sched)
        .run(|__romp_i| {
            let $i = __romp_i as usize;
            $body
        });
    }};
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {}, for $i:ident in ($range:expr) $body:block) => {{
        let __romp_r: ::std::ops::Range<usize> = $range;
        $crate::__omp_apply_site!($crate::builder::par_for(__romp_r), {$($site)*})
            .fork_spec($spec)
            .schedule($sched)
            .run(|$i| $body);
    }};
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {}, for $i:ident in $lo:tt .. $hi:tt $body:block) => {{
        let __romp_r: ::std::ops::Range<usize> = ($lo)..($hi);
        $crate::__omp_apply_site!($crate::builder::par_for(__romp_r), {$($site)*})
            .fork_spec($spec)
            .schedule($sched)
            .run(|$i| $body);
    }};
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {$step:expr}, for $i:ident in ($range:expr) $body:block) => {{
        let __romp_r = $range;
        $crate::__omp_apply_site!(
            $crate::builder::par_for($crate::space::StridedRange::new(
                __romp_r.start as i64,
                __romp_r.end as i64,
                ($step) as i64,
            )),
            {$($site)*}
        )
        .fork_spec($spec)
        .schedule($sched)
        .run(|$i| $body);
    }};
    ({$spec:expr} {$sched:expr} {$($site:tt)*} {$step:expr}, for $i:ident in $lo:tt .. $hi:tt $body:block) => {
        $crate::__omp_apply_site!(
            $crate::builder::par_for($crate::space::StridedRange::new(
                ($lo) as i64,
                ($hi) as i64,
                ($step) as i64,
            )),
            {$($site)*}
        )
        .fork_spec($spec)
        .schedule($sched)
        .run(|$i| $body);
    };
}

/// Map `schedule(..)` clause tokens to a [`Schedule`](crate::Schedule)
/// value.
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_sched {
    (static) => {
        $crate::runtime::Schedule::Static {
            chunk: ::std::option::Option::None,
        }
    };
    (static, $c:expr) => {
        $crate::runtime::Schedule::Static {
            chunk: ::std::option::Option::Some(($c) as u64),
        }
    };
    (dynamic) => {
        $crate::runtime::Schedule::Dynamic { chunk: 1 }
    };
    (dynamic, $c:expr) => {
        $crate::runtime::Schedule::Dynamic { chunk: ($c) as u64 }
    };
    (guided) => {
        $crate::runtime::Schedule::Guided { chunk: 1 }
    };
    (guided, $c:expr) => {
        $crate::runtime::Schedule::Guided { chunk: ($c) as u64 }
    };
    (runtime) => {
        $crate::runtime::Schedule::Runtime
    };
    (auto) => {
        $crate::runtime::Schedule::Auto
    };
    // OpenMP 5.2 §11.5.3: a chunk size may only be specified for the
    // static, dynamic and guided kinds. Diagnose at expansion time,
    // naming the clause, instead of a bare "no rules expected" error.
    (runtime, $c:expr) => {
        compile_error!(
            "schedule(runtime) does not take a chunk size; the chunk comes \
             from the run-sched-var ICV (OMP_SCHEDULE=\"kind,chunk\")"
        )
    };
    (auto, $c:expr) => {
        compile_error!(
            "schedule(auto) does not take a chunk size; the runtime picks \
             the schedule (and chunk) per loop site"
        )
    };
}

/// Map a reduction operator token to its [`ReduceOp`](crate::ReduceOp)
/// implementation.
#[doc(hidden)]
#[macro_export]
macro_rules! __red_op {
    (+) => {
        $crate::runtime::SumOp
    };
    (*) => {
        $crate::runtime::ProdOp
    };
    (min) => {
        $crate::runtime::MinOp
    };
    (max) => {
        $crate::runtime::MaxOp
    };
    (&) => {
        $crate::runtime::BitAndOp
    };
    (|) => {
        $crate::runtime::BitOrOp
    };
    (^) => {
        $crate::runtime::BitXorOp
    };
    (&&) => {
        $crate::runtime::LogAndOp
    };
    (||) => {
        $crate::runtime::LogOrOp
    };
}

/// `barrier` directive.
#[macro_export]
macro_rules! omp_barrier {
    ($ctx:ident) => {
        $ctx.barrier()
    };
}

/// `single` construct: one thread runs the block; implied barrier unless
/// `nowait`. Evaluates to `Option<R>` (`Some` on the executing thread).
#[macro_export]
macro_rules! omp_single {
    ($ctx:ident, nowait, $body:block) => {
        $ctx.single(true, || $body)
    };
    ($ctx:ident, $body:block) => {
        $ctx.single(false, || $body)
    };
}

/// `master` construct: thread 0 runs the block, no barrier. Evaluates to
/// `Option<R>`.
#[macro_export]
macro_rules! omp_master {
    ($ctx:ident, $body:block) => {
        $ctx.master(|| $body)
    };
}

/// `critical` construct, optionally named:
/// `omp_critical!({ … })` or `omp_critical!(tag, { … })`.
#[macro_export]
macro_rules! omp_critical {
    ($name:ident, $body:block) => {
        $crate::runtime::critical_named(stringify!($name), || $body)
    };
    ($body:block) => {
        $crate::runtime::critical(|| $body)
    };
}

/// `sections` construct: each block runs exactly once, distributed over
/// the team. `omp_sections!(ctx, { a } { b } { c })`; add `nowait,` after
/// the ctx to skip the end barrier.
#[macro_export]
macro_rules! omp_sections {
    ($ctx:ident, nowait, $($sec:block)+) => {{
        let __romp_n = $crate::__omp_count!($($sec)+);
        $ctx.sections(__romp_n, true, |__romp_i| {
            $crate::__omp_sections_dispatch!(__romp_i, $($sec)+)
        })
    }};
    ($ctx:ident, $($sec:block)+) => {{
        let __romp_n = $crate::__omp_count!($($sec)+);
        $ctx.sections(__romp_n, false, |__romp_i| {
            $crate::__omp_sections_dispatch!(__romp_i, $($sec)+)
        })
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_count {
    () => { 0usize };
    ($head:block $($rest:block)*) => { 1usize + $crate::__omp_count!($($rest)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_sections_dispatch {
    ($i:expr,) => {
        unreachable!("section index out of range")
    };
    ($i:expr, $first:block $($rest:block)*) => {
        if $i == 0 {
            $first
        } else {
            $crate::__omp_sections_dispatch!($i - 1, $($rest)*)
        }
    };
}

/// `task` construct: defer the block for execution by any team thread.
/// Captures by move (OpenMP tasks default to `firstprivate` capture).
///
/// Clauses, in any order before the body:
///
/// * `if(cond)` — undeferred (run immediately on the encountering
///   thread) when `cond` is false;
/// * `final(cond)` — when `cond`, this task and everything it spawns
///   run undeferred (included tasks);
/// * `depend(in: a, b; out: c; inout: d)` — order against sibling
///   tasks naming the same storage: `out`/`inout` serialize against
///   every earlier dependence on the address, `in` only against the
///   last `out`/`inout`. Groups may be split across several `depend`
///   clauses; addresses are taken (`&expr`) when the task is created.
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
///
/// let acc = AtomicU64::new(1);
/// let acc = &acc; // task bodies capture by move; move the reference
/// omp_parallel!(num_threads(4), |ctx| {
///     omp_single!(ctx, nowait, {
///         // A chain: each task must observe its predecessor's update.
///         omp_task!(ctx, depend(inout: acc), { acc.fetch_add(1, Relaxed); });
///         omp_task!(ctx, depend(inout: acc), {
///             let v = acc.load(Relaxed);
///             assert_eq!(v, 2);
///             acc.store(v * 10, Relaxed);
///         });
///         omp_task!(ctx, depend(in: acc), if(false), {
///             assert_eq!(acc.load(Relaxed), 20);
///         });
///     });
/// });
/// assert_eq!(acc.load(Relaxed), 20);
/// ```
#[macro_export]
macro_rules! omp_task {
    ($ctx:ident, $($t:tt)*) => {
        $crate::__omp_task!(@ $ctx {$crate::runtime::TaskSpec::new()} ; $($t)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_task {
    // --- clauses, any order ---
    (@ $ctx:ident {$spec:expr} ; if($e:expr), $($rest:tt)*) => {
        $crate::__omp_task!(@ $ctx {$spec.if_clause($e)} ; $($rest)*)
    };
    (@ $ctx:ident {$spec:expr} ; final($e:expr), $($rest:tt)*) => {
        $crate::__omp_task!(@ $ctx {$spec.final_clause($e)} ; $($rest)*)
    };
    (@ $ctx:ident {$spec:expr} ; depend($($d:tt)*), $($rest:tt)*) => {
        $crate::__omp_task!(@ $ctx {$crate::__omp_depend!({$spec} $($d)*)} ; $($rest)*)
    };
    // --- terminal: the task body ---
    (@ $ctx:ident {$spec:expr} ; $body:block) => {
        $ctx.task_spec($spec, move || $body)
    };
}

/// Accumulate one `depend(...)` clause onto a `TaskSpec`: semicolon-
/// separated `in:`/`out:`/`inout:` groups of comma-separated lvalue
/// expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_depend {
    ({$spec:expr}) => { $spec };
    ({$spec:expr} in : $($rest:tt)*) => {
        $crate::__omp_depend_list!(input {$spec} $($rest)*)
    };
    ({$spec:expr} out : $($rest:tt)*) => {
        $crate::__omp_depend_list!(output {$spec} $($rest)*)
    };
    ({$spec:expr} inout : $($rest:tt)*) => {
        $crate::__omp_depend_list!(inout {$spec} $($rest)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_depend_list {
    ($kind:ident {$spec:expr} $v:expr) => {
        $spec.$kind(&$v)
    };
    ($kind:ident {$spec:expr} $v:expr, $($rest:tt)*) => {
        $crate::__omp_depend_list!($kind {$spec.$kind(&$v)} $($rest)*)
    };
    ($kind:ident {$spec:expr} $v:expr ; $($rest:tt)*) => {
        $crate::__omp_depend!({$spec.$kind(&$v)} $($rest)*)
    };
}

/// `taskwait` directive.
#[macro_export]
macro_rules! omp_taskwait {
    ($ctx:ident) => {
        $ctx.taskwait()
    };
}

/// `taskgroup` construct.
#[macro_export]
macro_rules! omp_taskgroup {
    ($ctx:ident, $body:block) => {
        $ctx.taskgroup(|| $body)
    };
}

/// `taskloop` construct: the encountering thread carves the range into
/// tasks executed by the whole team, with an implicit taskgroup.
/// `omp_taskloop!(ctx, [clauses,] for i in (range) { … })`; the body
/// captures by move (task semantics). Clauses, in any order:
/// `grainsize(g)` (iterations per task), `num_tasks(n)` (task count —
/// wins over `grainsize`), `nogroup` (skip the implicit taskgroup; pair
/// with `omp_taskwait!` or a barrier).
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
///
/// let total = AtomicU64::new(0);
/// let total = &total; // task bodies capture by move; move the reference
/// omp_parallel!(num_threads(4), |ctx| {
///     omp_single!(ctx, nowait, {
///         omp_taskloop!(ctx, num_tasks(8), for i in (0..100) {
///             total.fetch_add(i as u64, Relaxed);
///         });
///         // The implicit taskgroup already waited:
///         assert_eq!(total.load(Relaxed), 4950);
///     });
/// });
/// ```
#[macro_export]
macro_rules! omp_taskloop {
    ($ctx:ident, $($t:tt)*) => {
        $crate::__omp_taskloop!(@ $ctx {$crate::runtime::TaskloopSpec::new()} ; $($t)*)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __omp_taskloop {
    (@ $ctx:ident {$spec:expr} ; grainsize($e:expr), $($rest:tt)*) => {
        $crate::__omp_taskloop!(@ $ctx {$spec.grainsize($e)} ; $($rest)*)
    };
    (@ $ctx:ident {$spec:expr} ; num_tasks($e:expr), $($rest:tt)*) => {
        $crate::__omp_taskloop!(@ $ctx {$spec.num_tasks($e)} ; $($rest)*)
    };
    (@ $ctx:ident {$spec:expr} ; nogroup, $($rest:tt)*) => {
        $crate::__omp_taskloop!(@ $ctx {$spec.nogroup()} ; $($rest)*)
    };
    (@ $ctx:ident {$spec:expr} ; for $i:ident in ($range:expr) $body:block) => {
        $ctx.taskloop_spec($range, $spec, move |$i| $body)
    };
}

/// `ordered` region inside an `ws_for_ordered` loop body.
#[macro_export]
macro_rules! omp_ordered {
    ($ord:ident, $body:block) => {
        $ord.section(|| $body)
    };
}

/// `cancel` construct: request cancellation of the innermost enclosing
/// region of the named kind (`parallel`, `for`, `sections` or
/// `taskgroup`). Evaluates to `bool`: `true` when cancellation is
/// active for the encountering thread — idiomatically `if
/// omp_cancel!(…) { return; }` to proceed to the end of the cancelled
/// region (a `return` from the region/iteration/task closure is romp's
/// "branch to the end of the region"). Always `false` (a no-op) when
/// the `OMP_CANCELLATION` ICV is off.
///
/// An optional trailing `if(e)` clause mirrors OpenMP: when `e` is
/// false the request is *not* activated, but the construct still acts
/// as a cancellation point for the named region.
///
/// Cancellation is cooperative and chunk-granular — see
/// [`ThreadCtx::cancel`](crate::runtime::ThreadCtx::cancel).
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
///
/// let _arm = romp_core::runtime::icv::set_cancellation_override(Some(true));
/// let seen = AtomicUsize::new(0);
/// omp_parallel!(num_threads(2), |ctx| {
///     omp_for!(ctx, schedule(dynamic, 8), for i in 0..10_000 {
///         seen.fetch_add(1, Relaxed);
///         if i == 40 {
///             if omp_cancel!(ctx, for) { return; }
///         }
///     });
/// });
/// assert!(seen.load(Relaxed) < 10_000); // the loop stopped early
/// romp_core::runtime::icv::set_cancellation_override(None);
/// ```
#[macro_export]
macro_rules! omp_cancel {
    // `taskgroup` routes through the context-free entry points: the
    // canonical placement is *inside a task body*, whose closure must
    // be `Send` and therefore cannot capture `&ThreadCtx`. The `$ctx`
    // argument is accepted (uniform directive syntax) but unused.
    ($ctx:ident, taskgroup) => {
        $crate::runtime::cancel_taskgroup()
    };
    ($ctx:ident, taskgroup, if($e:expr)) => {
        if $e {
            $crate::runtime::cancel_taskgroup()
        } else {
            $crate::runtime::cancellation_point_taskgroup()
        }
    };
    ($ctx:ident, $kind:tt) => {
        $ctx.cancel($crate::__omp_cancel_kind!($kind))
    };
    ($ctx:ident, $kind:tt, if($e:expr)) => {
        if $e {
            $ctx.cancel($crate::__omp_cancel_kind!($kind))
        } else {
            $ctx.cancellation_point($crate::__omp_cancel_kind!($kind))
        }
    };
}

/// `cancellation point` construct: has cancellation of the innermost
/// enclosing region of the named kind been activated? Evaluates to
/// `bool` (always `false` while `OMP_CANCELLATION` is off); on `true`,
/// `return` out of the enclosing closure to reach the region end.
#[macro_export]
macro_rules! omp_cancellation_point {
    // Context-free for `taskgroup` (see `omp_cancel!`).
    ($ctx:ident, taskgroup) => {
        $crate::runtime::cancellation_point_taskgroup()
    };
    ($ctx:ident, $kind:tt) => {
        $ctx.cancellation_point($crate::__omp_cancel_kind!($kind))
    };
}

/// Map a cancel construct-kind token onto
/// [`CancelKind`](crate::runtime::CancelKind) at expansion time
/// (unknown kinds are a compile error, like in a real front end).
#[doc(hidden)]
#[macro_export]
macro_rules! __omp_cancel_kind {
    (parallel) => {
        $crate::runtime::CancelKind::Parallel
    };
    (for) => {
        $crate::runtime::CancelKind::For
    };
    (sections) => {
        $crate::runtime::CancelKind::Sections
    };
    (taskgroup) => {
        $crate::runtime::CancelKind::Taskgroup
    };
    ($other:tt) => {
        compile_error!("cancel takes parallel, for, sections or taskgroup")
    };
}
