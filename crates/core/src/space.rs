//! Typed iteration spaces for worksharing loops.
//!
//! OpenMP's canonical loop forms go far beyond `0..n`: bounds can be
//! signed, increments can stride (either direction), and `collapse(n)`
//! fuses a rectangular loop nest into one schedulable space. This
//! module captures all of those shapes behind one sealed trait,
//! [`IterSpace`]: every space maps onto the dense normalized space
//! `0..trip()` of `u64` points, and [`decode`](IterSpace::decode) maps
//! a normalized point back to the user-facing index. The runtime only
//! ever schedules normalized points
//! ([`ThreadCtx::ws_for_normalized`]); every front end — the builder's
//! generic [`ParFor`](crate::builder::ParFor), the directive macros,
//! and the `//#omp` translator — lowers through the helpers here, so
//! trip accounting and decoding exist exactly once.
//!
//! Decoding is chunk-granular by design: the scheduler hands a thread a
//! contiguous normalized chunk `[lo, hi)`, and
//! [`chunk`](IterSpace::chunk) turns it into an incremental iterator
//! that decodes the chunk's *first* point with whatever division the
//! space needs and then steps — collapsed spaces pay one `div`/`mod`
//! per chunk, not one per iteration (the divisor itself is computed
//! once at construction, not in the loop).
//!
//! ```
//! use romp_core::prelude::*;
//!
//! // A strided signed space through the same builder as a plain range.
//! let seen = std::sync::Mutex::new(Vec::new());
//! par_for(StridedRange::new(10, 0, -3))
//!     .num_threads(2)
//!     .run(|i| seen.lock().unwrap().push(i));
//! let mut v = seen.into_inner().unwrap();
//! v.sort_unstable();
//! assert_eq!(v, vec![1, 4, 7, 10]);
//!
//! // collapse(2): both loops fused into one schedulable space.
//! let hits: Vec<std::sync::atomic::AtomicU32> =
//!     (0..6).map(|_| Default::default()).collect();
//! par_for(collapse2(0..2usize, 0..3usize)).num_threads(3).run(|(i, j)| {
//!     hits[i * 3 + j].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//! });
//! assert!(hits.iter().all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
//! ```

use romp_runtime::{Schedule, ThreadCtx};
use std::ops::Range;

mod sealed {
    pub trait Sealed {}
    impl Sealed for std::ops::Range<usize> {}
    impl Sealed for std::ops::Range<i64> {}
    impl Sealed for super::StridedRange {}
    impl<A: super::IterSpace, B: super::IterSpace> Sealed for super::Collapse2<A, B> {}
    impl<A: super::IterSpace, B: super::IterSpace, C: super::IterSpace> Sealed
        for super::Collapse3<A, B, C>
    {
    }
}

/// A worksharing iteration space: anything that maps onto the dense
/// normalized space `0..trip()` with a cheap inverse.
///
/// Sealed: the scheduling contract (every normalized point decoded
/// exactly once) is pinned by this crate's property tests, so outside
/// implementations are not accepted. The provided shapes are
/// `Range<usize>`, `Range<i64>`, [`StridedRange`], and the
/// [`Collapse2`]/[`Collapse3`] fusions of any of those.
pub trait IterSpace: sealed::Sealed + Clone + Send + Sync {
    /// The user-facing index type (`usize`, `i64`, or a tuple for
    /// collapsed spaces).
    type Index: Copy + Send;

    /// Incremental decoder for one contiguous normalized chunk.
    type Chunk: Iterator<Item = Self::Index>;

    /// Number of points in the space.
    fn trip(&self) -> u64;

    /// Map normalized point `k < trip()` back to the user-facing index.
    fn decode(&self, k: u64) -> Self::Index;

    /// Incremental decoder over the normalized chunk `lo..hi`
    /// (`lo <= hi <= trip()`): yields `decode(lo), …, decode(hi - 1)`
    /// without re-dividing per point.
    fn chunk(&self, lo: u64, hi: u64) -> Self::Chunk;
}

impl IterSpace for Range<usize> {
    type Index = usize;
    type Chunk = Range<usize>;

    #[inline]
    fn trip(&self) -> u64 {
        self.end.saturating_sub(self.start) as u64
    }

    #[inline]
    fn decode(&self, k: u64) -> usize {
        self.start + k as usize
    }

    #[inline]
    fn chunk(&self, lo: u64, hi: u64) -> Range<usize> {
        self.start + lo as usize..self.start + hi as usize
    }
}

impl IterSpace for Range<i64> {
    type Index = i64;
    type Chunk = Range<i64>;

    #[inline]
    fn trip(&self) -> u64 {
        if self.end > self.start {
            self.end.abs_diff(self.start)
        } else {
            0
        }
    }

    #[inline]
    fn decode(&self, k: u64) -> i64 {
        self.start + k as i64
    }

    #[inline]
    fn chunk(&self, lo: u64, hi: u64) -> Range<i64> {
        self.start + lo as i64..self.start + hi as i64
    }
}

/// A strided signed space: `start, start + step, …` while `< end`
/// (positive step) or `> end` (negative step) — OpenMP's canonical
/// loop increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedRange {
    start: i64,
    step: i64,
    trip: u64,
}

impl StridedRange {
    /// Build the space. `step` must be nonzero; a bound pair that the
    /// step walks away from (e.g. `5..2` with step `1`) is empty, as in
    /// OpenMP.
    pub fn new(start: i64, end: i64, step: i64) -> Self {
        assert!(step != 0, "worksharing loop step must be nonzero");
        let trip = if step > 0 {
            if end > start {
                end.abs_diff(start).div_ceil(step.unsigned_abs())
            } else {
                0
            }
        } else if start > end {
            start.abs_diff(end).div_ceil(step.unsigned_abs())
        } else {
            0
        };
        StridedRange { start, step, trip }
    }

    /// The stride.
    pub fn step(&self) -> i64 {
        self.step
    }
}

/// Chunk decoder for [`StridedRange`]: one multiply at construction,
/// one add per point.
#[derive(Debug, Clone)]
pub struct StridedChunk {
    next: i64,
    step: i64,
    remaining: u64,
}

impl Iterator for StridedChunk {
    type Item = i64;

    #[inline]
    fn next(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = self.next;
        self.next = self.next.wrapping_add(self.step);
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl IterSpace for StridedRange {
    type Index = i64;
    type Chunk = StridedChunk;

    #[inline]
    fn trip(&self) -> u64 {
        self.trip
    }

    #[inline]
    fn decode(&self, k: u64) -> i64 {
        self.start + (k as i64) * self.step
    }

    #[inline]
    fn chunk(&self, lo: u64, hi: u64) -> StridedChunk {
        StridedChunk {
            next: self.decode(lo),
            step: self.step,
            remaining: hi.saturating_sub(lo),
        }
    }
}

/// Two spaces fused into one rectangular space (`collapse(2)`): the
/// schedule balances across the whole rectangle, not just the outer
/// loop. Indices decode to `(outer, inner)` tuples.
///
/// The inner-trip divisor is computed **once here**, not per
/// iteration — and [`chunk`](IterSpace::chunk) divides only at chunk
/// entry, stepping incrementally after that.
#[derive(Debug, Clone, Copy)]
pub struct Collapse2<A: IterSpace, B: IterSpace> {
    outer: A,
    inner: B,
    /// `inner.trip()`, hoisted; `max(1)` so `decode` stays total on
    /// empty spaces (where it is never reached by the scheduler).
    div: u64,
    trip: u64,
}

/// Fuse two spaces into a [`Collapse2`].
pub fn collapse2<A: IterSpace, B: IterSpace>(outer: A, inner: B) -> Collapse2<A, B> {
    let inner_trip = inner.trip();
    let trip = outer
        .trip()
        .checked_mul(inner_trip)
        .expect("collapse(2) trip count overflows u64");
    Collapse2 {
        outer,
        inner,
        div: inner_trip.max(1),
        trip,
    }
}

/// Chunk decoder for [`Collapse2`]: divides once at chunk entry, then
/// steps the inner counter and re-decodes the outer index only on
/// wrap-around.
#[derive(Clone)]
pub struct Collapse2Chunk<A: IterSpace, B: IterSpace> {
    outer: A,
    inner: B,
    cur_outer: A::Index,
    ka: u64,
    kb: u64,
    div: u64,
    remaining: u64,
}

impl<A: IterSpace, B: IterSpace> Iterator for Collapse2Chunk<A, B> {
    type Item = (A::Index, B::Index);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.kb == self.div {
            self.kb = 0;
            self.ka += 1;
            self.cur_outer = self.outer.decode(self.ka);
        }
        let out = (self.cur_outer, self.inner.decode(self.kb));
        self.kb += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl<A: IterSpace, B: IterSpace> IterSpace for Collapse2<A, B> {
    type Index = (A::Index, B::Index);
    type Chunk = Collapse2Chunk<A, B>;

    #[inline]
    fn trip(&self) -> u64 {
        self.trip
    }

    #[inline]
    fn decode(&self, k: u64) -> Self::Index {
        (
            self.outer.decode(k / self.div),
            self.inner.decode(k % self.div),
        )
    }

    #[inline]
    fn chunk(&self, lo: u64, hi: u64) -> Self::Chunk {
        let (ka, kb) = (lo / self.div, lo % self.div);
        Collapse2Chunk {
            cur_outer: self.outer.decode(ka),
            outer: self.outer.clone(),
            inner: self.inner.clone(),
            ka,
            kb,
            div: self.div,
            remaining: hi.saturating_sub(lo),
        }
    }
}

/// Three spaces fused into one box space (`collapse(3)`); indices
/// decode to `(a, b, c)` tuples. Divisors are hoisted at construction
/// and [`chunk`](IterSpace::chunk) steps incrementally, dividing only
/// at chunk entry — same cost model as [`Collapse2`].
#[derive(Debug, Clone, Copy)]
pub struct Collapse3<A: IterSpace, B: IterSpace, C: IterSpace> {
    a: A,
    b: B,
    c: C,
    /// `b.trip().max(1)` / `c.trip().max(1)` / their product — hoisted
    /// so `decode` stays total (and division-light) everywhere.
    div_b: u64,
    div_c: u64,
    div_bc: u64,
    trip: u64,
}

/// Fuse three spaces into a [`Collapse3`].
pub fn collapse3<A: IterSpace, B: IterSpace, C: IterSpace>(a: A, b: B, c: C) -> Collapse3<A, B, C> {
    let trip = a
        .trip()
        .checked_mul(b.trip())
        .and_then(|t| t.checked_mul(c.trip()))
        .expect("collapse(3) trip count overflows u64");
    let div_b = b.trip().max(1);
    let div_c = c.trip().max(1);
    Collapse3 {
        a,
        b,
        c,
        div_b,
        div_c,
        div_bc: div_b * div_c,
        trip,
    }
}

/// Chunk decoder for [`Collapse3`]: divides once at chunk entry, then
/// steps the innermost counter, re-decoding the outer indices only on
/// wrap-around.
#[derive(Clone)]
pub struct Collapse3Chunk<A: IterSpace, B: IterSpace, C: IterSpace> {
    a: A,
    b: B,
    c: C,
    cur_a: A::Index,
    cur_b: B::Index,
    ka: u64,
    kb: u64,
    kc: u64,
    div_b: u64,
    div_c: u64,
    remaining: u64,
}

impl<A: IterSpace, B: IterSpace, C: IterSpace> Iterator for Collapse3Chunk<A, B, C> {
    type Item = (A::Index, B::Index, C::Index);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.kc == self.div_c {
            self.kc = 0;
            self.kb += 1;
            if self.kb == self.div_b {
                self.kb = 0;
                self.ka += 1;
                self.cur_a = self.a.decode(self.ka);
            }
            self.cur_b = self.b.decode(self.kb);
        }
        let out = (self.cur_a, self.cur_b, self.c.decode(self.kc));
        self.kc += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl<A: IterSpace, B: IterSpace, C: IterSpace> IterSpace for Collapse3<A, B, C> {
    type Index = (A::Index, B::Index, C::Index);
    type Chunk = Collapse3Chunk<A, B, C>;

    #[inline]
    fn trip(&self) -> u64 {
        self.trip
    }

    #[inline]
    fn decode(&self, k: u64) -> Self::Index {
        (
            self.a.decode(k / self.div_bc),
            self.b.decode((k / self.div_c) % self.div_b),
            self.c.decode(k % self.div_c),
        )
    }

    #[inline]
    fn chunk(&self, lo: u64, hi: u64) -> Self::Chunk {
        let ka = lo / self.div_bc;
        let rem = lo % self.div_bc;
        let (kb, kc) = (rem / self.div_c, rem % self.div_c);
        Collapse3Chunk {
            cur_a: self.a.decode(ka),
            cur_b: self.b.decode(kb),
            a: self.a.clone(),
            b: self.b.clone(),
            c: self.c.clone(),
            ka,
            kb,
            kc,
            div_b: self.div_b,
            div_c: self.div_c,
            remaining: hi.saturating_sub(lo),
        }
    }
}

// ---------------------------------------------------------------------
// The one lowering: spaces → the runtime's normalized driver.
// ---------------------------------------------------------------------

/// Workshare `space` over the current team (the `for` directive for an
/// arbitrary [`IterSpace`]): each point of the space runs exactly once.
/// Implies an end barrier unless `nowait`.
///
/// This is the function every front end bottoms out in; see the module
/// docs.
///
/// `#[track_caller]` propagates the *user's* source location down to
/// the runtime's schedule autotuner, so each `schedule(auto)` loop in
/// user code learns independently (see `romp_runtime::tune`).
#[inline]
#[track_caller]
pub fn ws_space<S: IterSpace>(
    ctx: &ThreadCtx<'_>,
    space: &S,
    sched: Schedule,
    nowait: bool,
    mut body: impl FnMut(S::Index),
) {
    ctx.ws_for_normalized(space.trip(), sched, nowait, |lo, hi| {
        for idx in space.chunk(lo, hi) {
            body(idx);
        }
    });
}

/// [`ws_space`] with an explicit tuner site: used by front ends whose
/// construct runs inside a closure (the builder), where a
/// `#[track_caller]` stamp would resolve to the front end itself
/// instead of the user.
#[inline]
pub fn ws_space_at<S: IterSpace>(
    ctx: &ThreadCtx<'_>,
    site: romp_runtime::tune::SiteId,
    space: &S,
    sched: Schedule,
    nowait: bool,
    mut body: impl FnMut(S::Index),
) {
    ctx.ws_for_normalized_at(site, space.trip(), sched, nowait, |lo, hi| {
        for idx in space.chunk(lo, hi) {
            body(idx);
        }
    });
}

/// Chunk-granular variant of [`ws_space`]: the body receives each
/// claimed chunk's decoder whole, so hot kernels can iterate without
/// per-index closure dispatch.
#[inline]
#[track_caller]
pub fn ws_space_chunks<S: IterSpace>(
    ctx: &ThreadCtx<'_>,
    space: &S,
    sched: Schedule,
    nowait: bool,
    mut body: impl FnMut(S::Chunk),
) {
    ctx.ws_for_normalized(space.trip(), sched, nowait, |lo, hi| {
        body(space.chunk(lo, hi));
    });
}

/// [`ws_space_chunks`] with an explicit tuner site (see
/// [`ws_space_at`]).
#[inline]
pub fn ws_space_chunks_at<S: IterSpace>(
    ctx: &ThreadCtx<'_>,
    site: romp_runtime::tune::SiteId,
    space: &S,
    sched: Schedule,
    nowait: bool,
    mut body: impl FnMut(S::Chunk),
) {
    ctx.ws_for_normalized_at(site, space.trip(), sched, nowait, |lo, hi| {
        body(space.chunk(lo, hi));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enumerate<S: IterSpace>(s: &S) -> Vec<S::Index> {
        s.chunk(0, s.trip()).collect()
    }

    #[test]
    fn range_usize_space() {
        let s = 3..8usize;
        assert_eq!(s.trip(), 5);
        assert_eq!(s.decode(0), 3);
        assert_eq!(s.decode(4), 7);
        assert_eq!(enumerate(&s), vec![3, 4, 5, 6, 7]);
        assert_eq!((5..5usize).trip(), 0);
    }

    #[test]
    fn range_i64_space_negative_bounds() {
        let s = -3i64..2;
        assert_eq!(s.trip(), 5);
        assert_eq!(enumerate(&s), vec![-3, -2, -1, 0, 1]);
        // Reversed range is empty, not huge.
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 2i64..-3;
        assert_eq!(reversed.trip(), 0);
    }

    #[test]
    fn strided_spaces_match_ws_for_step_semantics() {
        let up = StridedRange::new(0, 10, 3);
        assert_eq!(enumerate(&up), vec![0, 3, 6, 9]);
        let down = StridedRange::new(10, 0, -3);
        assert_eq!(enumerate(&down), vec![10, 7, 4, 1]);
        let neg = StridedRange::new(-7, -1, 2);
        assert_eq!(enumerate(&neg), vec![-7, -5, -3]);
        assert_eq!(StridedRange::new(5, 5, 1).trip(), 0);
        assert_eq!(StridedRange::new(5, 2, 1).trip(), 0);
        assert_eq!(StridedRange::new(2, 5, -1).trip(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_step_rejected() {
        StridedRange::new(0, 10, 0);
    }

    #[test]
    fn collapse2_decodes_row_major() {
        let s = collapse2(1..3usize, 10..13usize);
        assert_eq!(s.trip(), 6);
        assert_eq!(
            enumerate(&s),
            vec![(1, 10), (1, 11), (1, 12), (2, 10), (2, 11), (2, 12)]
        );
        // decode agrees with the chunk path at every point.
        for k in 0..s.trip() {
            assert_eq!(s.decode(k), enumerate(&s)[k as usize]);
        }
    }

    #[test]
    fn collapse2_mid_chunk_entry() {
        let s = collapse2(0..4usize, 0..3usize);
        // A chunk starting mid-row must divide once and then step.
        let got: Vec<_> = s.chunk(4, 9).collect();
        assert_eq!(got, vec![(1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn collapse_with_empty_dimension_is_empty() {
        assert_eq!(collapse2(0..10usize, 0..0usize).trip(), 0);
        assert_eq!(collapse2(0..0usize, 0..10usize).trip(), 0);
        assert_eq!(collapse3(0..4usize, 0..0usize, 0..9usize).trip(), 0);
    }

    #[test]
    fn collapse3_flattens() {
        let s = collapse3(0..2usize, 0..2usize, 0..2usize);
        assert_eq!(s.trip(), 8);
        assert_eq!(s.decode(0), (0, 0, 0));
        assert_eq!(s.decode(7), (1, 1, 1));
        let all = enumerate(&s);
        assert_eq!(all.len(), 8);
        for (k, idx) in all.iter().enumerate() {
            assert_eq!(s.decode(k as u64), *idx);
        }
    }

    #[test]
    fn collapse3_every_chunk_matches_pointwise_decode() {
        // The incremental chunk decoder must agree with `decode` for
        // every possible (lo, hi) window, including mid-row entries.
        let s = collapse3(1..4usize, 0..2usize, 5..9usize);
        for lo in 0..s.trip() {
            for hi in lo..=s.trip() {
                let got: Vec<_> = s.chunk(lo, hi).collect();
                let want: Vec<_> = (lo..hi).map(|k| s.decode(k)).collect();
                assert_eq!(got, want, "chunk({lo}, {hi})");
            }
        }
    }

    #[test]
    fn collapse_of_mixed_spaces() {
        // Strided outer, signed inner: the fusion composes any spaces.
        let s = collapse2(StridedRange::new(0, 6, 2), -1i64..1);
        assert_eq!(
            enumerate(&s),
            vec![(0, -1), (0, 0), (2, -1), (2, 0), (4, -1), (4, 0)]
        );
    }
}
