//! Typed builder API for parallel regions and worksharing loops.
//!
//! This is the code shape the directive front ends (macros and the
//! `//#omp` translator) desugar into; it is also pleasant to use
//! directly. Everything is a thin, zero-allocation wrapper over
//! [`romp_runtime::fork`] and [`ThreadCtx`]'s worksharing methods.

use romp_runtime::reduction::RedVar;
use romp_runtime::{fork, ForkSpec, ReduceOp, Schedule, ThreadCtx};
use std::ops::Range;

/// Builder for a bare `parallel` region.
///
/// ```
/// use romp_core::builder::parallel;
///
/// let mut counts = vec![0usize; 4];
/// let counts_ref = std::sync::Mutex::new(&mut counts);
/// parallel().num_threads(4).run(|ctx| {
///     let tn = ctx.thread_num();
///     counts_ref.lock().unwrap()[tn] += 1;
/// });
/// assert_eq!(counts, vec![1, 1, 1, 1]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel {
    spec: ForkSpec,
}

/// Start building a `parallel` region.
pub fn parallel() -> Parallel {
    Parallel::default()
}

impl Parallel {
    /// The `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.spec.num_threads = Some(n);
        self
    }

    /// The `if` clause: `false` serializes the region.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.spec.if_clause = Some(cond);
        self
    }

    /// The underlying fork spec (for interop with [`romp_runtime::fork`]).
    pub fn spec(&self) -> ForkSpec {
        self.spec
    }

    /// Execute the region: `body` runs once on every team thread.
    pub fn run<F>(self, body: F)
    where
        F: for<'s> Fn(&ThreadCtx<'s>) + Sync,
    {
        fork(self.spec, body);
    }
}

/// Builder for a combined `parallel for`.
#[derive(Debug, Clone)]
pub struct ParFor {
    range: Range<usize>,
    sched: Schedule,
    spec: ForkSpec,
}

/// Start building a `parallel for` over `range`.
pub fn par_for(range: Range<usize>) -> ParFor {
    ParFor {
        range,
        sched: Schedule::default(),
        spec: ForkSpec::default(),
    }
}

impl ParFor {
    /// The `schedule` clause.
    pub fn schedule(mut self, sched: Schedule) -> Self {
        self.sched = sched;
        self
    }

    /// The `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.spec.num_threads = Some(n);
        self
    }

    /// The `if` clause.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.spec.if_clause = Some(cond);
        self
    }

    /// Run `body(i)` for every `i` in the range, distributed over the
    /// team.
    pub fn run<F>(self, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let ParFor { range, sched, spec } = self;
        fork(spec, |ctx| {
            // nowait: the region-end implicit barrier is the loop barrier.
            ctx.ws_for(range.clone(), sched, true, &body);
        });
    }

    /// Run `body(chunk)` for whole chunks — lets hot kernels iterate
    /// contiguous slices without per-index dispatch.
    pub fn run_chunks<F>(self, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let ParFor { range, sched, spec } = self;
        fork(spec, |ctx| {
            ctx.ws_for_chunks(range.clone(), sched, true, &body);
        });
    }

    /// The `reduction` clause: every thread folds into a private
    /// accumulator seeded with the operator identity; partials and `init`
    /// are combined at the end.
    pub fn reduce<T, Op, F>(self, op: Op, init: T, body: F) -> T
    where
        T: Clone + Send,
        Op: ReduceOp<T>,
        F: Fn(usize, &mut T) + Sync,
    {
        let ParFor { range, sched, spec } = self;
        let red = RedVar::new(init, op);
        fork(spec, |ctx| {
            let mut local = op.identity();
            ctx.ws_for(range.clone(), sched, true, |i| body(i, &mut local));
            red.contribute(local);
        });
        red.into_inner()
    }

    /// Chunked variant of [`reduce`](Self::reduce).
    pub fn reduce_chunks<T, Op, F>(self, op: Op, init: T, body: F) -> T
    where
        T: Clone + Send,
        Op: ReduceOp<T>,
        F: Fn(Range<usize>, &mut T) + Sync,
    {
        let ParFor { range, sched, spec } = self;
        let red = RedVar::new(init, op);
        fork(spec, |ctx| {
            let mut local = op.identity();
            ctx.ws_for_chunks(range.clone(), sched, true, |r| body(r, &mut local));
            red.contribute(local);
        });
        red.into_inner()
    }
}

/// Builder for a `parallel for collapse(2)` over a rectangular space:
/// the two loops are fused into one iteration space so the schedule
/// balances across both.
#[derive(Debug, Clone)]
pub struct ParFor2 {
    outer: Range<usize>,
    inner: Range<usize>,
    sched: Schedule,
    spec: ForkSpec,
}

/// Start building a collapsed 2-D `parallel for`.
pub fn par_for_2d(outer: Range<usize>, inner: Range<usize>) -> ParFor2 {
    ParFor2 {
        outer,
        inner,
        sched: Schedule::default(),
        spec: ForkSpec::default(),
    }
}

impl ParFor2 {
    /// The `schedule` clause.
    pub fn schedule(mut self, sched: Schedule) -> Self {
        self.sched = sched;
        self
    }

    /// The `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.spec.num_threads = Some(n);
        self
    }

    /// Run `body(i, j)` over the collapsed space.
    pub fn run<F>(self, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let ParFor2 {
            outer,
            inner,
            sched,
            spec,
        } = self;
        let iw = inner.end.saturating_sub(inner.start);
        let trip = outer.end.saturating_sub(outer.start) * iw;
        let (ob, ib) = (outer.start, inner.start);
        fork(spec, |ctx| {
            ctx.ws_for(0..trip, sched, true, |k| {
                body(ob + k / iw.max(1), ib + k % iw.max(1));
            });
        });
    }

    /// Collapsed reduction.
    pub fn reduce<T, Op, F>(self, op: Op, init: T, body: F) -> T
    where
        T: Clone + Send,
        Op: ReduceOp<T>,
        F: Fn(usize, usize, &mut T) + Sync,
    {
        let ParFor2 {
            outer,
            inner,
            sched,
            spec,
        } = self;
        let iw = inner.end.saturating_sub(inner.start);
        let trip = outer.end.saturating_sub(outer.start) * iw;
        let (ob, ib) = (outer.start, inner.start);
        let red = RedVar::new(init, op);
        fork(spec, |ctx| {
            let mut local = op.identity();
            ctx.ws_for(0..trip, sched, true, |k| {
                body(ob + k / iw.max(1), ib + k % iw.max(1), &mut local);
            });
            red.contribute(local);
        });
        red.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use romp_runtime::{MaxOp, SumOp};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_covers_all_indices_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_for(0..1000)
            .num_threads(4)
            .schedule(Schedule::dynamic_chunk(7))
            .run(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_reduce_matches_serial() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = data.iter().sum();
        for sched in [
            Schedule::static_block(),
            Schedule::static_chunk(13),
            Schedule::dynamic_chunk(64),
            Schedule::guided(),
        ] {
            let parallel = par_for(0..data.len())
                .num_threads(4)
                .schedule(sched)
                .reduce(SumOp, 0.0, |i, acc| *acc += data[i]);
            assert!(
                (parallel - serial).abs() < 1e-9,
                "sched {sched}: {parallel} vs {serial}"
            );
        }
    }

    #[test]
    fn reduce_includes_init() {
        let s = par_for(0..10)
            .num_threads(2)
            .reduce(SumOp, 100i64, |i, acc| *acc += i as i64);
        assert_eq!(s, 100 + 45);
    }

    #[test]
    fn reduce_max() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 7919) % 1000).collect();
        let m = par_for(0..data.len())
            .num_threads(4)
            .reduce(MaxOp, i64::MIN, |i, acc| *acc = (*acc).max(data[i]));
        assert_eq!(m, *data.iter().max().unwrap());
    }

    #[test]
    fn run_chunks_sees_contiguous_ranges() {
        let total = AtomicUsize::new(0);
        par_for(0..777)
            .num_threads(3)
            .schedule(Schedule::static_chunk(50))
            .run_chunks(|r| {
                assert!(r.start < r.end && r.end <= 777);
                assert!(r.end - r.start <= 50);
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
        assert_eq!(total.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn par_for_2d_covers_rectangle() {
        let hits: Vec<AtomicUsize> = (0..20 * 30).map(|_| AtomicUsize::new(0)).collect();
        par_for_2d(0..20, 0..30).num_threads(4).run(|i, j| {
            hits[i * 30 + j].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_2d_reduce() {
        let s = par_for_2d(1..4, 1..5)
            .num_threads(3)
            .reduce(SumOp, 0usize, |i, j, acc| *acc += i * j);
        // (1+2+3) * (1+2+3+4) = 60
        assert_eq!(s, 60);
    }

    #[test]
    fn empty_range_is_fine() {
        par_for(5..5)
            .num_threads(4)
            .run(|_| panic!("no iterations"));
        let s = par_for(5..5)
            .num_threads(4)
            .reduce(SumOp, 7i32, |_, _| panic!("no iterations"));
        assert_eq!(s, 7);
    }

    #[test]
    fn if_clause_serializes_but_computes() {
        let s = par_for(0..100)
            .if_clause(false)
            .reduce(SumOp, 0usize, |i, acc| {
                assert_eq!(romp_runtime::omp_get_num_threads(), 1);
                *acc += i;
            });
        assert_eq!(s, 4950);
    }
}
