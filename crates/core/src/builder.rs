//! Typed builder API for parallel regions and worksharing loops.
//!
//! This is the code shape the directive front ends (macros and the
//! `//#omp` translator) desugar into; it is also pleasant to use
//! directly. Everything is a thin, zero-allocation wrapper over
//! [`romp_runtime::fork`] and the [`IterSpace`] lowering in
//! [`crate::space`].
//!
//! One generic builder, [`ParFor<S>`], serves every iteration space —
//! plain and signed ranges, [`StridedRange`](crate::space::StridedRange)
//! strides, and `collapse(2)`/`collapse(3)` fusions — with the full
//! clause set (`schedule`, `num_threads`, `if`, reductions, chunked
//! variants) available uniformly. On top of the classic `run`/`reduce`
//! shapes it offers a **safe mutable-output layer**:
//! [`write_into`](ParFor::write_into) and
//! [`write_chunks_into`](ParFor::write_chunks_into) hand each thread
//! disjoint `&mut` views of an output slice — the `a[i] = …` pattern of
//! OpenMP loops — with no caller-side `unsafe` (the disjointness proof
//! is the runtime's exactly-once partition contract, pinned by the
//! conformance suite).

use crate::space::{collapse2, Collapse2, IterSpace};
use romp_runtime::reduction::RedVar;
use romp_runtime::tune::SiteId;
use romp_runtime::{fork, CancelKind, ForkSpec, ProcBind, ReduceOp, Schedule, TaskSpec, ThreadCtx};
use std::ops::Range;

/// Builder for a bare `parallel` region.
///
/// ```
/// use romp_core::builder::parallel;
///
/// let mut counts = vec![0usize; 4];
/// let counts_ref = std::sync::Mutex::new(&mut counts);
/// parallel().num_threads(4).run(|ctx| {
///     let tn = ctx.thread_num();
///     counts_ref.lock().unwrap()[tn] += 1;
/// });
/// assert_eq!(counts, vec![1, 1, 1, 1]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel {
    spec: ForkSpec,
}

/// Start building a `parallel` region.
pub fn parallel() -> Parallel {
    Parallel::default()
}

impl Parallel {
    /// The `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.spec.num_threads = Some(n);
        self
    }

    /// The `if` clause: `false` serializes the region.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.spec.if_clause = Some(cond);
        self
    }

    /// The `proc_bind` clause: recorded on the team, reported through
    /// `omp_get_proc_bind`, and enforced by place-partitioning the team
    /// where the platform supports it (see `romp_runtime::affinity`).
    pub fn proc_bind(mut self, bind: ProcBind) -> Self {
        self.spec.proc_bind = Some(bind);
        self
    }

    /// The `teams` construct: form a league of `n` initial teams. The
    /// region spreads across the place partition (unless an explicit
    /// [`proc_bind`](Self::proc_bind) overrides it), so nested
    /// `parallel` regions inside each team inherit a disjoint,
    /// locality-friendly slice of the machine. League geometry is
    /// reported through `omp_get_num_teams` / `omp_get_team_num`.
    pub fn teams(mut self, n: usize) -> Self {
        self.spec = self.spec.teams(n);
        self
    }

    /// The underlying fork spec (for interop with [`romp_runtime::fork`]).
    pub fn spec(&self) -> ForkSpec {
        self.spec
    }

    /// Execute the region: `body` runs once on every team thread. The
    /// `'env` lifetime is [`fork`]'s: task closures created inside may
    /// borrow anything that outlives this call.
    pub fn run<'env, F>(self, body: F)
    where
        F: Fn(&ThreadCtx<'env>) + Sync,
    {
        fork(self.spec, body);
    }
}

/// Builder for a `task` construct inside a parallel region: the typed
/// equivalent of `omp_task!` clauses, and what the `//#omp task`
/// translator output desugars into. Dependences order the task against
/// sibling tasks per the OpenMP serialization rules (see
/// [`romp_runtime::TaskDeps`]).
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
///
/// // c = a + b as a diamond-shaped task graph: the sum task cannot
/// // start before both producers finish, on any thread.
/// let (a, b, c) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
/// parallel().num_threads(4).run(|ctx| {
///     ctx.single(true, || {
///         task(ctx).depend_out(&a).spawn(|| a.store(1, Relaxed));
///         task(ctx).depend_out(&b).spawn(|| b.store(2, Relaxed));
///         task(ctx)
///             .depend_in(&a)
///             .depend_in(&b)
///             .depend_out(&c)
///             .spawn(|| c.store(a.load(Relaxed) + b.load(Relaxed), Relaxed));
///     });
/// });
/// assert_eq!(c.load(Relaxed), 3);
/// ```
#[must_use = "a task builder does nothing until .spawn(body)"]
#[derive(Debug)]
pub struct Task<'c, 'scope> {
    ctx: &'c ThreadCtx<'scope>,
    spec: TaskSpec,
}

/// Start building a `task` construct on `ctx`.
pub fn task<'c, 'scope>(ctx: &'c ThreadCtx<'scope>) -> Task<'c, 'scope> {
    Task {
        ctx,
        spec: TaskSpec::new(),
    }
}

impl<'scope> Task<'_, 'scope> {
    /// `depend(in: x)`: run after the last task that wrote `x`.
    pub fn depend_in<T: ?Sized>(mut self, x: &T) -> Self {
        self.spec = self.spec.input(x);
        self
    }

    /// `depend(out: x)`: run after the last writer of `x` and every
    /// reader since; become `x`'s last writer.
    pub fn depend_out<T: ?Sized>(mut self, x: &T) -> Self {
        self.spec = self.spec.output(x);
        self
    }

    /// `depend(inout: x)`: same ordering as [`depend_out`](Self::depend_out).
    pub fn depend_inout<T: ?Sized>(mut self, x: &T) -> Self {
        self.spec = self.spec.inout(x);
        self
    }

    /// The `if` clause: `false` executes the task undeferred on the
    /// encountering thread (after its dependences are satisfied).
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.spec = self.spec.if_clause(cond);
        self
    }

    /// The `final` clause: `true` makes this task and all its
    /// descendants execute undeferred (included tasks).
    pub fn final_clause(mut self, cond: bool) -> Self {
        self.spec = self.spec.final_clause(cond);
        self
    }

    /// Create the task. The closure may borrow anything outliving the
    /// region (`'scope`); dependence addresses were captured when the
    /// `depend_*` calls ran.
    pub fn spawn<F: FnOnce() + Send + 'scope>(self, f: F) {
        self.ctx.task_spec(self.spec, f);
    }
}

/// `cancel` through the typed front end: request cancellation of the
/// innermost enclosing region of `kind` — the builder-API spelling of
/// [`omp_cancel!`](crate::omp_cancel) (the macro and the `//#omp`
/// translator lower to the same [`ThreadCtx::cancel`] call). Returns
/// `true` when cancellation is active for the calling thread, which
/// should then return toward the region end; always `false` (no-op)
/// while the `OMP_CANCELLATION` ICV is off.
///
/// ```
/// use romp_core::prelude::*;
/// use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
///
/// let _arm = romp_core::runtime::icv::set_cancellation_override(Some(true));
/// let chunks = AtomicUsize::new(0);
/// parallel().num_threads(2).run(|ctx| {
///     ctx.ws_for(0..100_000, Schedule::dynamic_chunk(64), false, |i| {
///         chunks.fetch_add(1, Relaxed);
///         if i == 100 {
///             cancel(ctx, CancelKind::For);
///         }
///     });
/// });
/// assert!(chunks.load(Relaxed) < 100_000);
/// romp_core::runtime::icv::set_cancellation_override(None);
/// ```
pub fn cancel(ctx: &ThreadCtx<'_>, kind: CancelKind) -> bool {
    ctx.cancel(kind)
}

/// `cancellation point` through the typed front end: has cancellation
/// of the innermost enclosing region of `kind` been activated? The
/// builder-API spelling of
/// [`omp_cancellation_point!`](crate::omp_cancellation_point).
pub fn cancellation_point(ctx: &ThreadCtx<'_>, kind: CancelKind) -> bool {
    ctx.cancellation_point(kind)
}

/// Builder for a combined `parallel for` over any [`IterSpace`].
#[derive(Debug, Clone)]
pub struct ParFor<S: IterSpace> {
    space: S,
    sched: Schedule,
    spec: ForkSpec,
    /// Tuner site identity for `schedule(auto)` learning: the
    /// `#[track_caller]` location of the [`par_for`] call, unless
    /// [`site`](Self::site) named it. Captured *here*, on the master,
    /// because the construct itself runs inside the fork closure where
    /// a caller stamp would collapse every user onto this file.
    site: SiteId,
}

/// The 2-D collapse of two `usize` ranges — what [`par_for_2d`]
/// builds. (Former standalone `ParFor2` builder; now just an instance
/// of the generic [`ParFor`].)
pub type ParFor2 = ParFor<Collapse2<Range<usize>, Range<usize>>>;

/// Start building a `parallel for` over any iteration space: a
/// `Range<usize>`, a `Range<i64>`, a
/// [`StridedRange`](crate::space::StridedRange), or a
/// [`collapse2`]/[`collapse3`](crate::space::collapse3) fusion.
#[track_caller]
pub fn par_for<S: IterSpace>(space: S) -> ParFor<S> {
    ParFor {
        space,
        sched: Schedule::default(),
        spec: ForkSpec::default(),
        site: SiteId::from_caller(core::panic::Location::caller()),
    }
}

/// Start building a collapsed 2-D `parallel for` (`collapse(2)` over
/// two `usize` ranges). Delegates to [`par_for`] +
/// [`collapse2`]; bodies receive the `(i, j)` tuple.
#[track_caller]
pub fn par_for_2d(outer: Range<usize>, inner: Range<usize>) -> ParFor2 {
    par_for(collapse2(outer, inner))
}

/// `Send`/`Sync` wrapper for the base pointer of an output slice whose
/// disjoint chunks are handed out by the worksharing schedule.
struct SendPtr<T>(*mut T);
// SAFETY: access discipline is enforced by the normalized-chunk
// partition (each chunk visits exactly one thread); the wrapper itself
// only carries the address.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// whole `Sync` wrapper, not the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<S: IterSpace> ParFor<S> {
    /// The `schedule` clause.
    pub fn schedule(mut self, sched: Schedule) -> Self {
        self.sched = sched;
        self
    }

    /// The `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.spec.num_threads = Some(n);
        self
    }

    /// The `if` clause: `false` serializes the region.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.spec.if_clause = Some(cond);
        self
    }

    /// The `proc_bind` clause (recorded and reported; see
    /// [`Parallel::proc_bind`]).
    pub fn proc_bind(mut self, bind: ProcBind) -> Self {
        self.spec.proc_bind = Some(bind);
        self
    }

    /// Name this loop's tuner site (the builder spelling of the macro
    /// `site("…")` clause). With `schedule(auto)`, loops sharing a name
    /// share learning history even across code locations; unnamed loops
    /// are keyed by the [`par_for`] call site. See
    /// `romp_runtime::tune`.
    pub fn site(mut self, name: &'static str) -> Self {
        self.site = SiteId::Named(name);
        self
    }

    /// Merge a whole fork spec (used by the macro front end, which
    /// accumulates `num_threads`/`if` clauses into a [`ForkSpec`]).
    /// Clauses set in `spec` win; clauses it leaves unset keep whatever
    /// [`num_threads`](Self::num_threads)/[`if_clause`](Self::if_clause)
    /// already configured, so chaining order cannot silently drop one.
    pub fn fork_spec(mut self, spec: ForkSpec) -> Self {
        if spec.num_threads.is_some() {
            self.spec.num_threads = spec.num_threads;
        }
        if spec.if_clause.is_some() {
            self.spec.if_clause = spec.if_clause;
        }
        if spec.proc_bind.is_some() {
            self.spec.proc_bind = spec.proc_bind;
        }
        if spec.league {
            self.spec.league = true;
        }
        self
    }

    /// Run `body(i)` for every index of the space, distributed over the
    /// team.
    pub fn run<F>(self, body: F)
    where
        F: Fn(S::Index) + Sync,
    {
        let ParFor {
            space,
            sched,
            spec,
            site,
        } = self;
        fork(spec, |ctx| {
            // nowait: the region-end implicit barrier is the loop barrier.
            crate::space::ws_space_at(ctx, site, &space, sched, true, &body);
        });
    }

    /// Run `body(chunk)` for whole claimed chunks — lets hot kernels
    /// iterate without per-index closure dispatch. For `Range<usize>`
    /// spaces the chunk *is* a `Range<usize>`.
    pub fn run_chunks<F>(self, body: F)
    where
        F: Fn(S::Chunk) + Sync,
    {
        let ParFor {
            space,
            sched,
            spec,
            site,
        } = self;
        fork(spec, |ctx| {
            crate::space::ws_space_chunks_at(ctx, site, &space, sched, true, &body);
        });
    }

    /// The `reduction` clause: every thread folds into a private
    /// accumulator seeded with the operator identity; partials and `init`
    /// are combined at the end.
    pub fn reduce<T, Op, F>(self, op: Op, init: T, body: F) -> T
    where
        T: Clone + Send,
        Op: ReduceOp<T>,
        F: Fn(S::Index, &mut T) + Sync,
    {
        let ParFor {
            space,
            sched,
            spec,
            site,
        } = self;
        let red = RedVar::new(init, op);
        fork(spec, |ctx| {
            let mut local = op.identity();
            crate::space::ws_space_at(ctx, site, &space, sched, true, |i| body(i, &mut local));
            red.contribute(local);
        });
        red.into_inner()
    }

    /// Chunked variant of [`reduce`](Self::reduce).
    pub fn reduce_chunks<T, Op, F>(self, op: Op, init: T, body: F) -> T
    where
        T: Clone + Send,
        Op: ReduceOp<T>,
        F: Fn(S::Chunk, &mut T) + Sync,
    {
        let ParFor {
            space,
            sched,
            spec,
            site,
        } = self;
        let red = RedVar::new(init, op);
        fork(spec, |ctx| {
            let mut local = op.identity();
            crate::space::ws_space_chunks_at(ctx, site, &space, sched, true, |c| {
                body(c, &mut local)
            });
            red.contribute(local);
        });
        red.into_inner()
    }

    /// Safe mutable-output loop: `body(idx, slot)` runs once per point
    /// of the space, where `slot` is the exclusive `&mut` to
    /// `out[k]` for the point's normalized position `k` — the OpenMP
    /// `a[i] = …` pattern with **no caller-side `unsafe`**.
    ///
    /// `out.len()` must equal the space's trip count. Disjointness is
    /// guaranteed by the worksharing partition (every normalized index
    /// is claimed by exactly one thread), so any schedule is fine.
    ///
    /// ```
    /// use romp_core::prelude::*;
    ///
    /// let mut squares = vec![0u64; 1000];
    /// par_for(0..1000usize)
    ///     .num_threads(4)
    ///     .schedule(Schedule::dynamic_chunk(64))
    ///     .write_into(&mut squares, |i, slot| *slot = (i * i) as u64);
    /// assert!(squares.iter().enumerate().all(|(i, &v)| v == (i * i) as u64));
    /// ```
    pub fn write_into<T, F>(self, out: &mut [T], body: F)
    where
        T: Send,
        F: Fn(S::Index, &mut T) + Sync,
    {
        let ParFor {
            space,
            sched,
            spec,
            site,
        } = self;
        let trip = space.trip();
        assert_eq!(
            out.len() as u64,
            trip,
            "write_into: output slice length {} != iteration-space size {trip}",
            out.len()
        );
        let base = SendPtr(out.as_mut_ptr());
        fork(spec, |ctx| {
            ctx.ws_for_normalized_at(site, trip, sched, true, |lo, hi| {
                // SAFETY: the normalized driver hands `[lo, hi)` to
                // exactly one thread (the exactly-once partition pinned
                // by the conformance suite), so this subslice is
                // disjoint from every other chunk's; the fork join
                // publishes the writes back to the caller's borrow.
                let slots = unsafe {
                    std::slice::from_raw_parts_mut(base.get().add(lo as usize), (hi - lo) as usize)
                };
                for (slot, idx) in slots.iter_mut().zip(space.chunk(lo, hi)) {
                    body(idx, slot);
                }
            });
        });
    }

    /// Chunk-granular safe mutable output, in the style of
    /// `par_chunks_mut`: each claimed chunk's decoder arrives together
    /// with the exclusive `&mut` subslice of `out` it owns.
    ///
    /// `out.len()` must be a multiple of the trip count; the quotient
    /// `m = out.len() / trip` is the per-iteration output stride, so a
    /// chunk `[lo, hi)` owns `out[lo*m .. hi*m]`. With `m == 1` this is
    /// the chunked form of [`write_into`](Self::write_into); with
    /// `m == row_len` a loop over rows owns whole output rows —
    /// see `examples/heat.rs`.
    ///
    /// ```
    /// use romp_core::prelude::*;
    ///
    /// // Each of 8 rows of width 16 is filled by whichever thread
    /// // claims it; no atomics, no unsafe.
    /// let mut grid = vec![0usize; 8 * 16];
    /// par_for(0..8usize).num_threads(3).write_chunks_into(&mut grid, |rows, out| {
    ///     for (row, row_out) in rows.zip(out.chunks_mut(16)) {
    ///         for (col, cell) in row_out.iter_mut().enumerate() {
    ///             *cell = row * 16 + col;
    ///         }
    ///     }
    /// });
    /// assert!(grid.iter().enumerate().all(|(k, &v)| v == k));
    /// ```
    pub fn write_chunks_into<T, F>(self, out: &mut [T], body: F)
    where
        T: Send,
        F: Fn(S::Chunk, &mut [T]) + Sync,
    {
        let ParFor {
            space,
            sched,
            spec,
            site,
        } = self;
        let trip = space.trip();
        let stride = if trip == 0 {
            assert!(
                out.is_empty(),
                "write_chunks_into: iteration space is empty but the output \
                 slice has {} elements (nothing would be written)",
                out.len()
            );
            1
        } else {
            assert!(
                !out.is_empty(),
                "write_chunks_into: output slice is empty but the iteration \
                 space has {trip} points (nothing would be written)"
            );
            assert_eq!(
                out.len() as u64 % trip,
                0,
                "write_chunks_into: output length {} is not a multiple of the \
                 iteration-space size {trip}",
                out.len()
            );
            (out.len() as u64 / trip) as usize
        };
        let base = SendPtr(out.as_mut_ptr());
        fork(spec, |ctx| {
            ctx.ws_for_normalized_at(site, trip, sched, true, |lo, hi| {
                // SAFETY: as in `write_into`; the per-iteration stride
                // scales the disjoint normalized chunks onto disjoint
                // subslices.
                let slots = unsafe {
                    std::slice::from_raw_parts_mut(
                        base.get().add(lo as usize * stride),
                        (hi - lo) as usize * stride,
                    )
                };
                body(space.chunk(lo, hi), slots);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{collapse3, StridedRange};
    use romp_runtime::{MaxOp, SumOp};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_covers_all_indices_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_for(0..1000usize)
            .num_threads(4)
            .schedule(Schedule::dynamic_chunk(7))
            .run(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn teams_builder_forms_a_league() {
        parallel().teams(2).run(|ctx| {
            assert_eq!(romp_runtime::omp_get_num_teams(), ctx.num_threads());
            assert_eq!(romp_runtime::omp_get_team_num(), ctx.thread_num());
            assert_eq!(ctx.proc_bind(), ProcBind::Spread);
        });
        // Outside any teams construct the league is trivial.
        assert_eq!(romp_runtime::omp_get_num_teams(), 1);
        assert_eq!(romp_runtime::omp_get_team_num(), 0);
    }

    #[test]
    fn par_for_reduce_matches_serial() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = data.iter().sum();
        for sched in [
            Schedule::static_block(),
            Schedule::static_chunk(13),
            Schedule::dynamic_chunk(64),
            Schedule::guided(),
        ] {
            let parallel = par_for(0..data.len())
                .num_threads(4)
                .schedule(sched)
                .reduce(SumOp, 0.0, |i, acc| *acc += data[i]);
            assert!(
                (parallel - serial).abs() < 1e-9,
                "sched {sched}: {parallel} vs {serial}"
            );
        }
    }

    #[test]
    fn reduce_includes_init() {
        let s = par_for(0..10usize)
            .num_threads(2)
            .reduce(SumOp, 100i64, |i, acc| *acc += i as i64);
        assert_eq!(s, 100 + 45);
    }

    #[test]
    fn reduce_max() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 7919) % 1000).collect();
        let m = par_for(0..data.len())
            .num_threads(4)
            .reduce(MaxOp, i64::MIN, |i, acc| *acc = (*acc).max(data[i]));
        assert_eq!(m, *data.iter().max().unwrap());
    }

    #[test]
    fn run_chunks_sees_contiguous_ranges() {
        let total = AtomicUsize::new(0);
        par_for(0..777usize)
            .num_threads(3)
            .schedule(Schedule::static_chunk(50))
            .run_chunks(|r| {
                assert!(r.start < r.end && r.end <= 777);
                assert!(r.end - r.start <= 50);
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
        assert_eq!(total.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn par_for_2d_covers_rectangle() {
        let hits: Vec<AtomicUsize> = (0..20 * 30).map(|_| AtomicUsize::new(0)).collect();
        par_for_2d(0..20, 0..30).num_threads(4).run(|(i, j)| {
            hits[i * 30 + j].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_2d_reduce() {
        let s = par_for_2d(1..4, 1..5)
            .num_threads(3)
            .reduce(SumOp, 0usize, |(i, j), acc| *acc += i * j);
        // (1+2+3) * (1+2+3+4) = 60
        assert_eq!(s, 60);
    }

    #[test]
    fn signed_and_strided_spaces_through_the_same_builder() {
        let s = par_for(-5i64..5)
            .num_threads(3)
            .schedule(Schedule::dynamic())
            .reduce(SumOp, 0i64, |i, acc| *acc += i);
        assert_eq!(s, -5);
        let s =
            par_for(StridedRange::new(0, 100, 7))
                .num_threads(4)
                .reduce(SumOp, 0i64, |i, acc| *acc += i);
        assert_eq!(s, (0..100).step_by(7).sum::<usize>() as i64);
    }

    #[test]
    fn collapse3_through_builder() {
        let s = par_for(collapse3(0..3usize, 0..4usize, 0..5usize))
            .num_threads(4)
            .schedule(Schedule::guided())
            .reduce(SumOp, 0usize, |(i, j, k), acc| *acc += i * 100 + j * 10 + k);
        let mut want = 0usize;
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    want += i * 100 + j * 10 + k;
                }
            }
        }
        assert_eq!(s, want);
    }

    #[test]
    fn empty_range_is_fine() {
        par_for(5..5usize)
            .num_threads(4)
            .run(|_| panic!("no iterations"));
        let s = par_for(5..5usize)
            .num_threads(4)
            .reduce(SumOp, 7i32, |_, _| panic!("no iterations"));
        assert_eq!(s, 7);
    }

    #[test]
    fn if_clause_serializes_but_computes() {
        let s = par_for(0..100usize)
            .if_clause(false)
            .reduce(SumOp, 0usize, |i, acc| {
                assert_eq!(romp_runtime::omp_get_num_threads(), 1);
                *acc += i;
            });
        assert_eq!(s, 4950);
    }

    #[test]
    fn write_into_fills_every_slot() {
        let mut out = vec![0u64; 4096];
        par_for(0..4096usize)
            .num_threads(8)
            .schedule(Schedule::dynamic_chunk(64))
            .write_into(&mut out, |i, slot| *slot = (i * i) as u64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn write_into_collapse_positions_are_normalized() {
        // Output is indexed by normalized position, so a 2-D space
        // writes row-major regardless of its bounds.
        let mut out = vec![(0usize, 0usize); 12];
        par_for_2d(5..8, 2..6)
            .num_threads(3)
            .write_into(&mut out, |(i, j), slot| *slot = (i, j));
        for (k, &(i, j)) in out.iter().enumerate() {
            assert_eq!((i, j), (5 + k / 4, 2 + k % 4));
        }
    }

    #[test]
    fn write_into_strided_space() {
        let mut out = vec![0i64; 34];
        par_for(StridedRange::new(100, 0, -3))
            .num_threads(4)
            .schedule(Schedule::guided())
            .write_into(&mut out, |i, slot| *slot = i);
        for (k, &v) in out.iter().enumerate() {
            assert_eq!(v, 100 - 3 * k as i64);
        }
    }

    #[test]
    #[should_panic(expected = "write_into")]
    fn write_into_length_mismatch_panics() {
        let mut out = vec![0u8; 9];
        par_for(0..10usize).write_into(&mut out, |_, _| {});
    }

    #[test]
    fn write_chunks_into_strided_output() {
        // 6 iterations, 4 output cells each.
        let mut out = vec![0usize; 24];
        par_for(0..6usize)
            .num_threads(3)
            .schedule(Schedule::static_chunk(1))
            .write_chunks_into(&mut out, |rows, slots| {
                for (row, cells) in rows.zip(slots.chunks_mut(4)) {
                    for (c, cell) in cells.iter_mut().enumerate() {
                        *cell = row * 4 + c;
                    }
                }
            });
        assert!(out.iter().enumerate().all(|(k, &v)| v == k));
    }

    #[test]
    fn write_chunks_into_empty_space() {
        let mut out: Vec<u8> = Vec::new();
        par_for(3..3usize).write_chunks_into(&mut out, |_, _| panic!("no chunks"));
    }

    #[test]
    #[should_panic(expected = "write_chunks_into")]
    fn write_chunks_into_rejects_output_for_empty_space() {
        // An empty space cannot satisfy a non-empty output: diagnose
        // instead of silently writing nothing.
        let mut out = vec![0u8; 4];
        par_for(3..3usize).write_chunks_into(&mut out, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "write_chunks_into")]
    fn write_chunks_into_rejects_empty_output_for_nonempty_space() {
        // The symmetric mistake — a forgotten allocation — must not
        // silently degenerate to zero-length slots.
        let mut out: Vec<u8> = Vec::new();
        par_for(0..4usize).write_chunks_into(&mut out, |_, _| {});
    }
}
