//! # romp-core — the OpenMP directive layer for Rust
//!
//! This crate is the paper's primary contribution transposed to Rust: it
//! gives Rust programs OpenMP's `parallel`, worksharing-loop,
//! `single`/`master`/`sections`, `critical`, `barrier` and `task`
//! constructs with the clauses the paper implements (`shared`, `private`,
//! `firstprivate`, `schedule`, `reduction`, plus `num_threads`, `if`,
//! `nowait`), lowered onto the from-scratch runtime in
//! [`romp_runtime`].
//!
//! Two front ends share the same lowering:
//!
//! * the **macros** in this crate ([`omp_parallel!`],
//!   [`omp_parallel_for!`], [`omp_for!`], …), whose clause syntax mirrors
//!   OpenMP pragma text — the in-language equivalent of the paper's
//!   comment directives;
//! * the **`//#omp` source translator** in `romp-pragma`, which rewrites
//!   comment-directive-annotated sources into calls to this crate's
//!   [`builder`] API (the analogue of the paper's compiler preprocessing
//!   pass).
//!
//! ## Quick start
//!
//! ```
//! use romp_core::prelude::*;
//!
//! // π by midpoint integration: an OpenMP classic.
//! let n = 100_000usize;
//! let h = 1.0 / n as f64;
//! let (sum,) = omp_parallel_for!(
//!     num_threads(4), schedule(static), reduction(+ : sum = 0.0),
//!     for i in 0..n {
//!         let x = h * (i as f64 + 0.5);
//!         sum += 4.0 / (1.0 + x * x);
//!     }
//! );
//! assert!((sum * h - std::f64::consts::PI).abs() < 1e-6);
//! ```
//!
//! The same loop through the builder API:
//!
//! ```
//! use romp_core::prelude::*;
//!
//! let n = 100_000usize;
//! let h = 1.0 / n as f64;
//! let sum = par_for(0..n)
//!     .num_threads(4)
//!     .schedule(Schedule::static_block())
//!     .reduce(SumOp, 0.0, |i, acc| {
//!         let x = h * (i as f64 + 0.5);
//!         *acc += 4.0 / (1.0 + x * x);
//!     });
//! assert!((sum * h - std::f64::consts::PI).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod builder;
#[macro_use]
mod macros;
pub mod prelude;
pub mod slice;
pub mod space;

pub use builder::{
    cancel, cancellation_point, par_for, par_for_2d, parallel, task, ParFor, ParFor2, Parallel,
    Task,
};
pub use space::{collapse2, collapse3, Collapse2, Collapse3, IterSpace, StridedRange};

// Re-export the runtime surface the macros and translated code use, so a
// single `romp_core` dependency suffices.
pub use romp_runtime::{
    self as runtime, critical, critical_named, fork, get_wtick, get_wtime, omp_get_active_level,
    omp_get_ancestor_thread_num, omp_get_cancellation, omp_get_dynamic, omp_get_level,
    omp_get_max_active_levels, omp_get_max_threads, omp_get_num_procs, omp_get_num_threads,
    omp_get_schedule, omp_get_team_size, omp_get_thread_limit, omp_get_thread_num, omp_get_wtick,
    omp_get_wtime, omp_in_parallel, omp_set_dynamic, omp_set_max_active_levels,
    omp_set_num_threads, omp_set_schedule, variants, BarrierKind, BitAndOp, BitOrOp, BitXorOp,
    CancelKind, ForkSpec, LogAndOp, LogOrOp, MaxOp, MinOp, NestLock, OmpLock, ProdOp, ReduceOp,
    Schedule, SumOp, TaskDeps, TaskSpec, TaskloopSpec, ThreadCtx,
};
