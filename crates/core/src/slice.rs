//! Shared-slice utility for worksharing writes.
//!
//! OpenMP loops routinely write `a[i] = …` from many threads, relying
//! on the schedule to hand each index to exactly one thread. Rust's
//! `&mut` aliasing rules cannot see that, so [`SharedSlice`] provides
//! the classic escape hatch: a `Sync` view of a mutable slice whose
//! unsynchronized writes are `unsafe`, with the disjointness obligation
//! placed on the caller — precisely the obligation OpenMP programs
//! already discharge by construction, because worksharing schedules
//! partition the iteration space (a property the runtime's property
//! tests pin down).
//!
//! **Prefer the safe output layer.** Since the `IterSpace` redesign,
//! [`ParFor::write_into`](crate::builder::ParFor::write_into) and
//! [`ParFor::write_chunks_into`](crate::builder::ParFor::write_chunks_into)
//! cover the common shapes of this pattern — one output slot per
//! iteration, or whole output rows per claimed chunk — with zero
//! caller-side `unsafe` (the NPB IS/CG/Mandelbrot kernels and the heat
//! example have all been migrated onto them). `SharedSlice` remains
//! for what those cannot express: scatters to schedule-unrelated
//! indices, or cross-barrier read/write phases inside one long-lived
//! `parallel` region.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A `Sync` view over `&mut [T]` permitting disjoint unsynchronized
/// element writes from a team.
///
/// ```
/// use romp_core::prelude::*;
/// use romp_core::slice::SharedSlice;
///
/// let mut out = vec![0usize; 1000];
/// {
///     let view = SharedSlice::new(&mut out);
///     omp_parallel!(num_threads(4), |ctx| {
///         omp_for!(ctx, schedule(static, 16), for i in 0..1000 {
///             // SAFETY: the worksharing loop gives each index to
///             // exactly one thread.
///             unsafe { view.write(i, i * 2) };
///         });
///     });
/// }
/// assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
/// ```
pub struct SharedSlice<'a, T> {
    ptr: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is delegated to the unsafe write/read
// methods; the wrapper itself only shares a pointer.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice. The borrow keeps ordinary access frozen
    /// for the wrapper's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        SharedSlice {
            ptr: slice.as_mut_ptr() as *const UnsafeCell<T>,
            len,
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the slice empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write element `i`.
    ///
    /// # Safety
    ///
    /// No other thread may access element `i` concurrently. A
    /// worksharing schedule that assigns `i` to exactly one thread (as
    /// every romp schedule does) discharges this.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len, "SharedSlice index {i} out of {}", self.len);
        // SAFETY: caller guarantees exclusivity for element i.
        unsafe { *(*self.ptr.add(i)).get() = value };
    }

    /// Read element `i`.
    ///
    /// # Safety
    ///
    /// No thread may be writing element `i` concurrently (reads of
    /// elements written in a *previous* construct are fine — the
    /// construct barrier publishes them).
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len, "SharedSlice index {i} out of {}", self.len);
        // SAFETY: caller guarantees no concurrent writer.
        unsafe { *(*self.ptr.add(i)).get() }
    }

    /// Raw pointer to the start of the underlying storage. Useful for
    /// constructing whole-slice read views between constructs (after a
    /// barrier has published all writes):
    /// `std::slice::from_raw_parts(s.as_ptr(), s.len())`.
    pub fn as_ptr(&self) -> *const T {
        self.ptr as *const T
    }

    /// Mutable reference to element `i`.
    ///
    /// # Safety
    ///
    /// Same exclusivity obligation as [`write`](Self::write), for the
    /// lifetime of the returned borrow.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "SharedSlice index {i} out of {}", self.len);
        // SAFETY: caller guarantees exclusivity for element i.
        unsafe { &mut *(*self.ptr.add(i)).get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u64; 4096];
        {
            let view = SharedSlice::new(&mut data);
            par_for(0..4096usize)
                .num_threads(8)
                .schedule(Schedule::dynamic_chunk(64))
                .run(|i| unsafe { view.write(i, (i * i) as u64) });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn read_after_barrier_sees_writes() {
        let mut data = vec![0usize; 256];
        let mut mirror = vec![0usize; 256];
        {
            let d = SharedSlice::new(&mut data);
            let m = SharedSlice::new(&mut mirror);
            omp_parallel!(num_threads(4), |ctx| {
                omp_for!(
                    ctx,
                    for i in 0..256 {
                        unsafe { d.write(i, i + 1) };
                    }
                );
                // Implied barrier published the writes; now read a
                // shuffled pattern.
                omp_for!(
                    ctx,
                    for i in 0..256 {
                        let v = unsafe { d.read(255 - i) };
                        unsafe { m.write(i, v) };
                    }
                );
            });
        }
        for (i, &v) in mirror.iter().enumerate() {
            assert_eq!(v, 256 - i);
        }
    }

    #[test]
    fn get_mut_accumulates() {
        let mut data = vec![0i64; 100];
        {
            let view = SharedSlice::new(&mut data);
            par_for(0..100usize).num_threads(4).run(|i| {
                let cell = unsafe { view.get_mut(i) };
                *cell += i as i64;
                *cell *= 2;
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 2 * i as i64);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut v = [1, 2, 3];
        let s = SharedSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: [i32; 0] = [];
        assert!(SharedSlice::new(&mut e).is_empty());
    }
}
