//! One-stop import for romp programs: `use romp_core::prelude::*;`.

pub use crate::builder::{cancel, cancellation_point, par_for, par_for_2d, parallel, task};
pub use crate::space::{collapse2, collapse3, IterSpace, StridedRange};
pub use crate::{
    omp_barrier, omp_cancel, omp_cancellation_point, omp_critical, omp_for, omp_master,
    omp_ordered, omp_parallel, omp_parallel_for, omp_sections, omp_single, omp_task, omp_taskgroup,
    omp_taskloop, omp_taskwait, omp_teams,
};
pub use romp_runtime::{
    cancel_taskgroup, cancellation_point_taskgroup, critical, critical_named, fork,
    omp_get_cancellation, omp_get_max_threads, omp_get_num_procs, omp_get_num_threads,
    omp_get_thread_num, omp_get_wtime, omp_in_parallel, omp_set_num_threads, BitAndOp, BitOrOp,
    BitXorOp, CancelKind, ForkSpec, LogAndOp, LogOrOp, MaxOp, MinOp, NestLock, OmpLock, ProdOp,
    ReduceOp, Schedule, SumOp, TaskDeps, TaskSpec, TaskloopSpec, ThreadCtx,
};
