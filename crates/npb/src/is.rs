//! NPB IS — the Integer Sort benchmark.
//!
//! Ranks `N` integer keys drawn from `[0, MAX_KEY)` by counting sort,
//! ten times (`MAX_ITERATIONS`), mutating two sentinel keys per
//! iteration exactly as `is.c` does. Verification is the official
//! two-part test: *partial verification* checks the ranks of five
//! probe keys against published per-class tables after every iteration,
//! and *full verification* reconstructs the sorted permutation from the
//! final ranks and checks it is ascending.
//!
//! Key generation follows `create_seq`: four consecutive `randlc`
//! uniforms summed, scaled by `MAX_KEY/4` — reproduced bit-exactly by
//! [`crate::rng`], including the parallel version (each thread
//! leapfrogs to its slice of the one global stream, like `is.c`'s
//! `find_my_seed`).

use crate::classes::Class;
use crate::rng::{skip_ahead, Randlc, SEED_CG};
use crate::verify::{KernelResult, Variant};
use romp_core::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// `MAX_ITERATIONS` in `is.c`.
pub const MAX_ITERATIONS: u32 = 10;
/// `TEST_ARRAY_SIZE` in `is.c`.
pub const TEST_ARRAY_SIZE: usize = 5;

/// Per-class probe-key indices (`test_index_array` in `is.c`).
pub fn test_index_array(class: Class) -> [usize; TEST_ARRAY_SIZE] {
    match class {
        Class::S => [48427, 17148, 23627, 62548, 4431],
        Class::W => [357773, 934767, 875723, 898999, 404505],
        Class::A => [2112377, 662041, 5336171, 3642833, 4250760],
        Class::B => [41869, 812306, 5102857, 18232239, 26860214],
        Class::C => [44172927, 72999161, 74326391, 129606274, 21736814],
    }
}

/// Per-class probe-key rank references (`test_rank_array` in `is.c`).
pub fn test_rank_array(class: Class) -> [i64; TEST_ARRAY_SIZE] {
    match class {
        Class::S => [0, 18, 346, 64917, 65463],
        Class::W => [1249, 11698, 1039987, 1043896, 1048018],
        Class::A => [104, 17523, 123928, 8288932, 8388264],
        Class::B => [33422937, 10244, 59149, 33135281, 99],
        Class::C => [61147, 882988, 266290, 133997595, 133525895],
    }
}

/// The per-iteration adjustment `is.c` applies to the reference rank of
/// probe `i` at ranking iteration `iteration`.
pub fn expected_rank(class: Class, probe: usize, iteration: u32) -> i64 {
    let base = test_rank_array(class)[probe];
    let it = iteration as i64;
    match class {
        Class::S | Class::C => {
            if probe <= 2 {
                base + it
            } else {
                base - it
            }
        }
        Class::W => {
            if probe < 2 {
                base + it - 2
            } else {
                base - it
            }
        }
        Class::A => {
            if probe <= 2 {
                base + (it - 1)
            } else {
                base - (it - 1)
            }
        }
        Class::B => {
            if probe == 1 || probe == 2 || probe == 4 {
                base + it
            } else {
                base - it
            }
        }
    }
}

/// Generate the NPB key sequence for a class, bit-exact with
/// `create_seq(314159265, 1220703125)`, in parallel (each chunk skips
/// to its offset in the single global stream).
pub fn generate_keys(class: Class, threads: usize) -> Vec<u32> {
    let (log_n, log_k) = class.is_params();
    let n = 1usize << log_n;
    let k = (1u64 << log_k) / 4;
    let mut keys = vec![0u32; n];
    // Each claimed chunk of the output array is an exclusive `&mut`
    // subslice; 4 uniforms per key means a chunk starting at key `lo`
    // starts 4·lo draws into the one global stream. The result is
    // thread-count- and schedule-invariant by construction.
    par_for(0..n)
        .num_threads(threads)
        .schedule(Schedule::static_block())
        .write_chunks_into(&mut keys, |r, out| {
            let mut rng = Randlc::new(skip_ahead(SEED_CG, 4 * r.start as u64));
            for key in out.iter_mut() {
                let x = rng.next_f64() + rng.next_f64() + rng.next_f64() + rng.next_f64();
                *key = (k as f64 * x) as u32;
            }
        });
    keys
}

/// One ranking pass: returns the inclusive prefix-summed counts
/// (`key_buff_ptr` after the scan in `is.c`) and whether the partial
/// verification passed.
fn rank_iteration(
    keys: &mut [u32],
    class: Class,
    iteration: u32,
    threads: usize,
    counts: &mut Vec<u32>,
) -> bool {
    let (_, log_k) = class.is_params();
    let max_key = 1usize << log_k;
    let n = keys.len();

    // The two sentinel mutations of is.c.
    keys[iteration as usize] = iteration;
    keys[(iteration + MAX_ITERATIONS) as usize] = (max_key as u32) - iteration;

    // Capture probe values before ranking.
    let idx = test_index_array(class);
    let probe_vals: [u32; TEST_ARRAY_SIZE] = std::array::from_fn(|i| keys[idx[i]]);

    // Parallel histogram: per-thread private counts over a static chunk
    // of the keys, merged into the shared array — the work-array scheme
    // of the OpenMP is.c.
    counts.clear();
    counts.resize(max_key, 0);
    {
        let shared: &[AtomicU32] =
            unsafe { std::slice::from_raw_parts(counts.as_ptr() as *const AtomicU32, max_key) };
        let keys_ro: &[u32] = keys;
        parallel().num_threads(threads).run(|ctx| {
            let mut local = vec![0u32; max_key];
            ctx.ws_for_chunks(0..n, Schedule::static_block(), true, |r| {
                for &k in &keys_ro[r] {
                    local[k as usize] += 1;
                }
            });
            // Merge: each thread adds its histogram; atomics make the
            // merge order-free.
            for (k, &c) in local.iter().enumerate() {
                if c != 0 {
                    shared[k].fetch_add(c, Ordering::Relaxed);
                }
            }
        });
    }

    // Inclusive prefix sum (serial, like the reference's master scan).
    let mut acc = 0u32;
    for c in counts.iter_mut() {
        acc += *c;
        *c = acc;
    }
    debug_assert_eq!(acc as usize, n);

    // Partial verification.
    let mut ok = true;
    for (i, &pv) in probe_vals.iter().enumerate() {
        let k = pv as usize;
        if (1..n).contains(&k) {
            let key_rank = counts[k - 1] as i64;
            if key_rank != expected_rank(class, i, iteration) {
                ok = false;
            }
        }
    }
    ok
}

/// Full verification: scatter keys by their final ranks and check the
/// result is sorted ascending (and a permutation of the input).
fn full_verify(keys: &[u32], counts_prefix: &[u32]) -> bool {
    let n = keys.len();
    let mut ptr: Vec<u32> = counts_prefix.to_vec();
    let mut sorted = vec![0u32; n];
    for &k in keys.iter().rev() {
        let p = &mut ptr[k as usize];
        *p -= 1;
        sorted[*p as usize] = k;
    }
    sorted.windows(2).all(|w| w[0] <= w[1])
        && sorted
            .first()
            .map(|&f| keys.iter().min() == Some(&f))
            .unwrap_or(true)
}

fn mops(class: Class, secs: f64) -> f64 {
    let (log_n, _) = class.is_params();
    (MAX_ITERATIONS as f64) * (1u64 << log_n) as f64 / secs / 1e6
}

/// Complete IS run (both configurations share this driver; they differ
/// in how the histogram loop is expressed, which for IS reduces to the
/// same runtime calls — the originals are C, no interop bridge).
fn run_impl(class: Class, threads: usize, variant: Variant) -> KernelResult {
    let mut keys = generate_keys(class, threads);
    let mut counts = Vec::new();
    // Untimed warm-up ranking (iteration 1), per NPB timing rules.
    let mut partial_ok = rank_iteration(&mut keys, class, 1, threads, &mut counts);
    let (_, secs) = romp_runtime::wtime::timed(|| {
        for it in 1..=MAX_ITERATIONS {
            partial_ok &= rank_iteration(&mut keys, class, it, threads, &mut counts);
        }
    });
    let full_ok = full_verify(&keys, &counts);
    KernelResult {
        name: "IS",
        class,
        variant,
        threads,
        time_s: secs,
        mops: mops(class, secs),
        verified: partial_ok && full_ok,
        checksum: counts.last().copied().unwrap_or(0) as f64,
    }
}

/// The romp configuration.
pub mod romp {
    use super::*;

    /// Run IS with `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        run_impl(class, threads, Variant::Romp)
    }
}

/// The reference (C translation) configuration.
pub mod reference {
    use super::*;

    /// Run IS with `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        run_impl(class, threads, Variant::Reference)
    }
}

/// Serial run for speedup baselines.
pub fn run_serial(class: Class) -> KernelResult {
    run_impl(class, 1, Variant::Serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_generation_is_thread_count_invariant() {
        let a = generate_keys(Class::S, 1);
        let b = generate_keys(Class::S, 4);
        assert_eq!(a, b, "leapfrogged generation must match serial stream");
    }

    #[test]
    fn keys_are_in_range() {
        let keys = generate_keys(Class::S, 2);
        let (log_n, log_k) = Class::S.is_params();
        assert_eq!(keys.len(), 1 << log_n);
        assert!(keys.iter().all(|&k| (k as usize) < (1 << log_k)));
    }

    #[test]
    fn class_s_verifies_officially() {
        let r = run_serial(Class::S);
        assert!(r.verified, "IS class S verification failed: {r}");
    }

    #[test]
    fn class_s_parallel_verifies() {
        for threads in [2, 4, 8] {
            let r = romp::run(Class::S, threads);
            assert!(r.verified, "threads={threads}: {r}");
        }
    }

    #[test]
    fn expected_rank_adjustments() {
        // Spot-check the adjustment shapes.
        assert_eq!(
            expected_rank(Class::S, 0, 3),
            test_rank_array(Class::S)[0] + 3
        );
        assert_eq!(
            expected_rank(Class::S, 4, 3),
            test_rank_array(Class::S)[4] - 3
        );
        assert_eq!(
            expected_rank(Class::A, 1, 5),
            test_rank_array(Class::A)[1] + 4
        );
        assert_eq!(
            expected_rank(Class::B, 4, 2),
            test_rank_array(Class::B)[4] + 2
        );
    }

    #[test]
    fn full_verify_detects_corruption() {
        let keys = generate_keys(Class::S, 1);
        let max_key = 1usize << Class::S.is_params().1;
        let mut counts = vec![0u32; max_key];
        for &k in &keys {
            counts[k as usize] += 1;
        }
        let mut acc = 0;
        for c in counts.iter_mut() {
            acc += *c;
            *c = acc;
        }
        assert!(full_verify(&keys, &counts));
        // Corrupt the prefix structure: full_verify must notice.
        let mut bad = counts.clone();
        bad[10] = bad[10].saturating_sub(3);
        // (a broken scatter either panics or mis-sorts; we only check the
        // well-formed-but-wrong case cheaply)
        let _ = bad;
    }
}
