//! NPB EP — the Embarrassingly Parallel benchmark.
//!
//! Generates `2^(M+1)` uniform pseudorandom numbers, forms pairs
//! `(2r₁−1, 2r₂−1)` in the unit square, applies the Marsaglia polar
//! acceptance test, and accumulates the resulting Gaussian deviates:
//! their sums `(sx, sy)` and counts per concentric square annulus
//! `q[0..10]`. Verification compares `(sx, sy)` against the official
//! constants with relative tolerance `1e-8`.
//!
//! The structure mirrors `ep.f`: the stream is processed in blocks of
//! `NK = 2^16` pairs; block `k` starts at stream offset `2·NK·k`,
//! reached in O(log) steps with [`crate::rng::skip_ahead`] — the same
//! leapfrogging `ep.f` does with its `randlc(t2, t2)` doubling loop.
//! That makes every block independent, which is the whole point of the
//! benchmark ("embarrassingly parallel").

use crate::classes::Class;
use crate::rng::{skip_ahead, Randlc, SEED_EP};
use crate::verify::{close, KernelResult, Variant};
use romp_core::prelude::*;
use romp_fortran::{global_registry, ArgRef, ArgVal};
use std::sync::Mutex;
use std::sync::Once;

/// Pairs per block (`NK = 2^MK`, `MK = 16` in `ep.f`).
pub const MK: u32 = 16;
/// Verification tolerance (`ep.f` uses 1e-8 relative).
pub const EPSILON: f64 = 1e-8;

/// Raw EP accumulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpOutput {
    /// Sum of the Gaussian X deviates.
    pub sx: f64,
    /// Sum of the Gaussian Y deviates.
    pub sy: f64,
    /// Pair counts per annulus `max(|X|,|Y|) ∈ [l, l+1)`.
    pub q: [u64; 10],
}

impl EpOutput {
    fn zero() -> Self {
        EpOutput {
            sx: 0.0,
            sy: 0.0,
            q: [0; 10],
        }
    }

    /// Total accepted pairs (`gc` in `ep.f`).
    pub fn gc(&self) -> u64 {
        self.q.iter().sum()
    }
}

/// Official verification constants per class: `(sx, sy)`.
#[allow(clippy::excessive_precision)] // constants copied verbatim from ep.f
pub fn verify_values(class: Class) -> (f64, f64) {
    match class {
        Class::S => (-3.247_834_652_034_740e3, -6.958_407_078_382_297e3),
        Class::W => (-2.863_319_731_645_753e3, -6.320_053_679_109_499e3),
        Class::A => (-4.295_875_165_629_892e3, -1.580_732_573_678_431e4),
        Class::B => (4.033_815_542_441_498e4, -2.660_669_192_809_235e4),
        Class::C => (4.764_367_927_995_374e4, -8.084_072_988_043_731e4),
    }
}

/// Run the official verification test.
pub fn verify(class: Class, out: &EpOutput) -> bool {
    let (sx_ref, sy_ref) = verify_values(class);
    close(out.sx, sx_ref, EPSILON) && close(out.sy, sy_ref, EPSILON)
}

/// Process blocks `[block_lo, block_hi)` of `NK` pairs each, exactly as
/// `ep.f`'s inner loop does.
pub fn accumulate_blocks(block_lo: u64, block_hi: u64) -> EpOutput {
    let nk_pairs = 1u64 << MK;
    let mut acc = EpOutput::zero();
    for k in block_lo..block_hi {
        let mut rng = Randlc::new(skip_ahead(SEED_EP, 2 * nk_pairs * k));
        for _ in 0..nk_pairs {
            let x1 = 2.0 * rng.next_f64() - 1.0;
            let x2 = 2.0 * rng.next_f64() - 1.0;
            let t = x1 * x1 + x2 * x2;
            if t <= 1.0 {
                let t2 = (-2.0 * t.ln() / t).sqrt();
                let t3 = x1 * t2;
                let t4 = x2 * t2;
                let l = t3.abs().max(t4.abs()) as usize;
                acc.q[l] += 1;
                acc.sx += t3;
                acc.sy += t4;
            }
        }
    }
    acc
}

/// Number of `NK`-pair blocks for a class (`NN` in `ep.f`).
pub fn blocks(class: Class) -> u64 {
    1u64 << (class.ep_m() - MK)
}

fn mops(class: Class, secs: f64) -> f64 {
    // ep.f: Mop/s counts the 2^(M+1) random numbers generated.
    2f64.powi(class.ep_m() as i32 + 1) / secs / 1e6
}

/// Serial EP (the single-thread baseline for speedup figures).
pub fn run_serial(class: Class) -> (EpOutput, f64) {
    let (out, secs) = romp_runtime::wtime::timed(|| accumulate_blocks(0, blocks(class)));
    (out, secs)
}

/// The romp directive-layer implementation, structured like the
/// OpenMP-annotated `ep.f`: a worksharing loop over blocks with a
/// `reduction(+ : sx, sy)` clause and a critical section merging the
/// per-thread annulus counts.
pub mod romp {
    use super::*;

    /// Run EP with `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        let nn = blocks(class) as usize;
        let q_total: Mutex<[u64; 10]> = Mutex::new([0; 10]);
        let ((sx, sy), secs) = romp_runtime::wtime::timed(|| {
            omp_parallel_for!(
                num_threads(threads),
                schedule(static),
                reduction(+ : sx = 0.0f64, sy = 0.0f64),
                for k in 0..(nn) {
                    let acc = accumulate_blocks(k as u64, k as u64 + 1);
                    sx += acc.sx;
                    sy += acc.sy;
                    // Annulus counts: merged under a critical section the
                    // way ep.f's OpenMP version merges its q array.
                    omp_critical!(ep_q_merge, {
                        let mut q = q_total.lock().unwrap();
                        for l in 0..10 {
                            q[l] += acc.q[l];
                        }
                    });
                }
            )
        });
        let out = EpOutput {
            sx,
            sy,
            q: q_total.into_inner().unwrap(),
        };
        KernelResult {
            name: "EP",
            class,
            variant: Variant::Romp,
            threads,
            time_s: secs,
            mops: mops(class, secs),
            verified: verify(class, &out),
            checksum: out.sx,
        }
    }
}

/// The reference implementation: the Fortran `ep.f` structure, invoked
/// through the Fortran-interop bridge the way the paper calls Fortran
/// from Zig (mangled name, every argument by reference).
pub mod reference {
    use super::*;

    fn register() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            // "Fortran" EP: EP(M, NTHREADS, SX, SY, Q(10))
            global_registry().register("EP", |args| {
                let (head, tail) = args.split_at_mut(2);
                let m = head[0].as_i64() as u32;
                let threads = head[1].as_i64() as usize;
                let nn = (1u64 << (m - MK)) as usize;
                // The Fortran reference parallelizes its block loop with
                // an OpenMP worksharing-loop + reductions; same lowering
                // here, via the builder (no macros in "Fortran" land).
                // The whole accumulator — sums *and* annulus counts —
                // reduces as one value, so no critical section or lock
                // is needed for the q merge.
                let out = romp_core::par_for(0..nn)
                    .num_threads(threads)
                    .schedule(Schedule::static_block())
                    .reduce(super::EpSum, EpOutput::zero(), |k, acc: &mut EpOutput| {
                        let a = accumulate_blocks(k as u64, k as u64 + 1);
                        acc.sx += a.sx;
                        acc.sy += a.sy;
                        for l in 0..10 {
                            acc.q[l] += a.q[l];
                        }
                    });
                let (out_sx, rest) = tail.split_first_mut().expect("sx argument");
                let (out_sy, rest) = rest.split_first_mut().expect("sy argument");
                out_sx.set_f64(out.sx);
                out_sy.set_f64(out.sy);
                let q_out = rest[0].as_i64_slice_mut();
                for (dst, &src) in q_out.iter_mut().zip(out.q.iter()) {
                    *dst = src as i64;
                }
            });
        });
    }

    /// Run the reference EP with `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        register();
        let m_arg = ArgVal::I64(class.ep_m() as i64);
        let t_arg = ArgVal::I64(threads as i64);
        let mut sx = ArgVal::F64(0.0);
        let mut sy = ArgVal::F64(0.0);
        let mut q = vec![0i64; 10];
        let (_, secs) = romp_runtime::wtime::timed(|| {
            global_registry()
                .call(
                    "ep_",
                    &mut [
                        m_arg.by_ref(),
                        t_arg.by_ref(),
                        sx.by_ref_mut(),
                        sy.by_ref_mut(),
                        ArgRef::I64SliceMut(&mut q),
                    ],
                )
                .expect("Fortran EP resolves");
        });
        let out = EpOutput {
            sx: match sx {
                ArgVal::F64(v) => v,
                _ => unreachable!(),
            },
            sy: match sy {
                ArgVal::F64(v) => v,
                _ => unreachable!(),
            },
            q: std::array::from_fn(|i| q[i] as u64),
        };
        KernelResult {
            name: "EP",
            class,
            variant: Variant::Reference,
            threads,
            time_s: secs,
            mops: mops(class, secs),
            verified: verify(class, &out),
            checksum: out.sx,
        }
    }
}

/// Componentwise sum over the whole [`EpOutput`] accumulator (deviate
/// sums and annulus counts) for the reference path's builder reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpSum;

impl ReduceOp<EpOutput> for EpSum {
    fn identity(&self) -> EpOutput {
        EpOutput::zero()
    }
    fn combine(&self, a: EpOutput, b: EpOutput) -> EpOutput {
        let mut out = a;
        out.sx += b.sx;
        out.sy += b.sy;
        for l in 0..10 {
            out.q[l] += b.q[l];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_serial_verifies_against_official_constants() {
        let (out, _) = run_serial(Class::S);
        assert!(
            verify(Class::S, &out),
            "sx={:.15e} sy={:.15e} (expected {:?})",
            out.sx,
            out.sy,
            verify_values(Class::S)
        );
    }

    #[test]
    fn class_s_romp_verifies_and_matches_serial() {
        let (serial, _) = run_serial(Class::S);
        let r = romp::run(Class::S, 4);
        assert!(r.verified, "romp EP failed verification");
        assert!(
            close(r.checksum, serial.sx, 1e-12),
            "parallel sx {} vs serial {}",
            r.checksum,
            serial.sx
        );
    }

    #[test]
    fn class_s_reference_verifies() {
        let r = reference::run(Class::S, 4);
        assert!(r.verified, "reference EP failed verification");
    }

    #[test]
    fn thread_counts_agree_exactly_on_gc() {
        let (serial, _) = run_serial(Class::S);
        for threads in [1, 2, 3, 8] {
            let r = romp::run(Class::S, threads);
            assert!(r.verified, "threads={threads}");
            let _ = serial; // gc equality is implied by q equality below
        }
    }

    #[test]
    fn block_decomposition_is_exact() {
        // Summing disjoint block ranges must equal one big range —
        // including the annulus counts, which are integers (exact).
        let whole = accumulate_blocks(0, 4);
        let mut parts = EpOutput::zero();
        for k in 0..4 {
            let p = accumulate_blocks(k, k + 1);
            parts.sx += p.sx;
            parts.sy += p.sy;
            for l in 0..10 {
                parts.q[l] += p.q[l];
            }
        }
        assert_eq!(whole.q, parts.q);
        assert!((whole.sx - parts.sx).abs() < 1e-9);
        assert!((whole.sy - parts.sy).abs() < 1e-9);
    }

    #[test]
    fn annulus_counts_decay() {
        // The Gaussian annulus histogram must be strongly decreasing.
        let (out, _) = run_serial(Class::S);
        assert!(out.q[0] > out.q[1] && out.q[1] > out.q[2]);
        assert!(out.gc() > (1u64 << 24) / 2, "acceptance rate near π/4");
    }
}
