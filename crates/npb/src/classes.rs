//! NPB problem classes and per-benchmark parameter tables.
//!
//! The numbers are the official NPB 3.x parameters; the verification
//! constants live with each kernel. Class C is what the paper measures
//! (Table 1); S and W are the laptop-scale classes the test suite uses.

use std::fmt;
use std::str::FromStr;

/// NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// Sample (smallest).
    S,
    /// Workstation.
    W,
    /// Standard class A.
    A,
    /// Standard class B.
    B,
    /// Standard class C (the paper's size).
    C,
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        })
    }
}

impl FromStr for Class {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S" => Ok(Class::S),
            "W" => Ok(Class::W),
            "A" => Ok(Class::A),
            "B" => Ok(Class::B),
            "C" => Ok(Class::C),
            other => Err(format!("unknown NPB class `{other}` (use S, W, A, B or C)")),
        }
    }
}

/// CG parameters (`cg.f` / `npbparams.h`).
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Matrix order.
    pub na: usize,
    /// Nonzeros per generated row vector.
    pub nonzer: usize,
    /// Outer (power-method) iterations.
    pub niter: usize,
    /// Eigenvalue shift.
    pub shift: f64,
    /// Reference ζ for verification.
    pub zeta_verify: f64,
}

impl Class {
    /// CG parameter table.
    pub fn cg(self) -> CgParams {
        match self {
            Class::S => CgParams {
                na: 1400,
                nonzer: 7,
                niter: 15,
                shift: 10.0,
                zeta_verify: 8.5971775078648,
            },
            Class::W => CgParams {
                na: 7000,
                nonzer: 8,
                niter: 15,
                shift: 12.0,
                zeta_verify: 10.362595087124,
            },
            Class::A => CgParams {
                na: 14000,
                nonzer: 11,
                niter: 15,
                shift: 20.0,
                zeta_verify: 17.130235054029,
            },
            Class::B => CgParams {
                na: 75000,
                nonzer: 13,
                niter: 75,
                shift: 60.0,
                zeta_verify: 22.712745482631,
            },
            Class::C => CgParams {
                na: 150000,
                nonzer: 15,
                niter: 75,
                shift: 110.0,
                zeta_verify: 28.973605592845,
            },
        }
    }

    /// EP: `log2` of the number of Gaussian pairs (`M` in `ep.f`).
    pub fn ep_m(self) -> u32 {
        match self {
            Class::S => 24,
            Class::W => 25,
            Class::A => 28,
            Class::B => 30,
            Class::C => 32,
        }
    }

    /// IS: `(log2 total keys, log2 max key)` from `npbparams.h`.
    pub fn is_params(self) -> (u32, u32) {
        match self {
            Class::S => (16, 11),
            Class::W => (20, 16),
            Class::A => (23, 19),
            Class::B => (25, 21),
            Class::C => (27, 23),
        }
    }

    /// Mandelbrot grid edge for the paper's non-NPB benchmark, scaled
    /// so class C is a few seconds of work per the paper's Table 1.
    pub fn mandelbrot_size(self) -> (usize, usize, u32) {
        // (width, height, max_iter)
        match self {
            Class::S => (256, 256, 2_000),
            Class::W => (512, 512, 3_000),
            Class::A => (1024, 1024, 5_000),
            Class::B => (2048, 2048, 8_000),
            Class::C => (4096, 4096, 10_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parses_case_insensitive() {
        assert_eq!("a".parse::<Class>().unwrap(), Class::A);
        assert_eq!(" C ".parse::<Class>().unwrap(), Class::C);
        assert!("Z".parse::<Class>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for c in [Class::S, Class::W, Class::A, Class::B, Class::C] {
            assert_eq!(c.to_string().parse::<Class>().unwrap(), c);
        }
    }

    #[test]
    fn cg_tables_monotone() {
        let classes = [Class::S, Class::W, Class::A, Class::B, Class::C];
        for w in classes.windows(2) {
            assert!(w[0].cg().na < w[1].cg().na);
            assert!(w[0].ep_m() < w[1].ep_m());
            assert!(w[0].is_params().0 < w[1].is_params().0);
        }
    }

    #[test]
    fn cg_class_c_matches_paper_scale() {
        let c = Class::C.cg();
        assert_eq!(c.na, 150_000);
        assert_eq!(c.nonzer, 15);
        assert_eq!(c.niter, 75);
    }
}
