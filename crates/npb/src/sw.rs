//! SW — a blocked Smith-Waterman-style wavefront, the task-graph
//! workload.
//!
//! Local-alignment scoring of two NPB-`randlc`-generated pseudo-random
//! sequences: `H[i][j] = max(0, H[i-1][j-1] + s(a_i, b_j),
//! H[i-1][j] - GAP, H[i][j-1] - GAP)`. Every cell depends on its north,
//! west and north-west neighbours, so the matrix can only be filled
//! along anti-diagonal wavefronts — the canonical *irregular*
//! parallelism that flat worksharing loops cannot express and
//! dependent tasks can: the matrix is carved into rectangular blocks
//! and block `(bi, bj)` becomes one task with
//! `depend(in: tok[bi-1][bj], tok[bi][bj-1]) depend(out: tok[bi][bj])`.
//! The runtime's dependence graph then discovers the wavefront by
//! itself, keeping every anti-diagonal's blocks runnable in parallel
//! while successive diagonals pipeline through the work-stealing
//! deques.
//!
//! The parallel variants write the shared `H` matrix through
//! [`SharedSlice`]; the exclusivity obligation is discharged by the
//! dependence graph (a block's task is the unique writer of its cells,
//! and every cross-block read targets a predecessor block). Integer
//! scores make the result bit-exact, so verification is equality of a
//! position-weighted checksum with the sequential reference.
//!
//! Three front ends produce the task graph — the `omp_task!` macro
//! ([`compute_tasks_macro`]), the [`romp_core::builder::task`] builder
//! ([`compute_tasks_builder`]), and the `//#omp` translator (the
//! `wavefront` fixture under `tests/fixtures/`) — and must agree
//! exactly; `tests/task_graph.rs` and the NPB verification matrix pin
//! that down.

use crate::classes::Class;
use crate::rng::{Randlc, SEED_CG};
use crate::verify::{KernelResult, Variant};
use romp_core::prelude::*;
use romp_core::slice::SharedSlice;

/// Match reward of the scoring function.
pub const MATCH: i64 = 3;
/// Mismatch penalty (applied as `+ MISMATCH`).
pub const MISMATCH: i64 = -1;
/// Gap penalty (applied as `- GAP`).
pub const GAP: i64 = 2;

/// Problem dimensions per class: `(rows, cols, block)`.
pub fn dims(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (256, 256, 32),
        Class::W => (512, 512, 32),
        Class::A => (1024, 1024, 64),
        Class::B => (2048, 2048, 64),
        Class::C => (4096, 4096, 128),
    }
}

/// The two sequences over a 4-letter alphabet, from the NPB `randlc`
/// stream (seeded like CG) — deterministic across threads and variants.
pub fn sequences(class: Class) -> (Vec<u8>, Vec<u8>) {
    let (n, m, _) = dims(class);
    let mut rng = Randlc::new(SEED_CG);
    let mut gen = |len: usize| -> Vec<u8> {
        (0..len)
            .map(|_| ((rng.next_f64() * 4.0) as u8).min(3))
            .collect()
    };
    let a = gen(n);
    let b = gen(m);
    (a, b)
}

/// Score one cell pair.
#[inline]
fn score(x: u8, y: u8) -> i64 {
    if x == y {
        MATCH
    } else {
        MISMATCH
    }
}

/// Fill the block `rows × cols = [i0, i1) × [j0, j1)` of the `H` matrix
/// (1-based cells over a `(len(a)+1) × (len(b)+1)` row-major grid).
///
/// The writes go through a [`SharedSlice`]; exclusivity is discharged
/// by the task dependence graph: this block's task is the sole writer
/// of its cells, and every read outside the block (row `i0 - 1`, column
/// `j0 - 1`) targets cells of the north/west/north-west predecessor
/// blocks, whose tasks completed before this one was released (the
/// diagonal is ordered transitively through either neighbour).
pub fn process_block(
    h: &SharedSlice<i64>,
    a: &[u8],
    b: &[u8],
    (i0, i1): (usize, usize),
    (j0, j1): (usize, usize),
) {
    let stride = b.len() + 1;
    for i in i0..i1 {
        for j in j0..j1 {
            // SAFETY: see the function docs — the dependence graph
            // guarantees the read cells are final and the written cell
            // is exclusively ours.
            unsafe {
                let diag = h.read((i - 1) * stride + (j - 1)) + score(a[i - 1], b[j - 1]);
                let up = h.read((i - 1) * stride + j) - GAP;
                let left = h.read(i * stride + (j - 1)) - GAP;
                h.write(i * stride + j, diag.max(up).max(left).max(0));
            }
        }
    }
}

/// Serial reference fill of one block (plain `&mut` access).
fn process_block_serial(
    h: &mut [i64],
    a: &[u8],
    b: &[u8],
    range_i: (usize, usize),
    range_j: (usize, usize),
) {
    let stride = b.len() + 1;
    for i in range_i.0..range_i.1 {
        for j in range_j.0..range_j.1 {
            let diag = h[(i - 1) * stride + (j - 1)] + score(a[i - 1], b[j - 1]);
            let up = h[(i - 1) * stride + j] - GAP;
            let left = h[i * stride + (j - 1)] - GAP;
            h[i * stride + j] = diag.max(up).max(left).max(0);
        }
    }
}

/// Position-weighted checksum of the scoring matrix: sensitive to any
/// misplaced, lost or reordered cell, and exactly reproducible (integer
/// arithmetic, below 2^53 so the `KernelResult` field is lossless).
pub fn checksum(h: &[i64]) -> i64 {
    const P: i64 = 1_000_000_007;
    let mut best = 0i64;
    let mut acc = 0i64;
    for (k, &v) in h.iter().enumerate() {
        best = best.max(v);
        acc = (acc + v * ((k % 8191) as i64 + 1)) % P;
    }
    best * P + acc
}

/// Serial wavefront: fill the whole matrix row-major and checksum it.
pub fn compute_serial(class: Class) -> i64 {
    let (n, m, _) = dims(class);
    let (a, b) = sequences(class);
    let mut h = vec![0i64; (n + 1) * (m + 1)];
    process_block_serial(&mut h, &a, &b, (1, n + 1), (1, m + 1));
    checksum(&h)
}

/// Expected checksum per class, memoized (the analogue of the official
/// NPB verification values; computed from the sequential reference).
pub fn expected_checksum(class: Class) -> i64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<Class, i64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&v) = cache.lock().unwrap().get(&class) {
        return v;
    }
    let v = compute_serial(class);
    cache.lock().unwrap().insert(class, v);
    v
}

/// Block-task geometry shared by all parallel variants: block bounds
/// and the halo-padded dependence-token index (`(bi+1, bj+1)` in a
/// `(nbi+1) × (nbj+1)` grid, so edge blocks depend on never-written
/// halo tokens — no edges, no special cases).
struct Blocking {
    nbi: usize,
    nbj: usize,
    block: usize,
}

impl Blocking {
    fn new(class: Class) -> (Self, usize, usize) {
        let (n, m, block) = dims(class);
        (
            Blocking {
                nbi: n.div_ceil(block),
                nbj: m.div_ceil(block),
                block,
            },
            n,
            m,
        )
    }

    fn token_grid(&self) -> Vec<u8> {
        vec![0u8; (self.nbi + 1) * (self.nbj + 1)]
    }

    /// Token index of block `(bi, bj)` in the halo-padded grid.
    fn tok(&self, bi: usize, bj: usize) -> usize {
        (bi + 1) * (self.nbj + 1) + (bj + 1)
    }

    /// Cell bounds of block `(bi, bj)` for an `n × m` problem.
    fn bounds(&self, bi: usize, bj: usize, n: usize, m: usize) -> ((usize, usize), (usize, usize)) {
        let i0 = 1 + bi * self.block;
        let j0 = 1 + bj * self.block;
        (
            (i0, (i0 + self.block).min(n + 1)),
            (j0, (j0 + self.block).min(m + 1)),
        )
    }
}

/// Task-graph wavefront through the `omp_task!` macro front end.
pub fn compute_tasks_macro(class: Class, threads: usize) -> i64 {
    let (bl, n, m) = Blocking::new(class);
    let (a, b) = sequences(class);
    let mut h = vec![0i64; (n + 1) * (m + 1)];
    let tokens = bl.token_grid();
    {
        let view = SharedSlice::new(&mut h);
        let (view, a, b, bl, tokens) = (&view, &a, &b, &bl, &tokens);
        omp_parallel!(num_threads(threads), |ctx| {
            omp_single!(ctx, nowait, {
                for bi in 0..bl.nbi {
                    for bj in 0..bl.nbj {
                        let (ri, rj) = bl.bounds(bi, bj, n, m);
                        let (up, left, me) = (
                            bl.tok(bi, bj) - (bl.nbj + 1),
                            bl.tok(bi, bj) - 1,
                            bl.tok(bi, bj),
                        );
                        omp_task!(
                            ctx,
                            depend(in: tokens[up], tokens[left]; out: tokens[me]),
                            { process_block(view, a, b, ri, rj); }
                        );
                    }
                }
            });
            // The implicit region-end barrier drains the task graph.
        });
    }
    checksum(&h)
}

/// Task-graph wavefront through the typed [`task`] builder front end.
pub fn compute_tasks_builder(class: Class, threads: usize) -> i64 {
    let (bl, n, m) = Blocking::new(class);
    let (a, b) = sequences(class);
    let mut h = vec![0i64; (n + 1) * (m + 1)];
    let tokens = bl.token_grid();
    {
        let view = SharedSlice::new(&mut h);
        let (view, a, b, bl, tokens) = (&view, &a, &b, &bl, &tokens);
        parallel().num_threads(threads).run(|ctx| {
            ctx.single(true, || {
                for bi in 0..bl.nbi {
                    for bj in 0..bl.nbj {
                        let (ri, rj) = bl.bounds(bi, bj, n, m);
                        let me = bl.tok(bi, bj);
                        task(ctx)
                            .depend_in(&tokens[me - (bl.nbj + 1)])
                            .depend_in(&tokens[me - 1])
                            .depend_out(&tokens[me])
                            .spawn(move || process_block(view, a, b, ri, rj));
                    }
                }
            });
        });
    }
    checksum(&h)
}

fn result(class: Class, variant: Variant, threads: usize, secs: f64, sum: i64) -> KernelResult {
    let (n, m, _) = dims(class);
    KernelResult {
        name: "SW",
        class,
        variant,
        threads,
        time_s: secs,
        // "Operations" = cell updates of the scoring recurrence.
        mops: (n as f64 * m as f64) / secs / 1e6,
        verified: sum == expected_checksum(class),
        checksum: sum as f64,
    }
}

/// Serial run with NPB-style timing and verification.
pub fn run_serial(class: Class) -> KernelResult {
    let (sum, secs) = romp_runtime::wtime::timed(|| compute_serial(class));
    result(class, Variant::Serial, 1, secs, sum)
}

/// The romp configuration: the dependence-graph wavefront.
pub mod romp {
    use super::*;

    /// Run the macro-front-end task graph on `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        let (sum, secs) = romp_runtime::wtime::timed(|| compute_tasks_macro(class, threads));
        result(class, Variant::Romp, threads, secs, sum)
    }

    /// Run on the ICV-resolved default team size (`OMP_NUM_THREADS`) —
    /// what the CI env-pinned jobs exercise.
    pub fn run_env(class: Class) -> KernelResult {
        run(class, romp_runtime::omp_get_max_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_checksum_is_stable() {
        assert_eq!(compute_serial(Class::S), compute_serial(Class::S));
        // Matrix has nonzero content (the sequences do align somewhere).
        assert!(expected_checksum(Class::S) > 0);
    }

    #[test]
    fn macro_variant_matches_serial_at_various_thread_counts() {
        let want = expected_checksum(Class::S);
        for threads in [1, 2, 4, 16] {
            assert_eq!(compute_tasks_macro(Class::S, threads), want, "t={threads}");
        }
    }

    #[test]
    fn builder_variant_matches_serial() {
        let want = expected_checksum(Class::S);
        for threads in [1, 4] {
            assert_eq!(
                compute_tasks_builder(Class::S, threads),
                want,
                "t={threads}"
            );
        }
    }

    #[test]
    fn kernel_result_verifies() {
        let r = romp::run(Class::S, 4);
        assert!(r.verified, "{r}");
        assert_eq!(r.name, "SW");
    }

    #[test]
    fn dependence_stalls_actually_happen() {
        // The wavefront must exercise the dependence table: with one
        // spawner racing ahead of the workers, later blocks stall.
        let before = romp_runtime::stats::stats().snapshot();
        compute_tasks_macro(Class::S, 4);
        let d = before.delta(&romp_runtime::stats::stats().snapshot());
        assert!(d.tasks_spawned >= 64, "64 blocks = 64 tasks: {d:?}");
        assert!(
            d.tasks_dep_stalled > 0,
            "a wavefront without stalls did not test the graph: {d:?}"
        );
    }
}
