//! # romp-npb — NAS Parallel Benchmarks for romp
//!
//! Rust implementations of the NPB kernels the paper evaluates — CG
//! (Conjugate Gradient), EP (Embarrassingly Parallel), IS (Integer
//! Sort) — plus its Mandelbrot set benchmark, a blocked
//! Smith-Waterman-style wavefront ([`sw`], the task-dependence-graph
//! workload), a first-match early-exit search ([`search`], the
//! cancellation workload), and the sparse CARP-CG solver ([`carp`],
//! the paper's SELL-C-σ/Kaczmarz workload in NPB harness dress), in
//! the paper's two configurations each:
//!
//! * **`reference`** — a direct translation of the NPB reference code
//!   structure. CG and EP (Fortran originals) are invoked through the
//!   [`romp_fortran`] interop bridge exactly the way the paper calls
//!   Fortran from Zig: C-linkage-style procedures, by-reference
//!   arguments, trailing-underscore mangled names. IS and Mandelbrot
//!   (C originals) are direct translations.
//! * **`romp`** — the same algorithms written against the romp directive
//!   layer (`omp_parallel!`/`omp_for!`/reductions), the way the paper's
//!   Zig ports use its OpenMP support.
//!
//! Both configurations share the runtime underneath (as both the
//! reference codes and the Zig ports share libomp in the paper), verify
//! against the **official NPB verification values**, and agree bitwise
//! on their random streams with the NPB `randlc` generator.
//!
//! Problem classes S, W, A, B and C are supported; the paper measures
//! class C on 128 cores, the test suite uses S/W (seconds on a laptop),
//! and the benchmark harness defaults to A.

#![warn(missing_docs)]

pub mod carp;
pub mod cg;
pub mod classes;
pub mod ep;
pub mod is;
pub mod mandelbrot;
pub mod rng;
pub mod search;
pub mod sw;
pub mod verify;

pub use classes::Class;
pub use verify::KernelResult;
