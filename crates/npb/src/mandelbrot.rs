//! The Mandelbrot set benchmark from the paper's Table 1.
//!
//! Escape-time iteration over the rectangle `[-2, 0.5] × [-1.25, 1.25]`
//! (the classic framing). Work per pixel varies wildly — points inside
//! the set burn the full iteration budget — which makes this the
//! paper's showcase for the `schedule` clause: rows near the set's
//! interior are much more expensive than rows near the edge, so
//! `schedule(dynamic)` beats `schedule(static)` (ablation A1).
//!
//! The checksum (total iteration count over all pixels) is exactly
//! reproducible across thread counts and schedules, so verification is
//! equality with a once-computed expected value.

use crate::classes::Class;
use crate::verify::{KernelResult, Variant};
use romp_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Render all rows into a fresh per-row work buffer — the `a[i] = …`
/// scatter of the C original, expressed through the safe
/// [`write_into`](romp_core::ParFor::write_into) API (each row slot is
/// an exclusive `&mut`; no atomics, no `unsafe`).
pub fn render_rows(class: Class, threads: Option<usize>, sched: Schedule) -> Vec<u64> {
    let (w, h, it) = class.mandelbrot_size();
    let mut rows = vec![0u64; h];
    let mut pf = par_for(0..h).schedule(sched);
    if let Some(t) = threads {
        pf = pf.num_threads(t);
    }
    pf.write_into(&mut rows, |row, slot| *slot = row_work(row, w, h, it));
    rows
}

/// Viewport of the classic Mandelbrot framing.
pub const X_MIN: f64 = -2.0;
/// See [`X_MIN`].
pub const X_MAX: f64 = 0.5;
/// See [`X_MIN`].
pub const Y_MIN: f64 = -1.25;
/// See [`X_MIN`].
pub const Y_MAX: f64 = 1.25;

/// Escape-time iterations for one point, up to `max_iter`.
#[inline]
pub fn escape_time(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let mut zx = 0.0f64;
    let mut zy = 0.0f64;
    let mut i = 0;
    while i < max_iter {
        let zx2 = zx * zx;
        let zy2 = zy * zy;
        if zx2 + zy2 > 4.0 {
            break;
        }
        zy = 2.0 * zx * zy + cy;
        zx = zx2 - zy2 + cx;
        i += 1;
    }
    i
}

/// Iteration count for one row of the grid.
pub fn row_work(row: usize, width: usize, height: usize, max_iter: u32) -> u64 {
    let cy = Y_MIN + (Y_MAX - Y_MIN) * (row as f64 + 0.5) / height as f64;
    let mut total = 0u64;
    for col in 0..width {
        let cx = X_MIN + (X_MAX - X_MIN) * (col as f64 + 0.5) / width as f64;
        total += escape_time(cx, cy, max_iter) as u64;
    }
    total
}

/// Serial render; returns `(checksum, seconds)`.
pub fn run_serial(class: Class) -> (u64, f64) {
    let (w, h, it) = class.mandelbrot_size();
    romp_runtime::wtime::timed(|| (0..h).map(|r| row_work(r, w, h, it)).sum())
}

/// Expected checksum for verification, memoized per class. The C
/// reference verifies against a stored value; ours is computed once
/// (in parallel — the sum of per-row integers is order-independent, so
/// the value is exact).
pub fn expected_checksum(class: Class) -> u64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<Class, u64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&v) = cache.lock().unwrap().get(&class) {
        return v;
    }
    let v = render_rows(class, None, Schedule::dynamic_chunk(1))
        .iter()
        .sum();
    cache.lock().unwrap().insert(class, v);
    v
}

fn result(
    class: Class,
    variant: Variant,
    threads: usize,
    secs: f64,
    checksum: u64,
) -> KernelResult {
    KernelResult {
        name: "Mandelbrot",
        class,
        variant,
        threads,
        time_s: secs,
        // "Operations" = pixel iterations actually executed.
        mops: checksum as f64 / secs / 1e6,
        verified: checksum == expected_checksum(class),
        checksum: checksum as f64,
    }
}

/// Render with an explicit schedule, thread count and variant tag —
/// shared by both configurations and by the A1 schedule ablation.
pub fn run_with_schedule(
    class: Class,
    threads: usize,
    sched: Schedule,
    variant: Variant,
) -> KernelResult {
    let (rows, secs) = romp_runtime::wtime::timed(|| render_rows(class, Some(threads), sched));
    result(class, variant, threads, secs, rows.iter().sum())
}

/// The romp directive-layer implementation: `parallel for` over rows in
/// pragma-text form, `schedule(dynamic, 4)` against the load imbalance.
pub mod romp {
    use super::*;

    /// Render with `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        let (w, h, it) = class.mandelbrot_size();
        let total = AtomicU64::new(0);
        let total_ref = &total;
        let (_, secs) = romp_runtime::wtime::timed(|| {
            omp_parallel_for!(
                num_threads(threads),
                schedule(dynamic, 4),
                for row in 0..(h) {
                    total_ref.fetch_add(row_work(row, w, h, it), Ordering::Relaxed);
                }
            );
        });
        result(class, Variant::Romp, threads, secs, total.into_inner())
    }
}

/// The reference implementation: direct translation of the C+OpenMP
/// original — same row decomposition, `schedule(dynamic)`.
pub mod reference {
    use super::*;

    /// Render with `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        run_with_schedule(
            class,
            threads,
            Schedule::dynamic_chunk(4),
            Variant::Reference,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_time_known_points() {
        // Origin is in the set: full budget.
        assert_eq!(escape_time(0.0, 0.0, 500), 500);
        // Far outside: escapes immediately.
        assert!(escape_time(2.0, 2.0, 500) <= 1);
        // Near the boundary, somewhere in between.
        let t = escape_time(-0.75, 0.3, 500);
        assert!(t > 5 && t < 500, "t={t}");
    }

    #[test]
    fn parallel_checksum_equals_serial() {
        let (serial, _) = run_serial(Class::S);
        for sched in [
            Schedule::static_block(),
            Schedule::dynamic_chunk(4),
            Schedule::guided(),
        ] {
            let r = run_with_schedule(Class::S, 4, sched, Variant::Romp);
            assert_eq!(r.checksum as u64, serial, "schedule {sched}");
            assert!(r.verified);
        }
    }

    #[test]
    fn reference_and_romp_agree() {
        let a = reference::run(Class::S, 2);
        let b = romp::run(Class::S, 2);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.verified && b.verified);
    }

    #[test]
    fn rows_have_imbalanced_work() {
        // The benchmark premise: interior rows cost far more than edge
        // rows. Check a 4x spread exists at class S.
        let (w, h, it) = Class::S.mandelbrot_size();
        let edge = row_work(0, w, h, it);
        let middle = row_work(h / 2, w, h, it);
        assert!(
            middle > 4 * edge,
            "expected strong imbalance: edge={edge} middle={middle}"
        );
    }
}
