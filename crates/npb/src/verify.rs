//! Common result and verification types for the benchmark kernels.

use crate::classes::Class;
use std::fmt;

/// Which implementation path produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Direct translation of the NPB reference code (CG/EP routed
    /// through the Fortran-interop bridge).
    Reference,
    /// The romp directive-layer implementation.
    Romp,
    /// Single-threaded run (for speedup baselines).
    Serial,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Variant::Reference => "Reference",
            Variant::Romp => "Romp+OpenMP",
            Variant::Serial => "Serial",
        })
    }
}

/// Outcome of one kernel run: timing plus verification, the row format
/// the NPB report prints.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name ("CG", "EP", "IS", "Mandelbrot").
    pub name: &'static str,
    /// Problem class.
    pub class: Class,
    /// Implementation path.
    pub variant: Variant,
    /// Threads used.
    pub threads: usize,
    /// Wall-clock seconds of the timed section (NPB timing rules: setup
    /// and the untimed warm-up iteration excluded).
    pub time_s: f64,
    /// Millions of operations per second, per the kernel's official
    /// MOP/s formula.
    pub mops: f64,
    /// Did the official verification test pass?
    pub verified: bool,
    /// Kernel-specific figure of merit (ζ for CG, sx for EP, …), for
    /// cross-variant agreement checks.
    pub checksum: f64,
}

impl fmt::Display for KernelResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} class {} {:<12} {:>3} threads  {:>9.3}s  {:>10.2} MOP/s  {}",
            self.name,
            self.class,
            self.variant.to_string(),
            self.threads,
            self.time_s,
            self.mops,
            if self.verified {
                "VERIFICATION SUCCESSFUL"
            } else {
                "VERIFICATION FAILED"
            }
        )
    }
}

/// Relative-error check used by the NPB verifications.
pub fn close(actual: f64, reference: f64, epsilon: f64) -> bool {
    if reference == 0.0 {
        actual.abs() <= epsilon
    } else {
        ((actual - reference) / reference).abs() <= epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_is_relative() {
        assert!(close(1.0000000001, 1.0, 1e-8));
        assert!(!close(1.1, 1.0, 1e-8));
        assert!(close(1e10 + 1.0, 1e10, 1e-8));
        assert!(close(0.0, 0.0, 1e-8));
    }

    #[test]
    fn display_contains_verdict() {
        let r = KernelResult {
            name: "EP",
            class: Class::S,
            variant: Variant::Romp,
            threads: 4,
            time_s: 1.5,
            mops: 11.2,
            verified: true,
            checksum: -3247.83,
        };
        let s = r.to_string();
        assert!(s.contains("EP") && s.contains("SUCCESSFUL") && s.contains("4 threads"));
    }
}
