//! The NPB pseudorandom number generator.
//!
//! NPB defines the linear congruential generator
//! `x_{k+1} = a · x_k  (mod 2^46)` with `a = 5^13 = 1220703125`, and
//! derives uniform doubles `r_k = x_k · 2^-46 ∈ (0, 1)`. The Fortran
//! `randlc` computes the 46-bit product with double-precision splitting
//! tricks; 46 bits fit comfortably in integer arithmetic, so we compute
//! the *same* sequence exactly with a 128-bit multiply — bit-identical
//! results, considerably faster.
//!
//! [`skip_ahead`] jumps the generator `n` steps in O(log n) (square-and-
//! multiply on the multiplier), which is how the parallel EP and IS
//! implementations give each thread an independent, *deterministically
//! placed* slice of the global stream — the same leapfrogging the NPB
//! reference codes do with their `randlc(t2, t2)` doubling loops.

/// The NPB multiplier, `5^13`.
pub const A: u64 = 1_220_703_125;
/// Default seed used by CG and IS (`314159265`).
pub const SEED_CG: u64 = 314_159_265;
/// Seed used by EP (`271828183`).
pub const SEED_EP: u64 = 271_828_183;

const MOD_MASK: u64 = (1 << 46) - 1;
const R46: f64 = 1.0 / (1u64 << 46) as f64;

/// The generator state (the Fortran code keeps this in a `DOUBLE
/// PRECISION` variable; we keep the integer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Randlc {
    x: u64,
}

impl Randlc {
    /// Start from a seed (must be odd and < 2^46, like NPB's seeds).
    pub fn new(seed: u64) -> Self {
        Randlc { x: seed & MOD_MASK }
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Advance once and return the uniform double in (0,1) —
    /// the `randlc(x, a)` call.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul_mod46(self.x, A);
        self.x as f64 * R46
    }

    /// Advance once with an arbitrary multiplier (used by the seed
    /// jumping loops in the Fortran codes).
    #[inline]
    pub fn next_with(&mut self, mult: u64) -> f64 {
        self.x = mul_mod46(self.x, mult);
        self.x as f64 * R46
    }

    /// Fill `out` with consecutive uniforms — the `vranlc` call.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.next_f64();
        }
    }

    /// Jump the stream forward by `n` steps in O(log n).
    pub fn skip(&mut self, n: u64) {
        self.x = mul_mod46(self.x, pow_mod46(A, n));
    }
}

/// `(a * b) mod 2^46` exactly.
#[inline]
pub fn mul_mod46(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) & MOD_MASK as u128) as u64
}

/// `a^n mod 2^46` by square-and-multiply.
pub fn pow_mod46(a: u64, mut n: u64) -> u64 {
    let mut base = a & MOD_MASK;
    let mut acc: u64 = 1;
    while n > 0 {
        if n & 1 == 1 {
            acc = mul_mod46(acc, base);
        }
        base = mul_mod46(base, base);
        n >>= 1;
    }
    acc
}

/// The state after jumping `n` steps from `seed` (without constructing
/// intermediate states).
pub fn skip_ahead(seed: u64, n: u64) -> u64 {
    mul_mod46(seed & MOD_MASK, pow_mod46(A, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference `randlc` transcribed from the NPB Fortran double-split
    /// implementation, used to prove our integer version bit-identical.
    fn randlc_fortran(x: &mut f64, a: f64) -> f64 {
        let r23 = 1.0 / 8388608.0; // 2^-23
        let r46 = r23 * r23;
        let t23 = 8388608.0;
        let t46 = t23 * t23;
        // Break A into two parts: A = 2^23 * A1 + A2.
        let t1 = r23 * a;
        let a1 = t1.trunc();
        let a2 = a - t23 * a1;
        // Break X into two parts, compute Z = A1*X2 + A2*X1 (mod 2^23),
        // then X = 2^23*Z + A2*X2 (mod 2^46).
        let t1 = r23 * *x;
        let x1 = t1.trunc();
        let x2 = *x - t23 * x1;
        let t1 = a1 * x2 + a2 * x1;
        let t2 = (r23 * t1).trunc();
        let z = t1 - t23 * t2;
        let t3 = t23 * z + a2 * x2;
        let t4 = (r46 * t3).trunc();
        *x = t3 - t46 * t4;
        r46 * *x
    }

    #[test]
    fn integer_randlc_matches_fortran_double_trick() {
        let mut ours = Randlc::new(SEED_EP);
        let mut theirs = SEED_EP as f64;
        for i in 0..10_000 {
            let a = ours.next_f64();
            let b = randlc_fortran(&mut theirs, A as f64);
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at step {i}");
            assert_eq!(ours.state(), theirs as u64);
        }
    }

    #[test]
    fn outputs_are_in_unit_interval() {
        let mut r = Randlc::new(SEED_CG);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn skip_equals_stepping() {
        for n in [0u64, 1, 2, 7, 100, 12345] {
            let mut stepped = Randlc::new(SEED_EP);
            for _ in 0..n {
                stepped.next_f64();
            }
            let mut skipped = Randlc::new(SEED_EP);
            skipped.skip(n);
            assert_eq!(stepped.state(), skipped.state(), "n={n}");
        }
    }

    #[test]
    fn skip_ahead_composes() {
        let s1 = skip_ahead(SEED_CG, 1000);
        let s2 = skip_ahead(s1, 2345);
        assert_eq!(s2, skip_ahead(SEED_CG, 3345));
    }

    #[test]
    fn pow_mod46_basics() {
        assert_eq!(pow_mod46(A, 0), 1);
        assert_eq!(pow_mod46(A, 1), A);
        assert_eq!(pow_mod46(A, 2), mul_mod46(A, A));
    }

    #[test]
    fn fill_matches_individual_draws() {
        let mut a = Randlc::new(SEED_EP);
        let mut b = Randlc::new(SEED_EP);
        let mut buf = vec![0.0; 257];
        a.fill(&mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v.to_bits(), b.next_f64().to_bits(), "index {i}");
        }
    }

    #[test]
    fn known_first_value() {
        // x1 = a * seed mod 2^46 for the EP seed; sanity-pin the stream.
        let mut r = Randlc::new(SEED_EP);
        let v = r.next_f64();
        let expect = mul_mod46(SEED_EP, A) as f64 / (1u64 << 46) as f64;
        assert_eq!(v, expect);
    }
}
