//! CARP — the sparse CARP-CG solver as an NPB-style kernel.
//!
//! Not an official NAS benchmark, but the paper's own workload family
//! (SELL-format Kaczmarz solvers) dressed in the NPB harness
//! conventions so it slots into the verification matrix, the Table-1
//! reports and the service soak alongside CG/EP/IS: per-class
//! deterministic problems, an untimed setup, a timed solve, a MOP/s
//! figure and a pass/fail verification.
//!
//! Per class the system is a seeded matrix from
//! [`romp_sparse::matgen`] with a consistent right-hand side (`b =
//! A·x_true`), so the solver's true relative residual can reach
//! machine precision and verification is residual-bounded (the solver
//! layer's own contract — the sweeps underneath verify bitwise, see
//! [`romp_sparse::kacz`]). S and W are banded (the red-black zoning
//! path); A and up are general random sparsity (the multicoloring
//! path). The romp configuration runs the **format-adaptive** solver:
//! the kernel-variant registry (`romp::variants`, key `"carp-dkswp"`)
//! picks CSR or SELL-C-σ per problem scale, and the KACZ sweeps run
//! `schedule(runtime)` under `site("kacz")` so `OMP_SCHEDULE=auto`
//! hands them to the romp-tune learner.

use crate::classes::Class;
use crate::verify::{KernelResult, Variant};
use romp_sparse::prelude::*;

/// Residual bar for verification: well above the solver's 1e-9
/// tolerance target, well below anything an incorrect sweep produces.
pub const RESIDUAL_BAR: f64 = 1e-7;

/// The per-class linear system: matrix, row norms, coloring and
/// consistent right-hand side (deterministic per class).
pub struct CarpProblem {
    /// The system matrix (CSR side).
    pub mat: Csr,
    /// `‖a_i‖²` per row.
    pub norms: Vec<f64>,
    /// Proven row partition (zoned when banded, multicolored else).
    pub coloring: Coloring,
    /// Right-hand side `A·x_true`.
    pub b: Vec<f64>,
}

/// Build the deterministic problem for `class`.
pub fn setup(class: Class) -> CarpProblem {
    let mat = match class {
        Class::S => matgen::banded(1400, 5),
        Class::W => matgen::banded(7000, 8),
        Class::A => matgen::random_sparse(14_000, 10, 314159),
        Class::B => matgen::random_sparse(75_000, 12, 314159),
        Class::C => matgen::random_sparse(150_000, 14, 314159),
    };
    // Zone-pair count fixed per problem (not per run): the coloring is
    // part of the problem statement, so every thread count sweeps the
    // same partition and verifies against the same reference order.
    let coloring = color::auto(&mat, 4);
    let norms = mat.row_norms_sq();
    let b = matgen::consistent_rhs(&mat);
    CarpProblem {
        mat,
        norms,
        coloring,
        b,
    }
}

/// SELL-C-σ layout parameters for the kernel (C = 8 lanes, σ = 4
/// chunks of sorting window).
pub const SELL_C: usize = 8;
/// σ (sorting-window size in rows).
pub const SELL_SIGMA: usize = 32;

fn flops(nnz: usize, n: usize, iters: usize) -> f64 {
    // Per CG iteration: one DKSWP double sweep (2 sweeps × ~4 flops
    // per nonzero + per-row scale arithmetic) plus the CG vector
    // updates and the two team dot products.
    iters as f64 * (8.0 * nnz as f64 + 16.0 * n as f64)
}

fn result(
    class: Class,
    variant: Variant,
    threads: usize,
    secs: f64,
    prob: &CarpProblem,
    out: &CarpOutcome,
) -> KernelResult {
    let n = prob.mat.n;
    let mean: f64 = out.x.iter().sum::<f64>() / n as f64;
    KernelResult {
        name: "CARP",
        class,
        variant,
        threads,
        time_s: secs,
        mops: flops(prob.mat.nnz(), n, out.iters.max(1)) / secs / 1e6,
        verified: out.converged && out.rel_residual <= RESIDUAL_BAR,
        checksum: mean,
    }
}

/// Sequential CARP-CG over the problem's coloring order (the speedup
/// baseline and the reference the parallel solve is bounded against).
pub fn run_serial(class: Class) -> KernelResult {
    let prob = setup(class);
    let opts = CarpOptions::default();
    let (out, secs) = romp_runtime::wtime::timed(|| {
        carp_cg_seq(&prob.mat, &prob.norms, &prob.coloring.order, &prob.b, &opts)
    });
    result(class, Variant::Serial, 1, secs, &prob, &out)
}

/// The romp configuration: format-adaptive parallel CARP-CG.
pub mod romp {
    use super::*;

    /// Run CARP-CG with `threads` threads (setup untimed, solve timed).
    pub fn run(class: Class, threads: usize) -> KernelResult {
        let prob = setup(class);
        let sell = ColoredSell::build(&prob.mat, &prob.coloring, SELL_C, SELL_SIGMA);
        let csr_op = SweepMat::Csr {
            mat: &prob.mat,
            coloring: &prob.coloring,
        };
        let sell_op = SweepMat::Sell(&sell);
        let opts = CarpOptions {
            threads,
            ..Default::default()
        };
        let ((out, _which), secs) = romp_runtime::wtime::timed(|| {
            carp_cg_adaptive(&csr_op, &sell_op, &prob.norms, &prob.b, &opts)
        });
        result(class, Variant::Romp, threads, secs, &prob, &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::close;

    #[test]
    fn class_s_verifies_serial_and_parallel() {
        let s = run_serial(Class::S);
        assert!(s.verified, "serial: {s}");
        let p = romp::run(Class::S, 4);
        assert!(p.verified, "parallel: {p}");
        assert!(
            close(p.checksum, s.checksum, 1e-6),
            "{} vs {}",
            p.checksum,
            s.checksum
        );
    }
}
