//! FS — first-match search: the cancellation workload.
//!
//! A parallel early-exit scan that exists *because of* `cancel`: find
//! the first position of a 4-byte needle in a haystack generated from
//! the NPB `randlc` stream. Without cancellation a worksharing loop
//! must visit every window even after the answer is known; with
//! `cancel for`, the thread that finds a match records it and stops the
//! whole team from dispatching further chunks.
//!
//! ## Why the early exit is still *exact*
//!
//! The loop runs under a **dynamic** schedule, whose shared dispatcher
//! hands chunks out in monotonically increasing index order. When a
//! thread finds a match at index `k` and cancels:
//!
//! * every chunk containing an index `< k` was dispatched *before*
//!   `k`'s chunk (monotone dispatch), so it is either finished or
//!   in flight — and cancellation is chunk-granular, so in-flight
//!   chunks run to completion and record any earlier match into the
//!   shared `fetch_min`;
//! * every chunk never dispatched holds only indices `> k`.
//!
//! Hence after the loop's rendezvous the `fetch_min` cell holds the
//! true first match — bit-equal to the sequential scan — while the
//! team visits only `O(first_match)` windows instead of `O(n)`. (A
//! *static* schedule would not give this guarantee: a lagging thread's
//! undispatched early chunks could be skipped. The kernel therefore
//! pins `schedule(dynamic, CHUNK)`.)
//!
//! The kernel is also correct with cancellation *disarmed*
//! (`OMP_CANCELLATION` unset): `cancel` degrades to a no-op and the
//! loop scans everything — same answer, no early exit. The variants
//! arm cancellation for their own fork via the per-thread `cancel-var`
//! override so the workload always exercises the feature.
//!
//! Three front ends express the same loop — the `omp_cancel!` macro
//! ([`search_macro`]), the typed builder ([`search_builder`]), and the
//! `//#omp` translator (the `search` fixture under `tests/fixtures/`)
//! — and must agree exactly; `tests/cancellation.rs` pins that.

use crate::classes::Class;
use crate::rng::{Randlc, SEED_EP};
use crate::verify::{KernelResult, Variant};
use romp_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Needle width in bytes.
pub const NEEDLE: usize = 4;
/// Dispatch granularity of the parallel scan (also the cancellation
/// granularity: at most one extra in-flight chunk per thread runs after
/// the cancelling chunk).
pub const CHUNK: u64 = 512;

/// Haystack length per class.
pub fn dims(class: Class) -> usize {
    match class {
        Class::S => 1 << 16,
        Class::W => 1 << 18,
        Class::A => 1 << 20,
        Class::B => 1 << 22,
        Class::C => 1 << 24,
    }
}

/// The haystack: `randlc` uniforms quantized to a 16-symbol alphabet
/// (deterministic across threads and variants, like every NPB stream).
pub fn haystack(class: Class) -> Vec<u8> {
    let mut rng = Randlc::new(SEED_EP);
    (0..dims(class))
        .map(|_| ((rng.next_f64() * 16.0) as u8).min(15))
        .collect()
}

/// The needle: the window planted at 5/8 of the stream, so a match is
/// guaranteed to exist (an accidental earlier occurrence of the same
/// 4 symbols is fine — "first match" is whatever the serial scan says).
pub fn needle(hay: &[u8]) -> [u8; NEEDLE] {
    let p = hay.len() * 5 / 8;
    [hay[p], hay[p + 1], hay[p + 2], hay[p + 3]]
}

/// Sequential reference scan: the verification value.
pub fn find_serial(hay: &[u8], nd: &[u8; NEEDLE]) -> usize {
    let last = hay.len() - (NEEDLE - 1);
    (0..last)
        .find(|&i| hay[i..i + NEEDLE] == nd[..])
        .expect("the planted needle guarantees a match")
}

/// Expected first-match index per class, memoized.
pub fn expected_index(class: Class) -> usize {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<Class, usize>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&v) = cache.lock().unwrap().get(&class) {
        return v;
    }
    let hay = haystack(class);
    let v = find_serial(&hay, &needle(&hay));
    cache.lock().unwrap().insert(class, v);
    v
}

/// RAII arming of `cancel-var` for the calling thread's forks (the
/// per-thread override leaves the process-global ICV block untouched,
/// so concurrently running code keeps its own setting). Used by the
/// kernel variants and by the front-end parity tests around the
/// translated fixture.
pub struct ArmCancellation(Option<bool>);

impl ArmCancellation {
    /// Arm cancellation until the guard drops.
    pub fn new() -> Self {
        ArmCancellation(romp_runtime::icv::set_cancellation_override(Some(true)))
    }
}

impl Default for ArmCancellation {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ArmCancellation {
    fn drop(&mut self) {
        romp_runtime::icv::set_cancellation_override(self.0);
    }
}

/// The early-exit scan through the `omp_cancel!` macro front end.
pub fn search_macro(class: Class, threads: usize) -> usize {
    let _arm = ArmCancellation::new();
    let hay = haystack(class);
    let nd = needle(&hay);
    let found = AtomicUsize::new(usize::MAX);
    let last = hay.len() - (NEEDLE - 1);
    {
        let (hay, nd, found) = (&hay, &nd, &found);
        omp_parallel!(num_threads(threads), |ctx| {
            omp_for!(
                ctx,
                schedule(dynamic, CHUNK),
                for i in 0..last {
                    if hay[i..i + NEEDLE] == nd[..] {
                        found.fetch_min(i, Ordering::Relaxed);
                        if omp_cancel!(ctx, for) {
                            return;
                        }
                    }
                }
            );
        });
    }
    found.load(Ordering::Relaxed)
}

/// The early-exit scan through the typed builder front end.
pub fn search_builder(class: Class, threads: usize) -> usize {
    let _arm = ArmCancellation::new();
    let hay = haystack(class);
    let nd = needle(&hay);
    let found = AtomicUsize::new(usize::MAX);
    let last = hay.len() - (NEEDLE - 1);
    {
        let (hay, nd, found) = (&hay, &nd, &found);
        parallel().num_threads(threads).run(|ctx| {
            ctx.ws_for(0..last, Schedule::dynamic_chunk(CHUNK), false, |i| {
                if hay[i..i + NEEDLE] == nd[..] {
                    found.fetch_min(i, Ordering::Relaxed);
                    cancel(ctx, CancelKind::For);
                }
            });
        });
    }
    found.load(Ordering::Relaxed)
}

fn result(class: Class, variant: Variant, threads: usize, secs: f64, idx: usize) -> KernelResult {
    KernelResult {
        name: "FS",
        class,
        variant,
        threads,
        time_s: secs,
        // "Operations" = the windows a perfect early-exit scan must
        // visit (everything at or before the first match).
        mops: (expected_index(class) + 1) as f64 / secs / 1e6,
        verified: idx == expected_index(class),
        checksum: idx as f64,
    }
}

/// Serial run with NPB-style timing and verification.
pub fn run_serial(class: Class) -> KernelResult {
    let (idx, secs) = romp_runtime::wtime::timed(|| {
        let hay = haystack(class);
        find_serial(&hay, &needle(&hay))
    });
    result(class, Variant::Serial, 1, secs, idx)
}

/// The romp configuration: the cancellation-driven early-exit scan.
pub mod romp {
    use super::*;

    /// Run the macro-front-end scan on `threads` threads.
    pub fn run(class: Class, threads: usize) -> KernelResult {
        let (idx, secs) = romp_runtime::wtime::timed(|| search_macro(class, threads));
        result(class, Variant::Romp, threads, secs, idx)
    }

    /// Run on the ICV-resolved default team size (`OMP_NUM_THREADS`).
    pub fn run_env(class: Class) -> KernelResult {
        run(class, romp_runtime::omp_get_max_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_is_deterministic_and_bounded() {
        let hay = haystack(Class::S);
        let nd = needle(&hay);
        let idx = find_serial(&hay, &nd);
        assert_eq!(idx, expected_index(Class::S));
        // The planted position is an upper bound on the first match.
        assert!(idx <= hay.len() * 5 / 8);
        assert_eq!(hay[idx..idx + NEEDLE], nd[..]);
    }

    #[test]
    fn parallel_variants_match_serial_at_various_thread_counts() {
        let want = expected_index(Class::S);
        for threads in [1, 2, 4, 7] {
            assert_eq!(search_macro(Class::S, threads), want, "macro t={threads}");
            assert_eq!(
                search_builder(Class::S, threads),
                want,
                "builder t={threads}"
            );
        }
    }

    #[test]
    fn cancellation_actually_cuts_the_scan_short() {
        // The whole point of the kernel: with cancellation armed, the
        // team visits only windows at-or-near the first match, not the
        // whole haystack. Single-threaded the count is deterministic:
        // every chunk up to and including the cancelling one runs in
        // full, nothing after.
        let _arm = ArmCancellation::new();
        let hay = haystack(Class::S);
        let nd = needle(&hay);
        let idx = expected_index(Class::S);
        let last = hay.len() - (NEEDLE - 1);
        let visited = AtomicUsize::new(0);
        let found = AtomicUsize::new(usize::MAX);
        {
            let (hay, nd, visited, found) = (&hay, &nd, &visited, &found);
            omp_parallel!(num_threads(1), |ctx| {
                omp_for!(
                    ctx,
                    schedule(dynamic, CHUNK),
                    for i in 0..last {
                        visited.fetch_add(1, Ordering::Relaxed);
                        if hay[i..i + NEEDLE] == nd[..] {
                            found.fetch_min(i, Ordering::Relaxed);
                            if omp_cancel!(ctx, for) {
                                return;
                            }
                        }
                    }
                );
            });
        }
        assert_eq!(found.load(Ordering::Relaxed), idx);
        // Chunk-granular early exit: exactly the chunks through the
        // cancelling one were visited.
        let want = (((idx / CHUNK as usize) + 1) * CHUNK as usize).min(last);
        assert_eq!(visited.load(Ordering::Relaxed), want);
        assert!(want < last, "class S must actually exit early");
    }

    #[test]
    fn disarmed_cancellation_still_verifies() {
        // Force cancel-var off for this thread: the kernel's own
        // ArmCancellation::new() then... still arms (it overrides). So
        // drive the builder loop shape manually, disarmed.
        let prev = romp_runtime::icv::set_cancellation_override(Some(false));
        let hay = haystack(Class::S);
        let nd = needle(&hay);
        let found = AtomicUsize::new(usize::MAX);
        let last = hay.len() - (NEEDLE - 1);
        {
            let (hay, nd, found) = (&hay, &nd, &found);
            parallel().num_threads(2).run(|ctx| {
                ctx.ws_for(0..last, Schedule::dynamic_chunk(CHUNK), false, |i| {
                    if hay[i..i + NEEDLE] == nd[..] {
                        found.fetch_min(i, Ordering::Relaxed);
                        assert!(!cancel(ctx, CancelKind::For), "cancel-var=false is a no-op");
                    }
                });
            });
        }
        romp_runtime::icv::set_cancellation_override(prev);
        assert_eq!(found.load(Ordering::Relaxed), expected_index(Class::S));
    }

    #[test]
    fn kernel_result_verifies() {
        let r = romp::run(Class::S, 4);
        assert!(r.verified, "{r}");
        assert_eq!(r.name, "FS");
        assert_eq!(r.checksum as usize, expected_index(Class::S));
    }
}
