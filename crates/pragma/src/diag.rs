//! Diagnostics with source positions.

use std::fmt;

/// A translation diagnostic (error) with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub message: String,
}

impl Diag {
    /// Build a diagnostic.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        Diag {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error: {} at line {}, column {}",
            self.message, self.line, self.col
        )
    }
}

/// Convert a byte offset in `src` to a `(line, col)` pair (1-based).
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let clamped = offset.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= clamped {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (1, 3));
        assert_eq!(line_col(src, 4), (2, 1));
        assert_eq!(line_col(src, 9), (3, 2));
        // Past the end clamps.
        assert_eq!(line_col(src, 1000), (3, 4));
    }

    #[test]
    fn display_format() {
        let d = Diag::new(3, 7, "unknown clause `foo`");
        assert_eq!(
            d.to_string(),
            "error: unknown clause `foo` at line 3, column 7"
        );
    }
}
