//! Outlining and code generation: rewrite directive-annotated source
//! into calls to the `romp-core` directive layer.
//!
//! This mirrors what the paper's compiler pass does after parsing: the
//! annotated block is extracted ("outlined") into a closure and the
//! surrounding code is replaced with a runtime invocation — here
//! expressed through the `romp_core` macros, which expand to exactly
//! the `fork`/worksharing calls the Zig implementation inserts directly.

use crate::diag::{line_col, Diag};
use crate::directive::{Clause, Directive, DirectiveKind, RedOp, ScheduleKind};
use crate::source::{
    find_directives, match_brace, next_construct, skip_trivia, FoundDirective, NextConstruct,
    SENTINEL,
};

/// Translate a whole source file. On success returns the transformed
/// source; on failure, every diagnostic found.
pub fn translate(src: &str) -> Result<String, Vec<Diag>> {
    let mut cx = Cx {
        src,
        diags: Vec::new(),
    };
    let out = transform_range(&mut cx, 0, src.len(), None, 0);
    if cx.diags.is_empty() {
        Ok(out)
    } else {
        Err(cx.diags)
    }
}

struct Cx<'a> {
    src: &'a str,
    diags: Vec<Diag>,
}

impl Cx<'_> {
    fn diag(&mut self, offset: usize, message: impl Into<String>) {
        let (line, col) = line_col(self.src, offset);
        self.diags.push(Diag::new(line, col, message));
    }
}

/// Transform `src[start..end]`, rewriting every directive. `ctx` is the
/// in-scope team context variable, if we are lexically inside a
/// `parallel` region.
fn transform_range(
    cx: &mut Cx<'_>,
    start: usize,
    end: usize,
    ctx: Option<&str>,
    depth: usize,
) -> String {
    let mut out = String::with_capacity(end - start);
    let mut cursor = start;
    let found: Vec<FoundDirective> = find_directives(&cx.src[start..end])
        .into_iter()
        .map(|mut d| {
            d.start += start;
            d.end += start;
            d
        })
        .collect();
    for fd in found {
        if fd.start < cursor {
            continue; // inside a construct we already transformed
        }
        out.push_str(&cx.src[cursor..fd.start]);
        let directive = match crate::directive::parse(&fd.text) {
            Ok(d) => d,
            Err(e) => {
                cx.diag(fd.start + SENTINEL.len() + e.offset, e.message);
                cursor = fd.end;
                continue;
            }
        };
        cursor = emit_directive(cx, &mut out, &directive, &fd, ctx, depth, end);
    }
    out.push_str(&cx.src[cursor.min(end)..end]);
    out
}

/// Emit the replacement for one directive; returns the new cursor.
fn emit_directive(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    ctx: Option<&str>,
    depth: usize,
    limit: usize,
) -> usize {
    let needs_ctx = matches!(
        d.kind,
        DirectiveKind::For
            | DirectiveKind::Single
            | DirectiveKind::Master
            | DirectiveKind::Barrier
            | DirectiveKind::Sections
            | DirectiveKind::Task
            | DirectiveKind::Taskloop
            | DirectiveKind::Taskwait
            | DirectiveKind::Cancel(_)
            | DirectiveKind::CancellationPoint(_)
    );
    if needs_ctx && ctx.is_none() {
        cx.diag(
            fd.start,
            format!(
                "`{}` must be lexically nested inside a `parallel` region \
                 (the translator does not support orphaned constructs)",
                d.kind.name()
            ),
        );
        return fd.end;
    }
    match d.kind {
        DirectiveKind::Barrier => {
            out.push_str(&format!("romp_core::omp_barrier!({});", ctx.unwrap()));
            fd.end
        }
        DirectiveKind::Taskwait => {
            out.push_str(&format!("romp_core::omp_taskwait!({});", ctx.unwrap()));
            fd.end
        }
        // Stand-alone cancellation constructs. `return` is the
        // translator's "branch to the end of the cancelled region": the
        // outlined code runs inside closures (the region body, a loop
        // iteration, a task body), so returning from the innermost
        // closure is exactly the cooperative early exit the runtime's
        // chunk-granular drivers expect.
        DirectiveKind::Cancel(kind) => {
            let if_clause = d.clauses.iter().find_map(|c| match c {
                Clause::If(e) => Some(format!(", if({e})")),
                _ => None,
            });
            out.push_str(&format!(
                "if romp_core::omp_cancel!({}, {}{}) {{ return; }}",
                ctx.unwrap(),
                kind.keyword(),
                if_clause.unwrap_or_default()
            ));
            fd.end
        }
        DirectiveKind::CancellationPoint(kind) => {
            out.push_str(&format!(
                "if romp_core::omp_cancellation_point!({}, {}) {{ return; }}",
                ctx.unwrap(),
                kind.keyword()
            ));
            fd.end
        }
        DirectiveKind::Section => {
            cx.diag(fd.start, "`section` outside of a `sections` block");
            fd.end
        }
        _ => {
            let construct = match next_construct(cx.src, fd.end) {
                Ok(c) => c,
                Err(e) => {
                    cx.diag(e.offset.min(limit), e.message);
                    return fd.end;
                }
            };
            match d.kind {
                DirectiveKind::Parallel | DirectiveKind::Teams => {
                    emit_parallel(cx, out, d, fd, &construct, depth)
                }
                DirectiveKind::For => {
                    emit_for(cx, out, d, fd, &construct, ctx.unwrap(), depth, false)
                }
                DirectiveKind::ParallelFor => emit_parallel_for(cx, out, d, fd, &construct, depth),
                DirectiveKind::Single => {
                    emit_wrapped(cx, out, d, fd, &construct, ctx, depth, "omp_single")
                }
                DirectiveKind::Master => {
                    emit_wrapped(cx, out, d, fd, &construct, ctx, depth, "omp_master")
                }
                DirectiveKind::Task => emit_task(cx, out, d, fd, &construct, ctx.unwrap(), depth),
                DirectiveKind::Taskloop => {
                    emit_taskloop(cx, out, d, fd, &construct, ctx.unwrap(), depth)
                }
                DirectiveKind::Critical | DirectiveKind::Atomic => {
                    emit_critical(cx, out, d, fd, &construct, ctx, depth)
                }
                DirectiveKind::Sections => {
                    emit_sections(cx, out, d, fd, &construct, ctx.unwrap(), depth)
                }
                DirectiveKind::Barrier
                | DirectiveKind::Taskwait
                | DirectiveKind::Section
                | DirectiveKind::Cancel(_)
                | DirectiveKind::CancellationPoint(_) => {
                    unreachable!("handled above")
                }
            }
        }
    }
}

fn block_span(c: &NextConstruct) -> (usize, usize) {
    match c {
        NextConstruct::Block { open, close } => (*open, *close),
        NextConstruct::ForLoop { open, close, .. } => (*open, *close),
    }
}

fn expect_block(
    cx: &mut Cx<'_>,
    fd: &FoundDirective,
    c: &NextConstruct,
    what: &str,
) -> Option<(usize, usize)> {
    match c {
        NextConstruct::Block { open, close } => Some((*open, *close)),
        NextConstruct::ForLoop { for_kw, .. } => {
            cx.diag(*for_kw, format!("`{what}` expects a `{{ … }}` block"));
            let _ = fd;
            None
        }
    }
}

fn expect_loop<'c>(
    cx: &mut Cx<'_>,
    c: &'c NextConstruct,
    at: usize,
    what: &str,
) -> Option<(&'c str, &'c str, usize, usize)> {
    match c {
        NextConstruct::ForLoop {
            pat,
            iter,
            open,
            close,
            ..
        } => Some((pat, iter, *open, *close)),
        NextConstruct::Block { .. } => {
            cx.diag(at, format!("`{what}` expects a `for` loop"));
            None
        }
    }
}

/// Render the loop header for the macro layer: `(range)` or
/// `(range).step_by(s)`.
fn macro_iter(iter: &str) -> String {
    if let Some(idx) = iter.rfind(".step_by(") {
        let base = iter[..idx].trim();
        let tail = &iter[idx + ".step_by(".len()..];
        if let Some(close) = tail.rfind(')') {
            let step = &tail[..close];
            let base = base.trim_start_matches('(').trim_end_matches(')');
            return format!("({base}).step_by({step})");
        }
    }
    format!("({iter})")
}

/// Collect private/firstprivate declarations to inject at the top of an
/// outlined block (for constructs whose macro has no such clause).
fn privatization_prelude(d: &Directive) -> String {
    let mut s = String::new();
    for c in &d.clauses {
        match c {
            Clause::Private(vars) => {
                for v in vars {
                    s.push_str(&format!(
                        "#[allow(unused_mut, unused_assignments)] let mut {v};\n"
                    ));
                }
            }
            Clause::Firstprivate(vars) => {
                for v in vars {
                    s.push_str(&format!(
                        "#[allow(unused_mut)] let mut {v} = ::std::clone::Clone::clone(&{v});\n"
                    ));
                }
            }
            _ => {}
        }
    }
    s
}

fn schedule_clause_text(d: &Directive) -> Option<String> {
    d.clauses.iter().find_map(|c| match c {
        Clause::Schedule(kind, chunk) => {
            let k = match kind {
                ScheduleKind::Static => "static",
                ScheduleKind::Dynamic => "dynamic",
                ScheduleKind::Guided => "guided",
                ScheduleKind::Runtime => "runtime",
                ScheduleKind::Auto => "auto",
            };
            Some(match chunk {
                Some(c) => format!("schedule({k}, {c})"),
                None => format!("schedule({k})"),
            })
        }
        _ => None,
    })
}

/// A stable per-callsite stamp for adaptive schedules. `schedule(auto)`
/// (and `schedule(runtime)`, which may resolve to auto) is tuned per
/// loop site; `#[track_caller]` would blame every translated loop on
/// the expansion point, so stamp the directive's source line instead.
fn site_clause_text(cx: &Cx<'_>, d: &Directive, at: usize) -> Option<String> {
    let adaptive = d.clauses.iter().any(|c| {
        matches!(
            c,
            Clause::Schedule(ScheduleKind::Auto | ScheduleKind::Runtime, _)
        )
    });
    adaptive.then(|| {
        let (line, _) = line_col(cx.src, at);
        format!("site(\"rompcc:{line}\"), ")
    })
}

fn step_clause_text(d: &Directive) -> Option<String> {
    d.clauses.iter().find_map(|c| match c {
        Clause::Step(e) => Some(format!("step({e})")),
        _ => None,
    })
}

fn collapse_depth(d: &Directive) -> Option<u32> {
    d.clauses.iter().find_map(|c| match c {
        Clause::Collapse(n) => Some(*n),
        _ => None,
    })
}

/// Render the worksharing loop header, validating `collapse` against
/// the loop pattern: `collapse(n)` with `n > 1` requires the tuple form
/// `for (i, j[, k]) in (ra, rb[, rc])`, which is forwarded verbatim
/// (the macro layer fuses the spaces). Returns the header text plus the
/// `collapse`/`step` clause text to prepend, or `None` after a
/// diagnostic.
fn loop_header(
    cx: &mut Cx<'_>,
    at: usize,
    d: &Directive,
    pat: &str,
    iter: &str,
) -> Option<(String, String)> {
    let tuple_arity = pat.starts_with('(').then(|| pat.matches(',').count() + 1);
    let mut clause_txt = String::new();
    let depth = collapse_depth(d);
    match (depth, tuple_arity) {
        (Some(n), arity) if n > 1 && arity != Some(n as usize) => {
            cx.diag(
                at,
                format!(
                    "collapse({n}) requires a tuple loop header with {n} variables, \
                     e.g. `for (i, j) in (0..n, 0..m)`"
                ),
            );
            return None;
        }
        (None | Some(1), Some(arity)) => {
            cx.diag(
                at,
                format!(
                    "a tuple loop header fuses {arity} loops: say so with a \
                     `collapse({arity})` clause"
                ),
            );
            return None;
        }
        _ => {}
    }
    if let Some(n) = depth {
        clause_txt.push_str(&format!("collapse({n}), "));
    }
    if let Some(s) = step_clause_text(d) {
        if tuple_arity.is_some() {
            cx.diag(at, "`step` cannot combine with a collapsed loop header");
            return None;
        }
        if iter.contains(".step_by(") {
            cx.diag(
                at,
                "`step` cannot combine with a `.step_by(..)` loop header \
                 (the header already fixes the stride)",
            );
            return None;
        }
        clause_txt.push_str(&format!("{s}, "));
    }
    let header = if tuple_arity.is_some() {
        let it = iter.trim();
        if !it.starts_with('(') || !it.contains(',') {
            cx.diag(
                at,
                "a collapsed loop iterates a parenthesized range tuple, \
                 e.g. `(0..n, 0..m)`",
            );
            return None;
        }
        format!("for {pat} in {it}")
    } else {
        format!("for {pat} in {}", macro_iter(iter))
    };
    Some((header, clause_txt))
}

fn reductions(d: &Directive) -> Vec<(RedOp, Vec<String>)> {
    d.clauses
        .iter()
        .filter_map(|c| match c {
            Clause::Reduction(op, vars) => Some((*op, vars.clone())),
            _ => None,
        })
        .collect()
}

fn emit_parallel(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    depth: usize,
) -> usize {
    // `teams` shares this emitter: it is `parallel` with league
    // semantics, lowered onto `omp_teams!` (an outer spread region).
    let mac = if d.kind == DirectiveKind::Teams {
        "omp_teams"
    } else {
        "omp_parallel"
    };
    let Some((open, close)) = expect_block(cx, fd, c, d.kind.name()) else {
        return block_span(c).1 + 1;
    };
    if !reductions(d).is_empty() {
        cx.diag(
            fd.start,
            "`reduction` on a bare `parallel` is not supported by the translator; \
             put it on the worksharing loop (or use `parallel for`)",
        );
        return close + 1;
    }
    let ctx_name = format!("__omp_ctx_{depth}");
    let mut clause_txt = String::new();
    for cl in &d.clauses {
        match cl {
            Clause::NumThreads(e) => clause_txt.push_str(&format!("num_threads({e}), ")),
            Clause::If(e) => clause_txt.push_str(&format!("if({e}), ")),
            Clause::Default(shared) => clause_txt.push_str(if *shared {
                "default(shared), "
            } else {
                "default(none), "
            }),
            Clause::Shared(vars) => clause_txt.push_str(&format!("shared({}), ", vars.join(", "))),
            Clause::ProcBind(kind) => clause_txt.push_str(&format!("proc_bind({kind}), ")),
            Clause::NumTeams(e) => clause_txt.push_str(&format!("num_teams({e}), ")),
            // private/firstprivate handled by the macro's own clauses.
            Clause::Private(vars) => {
                clause_txt.push_str(&format!("private({}), ", vars.join(", ")))
            }
            Clause::Firstprivate(vars) => {
                clause_txt.push_str(&format!("firstprivate({}), ", vars.join(", ")))
            }
            _ => {}
        }
    }
    let body = transform_range(cx, open + 1, close, Some(&ctx_name), depth + 1);
    out.push_str(&format!(
        "romp_core::{mac}!({clause_txt}|{ctx_name}| {{{body}}});"
    ));
    close + 1
}

#[allow(clippy::too_many_arguments)]
fn emit_for(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    ctx: &str,
    depth: usize,
    _combined: bool,
) -> usize {
    let Some((pat, iter, open, close)) = expect_loop(cx, c, fd.end, "for") else {
        return block_span(c).1 + 1;
    };
    let reds = reductions(d);
    if reds.len() > 1 {
        cx.diag(
            fd.start,
            "at most one reduction clause per worksharing loop is supported",
        );
        return close + 1;
    }
    let Some((header, mut clause_txt)) = loop_header(cx, fd.start, d, pat, iter) else {
        return close + 1;
    };
    if let Some(s) = schedule_clause_text(d) {
        clause_txt.push_str(&format!("{s}, "));
    }
    if let Some(s) = site_clause_text(cx, d, fd.start) {
        clause_txt.push_str(&s);
    }
    if d.clauses.iter().any(|c| matches!(c, Clause::Nowait)) {
        clause_txt.push_str("nowait, ");
    }
    if let Some((op, vars)) = reds.first() {
        clause_txt.push_str(&format!(
            "reduction({} : {}), ",
            op.token(),
            vars.join(", ")
        ));
    }
    let prelude = privatization_prelude(d);
    let body = transform_range(cx, open + 1, close, Some(ctx), depth + 1);
    out.push_str(&format!(
        "romp_core::omp_for!({ctx}, {clause_txt}{header} {{{prelude}{body}}});"
    ));
    close + 1
}

fn emit_parallel_for(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    depth: usize,
) -> usize {
    let Some((pat, iter, open, close)) = expect_loop(cx, c, fd.end, "parallel for") else {
        return block_span(c).1 + 1;
    };
    let reds = reductions(d);
    if reds.len() > 1 {
        cx.diag(
            fd.start,
            "at most one reduction clause per combined `parallel for` is supported",
        );
        return close + 1;
    }
    let mut clause_txt = String::new();
    for cl in &d.clauses {
        match cl {
            Clause::NumThreads(e) => clause_txt.push_str(&format!("num_threads({e}), ")),
            Clause::If(e) => clause_txt.push_str(&format!("if({e}), ")),
            Clause::Default(shared) => clause_txt.push_str(if *shared {
                "default(shared), "
            } else {
                "default(none), "
            }),
            Clause::Shared(vars) => clause_txt.push_str(&format!("shared({}), ", vars.join(", "))),
            Clause::ProcBind(kind) => clause_txt.push_str(&format!("proc_bind({kind}), ")),
            Clause::Firstprivate(vars) => {
                clause_txt.push_str(&format!("firstprivate({}), ", vars.join(", ")))
            }
            _ => {}
        }
    }
    if let Some(s) = schedule_clause_text(d) {
        clause_txt.push_str(&format!("{s}, "));
    }
    if let Some(s) = site_clause_text(cx, d, fd.start) {
        clause_txt.push_str(&s);
    }
    let Some((header, extra_clauses)) = loop_header(cx, fd.start, d, pat, iter) else {
        return close + 1;
    };
    clause_txt.push_str(&extra_clauses);
    // `private` has no macro clause on parallel_for: inject declarations.
    let mut prelude = String::new();
    for cl in &d.clauses {
        if let Clause::Private(vars) = cl {
            for v in vars {
                prelude.push_str(&format!(
                    "#[allow(unused_mut, unused_assignments)] let mut {v};\n"
                ));
            }
        }
    }
    let body = transform_range(cx, open + 1, close, None, depth + 1);
    match reds.first() {
        None => {
            out.push_str(&format!(
                "romp_core::omp_parallel_for!({clause_txt}{header} {{{prelude}{body}}});"
            ));
        }
        Some((op, vars)) => {
            // The combined macro returns the reduced values; write them
            // back to the original variables.
            let red_clause = format!(
                "reduction({} : {}), ",
                op.token(),
                vars.iter()
                    .map(|v| format!("{v} = {v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let temps: Vec<String> = (0..vars.len()).map(|i| format!("__omp_red_{i}")).collect();
            let writeback: String = vars
                .iter()
                .zip(&temps)
                .map(|(v, t)| format!("{v} = {t}; "))
                .collect();
            out.push_str(&format!(
                "{{ let ({temps},) = romp_core::omp_parallel_for!({clause_txt}{red_clause}{header} \
                 {{{prelude}{body}}}); {writeback}}}",
                temps = temps.join(", ")
            ));
        }
    }
    close + 1
}

#[allow(clippy::too_many_arguments)]
fn emit_wrapped(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    ctx: Option<&str>,
    depth: usize,
    mac: &str,
) -> usize {
    let Some((open, close)) = expect_block(cx, fd, c, d.kind.name()) else {
        return block_span(c).1 + 1;
    };
    let prelude = privatization_prelude(d);
    let body = transform_range(cx, open + 1, close, ctx, depth + 1);
    let nowait = d.clauses.iter().any(|c| matches!(c, Clause::Nowait));
    let ctx = ctx.unwrap();
    if nowait && mac == "omp_single" {
        out.push_str(&format!(
            "romp_core::{mac}!({ctx}, nowait, {{{prelude}{body}}});"
        ));
    } else {
        out.push_str(&format!("romp_core::{mac}!({ctx}, {{{prelude}{body}}});"));
    }
    close + 1
}

fn emit_task(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    ctx: &str,
    depth: usize,
) -> usize {
    let Some((open, close)) = expect_block(cx, fd, c, "task") else {
        return block_span(c).1 + 1;
    };
    let body = transform_range(cx, open + 1, close, Some(ctx), depth + 1);
    // Clause text in source order; the macro muncher accepts any order.
    let mut clause_txt = String::new();
    for cl in &d.clauses {
        match cl {
            Clause::Depend(ty, items) => {
                clause_txt.push_str(&format!("depend({}: {}), ", ty.keyword(), items.join(", ")));
            }
            Clause::Final(e) => clause_txt.push_str(&format!("final({e}), ")),
            Clause::If(e) => clause_txt.push_str(&format!("if({e}), ")),
            _ => {}
        }
    }
    // firstprivate on a task: clone into a mangled temp *before* the
    // capture (so the outer variable is not consumed by the move) and
    // rebind the original name *inside* the body. The indirection
    // matters with `depend`: dependence addresses are taken at task
    // creation, outside the closure, and must name the ORIGINAL
    // variable's storage — a same-named shadowing clone would register
    // a fresh address per task and silently drop all ordering.
    let mut pre = String::new();
    let mut rebind = String::new();
    for cl in &d.clauses {
        if let Clause::Firstprivate(vars) = cl {
            for v in vars {
                pre.push_str(&format!(
                    "let __omp_fp_{v} = ::std::clone::Clone::clone(&{v}); "
                ));
                rebind.push_str(&format!(
                    "#[allow(unused_mut)] let mut {v} = __omp_fp_{v}; "
                ));
            }
        }
    }
    let inner = format!("romp_core::omp_task!({ctx}, {clause_txt}{{{rebind}{body}}});");
    if pre.is_empty() {
        out.push_str(&inner);
    } else {
        out.push_str(&format!("{{ {pre}{inner} }}"));
    }
    close + 1
}

fn emit_taskloop(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    ctx: &str,
    depth: usize,
) -> usize {
    let Some((pat, iter, open, close)) = expect_loop(cx, c, fd.end, "taskloop") else {
        return block_span(c).1 + 1;
    };
    if pat.starts_with('(') {
        cx.diag(fd.start, "`taskloop` expects a single loop variable");
        return close + 1;
    }
    if iter.contains(".step_by(") {
        cx.diag(
            fd.start,
            "`taskloop` does not support `.step_by(..)` headers",
        );
        return close + 1;
    }
    let mut clause_txt = String::new();
    for cl in &d.clauses {
        match cl {
            Clause::Grainsize(e) => clause_txt.push_str(&format!("grainsize({e}), ")),
            Clause::NumTasks(e) => clause_txt.push_str(&format!("num_tasks({e}), ")),
            Clause::Nogroup => clause_txt.push_str("nogroup, "),
            _ => {}
        }
    }
    let body = transform_range(cx, open + 1, close, Some(ctx), depth + 1);
    out.push_str(&format!(
        "romp_core::omp_taskloop!({ctx}, {clause_txt}for {pat} in ({iter}) {{{body}}});"
    ));
    close + 1
}

fn emit_critical(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    ctx: Option<&str>,
    depth: usize,
) -> usize {
    let Some((open, close)) = expect_block(cx, fd, c, d.kind.name()) else {
        return block_span(c).1 + 1;
    };
    let body = transform_range(cx, open + 1, close, ctx, depth + 1);
    let name = d.clauses.iter().find_map(|cl| match cl {
        Clause::CriticalName(n) => Some(n.clone()),
        _ => None,
    });
    match name {
        Some(n) => out.push_str(&format!("romp_core::omp_critical!({n}, {{{body}}});")),
        None => out.push_str(&format!("romp_core::omp_critical!({{{body}}});")),
    }
    close + 1
}

fn emit_sections(
    cx: &mut Cx<'_>,
    out: &mut String,
    d: &Directive,
    fd: &FoundDirective,
    c: &NextConstruct,
    ctx: &str,
    depth: usize,
) -> usize {
    let Some((open, close)) = expect_block(cx, fd, c, "sections") else {
        return block_span(c).1 + 1;
    };
    // Split the block content at top-level `//#omp section` markers.
    let content_start = open + 1;
    let mut boundaries = vec![];
    for found in find_directives(&cx.src[content_start..close]) {
        let abs = found.start + content_start;
        // Only split at markers that are at the top brace level of this
        // block: check by brace-matching from content_start.
        if found.text.trim() == "section"
            && at_top_level(&cx.src[content_start..close], found.start)
        {
            boundaries.push((abs, found.end + content_start));
        }
    }
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut seg_start = content_start;
    for (b_start, b_end) in &boundaries {
        segments.push((seg_start, *b_start));
        seg_start = *b_end;
    }
    segments.push((seg_start, close));
    // Drop an empty leading segment (explicit `section` before the first
    // block is optional in OpenMP).
    let segments: Vec<(usize, usize)> = segments
        .into_iter()
        .filter(|&(s, e)| !cx.src[s..e].trim().is_empty())
        .collect();
    if segments.is_empty() {
        cx.diag(fd.start, "`sections` block contains no sections");
        return close + 1;
    }
    let nowait = d.clauses.iter().any(|cl| matches!(cl, Clause::Nowait));
    let mut blocks = String::new();
    for (s, e) in segments {
        let body = transform_range(cx, s, e, Some(ctx), depth + 1);
        blocks.push_str(&format!("{{{body}}} "));
    }
    if nowait {
        out.push_str(&format!(
            "romp_core::omp_sections!({ctx}, nowait, {blocks});"
        ));
    } else {
        out.push_str(&format!("romp_core::omp_sections!({ctx}, {blocks});"));
    }
    close + 1
}

/// Is `offset` (relative to `fragment`) at brace depth 0 of the
/// fragment?
fn at_top_level(fragment: &str, offset: usize) -> bool {
    // Count unbalanced braces before offset, string/comment aware, by
    // matching any opens we encounter.
    let mut i = skip_trivia(fragment, 0);
    while i < offset.min(fragment.len()) {
        if fragment[i..].starts_with('{') {
            match match_brace(fragment, i) {
                Ok(close) if close < offset => i = close + 1,
                _ => return false, // offset is inside this brace pair
            }
        } else {
            i += 1;
        }
        i = skip_trivia(fragment, i);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: &str) -> String {
        translate(src).unwrap_or_else(|e| panic!("diags: {e:?}"))
    }

    #[test]
    fn parallel_block_outlined() {
        let out = t("//#omp parallel num_threads(4)\n{ work(); }\nafter();");
        assert!(
            out.contains("romp_core::omp_parallel!(num_threads(4), |__omp_ctx_0| { work(); });"),
            "{out}"
        );
        assert!(out.contains("after();"));
    }

    #[test]
    fn teams_directive_lowers_to_omp_teams() {
        let out = t("//#omp teams num_teams(4)
{ work(); }");
        assert!(
            out.contains("romp_core::omp_teams!(num_teams(4), "),
            "teams must lower onto the omp_teams! macro: {out}"
        );
        let out = t("//#omp teams num_teams(2) proc_bind(close)
{ work(); }");
        assert!(
            out.contains("num_teams(2), ") && out.contains("proc_bind(close), "),
            "teams forwards num_teams and an explicit proc_bind: {out}"
        );
    }

    #[test]
    fn parallel_proc_bind_clause_forwarded() {
        let out = t("//#omp parallel num_threads(2) proc_bind(spread)
{ work(); }");
        assert!(
            out.contains("proc_bind(spread), "),
            "proc_bind must reach the macro clause list: {out}"
        );
        let out = t("//#omp parallel for proc_bind(close)
for i in 0..n { a(i); }");
        assert!(
            out.contains("proc_bind(close), "),
            "combined parallel for must forward proc_bind: {out}"
        );
    }

    #[test]
    fn parallel_for_simple() {
        let out = t("//#omp parallel for schedule(dynamic, 4)\nfor i in 0..n { a(i); }");
        assert!(
            out.contains(
                "romp_core::omp_parallel_for!(schedule(dynamic, 4), for i in (0..n) { a(i); });"
            ),
            "{out}"
        );
    }

    #[test]
    fn auto_schedule_stamps_a_site() {
        // The adaptive learner keys on the callsite; the translator
        // stamps the directive's own source line so distinct `//#omp`
        // loops do not share one macro-expansion site.
        let out = t("before();\n//#omp parallel for schedule(auto)\nfor i in 0..n { a(i); }");
        assert!(
            out.contains("schedule(auto), site(\"rompcc:2\"), "),
            "{out}"
        );
        let out = t("//#omp parallel\n{\n//#omp for schedule(runtime)\nfor i in 0..8 { f(i); }\n}");
        assert!(
            out.contains("schedule(runtime), site(\"rompcc:3\"), "),
            "{out}"
        );
        // Fixed schedules keep the historical output: no stamp.
        let out = t("//#omp parallel for schedule(static)\nfor i in 0..n { a(i); }");
        assert!(!out.contains("site("), "{out}");
    }

    #[test]
    fn parallel_for_reduction_writes_back() {
        let out = t("//#omp parallel for reduction(+:sum)\nfor i in 0..n { sum += x[i]; }");
        assert!(out.contains("reduction(+ : sum = sum)"), "{out}");
        assert!(out.contains("let (__omp_red_0,)"), "{out}");
        assert!(out.contains("sum = __omp_red_0;"), "{out}");
    }

    #[test]
    fn nested_for_gets_ctx() {
        let out = t("//#omp parallel\n{\n//#omp for schedule(static)\nfor i in 0..10 { f(i); }\n}");
        assert!(out.contains("|__omp_ctx_0|"), "{out}");
        assert!(
            out.contains("romp_core::omp_for!(__omp_ctx_0, schedule(static), for i in (0..10)"),
            "{out}"
        );
    }

    #[test]
    fn barrier_and_taskwait_standalone() {
        let out = t("//#omp parallel\n{\n//#omp barrier\n//#omp taskwait\n}");
        assert!(
            out.contains("romp_core::omp_barrier!(__omp_ctx_0);"),
            "{out}"
        );
        assert!(
            out.contains("romp_core::omp_taskwait!(__omp_ctx_0);"),
            "{out}"
        );
    }

    #[test]
    fn orphaned_for_is_an_error() {
        let e = translate("//#omp for\nfor i in 0..3 { f(i); }").unwrap_err();
        assert!(e[0].message.contains("nested inside"), "{e:?}");
    }

    #[test]
    fn critical_named_and_unnamed() {
        let out =
            t("//#omp parallel\n{\n//#omp critical\n{ a(); }\n//#omp critical (tag)\n{ b(); }\n}");
        assert!(out.contains("romp_core::omp_critical!({ a(); });"), "{out}");
        assert!(
            out.contains("romp_core::omp_critical!(tag, { b(); });"),
            "{out}"
        );
    }

    #[test]
    fn single_master_wrapped() {
        let out =
            t("//#omp parallel\n{\n//#omp single nowait\n{ s(); }\n//#omp master\n{ m(); }\n}");
        assert!(
            out.contains("romp_core::omp_single!(__omp_ctx_0, nowait, { s(); });"),
            "{out}"
        );
        assert!(
            out.contains("romp_core::omp_master!(__omp_ctx_0, { m(); });"),
            "{out}"
        );
    }

    #[test]
    fn sections_split_on_markers() {
        let out = t(
            "//#omp parallel\n{\n//#omp sections\n{\n//#omp section\n{ a(); }\n//#omp section\n{ b(); }\n}\n}",
        );
        let flat: String = out.split_whitespace().collect::<Vec<_>>().join(" ");
        assert!(
            flat.contains("romp_core::omp_sections!(__omp_ctx_0, { { a(); } } { { b(); } } );"),
            "{flat}"
        );
    }

    #[test]
    fn task_with_firstprivate_clones_before_move() {
        let out = t("//#omp parallel\n{\n//#omp task firstprivate(v)\n{ use_it(v); }\n}");
        assert!(
            out.contains("let __omp_fp_v = ::std::clone::Clone::clone(&v);"),
            "{out}"
        );
        assert!(
            out.contains("#[allow(unused_mut)] let mut v = __omp_fp_v;"),
            "{out}"
        );
        assert!(out.contains("romp_core::omp_task!(__omp_ctx_0,"), "{out}");
    }

    #[test]
    fn task_depend_with_firstprivate_keeps_original_address() {
        // The dependence list must name the ORIGINAL variable (the
        // clause is outside the closure); the clone only rebinds inside
        // the body.
        let out = t("//#omp parallel\n{\n//#omp task depend(inout: acc) firstprivate(acc)\n{ use_it(acc); }\n}");
        assert!(out.contains("depend(inout: acc)"), "{out}");
        assert!(
            out.contains("let __omp_fp_acc = ::std::clone::Clone::clone(&acc);"),
            "{out}"
        );
        let dep_pos = out.find("depend(inout: acc)").unwrap();
        let rebind_pos = out.find("let mut acc = __omp_fp_acc").unwrap();
        assert!(
            rebind_pos > dep_pos,
            "rebinding must happen inside the body, after the clause: {out}"
        );
    }

    #[test]
    fn task_depend_final_if_forwarded() {
        let out = t(
            "//#omp parallel\n{\n//#omp task depend(in: a, tok[idx(i, j)]) \
             depend(out: b) final(d > 3) if(n > 10)\n{ go(); }\n}",
        );
        assert!(
            out.contains(
                "romp_core::omp_task!(__omp_ctx_0, depend(in: a, tok[idx(i, j)]), \
                 depend(out: b), final(d > 3), if(n > 10), { go(); });"
            ),
            "{out}"
        );
    }

    #[test]
    fn task_depend_inout_forwarded() {
        let out = t("//#omp parallel\n{\n//#omp task depend(inout: acc)\n{ bump(); }\n}");
        assert!(
            out.contains("romp_core::omp_task!(__omp_ctx_0, depend(inout: acc), { bump(); });"),
            "{out}"
        );
    }

    #[test]
    fn taskloop_clauses_forwarded() {
        let out = t(
            "//#omp parallel\n{\n//#omp taskloop num_tasks(4 * nt) nogroup\n\
             for i in 0..n { f(i); }\n}",
        );
        assert!(
            out.contains(
                "romp_core::omp_taskloop!(__omp_ctx_0, num_tasks(4 * nt), nogroup, \
                 for i in (0..n) { f(i); });"
            ),
            "{out}"
        );
        let out =
            t("//#omp parallel\n{\n//#omp taskloop grainsize(16)\nfor i in 0..n { f(i); }\n}");
        assert!(
            out.contains(
                "romp_core::omp_taskloop!(__omp_ctx_0, grainsize(16), for i in (0..n) { f(i); });"
            ),
            "{out}"
        );
    }

    #[test]
    fn taskloop_requires_region_and_simple_loop() {
        let e = translate("//#omp taskloop\nfor i in 0..3 { f(i); }").unwrap_err();
        assert!(e[0].message.contains("nested inside"), "{e:?}");
        let e = translate(
            "//#omp parallel\n{\n//#omp taskloop\nfor (i, j) in (0..n, 0..m) { f(i, j); }\n}",
        )
        .unwrap_err();
        assert!(e[0].message.contains("single loop variable"), "{e:?}");
    }

    #[test]
    fn cancel_directives_emit_early_returns() {
        let out = t(
            "//#omp parallel\n{\n//#omp for schedule(dynamic, 64)\nfor i in 0..n {\n             if hay[i] == 0 {\n//#omp cancel for\n}\n//#omp cancellation point for\n}\n}",
        );
        assert!(
            out.contains("if romp_core::omp_cancel!(__omp_ctx_0, for) { return; }"),
            "{out}"
        );
        assert!(
            out.contains("if romp_core::omp_cancellation_point!(__omp_ctx_0, for) { return; }"),
            "{out}"
        );
    }

    #[test]
    fn cancel_if_clause_forwarded() {
        let out = t("//#omp parallel\n{\n//#omp cancel parallel if(err > 3)\n}");
        assert!(
            out.contains(
                "if romp_core::omp_cancel!(__omp_ctx_0, parallel, if(err > 3)) { return; }"
            ),
            "{out}"
        );
    }

    #[test]
    fn cancel_taskgroup_inside_task_body() {
        let out = t("//#omp parallel\n{\n//#omp task\n{\n//#omp cancel taskgroup\n}\n}");
        assert!(
            out.contains("if romp_core::omp_cancel!(__omp_ctx_0, taskgroup) { return; }"),
            "{out}"
        );
    }

    #[test]
    fn orphaned_cancel_is_an_error() {
        let e = translate("//#omp cancel parallel\n").unwrap_err();
        assert!(e[0].message.contains("nested inside"), "{e:?}");
        let e = translate("//#omp cancellation point parallel\n").unwrap_err();
        assert!(e[0].message.contains("nested inside"), "{e:?}");
    }

    #[test]
    fn atomic_lowers_to_critical() {
        let out = t("//#omp parallel\n{\n//#omp atomic\n{ x += 1; }\n}");
        assert!(
            out.contains("romp_core::omp_critical!({ x += 1; });"),
            "{out}"
        );
    }

    #[test]
    fn step_by_header_preserved() {
        let out = t("//#omp parallel for\nfor i in (0..100).step_by(5) { f(i); }");
        assert!(out.contains("for i in (0..100).step_by(5)"), "{out}");
    }

    #[test]
    fn collapse2_emits_tuple_header() {
        let out = t("//#omp parallel for collapse(2) schedule(dynamic, 4)\n\
             for (i, j) in (0..n, 0..m) { f(i, j); }");
        assert!(
            out.contains(
                "romp_core::omp_parallel_for!(schedule(dynamic, 4), collapse(2), \
                 for (i, j) in (0..n, 0..m) { f(i, j); });"
            ),
            "{out}"
        );
    }

    #[test]
    fn collapse3_inside_region() {
        let out = t("//#omp parallel\n{\n//#omp for collapse(3)\n\
             for (i, j, k) in (0..a, 0..b, 0..c) { g(i, j, k); }\n}");
        assert!(
            out.contains(
                "romp_core::omp_for!(__omp_ctx_0, collapse(3), \
                 for (i, j, k) in (0..a, 0..b, 0..c)"
            ),
            "{out}"
        );
    }

    #[test]
    fn step_clause_forwarded() {
        let out = t("//#omp parallel for step(-3) schedule(guided)\nfor i in hi..lo { f(i); }");
        assert!(
            out.contains(
                "romp_core::omp_parallel_for!(schedule(guided), step(-3), for i in (hi..lo)"
            ),
            "{out}"
        );
    }

    #[test]
    fn collapse_without_tuple_header_diagnosed() {
        let e = translate("//#omp parallel for collapse(2)\nfor i in 0..n { f(i); }").unwrap_err();
        assert!(e[0].message.contains("tuple loop header"), "{e:?}");
    }

    #[test]
    fn tuple_header_without_collapse_clause_diagnosed() {
        // The emitted lowering would fuse; require the directive to say
        // so explicitly.
        for src in [
            "//#omp parallel for\nfor (i, j) in (0..n, 0..m) { f(i, j); }",
            "//#omp parallel for collapse(1)\nfor (i, j) in (0..n, 0..m) { f(i, j); }",
        ] {
            let e = translate(src).unwrap_err();
            assert!(e[0].message.contains("collapse(2)"), "{src}: {e:?}");
        }
    }

    #[test]
    fn step_with_step_by_header_diagnosed() {
        let e = translate("//#omp parallel for step(2)\nfor i in (0..n).step_by(3) { f(i); }")
            .unwrap_err();
        assert!(e[0].message.contains("cannot combine"), "{e:?}");
    }

    #[test]
    fn step_with_collapse_diagnosed() {
        let e = translate(
            "//#omp parallel for collapse(2) step(2)\nfor (i, j) in (0..n, 0..m) { f(i, j); }",
        )
        .unwrap_err();
        assert!(e[0].message.contains("cannot combine"), "{e:?}");
    }

    #[test]
    fn private_injected_into_body() {
        let out = t("//#omp parallel for private(t)\nfor i in 0..5 { t = i; g(t); }");
        assert!(out.contains("let mut t;"), "{out}");
    }

    #[test]
    fn firstprivate_on_parallel_passes_through() {
        let out = t("//#omp parallel firstprivate(base)\n{ h(base); }");
        assert!(out.contains("firstprivate(base), |__omp_ctx_0|"), "{out}");
    }

    #[test]
    fn source_without_directives_unchanged() {
        let src = "fn main() {\n    println!(\"no directives here\");\n}\n";
        assert_eq!(t(src), src);
    }

    #[test]
    fn bad_directive_reports_position() {
        let e = translate("fn f() {\n    //#omp paralel\n    { }\n}").unwrap_err();
        assert_eq!(e[0].line, 2);
        assert!(e[0].message.contains("unknown directive"));
    }

    #[test]
    fn multiple_errors_all_reported() {
        let e = translate("//#omp bogus1\n{ }\n//#omp bogus2\n{ }").unwrap_err();
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn reduction_on_bare_parallel_rejected() {
        let e = translate("//#omp parallel reduction(+:x)\n{ }").unwrap_err();
        assert!(e[0].message.contains("not supported"), "{e:?}");
    }
}
