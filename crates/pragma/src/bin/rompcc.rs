//! `rompcc` — the romp source-to-source OpenMP preprocessor.
//!
//! ```text
//! rompcc input.rs [-o output.rs] [--emit=stages] [--check]
//! ```
//!
//! * default: translate `//#omp` directives and write the result to
//!   `-o` (or stdout);
//! * `--emit=stages`: print every stage of the Figure-1 pipeline
//!   (scan → lex → parse → extract → generate);
//! * `--check`: parse and validate only; exit nonzero on diagnostics.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut emit_stages = false;
    let mut check_only = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => match it.next() {
                Some(path) => output = Some(path),
                None => {
                    eprintln!("rompcc: -o requires a path");
                    return ExitCode::from(2);
                }
            },
            "--emit=stages" => emit_stages = true,
            "--check" => check_only = true,
            "-h" | "--help" => {
                println!("usage: rompcc input.rs [-o output.rs] [--emit=stages] [--check]");
                return ExitCode::SUCCESS;
            }
            path if !path.starts_with('-') => {
                if input.is_some() {
                    eprintln!("rompcc: multiple input files given");
                    return ExitCode::from(2);
                }
                input = Some(path.to_string());
            }
            other => {
                eprintln!("rompcc: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("usage: rompcc input.rs [-o output.rs] [--emit=stages] [--check]");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rompcc: cannot read `{input}`: {e}");
            return ExitCode::from(1);
        }
    };

    if emit_stages {
        print!("{}", romp_pragma::pipeline_stages(&src));
        return ExitCode::SUCCESS;
    }

    match romp_pragma::translate(&src) {
        Ok(code) => {
            if check_only {
                let n = romp_pragma::find_directives(&src).len();
                eprintln!("rompcc: ok — {n} directive(s) translated");
                return ExitCode::SUCCESS;
            }
            match output {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, code) {
                        eprintln!("rompcc: cannot write `{path}`: {e}");
                        return ExitCode::from(1);
                    }
                }
                None => print!("{code}"),
            }
            ExitCode::SUCCESS
        }
        Err(diags) => {
            for d in &diags {
                eprintln!("{input}: {d}");
            }
            eprintln!("rompcc: {} error(s)", diags.len());
            ExitCode::from(1)
        }
    }
}
