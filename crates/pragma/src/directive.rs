//! Lexer, AST and parser for the directive language.
//!
//! This is the left half of the paper's Figure 1 — "parsing of pragmas".
//! Directive text (everything after the `//#omp` sentinel) is tokenized
//! and parsed into a [`Directive`] with typed [`Clause`]s. The grammar
//! is the OpenMP 5.2 subset the paper implements: `parallel`, the
//! worksharing loop (`for`), their combination, plus the
//! synchronization and tasking directives, with the data-environment,
//! `schedule` and `reduction` clauses.

use std::fmt;

/// A directive kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `parallel` — fork a team over the following block.
    Parallel,
    /// `for` — workshare the following loop over the current team.
    For,
    /// `parallel for` — combined construct.
    ParallelFor,
    /// `teams` — a league of initial teams over the following block,
    /// lowered onto an outer spread parallel region.
    Teams,
    /// `single`.
    Single,
    /// `master`.
    Master,
    /// `critical [(name)]`.
    Critical,
    /// `barrier` (stand-alone).
    Barrier,
    /// `sections` (block containing `section` markers).
    Sections,
    /// `section` (marker inside `sections`).
    Section,
    /// `task`.
    Task,
    /// `taskloop` — the encountering thread carves the following loop
    /// into tasks.
    Taskloop,
    /// `taskwait` (stand-alone).
    Taskwait,
    /// `atomic` — lowered to a critical section (documented choice).
    Atomic,
    /// `cancel <construct>` (stand-alone): request cancellation of the
    /// innermost enclosing region of the named kind.
    Cancel(CancelableConstruct),
    /// `cancellation point <construct>` (stand-alone): observe a
    /// pending cancellation of the innermost enclosing region.
    CancellationPoint(CancelableConstruct),
}

/// The *construct-type-clause* of `cancel` / `cancellation point`
/// (OpenMP 5.2 §11.2): which region kind the request binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelableConstruct {
    /// `parallel`
    Parallel,
    /// `for` (the worksharing loop)
    For,
    /// `sections`
    Sections,
    /// `taskgroup`
    Taskgroup,
}

impl CancelableConstruct {
    /// The keyword as written in directive text and macro syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            CancelableConstruct::Parallel => "parallel",
            CancelableConstruct::For => "for",
            CancelableConstruct::Sections => "sections",
            CancelableConstruct::Taskgroup => "taskgroup",
        }
    }
}

impl DirectiveKind {
    /// Does this directive attach to a following block/statement?
    pub fn takes_block(self) -> bool {
        !matches!(
            self,
            DirectiveKind::Barrier
                | DirectiveKind::Taskwait
                | DirectiveKind::Cancel(_)
                | DirectiveKind::CancellationPoint(_)
        )
    }

    /// Directive name as written.
    pub fn name(self) -> &'static str {
        match self {
            DirectiveKind::Parallel => "parallel",
            DirectiveKind::For => "for",
            DirectiveKind::ParallelFor => "parallel for",
            DirectiveKind::Teams => "teams",
            DirectiveKind::Single => "single",
            DirectiveKind::Master => "master",
            DirectiveKind::Critical => "critical",
            DirectiveKind::Barrier => "barrier",
            DirectiveKind::Sections => "sections",
            DirectiveKind::Section => "section",
            DirectiveKind::Task => "task",
            DirectiveKind::Taskloop => "taskloop",
            DirectiveKind::Taskwait => "taskwait",
            DirectiveKind::Atomic => "atomic",
            DirectiveKind::Cancel(_) => "cancel",
            DirectiveKind::CancellationPoint(_) => "cancellation point",
        }
    }
}

/// Dependence type of a `depend(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependType {
    /// `depend(in: …)` — ordered after the last writer.
    In,
    /// `depend(out: …)` — ordered after the last writer and all
    /// readers since; becomes the last writer.
    Out,
    /// `depend(inout: …)` — same serialization as `out`.
    Inout,
}

impl DependType {
    /// The keyword as written in directive text and macro syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            DependType::In => "in",
            DependType::Out => "out",
            DependType::Inout => "inout",
        }
    }
}

/// `schedule(...)` kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleKind {
    /// `static`
    Static,
    /// `dynamic`
    Dynamic,
    /// `guided`
    Guided,
    /// `runtime`
    Runtime,
    /// `auto`
    Auto,
}

/// Reduction operators of the directive grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    /// `+`
    Add,
    /// `*`
    Mul,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl RedOp {
    /// The operator token as it appears in romp macro syntax.
    pub fn token(self) -> &'static str {
        match self {
            RedOp::Add => "+",
            RedOp::Mul => "*",
            RedOp::Min => "min",
            RedOp::Max => "max",
            RedOp::BitAnd => "&",
            RedOp::BitOr => "|",
            RedOp::BitXor => "^",
            RedOp::LogAnd => "&&",
            RedOp::LogOr => "||",
        }
    }
}

/// A parsed clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `num_threads(expr)`
    NumThreads(String),
    /// `if(expr)`
    If(String),
    /// `default(shared)` / `default(none)`
    Default(bool),
    /// `shared(a, b)`
    Shared(Vec<String>),
    /// `private(a, b)`
    Private(Vec<String>),
    /// `firstprivate(a, b)`
    Firstprivate(Vec<String>),
    /// `schedule(kind[, chunk])`
    Schedule(ScheduleKind, Option<String>),
    /// `reduction(op : a, b)`
    Reduction(RedOp, Vec<String>),
    /// `nowait`
    Nowait,
    /// `collapse(n)` — fuse the following `n`-deep rectangular loop
    /// nest (written with a tuple header) into one iteration space.
    Collapse(u32),
    /// `step(expr)` — romp extension: the strided canonical loop form
    /// `for (i = lo; i < hi; i += step)`, which Rust range syntax
    /// cannot spell for negative strides.
    Step(String),
    /// `proc_bind(kind)` — recorded on the team and enforced by
    /// place-partitioning where the platform supports it.
    ProcBind(String),
    /// `num_teams(expr)` on `teams`.
    NumTeams(String),
    /// `(name)` on `critical`.
    CriticalName(String),
    /// `depend(in|out|inout: list)` on `task` — items are lvalue
    /// expressions whose addresses key the dependence table.
    Depend(DependType, Vec<String>),
    /// `final(expr)` on `task`.
    Final(String),
    /// `grainsize(expr)` on `taskloop`.
    Grainsize(String),
    /// `num_tasks(expr)` on `taskloop`.
    NumTasks(String),
    /// `nogroup` on `taskloop`.
    Nogroup,
}

impl Clause {
    fn name(&self) -> &'static str {
        match self {
            Clause::NumThreads(_) => "num_threads",
            Clause::If(_) => "if",
            Clause::Default(_) => "default",
            Clause::Shared(_) => "shared",
            Clause::Private(_) => "private",
            Clause::Firstprivate(_) => "firstprivate",
            Clause::Schedule(..) => "schedule",
            Clause::Reduction(..) => "reduction",
            Clause::Nowait => "nowait",
            Clause::Collapse(_) => "collapse",
            Clause::Step(_) => "step",
            Clause::ProcBind(_) => "proc_bind",
            Clause::NumTeams(_) => "num_teams",
            Clause::CriticalName(_) => "(name)",
            Clause::Depend(..) => "depend",
            Clause::Final(_) => "final",
            Clause::Grainsize(_) => "grainsize",
            Clause::NumTasks(_) => "num_tasks",
            Clause::Nogroup => "nogroup",
        }
    }
}

/// A fully parsed directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    /// The directive kind.
    pub kind: DirectiveKind,
    /// Its clauses, in source order.
    pub clauses: Vec<Clause>,
}

/// A parse error within directive text (column-relative to the text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset within the directive text.
    pub offset: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

/// Directive-text token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// An operator symbol (`+ * & | ^ && ||`).
    Op(RedOp),
    /// Anything else inside a parenthesized expression, captured raw.
    Raw(char),
}

/// Tokenize directive text. Expression arguments (inside parens) are
/// handled by the parser via raw capture, so the lexer stays simple.
pub fn lex(text: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                out.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Token::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Token::Comma));
                i += 1;
            }
            ':' => {
                out.push((i, Token::Colon));
                i += 1;
            }
            '+' => {
                out.push((i, Token::Op(RedOp::Add)));
                i += 1;
            }
            '*' => {
                out.push((i, Token::Op(RedOp::Mul)));
                i += 1;
            }
            '^' => {
                out.push((i, Token::Op(RedOp::BitXor)));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((i, Token::Op(RedOp::LogAnd)));
                    i += 2;
                } else {
                    out.push((i, Token::Op(RedOp::BitAnd)));
                    i += 1;
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((i, Token::Op(RedOp::LogOr)));
                    i += 2;
                } else {
                    out.push((i, Token::Op(RedOp::BitOr)));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: u64 = text[start..i].parse().map_err(|_| ParseError {
                    offset: start,
                    message: format!("invalid integer `{}`", &text[start..i]),
                })?;
                out.push((start, Token::Int(v)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((start, Token::Ident(text[start..i].to_string())));
            }
            other => {
                out.push((i, Token::Raw(other)));
                i += 1;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    text: &'a str,
    toks: Vec<(usize, Token)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(self.text.len())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                offset: self.offset().saturating_sub(1),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn expect(&mut self, tok: Token, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(ParseError {
                offset: self.offset().saturating_sub(1),
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    /// Capture a balanced-parenthesis raw expression: everything up to
    /// the matching `)` of an already-consumed `(`.
    fn raw_until_rparen(&mut self) -> Result<String, ParseError> {
        let start = self.offset();
        let mut depth = 1usize;
        let mut end = start;
        while depth > 0 {
            match self.toks.get(self.pos) {
                Some((o, Token::LParen)) => {
                    depth += 1;
                    end = o + 1;
                    self.pos += 1;
                }
                Some((o, Token::RParen)) => {
                    depth -= 1;
                    end = *o;
                    self.pos += 1;
                }
                Some((o, t)) => {
                    end = o + token_width(self.text, *o, t);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated `(` in clause argument")),
            }
        }
        Ok(self.text[start..end].trim().to_string())
    }

    fn ident_list_until_rparen(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.expect_ident()?];
        loop {
            match self.bump() {
                Some(Token::Comma) => names.push(self.expect_ident()?),
                Some(Token::RParen) => break,
                other => {
                    return Err(ParseError {
                        offset: self.offset().saturating_sub(1),
                        message: format!("expected `,` or `)` in variable list, found {other:?}"),
                    })
                }
            }
        }
        Ok(names)
    }
}

fn token_width(text: &str, offset: usize, tok: &Token) -> usize {
    match tok {
        Token::Ident(s) => s.len(),
        Token::Int(_) => text[offset..]
            .bytes()
            .take_while(|b| b.is_ascii_digit())
            .count(),
        Token::Op(RedOp::LogAnd) | Token::Op(RedOp::LogOr) => 2,
        _ => 1,
    }
}

/// Parse the text after the `//#omp` sentinel into a directive.
pub fn parse(text: &str) -> Result<Directive, ParseError> {
    let toks = lex(text)?;
    let mut p = Parser { text, toks, pos: 0 };
    let first = p.expect_ident().map_err(|_| ParseError {
        offset: 0,
        message: "expected a directive name after `//#omp`".to_string(),
    })?;
    let kind = match first.as_str() {
        "parallel" => {
            if matches!(p.peek(), Some(Token::Ident(s)) if s == "for") {
                p.bump();
                DirectiveKind::ParallelFor
            } else {
                DirectiveKind::Parallel
            }
        }
        "for" => DirectiveKind::For,
        "teams" => DirectiveKind::Teams,
        "single" => DirectiveKind::Single,
        "master" => DirectiveKind::Master,
        "critical" => DirectiveKind::Critical,
        "barrier" => DirectiveKind::Barrier,
        "sections" => DirectiveKind::Sections,
        "section" => DirectiveKind::Section,
        "task" => DirectiveKind::Task,
        "taskloop" => DirectiveKind::Taskloop,
        "taskwait" => DirectiveKind::Taskwait,
        "atomic" => DirectiveKind::Atomic,
        "cancel" => DirectiveKind::Cancel(parse_cancel_construct(&mut p)?),
        "cancellation" => {
            match p.bump() {
                Some(Token::Ident(s)) if s == "point" => {}
                _ => {
                    return Err(ParseError {
                        offset: 0,
                        message: "expected `point` after `cancellation` \
                                  (the directive is `cancellation point <construct>`)"
                            .to_string(),
                    })
                }
            }
            DirectiveKind::CancellationPoint(parse_cancel_construct(&mut p)?)
        }
        other => {
            return Err(ParseError {
                offset: 0,
                message: format!("unknown directive `{other}`"),
            })
        }
    };
    let mut clauses = Vec::new();
    // `critical (name)`.
    if kind == DirectiveKind::Critical {
        if let Some(Token::LParen) = p.peek() {
            p.bump();
            let name = p.expect_ident()?;
            p.expect(Token::RParen, "`)` after critical name")?;
            clauses.push(Clause::CriticalName(name));
        }
    }
    while let Some(tok) = p.peek() {
        let clause = match tok {
            Token::Comma => {
                p.bump();
                continue;
            }
            Token::Ident(name) => {
                let name = name.clone();
                p.bump();
                parse_clause(&mut p, &name)?
            }
            other => {
                return Err(p.err(format!("expected a clause, found {other:?}")));
            }
        };
        clauses.push(clause);
    }
    let d = Directive { kind, clauses };
    validate(&d)?;
    Ok(d)
}

/// Parse the construct-type of a `cancel`/`cancellation point`
/// directive (required, immediately after the directive name).
fn parse_cancel_construct(p: &mut Parser<'_>) -> Result<CancelableConstruct, ParseError> {
    match p.bump() {
        Some(Token::Ident(s)) => match s.as_str() {
            "parallel" => Ok(CancelableConstruct::Parallel),
            "for" => Ok(CancelableConstruct::For),
            "sections" => Ok(CancelableConstruct::Sections),
            "taskgroup" => Ok(CancelableConstruct::Taskgroup),
            other => Err(ParseError {
                offset: 0,
                message: format!(
                    "cancel takes a construct kind: parallel, for, sections or \
                     taskgroup (found `{other}`)"
                ),
            }),
        },
        _ => Err(ParseError {
            offset: 0,
            message: "cancel requires a construct kind: parallel, for, sections or taskgroup"
                .to_string(),
        }),
    }
}

fn parse_clause(p: &mut Parser<'_>, name: &str) -> Result<Clause, ParseError> {
    match name {
        "nowait" => Ok(Clause::Nowait),
        "num_threads" => {
            p.expect(Token::LParen, "`(` after num_threads")?;
            Ok(Clause::NumThreads(p.raw_until_rparen()?))
        }
        "if" => {
            p.expect(Token::LParen, "`(` after if")?;
            Ok(Clause::If(p.raw_until_rparen()?))
        }
        "default" => {
            p.expect(Token::LParen, "`(` after default")?;
            let v = p.expect_ident()?;
            p.expect(Token::RParen, "`)`")?;
            match v.as_str() {
                "shared" => Ok(Clause::Default(true)),
                "none" => Ok(Clause::Default(false)),
                other => Err(p.err(format!("default takes `shared` or `none`, found `{other}`"))),
            }
        }
        "shared" => {
            p.expect(Token::LParen, "`(` after shared")?;
            Ok(Clause::Shared(p.ident_list_until_rparen()?))
        }
        "private" => {
            p.expect(Token::LParen, "`(` after private")?;
            Ok(Clause::Private(p.ident_list_until_rparen()?))
        }
        "firstprivate" => {
            p.expect(Token::LParen, "`(` after firstprivate")?;
            Ok(Clause::Firstprivate(p.ident_list_until_rparen()?))
        }
        "proc_bind" => {
            p.expect(Token::LParen, "`(` after proc_bind")?;
            let v = p.expect_ident()?;
            if !matches!(v.as_str(), "master" | "primary" | "close" | "spread") {
                return Err(p.err("proc_bind takes master, primary, close or spread"));
            }
            p.expect(Token::RParen, "`)`")?;
            Ok(Clause::ProcBind(v))
        }
        "num_teams" => {
            p.expect(Token::LParen, "`(` after num_teams")?;
            let e = p.raw_until_rparen()?;
            if e.is_empty() {
                return Err(p.err("empty expression in num_teams clause"));
            }
            Ok(Clause::NumTeams(e))
        }
        "collapse" => {
            p.expect(Token::LParen, "`(` after collapse")?;
            let n = match p.bump() {
                Some(Token::Int(n)) => n as u32,
                _ => return Err(p.err("collapse takes an integer")),
            };
            p.expect(Token::RParen, "`)`")?;
            Ok(Clause::Collapse(n))
        }
        "step" => {
            p.expect(Token::LParen, "`(` after step")?;
            let e = p.raw_until_rparen()?;
            if e.is_empty() {
                return Err(p.err("empty expression in step clause"));
            }
            Ok(Clause::Step(e))
        }
        "final" => {
            p.expect(Token::LParen, "`(` after final")?;
            let e = p.raw_until_rparen()?;
            if e.is_empty() {
                return Err(p.err("empty expression in final clause"));
            }
            Ok(Clause::Final(e))
        }
        "grainsize" => {
            p.expect(Token::LParen, "`(` after grainsize")?;
            let e = p.raw_until_rparen()?;
            if e.is_empty() {
                return Err(p.err("empty expression in grainsize clause"));
            }
            Ok(Clause::Grainsize(e))
        }
        "num_tasks" => {
            p.expect(Token::LParen, "`(` after num_tasks")?;
            let e = p.raw_until_rparen()?;
            if e.is_empty() {
                return Err(p.err("empty expression in num_tasks clause"));
            }
            Ok(Clause::NumTasks(e))
        }
        "nogroup" => Ok(Clause::Nogroup),
        "depend" => {
            p.expect(Token::LParen, "`(` after depend")?;
            let ty = match p.expect_ident()?.as_str() {
                "in" => DependType::In,
                "out" => DependType::Out,
                "inout" => DependType::Inout,
                other => {
                    return Err(p.err(format!(
                        "depend takes `in`, `out` or `inout`, found `{other}`"
                    )));
                }
            };
            p.expect(Token::Colon, "`:` after the dependence type")?;
            let raw = p.raw_until_rparen()?;
            let items = split_top_level_commas(&raw);
            if items.is_empty() {
                return Err(p.err("empty variable list in depend clause"));
            }
            Ok(Clause::Depend(ty, items))
        }
        "schedule" => {
            p.expect(Token::LParen, "`(` after schedule")?;
            let kind = match p.expect_ident()?.as_str() {
                "static" => ScheduleKind::Static,
                "dynamic" => ScheduleKind::Dynamic,
                "guided" => ScheduleKind::Guided,
                "runtime" => ScheduleKind::Runtime,
                "auto" => ScheduleKind::Auto,
                other => {
                    return Err(p.err(format!("unknown schedule kind `{other}`")));
                }
            };
            match p.bump() {
                Some(Token::RParen) => Ok(Clause::Schedule(kind, None)),
                Some(Token::Comma) => {
                    let chunk = p.raw_until_rparen()?;
                    if chunk.is_empty() {
                        return Err(p.err("empty chunk expression in schedule clause"));
                    }
                    if matches!(kind, ScheduleKind::Auto | ScheduleKind::Runtime) {
                        let name = if kind == ScheduleKind::Auto {
                            "auto"
                        } else {
                            "runtime"
                        };
                        return Err(p.err(format!(
                            "schedule({name}) does not take a chunk size; \
                             drop `, {chunk}` or pick static/dynamic/guided"
                        )));
                    }
                    Ok(Clause::Schedule(kind, Some(chunk)))
                }
                other => Err(p.err(format!("expected `,` or `)` in schedule, found {other:?}"))),
            }
        }
        "reduction" => {
            p.expect(Token::LParen, "`(` after reduction")?;
            let op = match p.bump() {
                Some(Token::Op(op)) => op,
                Some(Token::Ident(s)) if s == "min" => RedOp::Min,
                Some(Token::Ident(s)) if s == "max" => RedOp::Max,
                other => {
                    return Err(p.err(format!(
                        "expected a reduction operator (+ * min max & | ^ && ||), found {other:?}"
                    )));
                }
            };
            p.expect(Token::Colon, "`:` after reduction operator")?;
            let vars = p.ident_list_until_rparen()?;
            Ok(Clause::Reduction(op, vars))
        }
        other => Err(p.err(format!("unknown clause `{other}`"))),
    }
}

/// Split a raw expression list on commas at bracket depth 0, so items
/// like `tok[idx(i, j)]` survive intact.
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                items.push(s[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(s[start..].trim().to_string());
    items.retain(|it| !it.is_empty());
    items
}

/// Clause/directive compatibility (OpenMP 5.2 table, restricted to our
/// subset).
fn validate(d: &Directive) -> Result<(), ParseError> {
    let allowed: &[&str] = match d.kind {
        DirectiveKind::Parallel => &[
            "num_threads",
            "if",
            "default",
            "shared",
            "private",
            "firstprivate",
            "proc_bind",
            "reduction",
        ],
        DirectiveKind::For => &[
            "schedule",
            "private",
            "firstprivate",
            "reduction",
            "nowait",
            "collapse",
            "step",
        ],
        DirectiveKind::ParallelFor => &[
            "num_threads",
            "if",
            "default",
            "shared",
            "private",
            "firstprivate",
            "proc_bind",
            "schedule",
            "reduction",
            "collapse",
            "step",
        ],
        DirectiveKind::Teams => &[
            "num_teams",
            "if",
            "default",
            "shared",
            "private",
            "firstprivate",
            "proc_bind",
        ],
        DirectiveKind::Single => &["private", "firstprivate", "nowait"],
        DirectiveKind::Task => &[
            "if",
            "final",
            "depend",
            "default",
            "shared",
            "private",
            "firstprivate",
        ],
        DirectiveKind::Taskloop => &["grainsize", "num_tasks", "nogroup", "default", "shared"],
        DirectiveKind::Critical => &["(name)"],
        DirectiveKind::Sections => &["private", "firstprivate", "reduction", "nowait"],
        // `cancel` admits only `if` (OpenMP 5.2 §11.2); a
        // `cancellation point` admits no clauses at all.
        DirectiveKind::Cancel(_) => &["if"],
        DirectiveKind::Master
        | DirectiveKind::Barrier
        | DirectiveKind::Taskwait
        | DirectiveKind::Section
        | DirectiveKind::Atomic
        | DirectiveKind::CancellationPoint(_) => &[],
    };
    for c in &d.clauses {
        if !allowed.contains(&c.name()) {
            return Err(ParseError {
                offset: 0,
                message: format!(
                    "clause `{}` is not valid on the `{}` directive",
                    c.name(),
                    d.kind.name()
                ),
            });
        }
    }
    if d.kind == DirectiveKind::Taskloop {
        let has_grain = d.clauses.iter().any(|c| matches!(c, Clause::Grainsize(_)));
        let has_num = d.clauses.iter().any(|c| matches!(c, Clause::NumTasks(_)));
        if has_grain && has_num {
            return Err(ParseError {
                offset: 0,
                message: "`grainsize` and `num_tasks` are mutually exclusive on `taskloop`"
                    .to_string(),
            });
        }
    }
    if d.kind == DirectiveKind::ParallelFor || d.kind == DirectiveKind::For {
        if let Some(Clause::Collapse(n)) =
            d.clauses.iter().find(|c| matches!(c, Clause::Collapse(_)))
        {
            if !(1..=3).contains(n) {
                return Err(ParseError {
                    offset: 0,
                    message: format!("collapse({n}) is not supported: n must be 1, 2 or 3"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_directives() {
        for (text, kind) in [
            ("parallel", DirectiveKind::Parallel),
            ("for", DirectiveKind::For),
            ("parallel for", DirectiveKind::ParallelFor),
            ("single", DirectiveKind::Single),
            ("master", DirectiveKind::Master),
            ("critical", DirectiveKind::Critical),
            ("barrier", DirectiveKind::Barrier),
            ("sections", DirectiveKind::Sections),
            ("section", DirectiveKind::Section),
            ("task", DirectiveKind::Task),
            ("taskloop", DirectiveKind::Taskloop),
            ("taskwait", DirectiveKind::Taskwait),
            ("atomic", DirectiveKind::Atomic),
        ] {
            let d = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(d.kind, kind, "{text}");
            assert!(d.clauses.is_empty() || kind == DirectiveKind::Critical);
        }
    }

    #[test]
    fn parses_full_clause_set() {
        let d = parse(
            "parallel for num_threads(2*n) if(n > 10) default(shared) shared(a, b) \
             private(t) firstprivate(c) schedule(dynamic, 4*chunk) reduction(+ : sx, sy)",
        )
        .unwrap();
        assert_eq!(d.kind, DirectiveKind::ParallelFor);
        assert_eq!(d.clauses.len(), 8);
        assert_eq!(d.clauses[0], Clause::NumThreads("2*n".into()));
        assert_eq!(d.clauses[1], Clause::If("n > 10".into()));
        assert_eq!(
            d.clauses[6],
            Clause::Schedule(ScheduleKind::Dynamic, Some("4*chunk".into()))
        );
        assert_eq!(
            d.clauses[7],
            Clause::Reduction(RedOp::Add, vec!["sx".into(), "sy".into()])
        );
    }

    #[test]
    fn parses_all_reduction_operators() {
        for (txt, op) in [
            ("+", RedOp::Add),
            ("*", RedOp::Mul),
            ("min", RedOp::Min),
            ("max", RedOp::Max),
            ("&", RedOp::BitAnd),
            ("|", RedOp::BitOr),
            ("^", RedOp::BitXor),
            ("&&", RedOp::LogAnd),
            ("||", RedOp::LogOr),
        ] {
            let d = parse(&format!("for reduction({txt} : x)")).unwrap();
            assert_eq!(d.clauses[0], Clause::Reduction(op, vec!["x".into()]));
        }
    }

    #[test]
    fn critical_name() {
        let d = parse("critical (queue_lock)").unwrap();
        assert_eq!(d.clauses[0], Clause::CriticalName("queue_lock".into()));
    }

    #[test]
    fn nested_parens_in_expressions() {
        let d = parse("parallel num_threads(f(a, g(b)))").unwrap();
        assert_eq!(d.clauses[0], Clause::NumThreads("f(a, g(b))".into()));
    }

    #[test]
    fn schedule_kinds() {
        for (t, k) in [
            ("static", ScheduleKind::Static),
            ("dynamic", ScheduleKind::Dynamic),
            ("guided", ScheduleKind::Guided),
            ("runtime", ScheduleKind::Runtime),
            ("auto", ScheduleKind::Auto),
        ] {
            let d = parse(&format!("for schedule({t})")).unwrap();
            assert_eq!(d.clauses[0], Clause::Schedule(k, None));
        }
    }

    #[test]
    fn rejects_chunk_on_auto_and_runtime() {
        for kind in ["auto", "runtime"] {
            let e = parse(&format!("for schedule({kind}, 4)")).unwrap_err();
            assert!(
                e.message
                    .contains(&format!("schedule({kind}) does not take a chunk size")),
                "{e}"
            );
        }
    }

    #[test]
    fn rejects_unknown_directive() {
        let e = parse("paralel for").unwrap_err();
        assert!(e.message.contains("unknown directive `paralel`"), "{e}");
    }

    #[test]
    fn rejects_unknown_clause() {
        let e = parse("parallel bogus(3)").unwrap_err();
        assert!(e.message.contains("unknown clause `bogus`"), "{e}");
    }

    #[test]
    fn rejects_incompatible_clause() {
        let e = parse("parallel nowait").unwrap_err();
        assert!(e.message.contains("not valid on the `parallel`"), "{e}");
        let e = parse("barrier if(x)").unwrap_err();
        assert!(e.message.contains("not valid on the `barrier`"), "{e}");
    }

    #[test]
    fn collapse_depths_validated() {
        for ok in ["collapse(1)", "collapse(2)", "collapse(3)"] {
            assert!(parse(&format!("parallel for {ok}")).is_ok(), "{ok}");
        }
        let e = parse("parallel for collapse(4)").unwrap_err();
        assert!(e.message.contains("collapse(4)"), "{e}");
        let e = parse("for collapse(0)").unwrap_err();
        assert!(e.message.contains("collapse(0)"), "{e}");
    }

    #[test]
    fn step_clause_parses() {
        let d = parse("parallel for step(2 * k) schedule(dynamic)").unwrap();
        assert_eq!(d.clauses[0], Clause::Step("2 * k".into()));
        let e = parse("parallel step(3)").unwrap_err();
        assert!(e.message.contains("not valid on the `parallel`"), "{e}");
    }

    #[test]
    fn rejects_bad_schedule() {
        let e = parse("for schedule(fair)").unwrap_err();
        assert!(e.message.contains("unknown schedule kind"), "{e}");
    }

    #[test]
    fn rejects_bad_default() {
        let e = parse("parallel default(private)").unwrap_err();
        assert!(e.message.contains("default takes"), "{e}");
    }

    #[test]
    fn comma_separated_clauses_allowed() {
        let d = parse("parallel num_threads(4), if(true)").unwrap();
        assert_eq!(d.clauses.len(), 2);
    }

    #[test]
    fn depend_clause_types_and_lists() {
        let d = parse("task depend(in: a, b) depend(out: c) depend(inout: d)").unwrap();
        assert_eq!(d.kind, DirectiveKind::Task);
        assert_eq!(
            d.clauses[0],
            Clause::Depend(DependType::In, vec!["a".into(), "b".into()])
        );
        assert_eq!(
            d.clauses[1],
            Clause::Depend(DependType::Out, vec!["c".into()])
        );
        assert_eq!(
            d.clauses[2],
            Clause::Depend(DependType::Inout, vec!["d".into()])
        );
    }

    #[test]
    fn depend_items_keep_nested_commas() {
        let d = parse("task depend(in: tok[idx(i, j)], row[i - 1])").unwrap();
        assert_eq!(
            d.clauses[0],
            Clause::Depend(
                DependType::In,
                vec!["tok[idx(i, j)]".into(), "row[i - 1]".into()]
            )
        );
    }

    #[test]
    fn depend_rejects_bad_type_and_empty_list() {
        let e = parse("task depend(readwrite: x)").unwrap_err();
        assert!(e.message.contains("depend takes"), "{e}");
        let e = parse("task depend(in: )").unwrap_err();
        assert!(e.message.contains("empty variable list"), "{e}");
    }

    #[test]
    fn final_and_if_on_task() {
        let d = parse("task final(depth > 4) if(n > 100)").unwrap();
        assert_eq!(d.clauses[0], Clause::Final("depth > 4".into()));
        assert_eq!(d.clauses[1], Clause::If("n > 100".into()));
    }

    #[test]
    fn taskloop_clauses() {
        let d = parse("taskloop grainsize(32)").unwrap();
        assert_eq!(d.kind, DirectiveKind::Taskloop);
        assert_eq!(d.clauses[0], Clause::Grainsize("32".into()));
        let d = parse("taskloop num_tasks(4 * nt) nogroup").unwrap();
        assert_eq!(d.clauses[0], Clause::NumTasks("4 * nt".into()));
        assert_eq!(d.clauses[1], Clause::Nogroup);
    }

    #[test]
    fn taskloop_grainsize_num_tasks_exclusive() {
        let e = parse("taskloop grainsize(8) num_tasks(4)").unwrap_err();
        assert!(e.message.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn cancel_directives_parse() {
        for (txt, kind) in [
            ("cancel parallel", CancelableConstruct::Parallel),
            ("cancel for", CancelableConstruct::For),
            ("cancel sections", CancelableConstruct::Sections),
            ("cancel taskgroup", CancelableConstruct::Taskgroup),
        ] {
            let d = parse(txt).unwrap_or_else(|e| panic!("{txt}: {e}"));
            assert_eq!(d.kind, DirectiveKind::Cancel(kind), "{txt}");
            assert!(d.clauses.is_empty());
            assert!(!d.kind.takes_block());
        }
        let d = parse("cancellation point taskgroup").unwrap();
        assert_eq!(
            d.kind,
            DirectiveKind::CancellationPoint(CancelableConstruct::Taskgroup)
        );
        assert!(!d.kind.takes_block());
    }

    #[test]
    fn cancel_if_clause_parses() {
        let d = parse("cancel for if(hits > 0)").unwrap();
        assert_eq!(d.kind, DirectiveKind::Cancel(CancelableConstruct::For));
        assert_eq!(d.clauses[0], Clause::If("hits > 0".into()));
    }

    #[test]
    fn cancel_requires_a_valid_construct_kind() {
        let e = parse("cancel").unwrap_err();
        assert!(e.message.contains("requires a construct kind"), "{e}");
        let e = parse("cancel single").unwrap_err();
        assert!(e.message.contains("construct kind"), "{e}");
        let e = parse("cancellation taskgroup").unwrap_err();
        assert!(e.message.contains("expected `point`"), "{e}");
    }

    #[test]
    fn cancel_rejects_foreign_clauses() {
        let e = parse("cancel for nowait").unwrap_err();
        assert!(e.message.contains("not valid on the `cancel`"), "{e}");
        let e = parse("cancellation point for if(x)").unwrap_err();
        assert!(
            e.message.contains("not valid on the `cancellation point`"),
            "{e}"
        );
    }

    #[test]
    fn depend_not_valid_on_loops() {
        let e = parse("parallel for depend(in: x)").unwrap_err();
        assert!(e.message.contains("not valid"), "{e}");
        let e = parse("taskloop depend(in: x)").unwrap_err();
        assert!(e.message.contains("not valid"), "{e}");
    }
}
