//! # romp-pragma — the `//#omp` source-to-source translator
//!
//! The paper adds OpenMP to Zig by *preprocessing*: a pass early in
//! compilation scans for directive comments (Zig, like Rust, has no
//! native pragmas), parses them, extracts the annotated code blocks into
//! functions, and inserts calls to the OpenMP runtime (Figure 1 of the
//! paper). This crate is that pass for Rust:
//!
//! 1. **Scan** ([`source::find_directives`]) — locate `//#omp …`
//!    comments in real code, string- and comment-aware.
//! 2. **Parse** ([`directive::parse`]) — tokenize and parse the
//!    directive text into a typed AST, validating clause/directive
//!    compatibility.
//! 3. **Extract** ([`source::next_construct`]) — find the following
//!    `{ … }` block or `for` loop with exact brace matching.
//! 4. **Outline & generate** ([`codegen::translate`]) — rewrite the
//!    construct into `romp_core` directive-layer calls (which expand to
//!    the same `fork`/worksharing runtime calls the paper's pass
//!    inserts).
//!
//! The `rompcc` binary drives this as `rompcc input.rs -o output.rs`;
//! `--emit=stages` prints every pipeline stage (the Figure 1 demo).
//!
//! ```
//! let src = "
//! //#omp parallel for schedule(guided) reduction(+ : sum)
//! for i in 0..n { sum += f(i); }
//! ";
//! let out = romp_pragma::translate(src).unwrap();
//! assert!(out.contains("romp_core::omp_parallel_for!"));
//! assert!(out.contains("schedule(guided)"));
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod diag;
pub mod directive;
pub mod source;

pub use codegen::translate;
pub use diag::Diag;
pub use directive::{
    parse as parse_directive, CancelableConstruct, Clause, Directive, DirectiveKind,
};
pub use source::{find_directives, next_construct, FoundDirective, NextConstruct, SENTINEL};

use std::fmt::Write as _;

/// Render the full Figure-1 pipeline for a source file: located
/// directives, their tokens, the parsed ASTs, the extracted construct
/// spans, and the generated output (or the diagnostics).
pub fn pipeline_stages(src: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "==== stage 1: directive comments located ====");
    let found = find_directives(src);
    if found.is_empty() {
        let _ = writeln!(out, "(none)");
    }
    for f in &found {
        let (line, col) = diag::line_col(src, f.start);
        let _ = writeln!(out, "  line {line:>4}, col {col:>3}:  //#omp {}", f.text);
    }

    let _ = writeln!(out, "\n==== stage 2: directive tokens ====");
    for f in &found {
        match directive::lex(&f.text) {
            Ok(toks) => {
                let rendered: Vec<String> = toks.iter().map(|(_, t)| format!("{t:?}")).collect();
                let _ = writeln!(out, "  {} -> [{}]", f.text, rendered.join(", "));
            }
            Err(e) => {
                let _ = writeln!(out, "  {} -> lex error: {}", f.text, e.message);
            }
        }
    }

    let _ = writeln!(out, "\n==== stage 3: parsed directive AST ====");
    for f in &found {
        match directive::parse(&f.text) {
            Ok(d) => {
                let _ = writeln!(out, "  {:?} clauses={:?}", d.kind, d.clauses);
            }
            Err(e) => {
                let _ = writeln!(out, "  parse error: {}", e.message);
            }
        }
    }

    let _ = writeln!(out, "\n==== stage 4: extracted code blocks ====");
    for f in &found {
        match directive::parse(&f.text) {
            Ok(d) if d.kind.takes_block() => match next_construct(src, f.end) {
                Ok(NextConstruct::Block { open, close }) => {
                    let snippet = first_line(&src[open..=close]);
                    let _ = writeln!(out, "  block [{open}..={close}]  {snippet}");
                }
                Ok(NextConstruct::ForLoop {
                    pat, iter, close, ..
                }) => {
                    let _ = writeln!(
                        out,
                        "  for-loop  var=`{pat}` iter=`{iter}` body ends at {close}"
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  extraction error: {}", e.message);
                }
            },
            Ok(d) => {
                let _ = writeln!(out, "  `{}` is stand-alone (no block)", d.kind.name());
            }
            Err(_) => {}
        }
    }

    let _ = writeln!(out, "\n==== stage 5: generated source ====");
    match translate(src) {
        Ok(code) => {
            let _ = writeln!(out, "{code}");
        }
        Err(diags) => {
            for d in diags {
                let _ = writeln!(out, "{d}");
            }
        }
    }
    out
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("").trim_end()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_stages_cover_all_five() {
        let src = "//#omp parallel for schedule(static, 8)\nfor i in 0..64 { touch(i); }\n";
        let stages = pipeline_stages(src);
        for marker in [
            "stage 1",
            "stage 2",
            "stage 3",
            "stage 4",
            "stage 5",
            "ParallelFor",
            "romp_core::omp_parallel_for!",
        ] {
            assert!(stages.contains(marker), "missing `{marker}` in:\n{stages}");
        }
    }

    #[test]
    fn pipeline_reports_errors_in_stage_5() {
        let stages = pipeline_stages("//#omp bogus\n{ }\n");
        assert!(stages.contains("unknown directive"), "{stages}");
    }
}
