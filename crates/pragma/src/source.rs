//! Rust source scanning: locating directive comments and extracting the
//! code blocks they annotate.
//!
//! This is the right half of the paper's Figure 1 — "extraction of code
//! blocks". A lightweight Rust lexer walks the source tracking string /
//! char / comment state, so `//#omp` sentinels inside string literals or
//! ordinary comments are not mistaken for directives, and brace matching
//! is reliable.

/// A located directive comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundDirective {
    /// Byte offset of the `//#omp` sentinel.
    pub start: usize,
    /// Byte offset one past the end of the comment line (excluding the
    /// newline).
    pub end: usize,
    /// The directive text (after the sentinel, trimmed).
    pub text: String,
}

/// The sentinel introducing a directive comment (the Zig implementation
/// uses comment pragmas for the same reason: the host language has no
/// native pragma syntax).
pub const SENTINEL: &str = "//#omp";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// A minimal Rust lexer yielding `(offset, char, state-before)` — just
/// enough to know whether a position is "real code".
struct Walker<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    state: LexState,
}

impl<'a> Walker<'a> {
    fn new(src: &'a str) -> Self {
        Walker {
            src,
            bytes: src.as_bytes(),
            i: 0,
            state: LexState::Normal,
        }
    }

    /// Advance one step; returns `(offset, byte, state_before_advance)`.
    fn step(&mut self) -> Option<(usize, u8, LexState)> {
        if self.i >= self.bytes.len() {
            return None;
        }
        let at = self.i;
        let b = self.bytes[at];
        let before = self.state;
        match self.state {
            LexState::Normal => {
                match b {
                    b'/' if self.bytes.get(at + 1) == Some(&b'/') => {
                        self.state = LexState::LineComment;
                        self.i += 1;
                    }
                    b'/' if self.bytes.get(at + 1) == Some(&b'*') => {
                        self.state = LexState::BlockComment(1);
                        self.i += 2;
                        return Some((at, b, before));
                    }
                    b'"' => {
                        self.state = LexState::Str;
                        self.i += 1;
                    }
                    b'r' if self.raw_string_hashes(at).is_some() => {
                        let hashes = self.raw_string_hashes(at).unwrap();
                        self.state = LexState::RawStr(hashes);
                        self.i += 1 + hashes as usize + 1; // r##"
                        return Some((at, b, before));
                    }
                    b'\'' if self.looks_like_char_literal(at) => {
                        self.state = LexState::Char;
                        self.i += 1;
                    }
                    _ => self.i += 1,
                }
            }
            LexState::LineComment => {
                if b == b'\n' {
                    self.state = LexState::Normal;
                }
                self.i += 1;
            }
            LexState::BlockComment(depth) => {
                if b == b'*' && self.bytes.get(at + 1) == Some(&b'/') {
                    self.i += 2;
                    if depth == 1 {
                        self.state = LexState::Normal;
                    } else {
                        self.state = LexState::BlockComment(depth - 1);
                    }
                    return Some((at, b, before));
                } else if b == b'/' && self.bytes.get(at + 1) == Some(&b'*') {
                    self.state = LexState::BlockComment(depth + 1);
                    self.i += 2;
                    return Some((at, b, before));
                }
                self.i += 1;
            }
            LexState::Str => match b {
                b'\\' => self.i += 2,
                b'"' => {
                    self.state = LexState::Normal;
                    self.i += 1;
                }
                _ => self.i += 1,
            },
            LexState::RawStr(hashes) => {
                if b == b'"' && self.has_hashes(at + 1, hashes) {
                    self.state = LexState::Normal;
                    self.i += 1 + hashes as usize;
                    return Some((at, b, before));
                }
                self.i += 1;
            }
            LexState::Char => match b {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.state = LexState::Normal;
                    self.i += 1;
                }
                _ => self.i += 1,
            },
        }
        Some((at, b, before))
    }

    /// At `r` — does a raw string start here (`r"`, `r#"`, …)? Returns
    /// the number of hashes.
    fn raw_string_hashes(&self, at: usize) -> Option<u32> {
        // Avoid treating identifiers ending in `r` as raw strings: the
        // previous byte must not be alphanumeric/underscore.
        if at > 0 {
            let prev = self.bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                return None;
            }
        }
        let mut j = at + 1;
        let mut hashes = 0u32;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        (self.bytes.get(j) == Some(&b'"')).then_some(hashes)
    }

    fn has_hashes(&self, from: usize, hashes: u32) -> bool {
        (0..hashes as usize).all(|k| self.bytes.get(from + k) == Some(&b'#'))
    }

    /// Distinguish a char literal from a lifetime (`'a`): a char literal
    /// closes with `'` within a couple of characters or has an escape.
    fn looks_like_char_literal(&self, at: usize) -> bool {
        match self.bytes.get(at + 1) {
            Some(b'\\') => true,
            Some(_) => self.bytes.get(at + 2) == Some(&b'\''),
            None => false,
        }
    }

    fn src_line_end(&self, from: usize) -> usize {
        self.src[from..]
            .find('\n')
            .map(|k| from + k)
            .unwrap_or(self.src.len())
    }
}

/// Find every `//#omp` directive comment in real code (not inside
/// strings or other comments).
pub fn find_directives(src: &str) -> Vec<FoundDirective> {
    let mut out = Vec::new();
    let mut w = Walker::new(src);
    while let Some((at, b, state)) = w.step() {
        if state == LexState::Normal && b == b'/' && src[at..].starts_with(SENTINEL) {
            let end = w.src_line_end(at);
            out.push(FoundDirective {
                start: at,
                end,
                text: src[at + SENTINEL.len()..end].trim().to_string(),
            });
        }
    }
    out
}

/// The construct that follows a directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextConstruct {
    /// A braced block: `{ … }` with the span of the *contents*.
    Block {
        /// Offset of `{`.
        open: usize,
        /// Offset of the matching `}`.
        close: usize,
    },
    /// A `for` loop: header span + body block span.
    ForLoop {
        /// Offset of the `for` keyword.
        for_kw: usize,
        /// Loop pattern (the induction variable).
        pat: String,
        /// The iterator expression text.
        iter: String,
        /// Offset of the body `{`.
        open: usize,
        /// Offset of the matching `}`.
        close: usize,
    },
}

/// Extraction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// Offset where extraction gave up.
    pub offset: usize,
    /// Why.
    pub message: String,
}

/// Find the construct following byte offset `from` (after a directive
/// line): either a `{ … }` block or a `for` loop.
pub fn next_construct(src: &str, from: usize) -> Result<NextConstruct, ExtractError> {
    let rest_start = skip_trivia(src, from);
    if rest_start >= src.len() {
        return Err(ExtractError {
            offset: from,
            message: "directive at end of file has no following block".into(),
        });
    }
    if src[rest_start..].starts_with('{') {
        let close = match_brace(src, rest_start)?;
        return Ok(NextConstruct::Block {
            open: rest_start,
            close,
        });
    }
    if src[rest_start..].starts_with("for")
        && src[rest_start + 3..]
            .chars()
            .next()
            .map(|c| c.is_whitespace())
            .unwrap_or(false)
    {
        return extract_for(src, rest_start);
    }
    Err(ExtractError {
        offset: rest_start,
        message: "expected `{ … }` or a `for` loop after the directive".into(),
    })
}

/// Skip whitespace and comments.
pub fn skip_trivia(src: &str, mut i: usize) -> usize {
    let bytes = src.as_bytes();
    loop {
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if src[i.min(src.len())..].starts_with("//") {
            i = src[i..].find('\n').map(|k| i + k + 1).unwrap_or(src.len());
            continue;
        }
        if src[i.min(src.len())..].starts_with("/*") {
            let mut depth = 1;
            let mut j = i + 2;
            while depth > 0 && j < src.len() {
                if src[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if src[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        return i;
    }
}

/// Given the offset of a `{` in real code, return the offset of its
/// matching `}` (string/comment aware).
pub fn match_brace(src: &str, open: usize) -> Result<usize, ExtractError> {
    debug_assert_eq!(&src[open..open + 1], "{");
    let mut w = Walker::new(&src[open..]);
    let mut depth = 0i64;
    while let Some((at, b, state)) = w.step() {
        if state == LexState::Normal {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(open + at);
                    }
                }
                _ => {}
            }
        }
    }
    Err(ExtractError {
        offset: open,
        message: "unbalanced `{`".into(),
    })
}

/// Parse `for <pat> in <iter> { … }` starting at the `for` keyword.
fn extract_for(src: &str, for_kw: usize) -> Result<NextConstruct, ExtractError> {
    let after_for = skip_trivia(src, for_kw + 3);
    // Pattern: a single identifier (the canonical OpenMP loop form), or
    // a parenthesized identifier tuple `(i, j[, k])` for collapsed
    // nests.
    let (pat, pat_end) = if src[after_for..].starts_with('(') {
        let rel_close = src[after_for..].find(')').ok_or(ExtractError {
            offset: after_for,
            message: "unterminated tuple pattern in worksharing loop header".into(),
        })?;
        let close = after_for + rel_close;
        let inner = &src[after_for + 1..close];
        let idents: Vec<&str> = inner.split(',').map(str::trim).collect();
        let well_formed = (2..=3).contains(&idents.len())
            && idents.iter().all(|id| {
                !id.is_empty()
                    && !id.chars().next().unwrap().is_numeric()
                    && id.chars().all(|c| c.is_alphanumeric() || c == '_')
            });
        if !well_formed {
            return Err(ExtractError {
                offset: after_for,
                message: "collapsed loop pattern must be a tuple of 2 or 3 identifiers".into(),
            });
        }
        (src[after_for..=close].to_string(), close + 1)
    } else {
        let pat_end = src[after_for..]
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map(|k| after_for + k)
            .unwrap_or(src.len());
        let pat = src[after_for..pat_end].to_string();
        if pat.is_empty() || pat.chars().next().unwrap().is_numeric() {
            return Err(ExtractError {
                offset: after_for,
                message: "worksharing loop variable must be a simple identifier".into(),
            });
        }
        (pat, pat_end)
    };
    let in_kw = skip_trivia(src, pat_end);
    if !src[in_kw..].starts_with("in")
        || !src[in_kw + 2..]
            .chars()
            .next()
            .map(|c| c.is_whitespace() || c == '(')
            .unwrap_or(false)
    {
        return Err(ExtractError {
            offset: in_kw,
            message: "expected `in` in worksharing loop header".into(),
        });
    }
    // Iterator expression: everything to the body `{` at paren depth 0.
    // (Struct-literal-free headers are assumed, like the canonical loop
    // forms OpenMP requires.)
    let iter_start = skip_trivia(src, in_kw + 2);
    let mut w = Walker::new(&src[iter_start..]);
    let mut paren = 0i64;
    let mut open = None;
    while let Some((at, b, state)) = w.step() {
        if state == LexState::Normal {
            match b {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    open = Some(iter_start + at);
                    break;
                }
                _ => {}
            }
        }
    }
    let open = open.ok_or(ExtractError {
        offset: iter_start,
        message: "worksharing loop has no body block".into(),
    })?;
    let close = match_brace(src, open)?;
    Ok(NextConstruct::ForLoop {
        for_kw,
        pat,
        iter: src[iter_start..open].trim().to_string(),
        open,
        close,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_directives_in_code() {
        let src = "fn main() {\n    //#omp parallel for\n    for i in 0..10 { work(i); }\n}\n";
        let d = find_directives(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].text, "parallel for");
    }

    #[test]
    fn ignores_directives_in_strings_and_comments() {
        let src = r#"
fn main() {
    let s = "//#omp parallel";
    // a comment mentioning //#omp parallel
    /* block comment //#omp for */
    let r = r"//#omp single";
    //#omp barrier
}
"#;
        let d = find_directives(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].text, "barrier");
    }

    #[test]
    fn brace_matching_skips_strings() {
        let src = r#"{ let s = "}}}"; let c = '}'; { nested(); } }"#;
        let close = match_brace(src, 0).unwrap();
        assert_eq!(close, src.len() - 1);
    }

    #[test]
    fn brace_matching_skips_comments() {
        let src = "{ /* } */ // }\n }";
        let close = match_brace(src, 0).unwrap();
        assert_eq!(close, src.len() - 1);
    }

    #[test]
    fn unbalanced_brace_reports() {
        assert!(match_brace("{ {", 0).is_err());
    }

    #[test]
    fn extracts_block_construct() {
        let src = "  \n  { body(); }";
        match next_construct(src, 0).unwrap() {
            NextConstruct::Block { open, close } => {
                assert_eq!(&src[open..=close], "{ body(); }");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extracts_for_construct() {
        let src = "\n    for i in 0..(n + 1) {\n        a[i] = i;\n    }\nrest";
        match next_construct(src, 0).unwrap() {
            NextConstruct::ForLoop {
                pat, iter, close, ..
            } => {
                assert_eq!(pat, "i");
                assert_eq!(iter, "0..(n + 1)");
                assert_eq!(&src[close..close + 1], "}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extracts_step_by_loop() {
        let src = "for j in (1..100).step_by(3) { f(j); }";
        match next_construct(src, 0).unwrap() {
            NextConstruct::ForLoop { pat, iter, .. } => {
                assert_eq!(pat, "j");
                assert_eq!(iter, "(1..100).step_by(3)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_non_block_follower() {
        let e = next_construct("let x = 5;", 0).unwrap_err();
        assert!(e.message.contains("expected"), "{e:?}");
    }

    #[test]
    fn tuple_loop_patterns_parse_for_collapse() {
        match next_construct("for (i, j) in (0..n, 0..m) { }", 0).unwrap() {
            NextConstruct::ForLoop { pat, iter, .. } => {
                assert_eq!(pat, "(i, j)");
                assert_eq!(iter, "(0..n, 0..m)");
            }
            other => panic!("expected a for loop, got {other:?}"),
        }
        match next_construct("for (i, j, k) in (0..2, 0..3, 0..4) { }", 0).unwrap() {
            NextConstruct::ForLoop { pat, .. } => assert_eq!(pat, "(i, j, k)"),
            other => panic!("expected a for loop, got {other:?}"),
        }
        // Not an identifier tuple: still rejected.
        let e = next_construct("for (a, b.c) in pairs { }", 0).unwrap_err();
        assert!(e.message.contains("tuple of 2 or 3 identifiers"), "{e:?}");
        let e = next_construct("for (a, b, c, d) in quads { }", 0).unwrap_err();
        assert!(e.message.contains("tuple of 2 or 3 identifiers"), "{e:?}");
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse() {
        let src = "{ let c: char = '{'; fn f<'a>(x: &'a str) {} }";
        let close = match_brace(src, 0).unwrap();
        assert_eq!(close, src.len() - 1);
    }

    #[test]
    fn multiple_directives_found_in_order() {
        let src = "//#omp parallel\n{ }\n//#omp barrier\n//#omp taskwait\n";
        let d = find_directives(src);
        let texts: Vec<_> = d.iter().map(|x| x.text.as_str()).collect();
        assert_eq!(texts, vec!["parallel", "barrier", "taskwait"]);
    }
}
