//! Round-trip the checked-in π fixtures through the real `rompcc`
//! binary: `rompcc tests/fixtures/pi_annotated.rs` must reproduce
//! `tests/fixtures/pi_translated.rs` (modulo whitespace), exercising
//! the CLI end-to-end — argument parsing, file IO, `-o`, `--check`,
//! and stdout emission — not just the library `translate` call.

use std::path::PathBuf;
use std::process::Command;

const ANNOTATED: &str = include_str!("../../../tests/fixtures/pi_annotated.rs");
const GOLDEN: &str = include_str!("../../../tests/fixtures/pi_translated.rs");

fn rompcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rompcc"))
}

/// Scratch file unique to this test binary run.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rompcc-roundtrip-{}-{name}", std::process::id()));
    p
}

/// Collapse all whitespace runs so formatting-only drift (indentation,
/// trailing newlines, line wrapping) does not fail the round-trip.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[test]
fn binary_output_matches_translated_fixture_via_o_flag() {
    let input = scratch("in.rs");
    let output = scratch("out.rs");
    std::fs::write(&input, ANNOTATED).unwrap();

    let status = rompcc()
        .arg(&input)
        .arg("-o")
        .arg(&output)
        .status()
        .expect("failed to spawn rompcc");
    assert!(status.success(), "rompcc exited with {status}");

    let got = std::fs::read_to_string(&output).unwrap();
    assert_eq!(
        normalize_ws(&got),
        normalize_ws(GOLDEN),
        "rompcc -o output drifted from tests/fixtures/pi_translated.rs"
    );
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}

#[test]
fn binary_stdout_matches_translated_fixture() {
    let input = scratch("stdout-in.rs");
    std::fs::write(&input, ANNOTATED).unwrap();

    let out = rompcc()
        .arg(&input)
        .output()
        .expect("failed to spawn rompcc");
    assert!(out.status.success());
    let got = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        normalize_ws(&got),
        normalize_ws(GOLDEN),
        "rompcc stdout drifted from tests/fixtures/pi_translated.rs"
    );
    let _ = std::fs::remove_file(&input);
}

#[test]
fn check_mode_accepts_fixture_and_counts_directives() {
    let input = scratch("check-in.rs");
    std::fs::write(&input, ANNOTATED).unwrap();

    let out = rompcc()
        .arg(&input)
        .arg("--check")
        .output()
        .expect("failed to spawn rompcc");
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    let n = romp_pragma::find_directives(ANNOTATED).len();
    assert!(
        stderr.contains(&format!("{n} directive(s)")),
        "unexpected --check report: {stderr}"
    );
    let _ = std::fs::remove_file(&input);
}

#[test]
fn translated_fixture_is_a_fixed_point_of_the_binary() {
    // Running rompcc on its own output must be the identity (modulo
    // whitespace): all directives were consumed by the first pass.
    let input = scratch("fixed-in.rs");
    std::fs::write(&input, GOLDEN).unwrap();

    let out = rompcc()
        .arg(&input)
        .output()
        .expect("failed to spawn rompcc");
    assert!(out.status.success());
    let got = String::from_utf8(out.stdout).unwrap();
    assert_eq!(normalize_ws(&got), normalize_ws(GOLDEN));
    let _ = std::fs::remove_file(&input);
}

#[test]
fn bad_directive_fails_with_diagnostics() {
    let input = scratch("bad-in.rs");
    std::fs::write(&input, "//#omp bogus nonsense\n{ }\n").unwrap();

    let out = rompcc()
        .arg(&input)
        .output()
        .expect("failed to spawn rompcc");
    assert!(
        !out.status.success(),
        "rompcc accepted an unknown directive"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("error"),
        "no diagnostic on stderr: {stderr}"
    );
    let _ = std::fs::remove_file(&input);
}
