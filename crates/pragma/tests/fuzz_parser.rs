//! Parser/codegen fuzz harness: random clause lists, orders, separators
//! and whitespace for every supported directive — including the
//! `cancel` / `cancellation point` family — must never panic the
//! directive parser or the translator, and a well-formed clause that is
//! merely *incompatible* with its directive must be named in the
//! diagnostic.

use proptest::prelude::*;
use romp_pragma::{parse_directive, translate};

/// Every directive spelling the grammar accepts (plus the two-word
/// forms, which exercise the multi-token directive heads).
const DIRECTIVES: &[&str] = &[
    "parallel",
    "for",
    "parallel for",
    "single",
    "master",
    "critical",
    "critical (tag)",
    "barrier",
    "sections",
    "section",
    "task",
    "taskloop",
    "taskwait",
    "atomic",
    "cancel parallel",
    "cancel for",
    "cancel sections",
    "cancel taskgroup",
    "cancellation point parallel",
    "cancellation point for",
    "cancellation point sections",
    "cancellation point taskgroup",
];

/// Syntactically well-formed clauses (each parses standalone on *some*
/// directive): when one of these is rejected, the diagnostic must name
/// it. The `name` is what the error message has to contain.
const VALID_CLAUSES: &[(&str, &str)] = &[
    ("num_threads(4)", "num_threads"),
    ("num_threads(2 * n)", "num_threads"),
    ("if(x > 1)", "if"),
    ("default(shared)", "default"),
    ("default(none)", "default"),
    ("shared(a, b)", "shared"),
    ("private(t)", "private"),
    ("firstprivate(c)", "firstprivate"),
    ("proc_bind(close)", "proc_bind"),
    ("schedule(dynamic, 4)", "schedule"),
    ("schedule(static)", "schedule"),
    ("schedule(guided, 2 * k)", "schedule"),
    ("reduction(+ : s)", "reduction"),
    ("reduction(max : m)", "reduction"),
    ("nowait", "nowait"),
    ("collapse(2)", "collapse"),
    ("step(2)", "step"),
    ("step(-3)", "step"),
    ("depend(in: a, b)", "depend"),
    ("depend(out: c)", "depend"),
    ("depend(inout: tok[idx(i, j)])", "depend"),
    ("final(d > 2)", "final"),
    ("grainsize(8)", "grainsize"),
    ("num_tasks(4)", "num_tasks"),
    ("nogroup", "nogroup"),
];

/// Malformed clause fragments: the parser must reject them with a
/// diagnostic (any message), never panic.
const BROKEN_CLAUSES: &[&str] = &[
    "bogus(3)",
    "num_threads",
    "num_threads(",
    "if()if",
    "schedule(fair)",
    "schedule(dynamic,)",
    "schedule(auto, 4)",
    "schedule(runtime, 2)",
    "collapse(9)",
    "collapse(x)",
    "depend(readwrite: x)",
    "depend(in: )",
    "depend(in x)",
    "reduction(% : x)",
    "reduction(+ x)",
    "proc_bind(banana)",
    "default(private)",
    "step()",
    "grainsize()",
    "(((",
    "))",
    ": :",
    "42",
];

const SEPARATORS: &[&str] = &[" ", "  ", ", ", " ,  ", "\t"];

/// Assemble a directive line from generated pieces.
fn assemble(dir: &str, clause_picks: &[usize], sep: &str, include_broken: bool) -> String {
    let mut text = dir.to_string();
    for &p in clause_picks {
        text.push_str(sep);
        if include_broken && p % 3 == 0 {
            text.push_str(BROKEN_CLAUSES[p % BROKEN_CLAUSES.len()]);
        } else {
            text.push_str(VALID_CLAUSES[p % VALID_CLAUSES.len()].0);
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Random (directive × clause list × separators) never panics the
    /// parser, and parse-then-codegen never panics the translator —
    /// whether the construct below is a block or a loop.
    #[test]
    fn parse_then_codegen_never_panics(
        dir_idx in 0usize..22,
        clause_picks in proptest::collection::vec(0usize..1000, 0..5),
        sep_idx in 0usize..5,
        include_broken in proptest::bool::ANY,
        loop_form in proptest::bool::ANY,
    ) {
        let dir = DIRECTIVES[dir_idx % DIRECTIVES.len()];
        let text = assemble(dir, &clause_picks, SEPARATORS[sep_idx % SEPARATORS.len()],
                            include_broken);
        // The parser returns Ok or Err; reaching this line is the test.
        let parsed = parse_directive(&text);
        if let Err(e) = &parsed {
            prop_assert!(!e.message.is_empty(), "empty diagnostic for `{}`", text);
        }
        // Codegen over a synthesized program: nested inside a parallel
        // region so ctx-requiring directives are reachable, with both
        // construct shapes offered. Diagnostics are fine; panics not.
        let construct = if loop_form { "for i in 0..10 { f(i); }" } else { "{ f(); }" };
        let src = format!("//#omp parallel\n{{\n//#omp {text}\n{construct}\n}}\n");
        let _ = translate(&src);
        // Orphaned (outside any region) must also be panic-free.
        let src = format!("//#omp {text}\n{construct}\n");
        let _ = translate(&src);
    }

    /// Arbitrary garbage after the sentinel: panic-free, and failures
    /// carry a non-empty message.
    #[test]
    fn garbage_directive_text_never_panics(text in ".{0,60}") {
        if let Err(e) = parse_directive(&text) {
            prop_assert!(!e.message.is_empty());
        }
        let _ = translate(&format!("//#omp {text}\n{{ f(); }}\n"));
    }
}

/// A well-formed clause rejected for *compatibility* is named in the
/// diagnostic, for every (directive × clause) pair in the grammar —
/// including the new `cancel` directives (seeded per the issue).
#[test]
fn incompatible_clause_diagnostics_name_the_clause() {
    for dir in DIRECTIVES {
        for (clause, name) in VALID_CLAUSES {
            let text = format!("{dir} {clause}");
            if let Err(e) = parse_directive(&text) {
                assert!(
                    e.message.contains(name),
                    "diagnostic for `{text}` does not name `{name}`: {}",
                    e.message
                );
            }
        }
    }
}

/// The seeded cancel cases: valid spellings parse, the `if` clause is
/// the only clause `cancel` admits, and `cancellation point` admits
/// none.
#[test]
fn cancel_directive_seed_cases() {
    for kind in ["parallel", "for", "sections", "taskgroup"] {
        assert!(parse_directive(&format!("cancel {kind}")).is_ok());
        assert!(parse_directive(&format!("cancel {kind} if(n > 3)")).is_ok());
        assert!(parse_directive(&format!("cancellation point {kind}")).is_ok());
        let e = parse_directive(&format!("cancel {kind} nowait")).unwrap_err();
        assert!(e.message.contains("nowait"), "{e}");
        let e = parse_directive(&format!("cancellation point {kind} if(x)")).unwrap_err();
        assert!(e.message.contains("if"), "{e}");
    }
    assert!(parse_directive("cancel").is_err());
    assert!(parse_directive("cancel barrier").is_err());
    assert!(parse_directive("cancellation").is_err());
    assert!(parse_directive("cancellation point").is_err());
}
