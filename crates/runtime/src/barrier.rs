//! Team barriers.
//!
//! Two algorithms, selectable via `ROMP_BARRIER` (ablation experiment A2):
//!
//! * **Central** — a sense-reversing counter barrier: each thread
//!   decrements a shared counter; the last arrival flips the global sense
//!   and wakes everyone. O(n) contention on one cache line, but minimal
//!   memory and great at small team sizes.
//! * **Dissemination** — ⌈log₂ n⌉ rounds; in round `r`, thread `t`
//!   signals thread `(t + 2^r) mod n` and waits for its own signal.
//!   No single hot line; scales better at large team sizes.
//!
//! Both spin for the wait policy's budget, then fall back to parking
//! (central) or yielding (dissemination). Every wait loop watches an
//! abort flag so that a panicking sibling unwinds the whole team instead
//! of deadlocking it (see [`crate::pool`]).

use crate::icv::WaitPolicy;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Barrier algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierKind {
    /// Centralized sense-reversing counter barrier.
    #[default]
    Central,
    /// Dissemination barrier (log-round pairwise signalling).
    Dissemination,
}

/// Per-thread barrier bookkeeping, owned by the thread's context.
#[derive(Debug, Clone)]
pub struct BarrierLocal {
    sense: bool,
    epoch: u64,
}

impl Default for BarrierLocal {
    fn default() -> Self {
        BarrierLocal {
            sense: true,
            epoch: 0,
        }
    }
}

/// A reusable barrier for a fixed-size team.
#[derive(Debug)]
pub struct TeamBarrier {
    kind: BarrierKind,
    size: usize,
    spin_budget: u32,
    // Central state.
    count: AtomicUsize,
    sense: AtomicBool,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    // Dissemination state: flags[round][thread] counts completed episodes.
    flags: Vec<Vec<AtomicU64>>,
}

impl TeamBarrier {
    /// Build a barrier for `size` threads.
    pub fn new(size: usize, kind: BarrierKind, policy: WaitPolicy) -> Self {
        let rounds = if size <= 1 {
            0
        } else {
            usize::BITS as usize - (size - 1).leading_zeros() as usize
        };
        let flags = match kind {
            BarrierKind::Central => Vec::new(),
            BarrierKind::Dissemination => (0..rounds)
                .map(|_| (0..size).map(|_| AtomicU64::new(0)).collect())
                .collect(),
        };
        TeamBarrier {
            kind,
            size,
            spin_budget: policy.spin_budget(),
            count: AtomicUsize::new(size),
            sense: AtomicBool::new(true),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            flags,
        }
    }

    /// Team size this barrier synchronizes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Return the barrier to its just-constructed state so a recycled
    /// hot team can reuse it with fresh per-thread [`BarrierLocal`]s
    /// (every region hands its threads default locals: `sense = true`,
    /// `epoch = 0`, so the shared side must match).
    ///
    /// Contract: no thread is inside [`wait`](Self::wait). The hot-team
    /// master calls this between its join (all workers signalled region
    /// completion, which happens only after they left their last
    /// episode) and the next doorbell ring (which publishes the stores).
    pub(crate) fn reset(&self) {
        self.count.store(self.size, Ordering::Relaxed);
        self.sense.store(true, Ordering::Relaxed);
        for round in &self.flags {
            for f in round {
                f.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Wait at the barrier. Returns `true` when the episode completed
    /// and `false` when the wait was released early — either `abort`
    /// (a sibling panicked; callers unwind) or `cancel` (the binding
    /// region was cancelled; barriers are cancellation points, so a
    /// blocked thread must be released to proceed to the region end).
    /// Once either flag is up the barrier state may be left mid-episode;
    /// that is fine because no further episode runs before the team is
    /// discarded (cold) or `reset` (hot recycle).
    #[must_use]
    pub fn wait(
        &self,
        thread_num: usize,
        local: &mut BarrierLocal,
        abort: &AtomicBool,
        cancel: &AtomicBool,
    ) -> bool {
        crate::stats::bump(&crate::stats::stats().barriers);
        // Chaos: delay-only site (a panic here could fire outside a
        // region body's catch scope) — staggered arrival is the
        // schedule that exposes release/reset races between episodes.
        let _ = crate::chaos::chaos_point!(crate::chaos::Site::BarrierEntry);
        if self.size <= 1 {
            return !abort.load(Ordering::Relaxed);
        }
        // Entry check: a cancelled region's threads must not keep
        // mutating episode state they will never complete.
        if abort.load(Ordering::Relaxed) || cancel.load(Ordering::Relaxed) {
            return false;
        }
        match self.kind {
            BarrierKind::Central => self.wait_central(local, abort, cancel),
            BarrierKind::Dissemination => self.wait_dissemination(thread_num, local, abort, cancel),
        }
    }

    fn wait_central(
        &self,
        local: &mut BarrierLocal,
        abort: &AtomicBool,
        cancel: &AtomicBool,
    ) -> bool {
        let my_sense = local.sense;
        local.sense = !local.sense;
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release the episode.
            self.count.store(self.size, Ordering::Relaxed);
            let _guard = self.park_lock.lock();
            self.sense.store(!my_sense, Ordering::Release);
            drop(_guard);
            self.park_cv.notify_all();
            return !abort.load(Ordering::Relaxed) && !cancel.load(Ordering::Relaxed);
        }
        // Spin phase.
        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) == my_sense {
            if abort.load(Ordering::Relaxed) || cancel.load(Ordering::Relaxed) {
                return false;
            }
            spins += 1;
            if spins >= self.spin_budget {
                break;
            }
            std::hint::spin_loop();
        }
        // Park phase.
        let mut guard = self.park_lock.lock();
        while self.sense.load(Ordering::Acquire) == my_sense {
            if abort.load(Ordering::Relaxed) || cancel.load(Ordering::Relaxed) {
                return false;
            }
            // Timed wait so we re-check the abort flag even if the wakeup
            // notification raced ahead of our park.
            self.park_cv.wait_for(&mut guard, Duration::from_millis(1));
        }
        !abort.load(Ordering::Relaxed) && !cancel.load(Ordering::Relaxed)
    }

    fn wait_dissemination(
        &self,
        thread_num: usize,
        local: &mut BarrierLocal,
        abort: &AtomicBool,
        cancel: &AtomicBool,
    ) -> bool {
        local.epoch += 1;
        let e = local.epoch;
        let n = self.size;
        for (r, round) in self.flags.iter().enumerate() {
            let partner = (thread_num + (1 << r)) % n;
            round[partner].fetch_add(1, Ordering::AcqRel);
            let mine = &round[thread_num];
            let mut spins = 0u32;
            while mine.load(Ordering::Acquire) < e {
                if abort.load(Ordering::Relaxed) || cancel.load(Ordering::Relaxed) {
                    return false;
                }
                spins += 1;
                if spins >= self.spin_budget {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        !abort.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn exercise(kind: BarrierKind, n: usize, episodes: u32) {
        let barrier = Arc::new(TeamBarrier::new(n, kind, WaitPolicy::Hybrid));
        let abort = Arc::new(AtomicBool::new(false));
        let phase = Arc::new(AtomicU32::new(0));
        let mut handles = vec![];
        for t in 0..n {
            let barrier = barrier.clone();
            let abort = abort.clone();
            let phase = phase.clone();
            handles.push(std::thread::spawn(move || {
                let cancel = AtomicBool::new(false);
                let mut local = BarrierLocal::default();
                for e in 0..episodes {
                    // Everybody must observe the phase of the current
                    // episode before anyone moves past the barrier.
                    assert_eq!(phase.load(Ordering::SeqCst), e);
                    assert!(barrier.wait(t, &mut local, &abort, &cancel));
                    if t == 0 {
                        phase.store(e + 1, Ordering::SeqCst);
                    }
                    assert!(barrier.wait(t, &mut local, &abort, &cancel));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn central_synchronizes_repeatedly() {
        for n in [1, 2, 3, 4, 8] {
            exercise(BarrierKind::Central, n, 20);
        }
    }

    #[test]
    fn dissemination_synchronizes_repeatedly() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            exercise(BarrierKind::Dissemination, n, 20);
        }
    }

    #[test]
    fn abort_unblocks_waiters() {
        let barrier = Arc::new(TeamBarrier::new(
            2,
            BarrierKind::Central,
            WaitPolicy::Passive,
        ));
        let abort = Arc::new(AtomicBool::new(false));
        let b = barrier.clone();
        let a = abort.clone();
        let waiter = std::thread::spawn(move || {
            let cancel = AtomicBool::new(false);
            let mut local = BarrierLocal::default();
            // Partner never arrives; abort must release us with `false`.
            b.wait(0, &mut local, &a, &cancel)
        });
        std::thread::sleep(Duration::from_millis(20));
        abort.store(true, Ordering::SeqCst);
        assert!(!waiter.join().unwrap());
    }

    #[test]
    fn single_thread_barrier_is_noop() {
        let barrier = TeamBarrier::new(1, BarrierKind::Central, WaitPolicy::Active);
        let abort = AtomicBool::new(false);
        let cancel = AtomicBool::new(false);
        let mut local = BarrierLocal::default();
        for _ in 0..100 {
            assert!(barrier.wait(0, &mut local, &abort, &cancel));
        }
    }

    #[test]
    fn cancel_unblocks_waiters_on_both_kinds() {
        for kind in [BarrierKind::Central, BarrierKind::Dissemination] {
            let barrier = Arc::new(TeamBarrier::new(2, kind, WaitPolicy::Passive));
            let cancel = Arc::new(AtomicBool::new(false));
            let b = barrier.clone();
            let c = cancel.clone();
            let waiter = std::thread::spawn(move || {
                let abort = AtomicBool::new(false);
                let mut local = BarrierLocal::default();
                // Partner never arrives; cancellation must release us.
                b.wait(0, &mut local, &abort, &c)
            });
            std::thread::sleep(Duration::from_millis(20));
            cancel.store(true, Ordering::SeqCst);
            assert!(!waiter.join().unwrap(), "{kind:?}");
            // With the flag already up, a fresh wait returns early
            // without touching episode state.
            let abort = AtomicBool::new(false);
            let mut local = BarrierLocal::default();
            assert!(!barrier.wait(1, &mut local, &abort, &cancel));
        }
    }

    #[test]
    fn reset_restores_fresh_local_compatibility() {
        for kind in [BarrierKind::Central, BarrierKind::Dissemination] {
            let barrier = Arc::new(TeamBarrier::new(3, kind, WaitPolicy::Hybrid));
            // Run an odd number of episodes so central's sense is
            // flipped and dissemination's epochs are non-zero.
            exercise_shared(&barrier, 3);
            barrier.reset();
            // Fresh locals (the per-region state) must work again.
            exercise_shared(&barrier, 2);
        }
    }

    fn exercise_shared(barrier: &Arc<TeamBarrier>, episodes: u32) {
        let abort = Arc::new(AtomicBool::new(false));
        let mut handles = vec![];
        for t in 0..barrier.size() {
            let barrier = barrier.clone();
            let abort = abort.clone();
            handles.push(std::thread::spawn(move || {
                let cancel = AtomicBool::new(false);
                let mut local = BarrierLocal::default();
                for _ in 0..episodes {
                    assert!(barrier.wait(t, &mut local, &abort, &cancel));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dissemination_round_count() {
        // 5 threads -> 3 rounds, 8 threads -> 3 rounds, 9 -> 4.
        for (n, rounds) in [(2usize, 1usize), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)] {
            let b = TeamBarrier::new(n, BarrierKind::Dissemination, WaitPolicy::Hybrid);
            assert_eq!(b.flags.len(), rounds, "n={n}");
        }
    }
}
