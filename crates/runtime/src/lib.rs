//! # romp-runtime — a from-scratch OpenMP-style runtime for Rust
//!
//! This crate is the substrate the `romp` directive layer lowers onto. It
//! plays the role the LLVM OpenMP runtime (`libomp`) plays for the paper's
//! Zig compiler integration: the directive front ends (macros in
//! `romp-core`, the `//#omp` source translator in `romp-pragma`) outline
//! annotated blocks into closures and hand them to [`fork`] — the analogue
//! of `__kmpc_fork_call` — together with worksharing, barrier, reduction,
//! lock and tasking services.
//!
//! The runtime is implemented entirely in safe-by-construction Rust plus a
//! small number of carefully documented `unsafe` blocks that erase closure
//! lifetimes across the fork/join boundary (the master thread provably
//! outlives the team; see [`pool`]).
//!
//! ## Construct inventory
//!
//! * **Parallel regions** — persistent worker [`pool`], team formation,
//!   nested parallelism, serialization when resources are exhausted.
//! * **Worksharing loops** — `static`, `static,chunk`, `dynamic`,
//!   `guided`, `runtime`, `auto` schedules ([`sched`], [`loops`]).
//! * **Barriers** — centralized sense-reversing and dissemination
//!   implementations with a spin-then-park wait policy ([`barrier`]).
//! * **Reductions** — operator lattice and a team reduction slot
//!   ([`reduction`]).
//! * **Synchronization** — `omp_lock`/`omp_nest_lock` equivalents,
//!   named `critical` sections ([`lock`], [`mod@critical`]).
//! * **Tasking** — explicit tasks with per-worker deques, work
//!   stealing, a `depend(in/out/inout)` dependence-graph scheduler,
//!   `taskwait`, `taskgroup`, `taskloop` with
//!   `grainsize`/`num_tasks`/`nogroup`, and the `if(false)`/`final`
//!   undeferred path ([`task`]).
//! * **Cancellation** — `cancel` / `cancellation point` for
//!   `parallel`, worksharing loops, `sections` and `taskgroup`, armed
//!   by the `OMP_CANCELLATION` ICV: cooperative chunk-granular early
//!   exit in the loop drivers, discard of not-yet-started tasks, and
//!   barrier release for blocked siblings ([`CancelKind`],
//!   [`ThreadCtx::cancel`]).
//! * **Adaptive scheduling** — `schedule(auto)` loops are *tuned
//!   sites*: a per-callsite learner probes four candidate schedules and
//!   locks to the measured-fastest, with a kernel-variant registry on
//!   the same learner ([`tune`], re-exported as [`variants`]).
//! * **Affinity & places** — `OMP_PLACES` / `OMP_PROC_BIND` parsing,
//!   place-partition inheritance across nesting levels, and real
//!   `sched_setaffinity` pinning on Linux with graceful degradation
//!   elsewhere ([`affinity`]).
//! * **ICVs and environment** — `OMP_NUM_THREADS`, `OMP_SCHEDULE`,
//!   `OMP_DYNAMIC`, `OMP_WAIT_POLICY`, `ROMP_TUNE`, … ([`icv`],
//!   [`mod@env`]).
//! * **User API** — `omp_get_thread_num` and friends ([`api`]).
//!
//! ## Quick start
//!
//! ```
//! use romp_runtime::{fork, ForkSpec, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let sum = AtomicU64::new(0);
//! fork(ForkSpec::with_num_threads(4), |ctx| {
//!     // Each team thread gets disjoint chunks of the iteration space.
//!     ctx.ws_for(0..1000, Schedule::default(), false, |i| {
//!         sum.fetch_add(i as u64, Ordering::Relaxed);
//!     });
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod api;
pub mod atomic;
pub mod barrier;
pub mod chaos;
pub mod critical;
pub mod ctx;
pub mod env;
pub mod icv;
pub mod lock;
pub mod loops;
pub mod pool;
pub mod reduction;
pub mod sched;
pub mod stats;
pub mod task;
pub mod team;
pub mod tune;
pub mod wtime;

pub use api::*;
pub use atomic::AtomicF64;
pub use barrier::BarrierKind;
pub use critical::{critical, critical_named};
pub use ctx::{
    cancel_taskgroup, cancellation_point_taskgroup, CancelKind, SiblingPanic, TaskSpec,
    TaskloopSpec, ThreadCtx,
};
pub use env::display_env;
pub use icv::{Icvs, ProcBind, TuneMode, WaitPolicy};
pub use lock::{NestLock, OmpLock};
pub use loops::Ordered;
pub use pool::{fork, ForkSpec};
pub use reduction::{
    BitAndOp, BitOrOp, BitXorOp, LogAndOp, LogOrOp, MaxOp, MinOp, ProdOp, ReduceOp, SumOp,
};
pub use sched::Schedule;
pub use task::TaskDeps;
pub use tune::variants;
pub use wtime::{get_wtick, get_wtime};
