//! Explicit tasking: `task`, `taskwait`, `taskgroup`.
//!
//! Each team thread owns a deque of deferred tasks. A thread pushes new
//! tasks onto the *back* of its own deque and pops from the back
//! (LIFO — good locality for recursive decompositions); idle threads
//! steal from the *front* of a victim's deque (FIFO — steals the oldest,
//! largest-grained work). Stealing happens when a thread is waiting at a
//! barrier, in `taskwait`, or at the end of a `taskgroup`.
//!
//! Queues are `Mutex<VecDeque<…>>` rather than a lock-free Chase–Lev
//! deque: tasks in OpenMP codes are coarse (the push/pop cost is noise),
//! and the simpler structure is obviously correct. The work-stealing
//! *policy* (LIFO pop, FIFO steal, randomized victim start) matches the
//! classical design.
//!
//! ## Lifetimes
//!
//! Task closures may borrow from the enclosing parallel region (the
//! `'scope` parameter on [`crate::ThreadCtx`]). Internally the box is
//! transmuted to `'static`; this is sound because every code path that
//! completes a region — the implicit region-end barrier in
//! [`crate::pool`] — drains all pending tasks first, and the master does
//! not return from `fork` until then, so borrowed data outlives every
//! task. This is the same argument `std::thread::scope` makes.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Completion counters a task must decrement when it finishes: its
/// parent's children count plus any enclosing taskgroups.
pub(crate) struct TaskHooks {
    pub parent_children: Arc<AtomicUsize>,
    pub groups: Vec<Arc<AtomicUsize>>,
}

pub(crate) struct RawTask {
    func: Box<dyn FnOnce() + Send + 'static>,
    hooks: TaskHooks,
}

/// Per-team task state.
pub(crate) struct TaskSystem {
    queues: Vec<Mutex<VecDeque<RawTask>>>,
    /// Tasks created and not yet finished, team-wide.
    pub pending: AtomicUsize,
}

impl std::fmt::Debug for TaskSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSystem")
            .field("queues", &self.queues.len())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl TaskSystem {
    pub(crate) fn new(size: usize) -> Self {
        TaskSystem {
            queues: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Defer a task onto `thread_num`'s deque.
    ///
    /// # Safety
    ///
    /// `func` has been lifetime-erased to `'static`. The caller must
    /// guarantee the data it borrows outlives the enclosing parallel
    /// region (enforced by the `'scope` bound on `ThreadCtx::task` plus
    /// the region-end drain).
    pub(crate) unsafe fn push(&self, thread_num: usize, task: RawTask) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        task.hooks.parent_children.fetch_add(1, Ordering::AcqRel);
        for g in &task.hooks.groups {
            g.fetch_add(1, Ordering::AcqRel);
        }
        self.queues[thread_num].lock().push_back(task);
    }

    /// Grab one task: own deque from the back, else steal from the front
    /// of another thread's deque (starting at a rotating victim).
    pub(crate) fn pop_or_steal(&self, thread_num: usize, seed: &mut u64) -> Option<RawTask> {
        if let Some(t) = self.queues[thread_num].lock().pop_back() {
            return Some(t);
        }
        let n = self.queues.len();
        if n <= 1 {
            return None;
        }
        // xorshift for a cheap randomized starting victim.
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        let start = (*seed as usize) % n;
        for k in 0..n {
            let v = (start + k) % n;
            if v == thread_num {
                continue;
            }
            if let Some(t) = self.queues[v].lock().pop_front() {
                crate::stats::bump(&crate::stats::stats().tasks_stolen);
                return Some(t);
            }
        }
        None
    }

    /// Run one task to completion on the current thread, maintaining the
    /// task-frame TLS so nested `task`/`taskwait` see the right parent.
    pub(crate) fn execute(&self, task: RawTask) {
        crate::stats::bump(&crate::stats::stats().tasks_executed);
        let frame = Arc::new(TaskFrame {
            children: Arc::new(AtomicUsize::new(0)),
        });
        let prev = CURRENT_FRAME.with(|c| c.replace(Some(frame.clone())));
        // Run; panics propagate to the executing thread's region handler,
        // but the counters must be consistent either way.
        struct Finish<'a> {
            sys: &'a TaskSystem,
            hooks: TaskHooks,
            prev: Option<Arc<TaskFrame>>,
        }
        impl Drop for Finish<'_> {
            fn drop(&mut self) {
                CURRENT_FRAME.with(|c| *c.borrow_mut() = self.prev.take());
                self.hooks.parent_children.fetch_sub(1, Ordering::AcqRel);
                for g in &self.hooks.groups {
                    g.fetch_sub(1, Ordering::AcqRel);
                }
                self.sys.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _finish = Finish {
            sys: self,
            hooks: task.hooks,
            prev,
        };
        (task.func)();
    }

    /// Execute available tasks until none can be found.
    pub(crate) fn drain(&self, thread_num: usize, seed: &mut u64) {
        while let Some(t) = self.pop_or_steal(thread_num, seed) {
            self.execute(t);
        }
    }

    /// Total tasks not yet finished.
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }
}

/// The dynamically enclosing explicit task (for `taskwait` semantics).
pub(crate) struct TaskFrame {
    pub children: Arc<AtomicUsize>,
}

thread_local! {
    pub(crate) static CURRENT_FRAME: std::cell::RefCell<Option<Arc<TaskFrame>>> =
        const { std::cell::RefCell::new(None) };
    /// Taskgroup nesting stack for the current thread.
    pub(crate) static GROUP_STACK: std::cell::RefCell<Vec<Arc<AtomicUsize>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Children counter of the current task (explicit task frame if inside
/// one, else the given implicit-task counter).
pub(crate) fn current_children(implicit: &Arc<AtomicUsize>) -> Arc<AtomicUsize> {
    CURRENT_FRAME.with(|c| {
        c.borrow()
            .as_ref()
            .map(|f| f.children.clone())
            .unwrap_or_else(|| implicit.clone())
    })
}

/// Snapshot of the enclosing taskgroup counters.
pub(crate) fn current_groups() -> Vec<Arc<AtomicUsize>> {
    GROUP_STACK.with(|g| g.borrow().clone())
}

/// Build a lifetime-erased task.
///
/// # Safety
///
/// See [`TaskSystem::push`].
pub(crate) unsafe fn make_raw_task<'a>(
    f: Box<dyn FnOnce() + Send + 'a>,
    hooks: TaskHooks,
) -> RawTask {
    // SAFETY: contract delegated to the caller (region-end drain).
    let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(f) };
    RawTask { func, hooks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks() -> (TaskHooks, Arc<AtomicUsize>) {
        let parent = Arc::new(AtomicUsize::new(0));
        (
            TaskHooks {
                parent_children: parent.clone(),
                groups: vec![],
            },
            parent,
        )
    }

    #[test]
    fn push_execute_decrements_counters() {
        let sys = TaskSystem::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = ran.clone();
        let (h, parent) = hooks();
        let task = unsafe {
            make_raw_task(
                Box::new(move || {
                    r2.fetch_add(1, Ordering::SeqCst);
                }),
                h,
            )
        };
        unsafe { sys.push(0, task) };
        assert_eq!(sys.pending(), 1);
        assert_eq!(parent.load(Ordering::SeqCst), 1);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(sys.pending(), 0);
        assert_eq!(parent.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn lifo_pop_fifo_steal() {
        let sys = TaskSystem::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = order.clone();
            let (h, _p) = hooks();
            let t = unsafe {
                make_raw_task(
                    Box::new(move || {
                        order.lock().push(i);
                    }),
                    h,
                )
            };
            unsafe { sys.push(0, t) };
        }
        // Owner pops the most recent first.
        let mut seed = 1;
        let t = sys.pop_or_steal(0, &mut seed).unwrap();
        sys.execute(t);
        assert_eq!(*order.lock(), vec![2]);
        // Thief steals the oldest.
        let mut seed2 = 99;
        let t = sys.pop_or_steal(1, &mut seed2).unwrap();
        sys.execute(t);
        assert_eq!(*order.lock(), vec![2, 0]);
    }

    #[test]
    fn counters_restored_even_on_panic() {
        let sys = TaskSystem::new(1);
        let (h, parent) = hooks();
        let t = unsafe { make_raw_task(Box::new(|| panic!("task boom")), h) };
        unsafe { sys.push(0, t) };
        let mut seed = 1;
        let task = sys.pop_or_steal(0, &mut seed).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.execute(task)));
        assert!(r.is_err());
        assert_eq!(sys.pending(), 0);
        assert_eq!(parent.load(Ordering::SeqCst), 0);
        assert!(CURRENT_FRAME.with(|c| c.borrow().is_none()));
    }

    #[test]
    fn group_counters_tracked() {
        let sys = TaskSystem::new(1);
        let group = Arc::new(AtomicUsize::new(0));
        let parent = Arc::new(AtomicUsize::new(0));
        let t = unsafe {
            make_raw_task(
                Box::new(|| {}),
                TaskHooks {
                    parent_children: parent.clone(),
                    groups: vec![group.clone()],
                },
            )
        };
        unsafe { sys.push(0, t) };
        assert_eq!(group.load(Ordering::SeqCst), 1);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        assert_eq!(group.load(Ordering::SeqCst), 0);
    }
}
