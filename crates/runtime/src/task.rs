//! Explicit tasking: `task`, `taskwait`, `taskgroup`, and the task
//! dependence graph behind `depend(in/out/inout)`.
//!
//! Each team thread owns a deque of deferred tasks. A thread pushes new
//! tasks onto the *back* of its own deque and pops from the back
//! (LIFO — good locality for recursive decompositions); idle threads
//! steal from the *front* of a victim's deque (FIFO — steals the oldest,
//! largest-grained work). Stealing happens when a thread is waiting at a
//! barrier, in `taskwait`, or at the end of a `taskgroup`.
//!
//! Queues are `Mutex<VecDeque<…>>` rather than a lock-free Chase–Lev
//! deque: tasks in OpenMP codes are coarse (the push/pop cost is noise),
//! and the simpler structure is obviously correct. The work-stealing
//! *policy* — LIFO pop, FIFO steal, bounded-retry randomized victim
//! selection guided by per-queue approximate lengths — matches the
//! classical design.
//!
//! ## Task dependences
//!
//! A task created with a [`TaskDeps`] record enters the per-team
//! **dependence graph** instead of going straight to a ready queue. The
//! graph applies the OpenMP serialization rules over storage addresses:
//!
//! * a task with an `in` dependence on `x` is ordered after the *last
//!   previously generated* task with an `out`/`inout` dependence on `x`;
//! * a task with an `out`/`inout` dependence on `x` is ordered after the
//!   last writer **and** after every `in` task generated since it.
//!
//! The bookkeeping is one table per team (`address → last writer +
//! pending readers`) plus one node per in-flight dependent task (unmet
//! predecessor count + successor list). A task with unmet predecessors
//! is *stalled* — held outside the ready queues — and is released onto
//! the completing thread's deque when its last predecessor finishes.
//! Tasks without dependences never touch the table and keep the old
//! zero-overhead path.
//!
//! OpenMP scopes `depend` ordering to sibling tasks of the same parent;
//! the per-team table is a conservative superset (it also orders tasks
//! of different parents that name the same address). That only ever
//! *adds* edges between earlier- and later-generated tasks, so legal
//! programs stay legal and the graph stays acyclic.
//!
//! ## Lifetimes
//!
//! Task closures may borrow from the enclosing parallel region (the
//! `'scope` parameter on [`crate::ThreadCtx`]). Internally the box is
//! transmuted to `'static`; this is sound because every code path that
//! completes a region — the implicit region-end barrier in
//! [`crate::pool`] — drains all pending tasks first (stalled tasks
//! included: `pending` counts them, and the barrier re-loops until it
//! reaches zero), and the master does not return from `fork` until
//! then, so borrowed data outlives every task. This is the same
//! argument `std::thread::scope` makes.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Storage addresses a task depends on — the `depend(in/out/inout: …)`
/// clause record. Addresses are taken from references at task-creation
/// time; two dependences conflict iff they name the same address and at
/// least one of them is `out`/`inout`.
#[derive(Debug, Clone, Default)]
pub struct TaskDeps {
    /// `depend(in: …)` addresses.
    pub(crate) ins: Vec<usize>,
    /// `depend(out: …)` and `depend(inout: …)` addresses (both install
    /// the task as the address's last writer, so they share a list).
    pub(crate) outs: Vec<usize>,
}

/// The address token of a reference: what the dependence table keys on.
fn addr_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const () as usize
}

impl TaskDeps {
    /// Empty record (no ordering constraints).
    pub fn new() -> Self {
        TaskDeps::default()
    }

    /// Add a `depend(in: x)` dependence.
    pub fn input<T: ?Sized>(mut self, x: &T) -> Self {
        self.ins.push(addr_of(x));
        self
    }

    /// Add a `depend(out: x)` dependence.
    pub fn output<T: ?Sized>(mut self, x: &T) -> Self {
        self.outs.push(addr_of(x));
        self
    }

    /// Add a `depend(inout: x)` dependence (same serialization as
    /// `out`: orders against the last writer and all readers since).
    pub fn inout<T: ?Sized>(mut self, x: &T) -> Self {
        self.outs.push(addr_of(x));
        self
    }

    /// No dependences recorded?
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.outs.is_empty()
    }
}

/// Completion counters a task must decrement when it finishes: its
/// parent's children count plus any enclosing taskgroups.
pub(crate) struct TaskHooks {
    pub parent_children: Arc<AtomicUsize>,
    pub groups: Vec<Arc<TaskGroup>>,
}

/// One `taskgroup` region's shared record: the count of live member
/// tasks (the thing the construct's end waits on) and the cancellation
/// flag raised by `cancel taskgroup`. Membership is transitive — a task
/// spawned while executing a member task joins the same groups, because
/// [`TaskSystem::execute`] swaps the executing thread's group stack to
/// the task's own group set for the duration of the body.
#[derive(Debug, Default)]
pub(crate) struct TaskGroup {
    /// Live member tasks (created and not yet finished/discarded).
    pub count: AtomicUsize,
    /// Raised by `cancel taskgroup`: members that have not started are
    /// discarded instead of executed.
    pub cancelled: AtomicBool,
}

pub(crate) struct RawTask {
    func: Box<dyn FnOnce() + Send + 'static>,
    hooks: TaskHooks,
    /// Dependence-graph node id, for tasks registered with a non-empty
    /// [`TaskDeps`] record; `None` for independent tasks.
    node: Option<u64>,
}

/// One ready deque plus a relaxed mirror of its length, so thieves can
/// skip obviously empty queues without taking the lock.
struct TaskQueue {
    deque: Mutex<VecDeque<RawTask>>,
    /// Approximate length: written under the deque lock, read without
    /// it. Staleness is benign — a miss only delays a steal, and every
    /// waiting loop retries.
    approx_len: AtomicUsize,
}

impl TaskQueue {
    fn new() -> Self {
        TaskQueue {
            deque: Mutex::new(VecDeque::new()),
            approx_len: AtomicUsize::new(0),
        }
    }
}

/// Per-address dependence state: who wrote it last, who has read it
/// since. Ids of finished tasks linger here harmlessly — registration
/// checks liveness against the node map.
#[derive(Default)]
struct AddrState {
    last_writer: Option<u64>,
    readers: Vec<u64>,
}

/// Scheduler node of one in-flight dependent task.
struct DepNode {
    /// Predecessors that have not completed yet.
    unmet: usize,
    /// Dependent tasks to notify when this one completes.
    succs: Vec<u64>,
}

/// The per-team dependence graph (single lock: dependence registration
/// and completion are rare, coarse events next to task bodies).
#[derive(Default)]
struct DepGraph {
    next_id: u64,
    table: HashMap<usize, AddrState>,
    nodes: HashMap<u64, DepNode>,
    /// Tasks held back by unmet predecessors, by node id. Undeferred
    /// tasks with dependences are *not* stored here — their spawning
    /// thread keeps them and polls [`DepGraph::nodes`] instead.
    stalled: HashMap<u64, RawTask>,
}

impl DepGraph {
    /// Register a task's dependence record, wiring it to its
    /// predecessors per the OpenMP serialization rules. Returns the new
    /// node id and whether the task is immediately ready.
    fn register(&mut self, deps: &TaskDeps) -> (u64, bool) {
        let id = self.next_id;
        self.next_id += 1;
        let mut preds: Vec<u64> = Vec::new();
        for &a in &deps.ins {
            let st = self.table.entry(a).or_default();
            if let Some(w) = st.last_writer {
                preds.push(w);
            }
            // A long run of in-only dependences with no intervening
            // writer would accumulate finished reader ids forever (only
            // an out/inout clears the list); prune the dead ones once
            // the list is long enough for the retain to amortize.
            if st.readers.len() >= 64 {
                st.readers.retain(|r| self.nodes.contains_key(r));
            }
            st.readers.push(id);
        }
        for &a in &deps.outs {
            let st = self.table.entry(a).or_default();
            if let Some(w) = st.last_writer {
                preds.push(w);
            }
            preds.extend(st.readers.iter().copied());
            st.last_writer = Some(id);
            st.readers.clear();
        }
        preds.sort_unstable();
        preds.dedup();
        // An address in both lists would make the task its own reader.
        preds.retain(|&p| p != id);
        let mut unmet = 0;
        for p in &preds {
            // Finished predecessors have left the node map: no edge.
            if let Some(node) = self.nodes.get_mut(p) {
                node.succs.push(id);
                unmet += 1;
            }
        }
        self.nodes.insert(
            id,
            DepNode {
                unmet,
                succs: Vec::new(),
            },
        );
        (id, unmet == 0)
    }
}

/// Per-team task state.
pub(crate) struct TaskSystem {
    queues: Vec<TaskQueue>,
    /// Tasks created and not yet finished, team-wide (stalled included).
    pub pending: AtomicUsize,
    deps: Mutex<DepGraph>,
    /// Raised by `cancel parallel`: every not-yet-started task of the
    /// region is discarded instead of executed (OpenMP lets an
    /// implementation discard tasks that have not begun execution when
    /// their binding region is cancelled). Cleared on recycle.
    pub(crate) cancel_all: AtomicBool,
}

impl std::fmt::Debug for TaskSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSystem")
            .field("queues", &self.queues.len())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl TaskSystem {
    pub(crate) fn new(size: usize) -> Self {
        TaskSystem {
            queues: (0..size).map(|_| TaskQueue::new()).collect(),
            pending: AtomicUsize::new(0),
            deps: Mutex::new(DepGraph::default()),
            cancel_all: AtomicBool::new(false),
        }
    }

    /// Account a new task in the completion counters (team pending,
    /// parent children, enclosing taskgroups).
    fn account(&self, task: &RawTask) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        task.hooks.parent_children.fetch_add(1, Ordering::AcqRel);
        for g in &task.hooks.groups {
            g.count.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Put a ready task on `thread_num`'s deque.
    fn enqueue(&self, thread_num: usize, task: RawTask) {
        let q = &self.queues[thread_num];
        let mut deque = q.deque.lock();
        deque.push_back(task);
        q.approx_len.store(deque.len(), Ordering::Relaxed);
    }

    /// Defer a task onto `thread_num`'s deque, or into the dependence
    /// graph if `deps` holds it back.
    ///
    /// # Safety
    ///
    /// `task` has been lifetime-erased to `'static`. The caller must
    /// guarantee the data it borrows outlives the enclosing parallel
    /// region (enforced by the `'scope` bound on `ThreadCtx::task` plus
    /// the region-end drain).
    pub(crate) unsafe fn push(&self, thread_num: usize, mut task: RawTask, deps: TaskDeps) {
        crate::stats::bump(&crate::stats::stats().tasks_spawned);
        self.account(&task);
        if deps.is_empty() {
            self.enqueue(thread_num, task);
            return;
        }
        let mut g = self.deps.lock();
        let (id, ready) = g.register(&deps);
        task.node = Some(id);
        if ready {
            drop(g);
            self.enqueue(thread_num, task);
        } else {
            crate::stats::bump(&crate::stats::stats().tasks_dep_stalled);
            g.stalled.insert(id, task);
        }
    }

    /// Run a task *undeferred* (`if(false)`, `final`, included tasks):
    /// the encountering thread executes it inline, after first helping
    /// with other tasks until the dependence graph clears its
    /// predecessors. The dependence record still registers, so later
    /// siblings order against this task normally.
    ///
    /// # Safety
    ///
    /// As for [`push`](Self::push).
    pub(crate) unsafe fn run_undeferred(
        &self,
        thread_num: usize,
        seed: &mut u64,
        mut task: RawTask,
        deps: TaskDeps,
    ) {
        crate::stats::bump(&crate::stats::stats().tasks_spawned);
        crate::stats::bump(&crate::stats::stats().tasks_inline);
        self.account(&task);
        if !deps.is_empty() {
            let id = {
                let mut g = self.deps.lock();
                let (id, ready) = g.register(&deps);
                if !ready {
                    crate::stats::bump(&crate::stats::stats().tasks_dep_stalled);
                }
                let _ = ready;
                id
            };
            task.node = Some(id);
            // Help execute other tasks until our predecessors are done.
            // Progress is guaranteed: predecessors were generated
            // earlier, the graph is acyclic, and any stalled ancestor
            // chain bottoms out at a task that is ready or running.
            self.work_until(thread_num, seed, || {
                let g = self.deps.lock();
                g.nodes.get(&id).map(|n| n.unmet).unwrap_or(0) == 0
            });
        }
        self.execute(thread_num, task);
    }

    /// The runtime's waiting loop: execute (and steal) tasks until
    /// `done()` holds, with escalating idle backoff — spin, then
    /// yield, then a short sleep — so a long wait on a task running
    /// elsewhere does not burn a core. Every construct that waits on
    /// task completion (`taskwait`, `taskgroup`, both barriers, the
    /// undeferred dependence wait) funnels through here.
    pub(crate) fn work_until(
        &self,
        thread_num: usize,
        seed: &mut u64,
        mut done: impl FnMut() -> bool,
    ) {
        let mut idle_spins = 0u32;
        while !done() {
            if let Some(t) = self.pop_or_steal(thread_num, seed) {
                self.execute(thread_num, t);
                idle_spins = 0;
            } else {
                idle_spins += 1;
                if idle_spins > 1024 {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                } else if idle_spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Grab one task: own deque from the back, else steal from the
    /// front of a victim's deque. Victims are chosen by bounded-retry
    /// randomized picks, consulting each queue's approximate length
    /// before locking; a final deterministic sweep takes every lock
    /// unconditionally (a relaxed length read can be stale), keeping
    /// the old no-task-left-behind guarantee.
    pub(crate) fn pop_or_steal(&self, thread_num: usize, seed: &mut u64) -> Option<RawTask> {
        // Chaos: delay-only site (panicking here would escape the
        // joining master's catch scope) — a stall between a victim scan
        // and the sweep shifts who executes what.
        let _ = crate::chaos::chaos_point!(crate::chaos::Site::TaskSteal);
        let own = &self.queues[thread_num];
        // Pushes to queue i come only from thread i itself (spawns and
        // dependence releases both target the acting thread's deque), so
        // our own approximate length can never miss work of ours.
        if own.approx_len.load(Ordering::Relaxed) > 0 {
            let mut deque = own.deque.lock();
            let t = deque.pop_back();
            own.approx_len.store(deque.len(), Ordering::Relaxed);
            if t.is_some() {
                return t;
            }
        }
        let n = self.queues.len();
        if n <= 1 {
            return None;
        }
        let steal_from = |v: usize, skip_empty: bool| -> Option<RawTask> {
            if v == thread_num {
                return None;
            }
            let q = &self.queues[v];
            if skip_empty && q.approx_len.load(Ordering::Relaxed) == 0 {
                return None;
            }
            let mut deque = q.deque.lock();
            let t = deque.pop_front();
            q.approx_len.store(deque.len(), Ordering::Relaxed);
            if t.is_some() {
                crate::stats::bump(&crate::stats::stats().tasks_stolen);
            }
            t
        };
        // Bounded randomized picks, skipping approximately-empty queues:
        // contention-friendly (no convoy on a common scan order) and
        // cheap when most queues are empty.
        for _ in 0..n {
            // xorshift for a cheap randomized victim.
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            if let Some(t) = steal_from((*seed as usize) % n, true) {
                return Some(t);
            }
        }
        // Sweep fallback: random picks can repeat, and a relaxed length
        // read can be momentarily stale, so make one full pass taking
        // every lock — an enqueued task is never missed by this call's
        // conclusion (the old linear scan's guarantee).
        for k in 1..n {
            if let Some(t) = steal_from((thread_num + k) % n, false) {
                return Some(t);
            }
        }
        None
    }

    /// Run one task to completion on the current thread, maintaining the
    /// task-frame TLS so nested `task`/`taskwait` see the right parent,
    /// and releasing dependence-graph successors when it finishes.
    ///
    /// **Cancellation**: a task whose parallel region (`cancel_all`) or
    /// any enclosing taskgroup was cancelled before it started is
    /// *discarded* — its body never runs, but it still flows through the
    /// completion bookkeeping (dependence-node release, parent/group/
    /// pending decrements), so waiting constructs drain and dependence
    /// successors are released (to be discarded in turn). This is how
    /// queued *and* dependence-stalled tasks of a cancelled taskgroup
    /// die without executing.
    ///
    /// **Group transitivity**: the executing thread's taskgroup stack is
    /// swapped to the task's own group set for the duration of the body,
    /// so tasks spawned by a member (on whatever thread stole it) join
    /// the same groups — and tasks spawned by an unrelated task executed
    /// while *helping* inside a taskgroup wait do not leak into it.
    pub(crate) fn execute(&self, thread_num: usize, task: RawTask) {
        let discard = self.cancel_all.load(Ordering::Relaxed)
            || task
                .hooks
                .groups
                .iter()
                .any(|g| g.cancelled.load(Ordering::Relaxed));
        let frame = Arc::new(TaskFrame {
            children: Arc::new(AtomicUsize::new(0)),
        });
        let prev = CURRENT_FRAME.with(|c| c.replace(Some(frame.clone())));
        let prev_groups = GROUP_STACK
            .with(|g| std::mem::replace(&mut *g.borrow_mut(), task.hooks.groups.clone()));
        // Run; panics propagate to the executing thread's region handler,
        // but the counters must be consistent either way.
        struct Finish<'a> {
            sys: &'a TaskSystem,
            hooks: TaskHooks,
            node: Option<u64>,
            thread_num: usize,
            prev: Option<Arc<TaskFrame>>,
            prev_groups: Vec<Arc<TaskGroup>>,
        }
        impl Drop for Finish<'_> {
            fn drop(&mut self) {
                CURRENT_FRAME.with(|c| *c.borrow_mut() = self.prev.take());
                GROUP_STACK.with(|g| *g.borrow_mut() = std::mem::take(&mut self.prev_groups));
                if let Some(id) = self.node {
                    self.sys.complete_node(id, self.thread_num);
                }
                self.hooks.parent_children.fetch_sub(1, Ordering::AcqRel);
                for g in &self.hooks.groups {
                    g.count.fetch_sub(1, Ordering::AcqRel);
                }
                self.sys.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _finish = Finish {
            sys: self,
            hooks: task.hooks,
            node: task.node,
            thread_num,
            prev,
            prev_groups,
        };
        if discard {
            crate::stats::bump(&crate::stats::stats().tasks_discarded);
            drop(task.func);
        } else {
            crate::stats::bump(&crate::stats::stats().tasks_executed);
            // Chaos: panic/delay in place of the body. Legal here —
            // every execute() caller runs under a catch_unwind (workers
            // inside run_region, the joining master through
            // execute_joining_task), and the Finish guard above keeps
            // the completion ledger consistent through an unwind.
            let _ = crate::chaos::chaos_point!(crate::chaos::Site::TaskExecute);
            (task.func)();
        }
    }

    /// Remove a finished task's dependence node and release successors
    /// whose last predecessor this was onto the finisher's deque.
    fn complete_node(&self, id: u64, thread_num: usize) {
        let mut released = Vec::new();
        {
            let mut g = self.deps.lock();
            // A finishing task's node is live by construction (only
            // this completion removes it). But this runs inside the
            // `Finish` guard's Drop — possibly *during an unwind* — and
            // a panic in Drop-during-unwind aborts the whole process,
            // so a torn graph degrades to a warning instead: successors
            // stay unreleased, and the abort/purge path (the only way a
            // graph gets torn) discards them anyway.
            let Some(node) = g.nodes.remove(&id) else {
                drop(g);
                eprintln!(
                    "ROMP WARNING: dependence node {id} of a finishing task \
                     was already removed; successors not released"
                );
                return;
            };
            for s in node.succs {
                if let Some(sn) = g.nodes.get_mut(&s) {
                    sn.unmet -= 1;
                    if sn.unmet == 0 {
                        // Absent from `stalled` = an undeferred task
                        // whose spawner is polling; it will notice.
                        if let Some(t) = g.stalled.remove(&s) {
                            released.push(t);
                        }
                    }
                }
            }
        }
        for t in released {
            self.enqueue(thread_num, t);
        }
    }

    /// Execute available tasks until none can be found. The runtime's
    /// waiting loops go further (they also spin on team-wide `pending`
    /// — see `ThreadCtx::help_tasks_while_pending`); this one-shot
    /// drain remains for the unit tests below.
    #[cfg(test)]
    pub(crate) fn drain(&self, thread_num: usize, seed: &mut u64) {
        while let Some(t) = self.pop_or_steal(thread_num, seed) {
            self.execute(thread_num, t);
        }
    }

    /// Total tasks not yet finished (ready, running, or stalled).
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Drop every leftover task — ready or stalled — without running it.
    ///
    /// An aborted (panicked) region can end with never-run tasks still
    /// queued or dependence-stalled. Their closures may borrow the
    /// forking caller's `'env` frame (the lifetime is erased at spawn),
    /// so they must be dropped on the master *before* `fork` returns,
    /// while that frame is still alive — not later, on whichever worker
    /// thread happens to drop the last `Arc<Team>`.
    ///
    /// Contract: caller is the master after the join (every worker has
    /// signalled completion — no concurrent task activity).
    pub(crate) fn purge(&self) {
        let mut dropped = 0u64;
        for q in &self.queues {
            let mut d = q.deque.lock();
            dropped += d.len() as u64;
            d.clear();
            q.approx_len.store(0, Ordering::Relaxed);
        }
        let mut g = self.deps.lock();
        dropped += g.stalled.len() as u64;
        g.stalled.clear();
        g.table.clear();
        g.nodes.clear();
        drop(g);
        // Close the task ledger: spawned == executed + discarded +
        // purged must hold once a region fully settles (the chaos soak
        // asserts it), so every never-run closure is counted here.
        crate::stats::stats()
            .tasks_purged
            .fetch_add(dropped, Ordering::Relaxed);
        // The dropped tasks never decrement `pending` through the
        // execute path; zero it so nothing spins on the count.
        self.pending.store(0, Ordering::Release);
        self.cancel_all.store(false, Ordering::Release);
    }

    /// Recycle the task system for a hot team's next region: evict the
    /// dependence table's finished-task residue (addresses of dead
    /// writers/readers accumulate across regions otherwise) and rewind
    /// the node id counter. Deques are already empty — a region cannot
    /// end with `pending > 0` — so only the graph needs clearing.
    ///
    /// Contract: caller is the hot-team master between join and ring
    /// (no concurrent task activity).
    pub(crate) fn recycle(&self) {
        debug_assert_eq!(self.pending(), 0, "recycling a team with live tasks");
        let mut g = self.deps.lock();
        g.table.clear();
        g.nodes.clear();
        g.stalled.clear();
        g.next_id = 0;
        drop(g);
        self.cancel_all.store(false, Ordering::Relaxed);
    }
}

/// The dynamically enclosing explicit task (for `taskwait` semantics).
pub(crate) struct TaskFrame {
    pub children: Arc<AtomicUsize>,
}

thread_local! {
    pub(crate) static CURRENT_FRAME: std::cell::RefCell<Option<Arc<TaskFrame>>> =
        const { std::cell::RefCell::new(None) };
    /// Taskgroup nesting stack for the current thread. While an
    /// explicit task executes, this holds the *task's* group set (see
    /// [`TaskSystem::execute`]), so membership is transitive under
    /// stealing and cancellation finds the right innermost group.
    pub(crate) static GROUP_STACK: std::cell::RefCell<Vec<Arc<TaskGroup>>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Are we dynamically inside a `final` task? Descendants of a final
    /// task are *included* tasks: undeferred and themselves final.
    pub(crate) static IN_FINAL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current task a final task (so children must be included)?
pub(crate) fn in_final() -> bool {
    IN_FINAL.with(|f| f.get())
}

/// RAII for the `final` flag around a final task's body.
pub(crate) struct FinalGuard {
    prev: bool,
}

impl FinalGuard {
    pub(crate) fn enter() -> Self {
        let prev = IN_FINAL.with(|f| f.replace(true));
        FinalGuard { prev }
    }
}

impl Drop for FinalGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_FINAL.with(|f| f.set(prev));
    }
}

/// Children counter of the current task (explicit task frame if inside
/// one, else the given implicit-task counter).
pub(crate) fn current_children(implicit: &Arc<AtomicUsize>) -> Arc<AtomicUsize> {
    CURRENT_FRAME.with(|c| {
        c.borrow()
            .as_ref()
            .map(|f| f.children.clone())
            .unwrap_or_else(|| implicit.clone())
    })
}

/// Snapshot of the enclosing taskgroup records (innermost last).
pub(crate) fn current_groups() -> Vec<Arc<TaskGroup>> {
    GROUP_STACK.with(|g| g.borrow().clone())
}

/// The innermost taskgroup of the current task, if any — the target of
/// `cancel taskgroup` / `cancellation point taskgroup`.
pub(crate) fn innermost_group() -> Option<Arc<TaskGroup>> {
    GROUP_STACK.with(|g| g.borrow().last().cloned())
}

/// Build a lifetime-erased task.
///
/// # Safety
///
/// See [`TaskSystem::push`].
pub(crate) unsafe fn make_raw_task<'a>(
    f: Box<dyn FnOnce() + Send + 'a>,
    hooks: TaskHooks,
) -> RawTask {
    // SAFETY: contract delegated to the caller (region-end drain).
    let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(f) };
    RawTask {
        func,
        hooks,
        node: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks() -> (TaskHooks, Arc<AtomicUsize>) {
        let parent = Arc::new(AtomicUsize::new(0));
        (
            TaskHooks {
                parent_children: parent.clone(),
                groups: vec![],
            },
            parent,
        )
    }

    fn raw(f: impl FnOnce() + Send + 'static) -> (RawTask, Arc<AtomicUsize>) {
        let (h, parent) = hooks();
        (unsafe { make_raw_task(Box::new(f), h) }, parent)
    }

    #[test]
    fn push_execute_decrements_counters() {
        let sys = TaskSystem::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = ran.clone();
        let (task, parent) = raw(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        unsafe { sys.push(0, task, TaskDeps::new()) };
        assert_eq!(sys.pending(), 1);
        assert_eq!(parent.load(Ordering::SeqCst), 1);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(sys.pending(), 0);
        assert_eq!(parent.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn lifo_pop_fifo_steal() {
        let sys = TaskSystem::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = order.clone();
            let (t, _p) = raw(move || {
                order.lock().push(i);
            });
            unsafe { sys.push(0, t, TaskDeps::new()) };
        }
        // Owner pops the most recent first.
        let mut seed = 1;
        let t = sys.pop_or_steal(0, &mut seed).unwrap();
        sys.execute(0, t);
        assert_eq!(*order.lock(), vec![2]);
        // Thief steals the oldest.
        let mut seed2 = 99;
        let t = sys.pop_or_steal(1, &mut seed2).unwrap();
        sys.execute(1, t);
        assert_eq!(*order.lock(), vec![2, 0]);
    }

    #[test]
    fn counters_restored_even_on_panic() {
        let sys = TaskSystem::new(1);
        let (t, parent) = raw(|| panic!("task boom"));
        unsafe { sys.push(0, t, TaskDeps::new()) };
        let mut seed = 1;
        let task = sys.pop_or_steal(0, &mut seed).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.execute(0, task)));
        assert!(r.is_err());
        assert_eq!(sys.pending(), 0);
        assert_eq!(parent.load(Ordering::SeqCst), 0);
        assert!(CURRENT_FRAME.with(|c| c.borrow().is_none()));
    }

    #[test]
    fn group_counters_tracked() {
        let sys = TaskSystem::new(1);
        let group = Arc::new(TaskGroup::default());
        let parent = Arc::new(AtomicUsize::new(0));
        let t = unsafe {
            make_raw_task(
                Box::new(|| {}),
                TaskHooks {
                    parent_children: parent.clone(),
                    groups: vec![group.clone()],
                },
            )
        };
        unsafe { sys.push(0, t, TaskDeps::new()) };
        assert_eq!(group.count.load(Ordering::SeqCst), 1);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        assert_eq!(group.count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancelled_group_discards_queued_and_stalled_tasks() {
        let sys = TaskSystem::new(1);
        let group = Arc::new(TaskGroup::default());
        let parent = Arc::new(AtomicUsize::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        let x = 0u8;
        // One ready task and one dependence-stalled behind it, both in
        // the group.
        for _ in 0..2 {
            let ran = ran.clone();
            let t = unsafe {
                make_raw_task(
                    Box::new(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }),
                    TaskHooks {
                        parent_children: parent.clone(),
                        groups: vec![group.clone()],
                    },
                )
            };
            unsafe { sys.push(0, t, TaskDeps::new().inout(&x)) };
        }
        group.cancelled.store(true, Ordering::SeqCst);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        // Both flowed through the bookkeeping without running a body,
        // and the stalled one was released by the discard of the first.
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(sys.pending(), 0);
        assert_eq!(group.count.load(Ordering::SeqCst), 0);
        assert_eq!(parent.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancel_all_discards_everything_not_started() {
        let sys = TaskSystem::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let ran = ran.clone();
            let (t, _p) = raw(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            unsafe { sys.push(0, t, TaskDeps::new()) };
        }
        sys.cancel_all.store(true, Ordering::SeqCst);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn out_then_in_stalls_reader_until_writer_finishes() {
        let sys = TaskSystem::new(1);
        let x = 0u8; // address token
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let (writer, _p1) = raw(move || l1.lock().push("w"));
        let (reader, _p2) = raw(move || l2.lock().push("r"));
        unsafe { sys.push(0, writer, TaskDeps::new().output(&x)) };
        unsafe { sys.push(0, reader, TaskDeps::new().input(&x)) };
        // Only the writer is ready: the reader is stalled.
        let mut seed = 1;
        let t = sys.pop_or_steal(0, &mut seed).unwrap();
        assert!(sys.pop_or_steal(0, &mut seed).is_none());
        sys.execute(0, t);
        // Completion released the reader.
        let t = sys.pop_or_steal(0, &mut seed).unwrap();
        sys.execute(0, t);
        assert_eq!(*log.lock(), vec!["w", "r"]);
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn readers_run_concurrently_but_block_next_writer() {
        let sys = TaskSystem::new(1);
        let x = 0u8;
        let log = Arc::new(Mutex::new(Vec::new()));
        let mk = |tag: &'static str, log: &Arc<Mutex<Vec<&'static str>>>| {
            let log = log.clone();
            raw(move || log.lock().push(tag)).0
        };
        unsafe {
            sys.push(0, mk("w1", &log), TaskDeps::new().output(&x));
            sys.push(0, mk("r1", &log), TaskDeps::new().input(&x));
            sys.push(0, mk("r2", &log), TaskDeps::new().input(&x));
            sys.push(0, mk("w2", &log), TaskDeps::new().inout(&x));
        }
        let mut seed = 1;
        sys.drain(0, &mut seed);
        let order = log.lock().clone();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], "w1");
        assert_eq!(order[3], "w2");
        // r1/r2 in between, either order.
        assert!(order[1..3].contains(&"r1") && order[1..3].contains(&"r2"));
    }

    #[test]
    fn independent_addresses_do_not_order() {
        let sys = TaskSystem::new(1);
        let (x, y) = (0u8, 0u8);
        let (a, _pa) = raw(|| {});
        let (b, _pb) = raw(|| {});
        unsafe { sys.push(0, a, TaskDeps::new().output(&x)) };
        unsafe { sys.push(0, b, TaskDeps::new().output(&y)) };
        // Both ready immediately.
        let mut seed = 1;
        assert!(sys.pop_or_steal(0, &mut seed).is_some());
        assert!(sys.pop_or_steal(0, &mut seed).is_some());
    }

    #[test]
    fn pending_counts_stalled_tasks() {
        let sys = TaskSystem::new(1);
        let x = 0u8;
        let (a, _pa) = raw(|| {});
        let (b, _pb) = raw(|| {});
        unsafe { sys.push(0, a, TaskDeps::new().output(&x)) };
        unsafe { sys.push(0, b, TaskDeps::new().output(&x)) };
        assert_eq!(sys.pending(), 2);
        let mut seed = 1;
        sys.drain(0, &mut seed);
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn undeferred_waits_for_predecessors() {
        let sys = TaskSystem::new(1);
        let x = 0u8;
        let log = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let (writer, _p1) = raw(move || l1.lock().push("w"));
        unsafe { sys.push(0, writer, TaskDeps::new().output(&x)) };
        let (undeferred, _p2) = raw(move || l2.lock().push("u"));
        let mut seed = 1;
        unsafe { sys.run_undeferred(0, &mut seed, undeferred, TaskDeps::new().input(&x)) };
        // The undeferred task had to help-execute the writer first.
        assert_eq!(*log.lock(), vec!["w", "u"]);
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn same_address_in_and_out_is_not_a_self_cycle() {
        let sys = TaskSystem::new(1);
        let x = 0u8;
        let (t, _p) = raw(|| {});
        unsafe { sys.push(0, t, TaskDeps::new().input(&x).output(&x)) };
        let mut seed = 1;
        assert!(sys.pop_or_steal(0, &mut seed).is_some(), "must be ready");
    }
}
