//! Worksharing-loop driver: the `for` directive.
//!
//! This is the analogue of the runtime calls the paper's compiler pass
//! inserts for its worksharing-loop directive ("we add a runtime library
//! routine call to calculate the loop bounds"): static schedules are
//! computed thread-locally ([`StaticChunks`]), dynamic/guided schedules
//! go through the team's shared dispatch slot.
//!
//! All loops are internally normalized to `0..trip`; the public entry
//! points map normalized indices back to the user's iteration space
//! (including strided `i64` loops, which the pragma translator emits for
//! `for i in (a..b).step_by(s)`-shaped sources).

use crate::ctx::{SiblingPanic, ThreadCtx};
use crate::sched::{guided_grab, Schedule, StaticChunks};
use crate::team::{KIND_DYNAMIC, KIND_GUIDED};
use crate::tune::{SiteId, SiteKey};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::Ordering;

/// Handle passed to the body of an `ordered` loop; see
/// [`ThreadCtx::ws_for_ordered`].
pub struct Ordered<'a> {
    slot: &'a crate::team::WsSlot,
    current: Cell<u64>,
    ran: Cell<bool>,
    abort: &'a std::sync::atomic::AtomicBool,
    /// The team's `cancel parallel` flag: a cancelled region abandons
    /// the ordered turn protocol (waiters must not block on turns that
    /// will never be taken).
    cancel: &'a std::sync::atomic::AtomicBool,
    /// The team's construct-scoped `cancel for` cell plus this
    /// construct's cancellable generation: a `cancel for` makes static
    /// siblings skip whole chunks — turns of those chunks never
    /// advance, so waiters must watch this flag too.
    cancel_ws: &'a std::sync::atomic::AtomicU64,
    cgen: u64,
    /// `cancel-var` fork-time snapshot: when false, `cancel` can never
    /// be raised in this region, so the section-body lock (only needed
    /// against out-of-turn cancel-released waiters) is skipped and the
    /// disarmed ordered path is byte-for-byte the pre-cancellation one.
    cancellable: bool,
}

impl Ordered<'_> {
    /// Execute `f` as the iteration's `ordered` region: iterations run
    /// their ordered regions in iteration order. Call at most once per
    /// iteration.
    ///
    /// Under region cancellation a waiter can be released before its
    /// turn (earlier iterations may have been skipped and will never
    /// release it). Ordering is then moot — the region's result is
    /// unspecified — but **mutual exclusion is not negotiable**: user
    /// code relies on it for unsynchronized shared writes, so an
    /// out-of-turn section still serializes against in-turn ones
    /// through the slot's `claimed` spinlock (uncontended one-CAS cost
    /// on the normal path, where turn order already excludes).
    pub fn section<R>(&self, f: impl FnOnce() -> R) -> R {
        assert!(
            !self.ran.get(),
            "ordered region executed twice in one iteration"
        );
        self.ran.set(true);
        if !self.cancellable {
            // Disarmed: turn order alone is the exclusion, as before.
            self.wait_turn();
            let out = f();
            self.slot
                .ordered_next
                .store(self.current.get() + 1, Ordering::Release);
            return out;
        }
        let in_turn = self.wait_turn();
        self.lock_section();
        let out = f();
        self.slot.claimed.store(false, Ordering::Release);
        if in_turn {
            self.slot
                .ordered_next
                .store(self.current.get() + 1, Ordering::Release);
        }
        out
    }

    /// Wait for this iteration's turn. Returns `true` when the turn was
    /// actually acquired; `false` when the wait was released early by
    /// region cancellation (the caller must then neither assume
    /// exclusivity nor advance the turn counter).
    fn wait_turn(&self) -> bool {
        let me = self.current.get();
        let mut spins = 0u32;
        while self.slot.ordered_next.load(Ordering::Acquire) != me {
            if self.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            if self.cancel.load(Ordering::Relaxed)
                || self.cancel_ws.load(Ordering::Relaxed) == self.cgen + 1
            {
                // Cancelled region or construct: earlier iterations may
                // have been skipped and will never take their turn —
                // give up the wait (the section body still serializes
                // through the `claimed` lock).
                return false;
            }
            spins += 1;
            if spins > 10_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        true
    }

    /// Spin-acquire the slot's `claimed` flag as the section-body lock.
    fn lock_section(&self) {
        let mut spins = 0u32;
        while self
            .slot
            .claimed
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            if self.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            spins += 1;
            if spins > 10_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Called by the driver after each iteration: if the body skipped its
    /// ordered region, take and release the turn so later iterations are
    /// not blocked.
    fn finish_iteration(&self) {
        if !self.ran.get() && self.wait_turn() {
            self.slot
                .ordered_next
                .store(self.current.get() + 1, Ordering::Release);
        }
        self.ran.set(false);
    }
}

impl<'scope> ThreadCtx<'scope> {
    /// Worksharing loop over `range` (the `for` directive): the team
    /// divides the iterations according to `sched`; each index runs
    /// exactly once. Implies an end barrier unless `nowait`.
    #[track_caller]
    pub fn ws_for(
        &self,
        range: Range<usize>,
        sched: Schedule,
        nowait: bool,
        mut body: impl FnMut(usize),
    ) {
        let base = range.start;
        let trip = range.end.saturating_sub(range.start) as u64;
        self.ws_for_normalized(trip, sched, nowait, move |lo, hi| {
            for i in lo..hi {
                body(base + i as usize);
            }
        });
    }

    /// Like [`ws_for`](Self::ws_for) but hands the body whole chunks,
    /// letting hot kernels iterate contiguous memory without per-index
    /// closure calls.
    #[track_caller]
    pub fn ws_for_chunks(
        &self,
        range: Range<usize>,
        sched: Schedule,
        nowait: bool,
        mut body: impl FnMut(Range<usize>),
    ) {
        let base = range.start;
        let trip = range.end.saturating_sub(range.start) as u64;
        self.ws_for_normalized(trip, sched, nowait, move |lo, hi| {
            body(base + lo as usize..base + hi as usize);
        });
    }

    /// Strided worksharing loop: iterates `start, start+step, …` while
    /// `< end` (positive step) or `> end` (negative step), matching the
    /// canonical OpenMP loop forms.
    #[track_caller]
    pub fn ws_for_step(
        &self,
        start: i64,
        end: i64,
        step: i64,
        sched: Schedule,
        nowait: bool,
        mut body: impl FnMut(i64),
    ) {
        assert!(step != 0, "worksharing loop step must be nonzero");
        let trip: u64 = if step > 0 {
            if end > start {
                ((end - start) as u64).div_ceil(step as u64)
            } else {
                0
            }
        } else if start > end {
            ((start - end) as u64).div_ceil(step.unsigned_abs())
        } else {
            0
        };
        self.ws_for_normalized(trip, sched, nowait, move |lo, hi| {
            for k in lo..hi {
                body(start + (k as i64) * step);
            }
        });
    }

    /// Normalized worksharing driver: distribute the dense `u64` space
    /// `0..trip` according to `sched`, invoking `chunk_body(lo, hi)` for
    /// each chunk this thread claims. Implies an end barrier unless
    /// `nowait`.
    ///
    /// This is the single entry every loop shape funnels through:
    /// [`ws_for`](Self::ws_for), [`ws_for_chunks`](Self::ws_for_chunks)
    /// and [`ws_for_step`](Self::ws_for_step) normalize their iteration
    /// spaces to a trip count and map chunks back; `romp-core`'s
    /// `IterSpace` lowering does the same for strided/signed/collapsed
    /// spaces. All trip accounting is `u64`, so collapsed spaces larger
    /// than `usize` loops still schedule correctly.
    /// **Cancellation** is chunk-granular: when the construct (or the
    /// whole region) is cancelled, the driver stops handing out chunks
    /// — a chunk already claimed runs to completion. The checks cost
    /// one relaxed load per chunk and are skipped entirely (one boolean
    /// read per construct) while `cancel-var` is off.
    ///
    /// **Adaptive scheduling**: an auto-like schedule (`auto`, or
    /// `runtime` whose `run-sched-var` snapshot is `auto`) on a team
    /// forked with tuning armed (`ROMP_TUNE`, the default) routes to
    /// the measured path instead — see [`crate::tune`]. The construct's
    /// tuner site is the `#[track_caller]` location of this call, which
    /// propagates through [`ws_for`](Self::ws_for) and the `romp-core`
    /// macro expansions to the *user's* source line.
    #[track_caller]
    pub fn ws_for_normalized(
        &self,
        trip: u64,
        sched: Schedule,
        nowait: bool,
        chunk_body: impl FnMut(u64, u64),
    ) {
        let site = SiteId::from_caller(core::panic::Location::caller());
        self.ws_for_normalized_at(site, trip, sched, nowait, chunk_body);
    }

    /// Chaos hook at the chunk-grab edge. Panics and delays fire inside
    /// `chaos::poke` (a chunk-grab panic is legal: it unwinds the
    /// region body under `run_region`'s catch); an injected `Cancel` is
    /// routed through the legal self-gating request path, exactly as a
    /// sibling's `omp_cancel!(for)` would arrive. Compiles to nothing
    /// without the `chaos` feature.
    #[inline]
    fn chaos_chunk_grab(&self) {
        if matches!(
            crate::chaos::chaos_point!(crate::chaos::Site::ChunkGrab),
            Some(crate::chaos::Injected::Cancel)
        ) {
            self.cancel(crate::ctx::CancelKind::For);
        }
    }

    /// [`ws_for_normalized`](Self::ws_for_normalized) with an explicit
    /// tuner site instead of the `#[track_caller]` stamp.
    ///
    /// Front ends that run the construct from inside a closure (the
    /// `romp-core` builder) capture `Location::caller()` **before** the
    /// fork — resolved inside the closure, every user of the builder
    /// would collapse onto the builder's own source line — and pass it
    /// through here. A pending thread-local override (the macro and
    /// translator `site("…")` clause, [`crate::tune::site_override`])
    /// beats both.
    pub fn ws_for_normalized_at(
        &self,
        site: SiteId,
        trip: u64,
        sched: Schedule,
        nowait: bool,
        mut chunk_body: impl FnMut(u64, u64),
    ) {
        let site = match crate::tune::take_site_override() {
            Some(name) => SiteId::Named(name),
            None => site,
        };
        // Auto-like = a schedule the learner owns. The `matches!`
        // checks are free for fixed-schedule loops; the fork-time
        // `tunable` boolean keeps disarmed regions off the measured
        // path entirely.
        let auto_like = matches!(sched, Schedule::Auto)
            || (matches!(sched, Schedule::Runtime)
                && matches!(self.team().run_sched(), Schedule::Auto));
        if auto_like && trip > 0 && self.team().tunable() {
            self.ws_for_tuned(site, trip, nowait, chunk_body);
            return;
        }
        let sched = self.resolve_schedule(sched);
        let cgen = self.enter_cancellable_ws();
        let watch = self.team().cancellable();
        match sched {
            Schedule::Static { chunk } => {
                for r in StaticChunks::new(trip, self.num_threads(), self.thread_num(), chunk) {
                    self.chaos_chunk_grab();
                    if watch && self.ws_cancelled(cgen) {
                        break;
                    }
                    chunk_body(r.start, r.end);
                }
            }
            Schedule::Dynamic { chunk } | Schedule::Guided { chunk } => {
                let guided = matches!(sched, Schedule::Guided { .. });
                let chunk = chunk.max(1);
                let gen = self.next_gen();
                let team = self.team().clone();
                let slot = team.slot(gen);
                let size = self.num_threads();
                let ok = slot.enter(gen, size, &team.abort, &team.cancel_parallel, |s| {
                    s.next.store(0, Ordering::Relaxed);
                    s.end.store(trip, Ordering::Relaxed);
                    s.chunk.store(chunk, Ordering::Relaxed);
                    s.kind.store(
                        if guided { KIND_GUIDED } else { KIND_DYNAMIC },
                        Ordering::Relaxed,
                    );
                });
                if !ok {
                    if team.abort.load(Ordering::Relaxed) {
                        std::panic::panic_any(SiblingPanic);
                    }
                    // Cancelled region: skip the whole construct.
                    self.exit_cancellable_ws();
                    return;
                }
                loop {
                    self.chaos_chunk_grab();
                    if watch && self.ws_cancelled(cgen) {
                        break;
                    }
                    let grabbed = if guided {
                        // CAS loop: shrinking grabs proportional to the
                        // remaining work.
                        loop {
                            let cur = slot.next.load(Ordering::Acquire);
                            if cur >= trip {
                                break None;
                            }
                            let g = guided_grab(trip - cur, size, chunk);
                            match slot.next.compare_exchange_weak(
                                cur,
                                cur + g,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => break Some((cur, cur + g)),
                                Err(_) => continue,
                            }
                        }
                    } else {
                        let cur = slot.next.fetch_add(chunk, Ordering::AcqRel);
                        if cur >= trip {
                            None
                        } else {
                            Some((cur, (cur + chunk).min(trip)))
                        }
                    };
                    match grabbed {
                        Some((lo, hi)) => {
                            crate::stats::bump(&crate::stats::stats().dispatched_chunks);
                            chunk_body(lo, hi);
                        }
                        None => break,
                    }
                }
                slot.leave();
            }
            Schedule::Runtime | Schedule::Auto => {
                // `resolve_schedule` only returns concrete kinds. If
                // that invariant ever breaks, run the resolved default
                // (block static) rather than aborting a release build.
                debug_assert!(false, "unresolved schedule {sched} reached dispatch");
                for r in StaticChunks::new(trip, self.num_threads(), self.thread_num(), None) {
                    if watch && self.ws_cancelled(cgen) {
                        break;
                    }
                    chunk_body(r.start, r.end);
                }
            }
        }
        self.exit_cancellable_ws();
        if !nowait {
            self.barrier();
        }
    }

    /// The tuned worksharing driver (see [`crate::tune`]): an auto-like
    /// loop on a tuning-armed team. The construct always rendezvouses
    /// through a dispatch slot — the thread that wins the install race
    /// asks the site's learner for a schedule decision and publishes it
    /// through the slot, so the whole team runs the same candidate.
    /// Every thread then wall-clock-times its chunks, and the last
    /// thread to report feeds the slowest-thread cost plus the team's
    /// imbalance ratio back to the learner.
    fn ws_for_tuned(
        &self,
        site: SiteId,
        trip: u64,
        nowait: bool,
        mut chunk_body: impl FnMut(u64, u64),
    ) {
        let cgen = self.enter_cancellable_ws();
        let gen = self.next_gen();
        let team = self.team().clone();
        let watch = team.cancellable();
        let slot = team.slot(gen);
        let size = self.num_threads();
        let entry = crate::tune::site_entry(SiteKey::new(site, trip));
        let ok = slot.enter(gen, size, &team.abort, &team.cancel_parallel, |s| {
            let bits = entry.decide(trip, size);
            s.tune.store(bits, Ordering::Relaxed);
            s.busy_ns_sum.store(0, Ordering::Relaxed);
            s.busy_ns_max.store(0, Ordering::Relaxed);
            s.reporters.store(0, Ordering::Relaxed);
            // Pre-arm the shared dispatcher in case the decision needs
            // it; static decisions never touch the cursor.
            s.next.store(0, Ordering::Relaxed);
            s.end.store(trip, Ordering::Relaxed);
            let (_, sched) = crate::tune::decode_decision(bits);
            if let Schedule::Dynamic { chunk } | Schedule::Guided { chunk } = sched {
                s.chunk.store(chunk, Ordering::Relaxed);
                s.kind.store(
                    if matches!(sched, Schedule::Guided { .. }) {
                        KIND_GUIDED
                    } else {
                        KIND_DYNAMIC
                    },
                    Ordering::Relaxed,
                );
            }
        });
        if !ok {
            if team.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            // Cancelled region: skip the whole construct.
            self.exit_cancellable_ws();
            return;
        }
        let (arm, sched) = crate::tune::decode_decision(slot.tune.load(Ordering::Acquire));
        let mut busy = 0.0f64;
        let mut timed = |lo: u64, hi: u64| {
            let t0 = crate::wtime::get_wtime();
            chunk_body(lo, hi);
            busy += crate::wtime::get_wtime() - t0;
        };
        match sched {
            Schedule::Static { chunk } => {
                for r in StaticChunks::new(trip, size, self.thread_num(), chunk) {
                    if watch && self.ws_cancelled(cgen) {
                        break;
                    }
                    timed(r.start, r.end);
                }
            }
            Schedule::Dynamic { chunk } | Schedule::Guided { chunk } => {
                let guided = matches!(sched, Schedule::Guided { .. });
                let chunk = chunk.max(1);
                loop {
                    if watch && self.ws_cancelled(cgen) {
                        break;
                    }
                    let grabbed = if guided {
                        loop {
                            let cur = slot.next.load(Ordering::Acquire);
                            if cur >= trip {
                                break None;
                            }
                            let g = guided_grab(trip - cur, size, chunk);
                            match slot.next.compare_exchange_weak(
                                cur,
                                cur + g,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => break Some((cur, cur + g)),
                                Err(_) => continue,
                            }
                        }
                    } else {
                        let cur = slot.next.fetch_add(chunk, Ordering::AcqRel);
                        if cur >= trip {
                            None
                        } else {
                            Some((cur, (cur + chunk).min(trip)))
                        }
                    };
                    match grabbed {
                        Some((lo, hi)) => {
                            crate::stats::bump(&crate::stats::stats().dispatched_chunks);
                            timed(lo, hi);
                        }
                        None => break,
                    }
                }
            }
            Schedule::Runtime | Schedule::Auto => {
                debug_assert!(false, "tune decisions are always concrete schedules");
            }
        }
        // Flush this thread's busy time; the last reporter aggregates.
        // The AcqRel RMW chain on `reporters` makes every earlier
        // flush visible to the thread that observes itself last.
        let busy_ns = (busy * 1e9) as u64;
        slot.busy_ns_sum.fetch_add(busy_ns, Ordering::AcqRel);
        slot.busy_ns_max.fetch_max(busy_ns, Ordering::AcqRel);
        if slot.reporters.fetch_add(1, Ordering::AcqRel) + 1 == size {
            let sum = slot.busy_ns_sum.load(Ordering::Acquire);
            let max = slot.busy_ns_max.load(Ordering::Acquire);
            // Don't learn from cancelled constructs (chunks were
            // skipped) or loops too fast for the clock to resolve.
            if max > 0 && !(watch && self.ws_cancelled(cgen)) {
                let cost = max as f64 * 1e-9;
                let imbalance = (max as f64) * (size as f64) / (sum.max(1) as f64);
                entry.record(arm, cost, imbalance);
            }
        }
        slot.leave();
        self.exit_cancellable_ws();
        if !nowait {
            self.barrier();
        }
    }

    /// Worksharing loop with an `ordered` clause: `body(i, ord)` may call
    /// `ord.section(..)` once to run code in strict iteration order.
    pub fn ws_for_ordered(
        &self,
        range: Range<usize>,
        sched: Schedule,
        nowait: bool,
        mut body: impl FnMut(usize, &Ordered<'_>),
    ) {
        // Ordered loops are never tuned, but a `site` clause may still
        // precede one — consume the override so it cannot leak to the
        // next construct on this thread.
        let _ = crate::tune::take_site_override();
        let sched = self.resolve_schedule(sched);
        let base = range.start;
        let trip = range.end.saturating_sub(range.start) as u64;
        // Ordered loops always take a slot: the ordered turnstile lives
        // there even for static schedules.
        let gen = self.next_gen();
        let team = self.team().clone();
        let slot = team.slot(gen);
        let size = self.num_threads();
        let (guided, chunk, uses_dispatch) = match sched {
            Schedule::Dynamic { chunk } => (false, chunk.max(1), true),
            Schedule::Guided { chunk } => (true, chunk.max(1), true),
            Schedule::Static { .. } => (false, 1, false),
            Schedule::Runtime | Schedule::Auto => {
                // `resolve_schedule` only returns concrete kinds; fall
                // back to the resolved default (block static) if the
                // invariant ever breaks.
                debug_assert!(false, "unresolved schedule {sched} reached dispatch");
                (false, 1, false)
            }
        };
        let cgen = self.enter_cancellable_ws();
        let watch = team.cancellable();
        let ok = slot.enter(gen, size, &team.abort, &team.cancel_parallel, |s| {
            s.next.store(0, Ordering::Relaxed);
            s.end.store(trip, Ordering::Relaxed);
            s.ordered_next.store(0, Ordering::Relaxed);
            // `claimed` doubles as the section-body lock (see
            // `Ordered::section`); a previous `single` in this slot may
            // have left it set.
            s.claimed.store(false, Ordering::Relaxed);
        });
        if !ok {
            self.exit_cancellable_ws();
            if team.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            return; // cancelled region
        }
        let ord = Ordered {
            slot,
            current: Cell::new(0),
            ran: Cell::new(false),
            abort: &team.abort,
            cancel: &team.cancel_parallel,
            cancel_ws: &team.cancel_ws,
            cgen,
            cancellable: watch,
        };
        let mut run_chunk = |lo: u64, hi: u64| {
            for i in lo..hi {
                ord.current.set(i);
                ord.ran.set(false);
                body(base + i as usize, &ord);
                ord.finish_iteration();
            }
        };
        if uses_dispatch {
            loop {
                if watch && self.ws_cancelled(cgen) {
                    break;
                }
                let grabbed = if guided {
                    loop {
                        let cur = slot.next.load(Ordering::Acquire);
                        if cur >= trip {
                            break None;
                        }
                        let g = guided_grab(trip - cur, size, chunk);
                        match slot.next.compare_exchange_weak(
                            cur,
                            cur + g,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => break Some((cur, cur + g)),
                            Err(_) => continue,
                        }
                    }
                } else {
                    let cur = slot.next.fetch_add(chunk, Ordering::AcqRel);
                    if cur >= trip {
                        None
                    } else {
                        Some((cur, (cur + chunk).min(trip)))
                    }
                };
                match grabbed {
                    Some((lo, hi)) => run_chunk(lo, hi),
                    None => break,
                }
            }
        } else {
            let static_chunk = match sched {
                Schedule::Static { chunk } => chunk,
                _ => None, // the debug-assert fallback above: block static
            };
            for r in StaticChunks::new(trip, size, self.thread_num(), static_chunk) {
                if watch && self.ws_cancelled(cgen) {
                    break;
                }
                run_chunk(r.start, r.end);
            }
        }
        slot.leave();
        self.exit_cancellable_ws();
        if !nowait {
            self.barrier();
        }
    }

    /// Resolve `runtime` (against the team's `run-sched-var` snapshot,
    /// so every team thread agrees) and `auto` (to `static`).
    pub fn resolve_schedule(&self, sched: Schedule) -> Schedule {
        match sched {
            Schedule::Runtime => {
                let s = self.team().run_sched();
                match s {
                    Schedule::Runtime | Schedule::Auto => Schedule::default(),
                    other => other,
                }
            }
            Schedule::Auto => Schedule::default(),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::pool::{fork, ForkSpec};
    use crate::sched::Schedule;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    fn cover(trip: usize, threads: usize, sched: Schedule) {
        let hits: Vec<AtomicU32> = (0..trip).map(|_| AtomicU32::new(0)).collect();
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            ctx.ws_for(0..trip, sched, false, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "trip={trip} threads={threads} sched={sched}"
        );
    }

    #[test]
    fn every_schedule_covers_every_index_once() {
        for sched in [
            Schedule::static_block(),
            Schedule::static_chunk(3),
            Schedule::dynamic(),
            Schedule::dynamic_chunk(16),
            Schedule::guided(),
            Schedule::guided_chunk(8),
            Schedule::Auto,
            Schedule::Runtime,
        ] {
            for trip in [0usize, 1, 7, 256] {
                for threads in [1usize, 2, 4] {
                    cover(trip, threads, sched);
                }
            }
        }
    }

    #[test]
    fn chunks_are_contiguous_and_bounded() {
        fork(ForkSpec::with_num_threads(4), |ctx| {
            ctx.ws_for_chunks(10..1000, Schedule::dynamic_chunk(37), false, |r| {
                assert!(r.start >= 10 && r.end <= 1000);
                assert!(!r.is_empty() && r.len() <= 37);
            });
        });
    }

    #[test]
    fn nonzero_base_offsets_respected() {
        let total = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(3), |ctx| {
            ctx.ws_for(100..200, Schedule::guided(), false, |i| {
                assert!((100..200).contains(&i));
                total.fetch_add(i, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), (100..200).sum::<usize>());
    }

    #[test]
    fn negative_step_loop() {
        let seen = Mutex::new(Vec::new());
        fork(ForkSpec::with_num_threads(2), |ctx| {
            ctx.ws_for_step(10, 0, -3, Schedule::dynamic(), false, |i| {
                seen.lock().push(i);
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, vec![1, 4, 7, 10]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_step_panics() {
        fork(ForkSpec::with_num_threads(1), |ctx| {
            ctx.ws_for_step(0, 10, 0, Schedule::default(), false, |_| {});
        });
    }

    #[test]
    fn empty_and_reversed_step_ranges() {
        fork(ForkSpec::with_num_threads(2), |ctx| {
            // Positive step, end <= start: zero iterations.
            ctx.ws_for_step(5, 5, 1, Schedule::default(), false, |_| {
                panic!("no iterations expected")
            });
            ctx.ws_for_step(5, 2, 1, Schedule::default(), false, |_| {
                panic!("no iterations expected")
            });
            // Negative step, start <= end: zero iterations.
            ctx.ws_for_step(2, 5, -1, Schedule::default(), false, |_| {
                panic!("no iterations expected")
            });
        });
    }

    #[test]
    fn consecutive_nowait_loops_do_not_corrupt() {
        // Many back-to-back nowait dynamic loops stress the slot ring
        // (generation recycling with threads racing ahead).
        let counters: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        fork(ForkSpec::with_num_threads(4), |ctx| {
            for counter in &counters {
                ctx.ws_for(0..64, Schedule::dynamic(), true, |_i| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            ctx.barrier();
        });
        for (round, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn ordered_static_schedule_serializes_in_order() {
        let order = Mutex::new(Vec::new());
        fork(ForkSpec::with_num_threads(4), |ctx| {
            ctx.ws_for_ordered(0..40, Schedule::static_block(), false, |i, ord| {
                ord.section(|| order.lock().push(i));
            });
        });
        assert_eq!(*order.lock(), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_guided_schedule_serializes_in_order() {
        let order = Mutex::new(Vec::new());
        fork(ForkSpec::with_num_threads(3), |ctx| {
            ctx.ws_for_ordered(0..50, Schedule::guided_chunk(2), false, |i, ord| {
                ord.section(|| order.lock().push(i));
            });
        });
        assert_eq!(*order.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_section_is_optional_per_iteration() {
        // Iterations that skip their ordered region must not block later
        // ones.
        let order = Mutex::new(Vec::new());
        fork(ForkSpec::with_num_threads(4), |ctx| {
            ctx.ws_for_ordered(0..30, Schedule::dynamic(), false, |i, ord| {
                if i % 3 == 0 {
                    ord.section(|| order.lock().push(i));
                }
            });
        });
        assert_eq!(
            *order.lock(),
            (0..30).filter(|i| i % 3 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn resolve_schedule_maps_runtime_and_auto() {
        fork(ForkSpec::with_num_threads(1), |ctx| {
            assert_eq!(ctx.resolve_schedule(Schedule::Auto), Schedule::default());
            // Runtime resolves to the run-sched ICV (static by default,
            // never Runtime/Auto itself).
            let r = ctx.resolve_schedule(Schedule::Runtime);
            assert!(!matches!(r, Schedule::Runtime | Schedule::Auto));
            assert_eq!(
                ctx.resolve_schedule(Schedule::dynamic_chunk(5)),
                Schedule::Dynamic { chunk: 5 }
            );
        });
    }

    /// Run `f` with cancellation armed for this thread's forks (TLS
    /// override — hermetic under concurrently running tests).
    fn with_cancellation<R>(f: impl FnOnce() -> R) -> R {
        let prev = crate::icv::set_cancellation_override(Some(true));
        let out = f();
        crate::icv::set_cancellation_override(prev);
        out
    }

    #[test]
    fn cancelled_dynamic_loop_stops_handing_out_chunks() {
        with_cancellation(|| {
            // One thread, chunk 10: cancelling in the third chunk means
            // exactly 3 chunks (30 iterations) run — deterministic.
            let seen = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(1), |ctx| {
                ctx.ws_for(0..1000, Schedule::dynamic_chunk(10), false, |i| {
                    seen.fetch_add(1, Ordering::Relaxed);
                    if i == 25 {
                        assert!(ctx.cancel(crate::CancelKind::For));
                    }
                });
            });
            assert_eq!(seen.load(Ordering::Relaxed), 30);
        });
    }

    #[test]
    fn cancelled_static_loop_stops_between_chunks() {
        with_cancellation(|| {
            let seen = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(1), |ctx| {
                ctx.ws_for(0..1000, Schedule::static_chunk(10), false, |_| {
                    seen.fetch_add(1, Ordering::Relaxed);
                    ctx.cancel(crate::CancelKind::For);
                });
            });
            // Cancelled in the very first chunk: it completes, nothing
            // further is dispatched.
            assert_eq!(seen.load(Ordering::Relaxed), 10);
        });
    }

    #[test]
    fn cancellation_expires_at_the_next_construct() {
        with_cancellation(|| {
            // A cancelled loop must not bleed into the next loop: the
            // generation-matched flag simply never matches again.
            let (first, second) = (AtomicUsize::new(0), AtomicUsize::new(0));
            fork(ForkSpec::with_num_threads(2), |ctx| {
                ctx.ws_for(0..100, Schedule::dynamic_chunk(5), false, |_| {
                    first.fetch_add(1, Ordering::Relaxed);
                    ctx.cancel(crate::CancelKind::For);
                });
                ctx.ws_for(0..100, Schedule::dynamic_chunk(5), false, |_| {
                    second.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(first.load(Ordering::Relaxed) < 100);
            assert_eq!(second.load(Ordering::Relaxed), 100);
        });
    }

    #[test]
    fn cancel_var_off_makes_cancel_a_noop() {
        let prev = crate::icv::set_cancellation_override(Some(false));
        let seen = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(2), |ctx| {
            ctx.ws_for(0..100, Schedule::dynamic_chunk(5), false, |_| {
                seen.fetch_add(1, Ordering::Relaxed);
                assert!(!ctx.cancel(crate::CancelKind::For));
                assert!(!ctx.cancellation_point(crate::CancelKind::For));
            });
            assert!(!ctx.cancel(crate::CancelKind::Parallel));
            assert!(!ctx.cancellation_point(crate::CancelKind::Parallel));
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        crate::icv::set_cancellation_override(prev);
    }

    #[test]
    fn cancel_parallel_skips_barriers_and_later_constructs() {
        with_cancellation(|| {
            let after_barrier = AtomicUsize::new(0);
            let singles = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(4), |ctx| {
                if ctx.thread_num() == 0 {
                    assert!(ctx.cancel(crate::CancelKind::Parallel));
                } else {
                    // Blocked or late siblings must get through.
                    ctx.barrier();
                }
                after_barrier.fetch_add(1, Ordering::Relaxed);
                // Constructs after cancellation are skipped (no hang,
                // no execution for late arrivals that observe the flag).
                if ctx.single(false, || ()).is_some() {
                    singles.fetch_add(1, Ordering::Relaxed);
                }
                ctx.ws_for(0..64, Schedule::dynamic(), false, |_| {});
            });
            assert_eq!(after_barrier.load(Ordering::Relaxed), 4);
            assert!(singles.load(Ordering::Relaxed) <= 1);
        });
    }

    #[test]
    fn cancel_for_on_static_ordered_loop_does_not_hang() {
        // `cancel for` on a static-scheduled ordered loop makes some
        // threads skip whole chunks, so the skipped chunks' turns never
        // advance; a sibling that raced into a later chunk must be
        // released from its turn wait by the construct-scoped flag
        // (OpenMP forbids this combination — romp must still not hang).
        with_cancellation(|| {
            for _ in 0..5 {
                let ran = AtomicUsize::new(0);
                fork(ForkSpec::with_num_threads(3), |ctx| {
                    ctx.ws_for_ordered(0..60, Schedule::static_chunk(10), false, |i, ord| {
                        if i == 5 {
                            ctx.cancel(crate::CancelKind::For);
                        }
                        ord.section(|| {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                    // The loop's closing barrier completed: every
                    // thread got out of the construct.
                    ctx.barrier();
                });
                assert!(ran.load(Ordering::Relaxed) >= 1);
            }
        });
    }

    #[test]
    fn cancelled_region_single_copy_returns_without_panicking() {
        // `single copyprivate` must not turn a cooperative cancel into
        // a panic: threads arriving after the cancel skip the construct
        // and compute locally; threads caught mid-construct wait for
        // the claim winner's published value.
        with_cancellation(|| {
            for _ in 0..10 {
                fork(ForkSpec::with_num_threads(3), |ctx| {
                    if ctx.thread_num() == 1 {
                        ctx.cancel(crate::CancelKind::Parallel);
                    }
                    // Unsynchronized arrival: some threads observe the
                    // cancel before the construct, some inside it.
                    let v = ctx.single_copy(|| 42u32);
                    assert_eq!(v, 42);
                });
            }
        });
    }

    #[test]
    fn cancelled_ordered_sections_stay_mutually_exclusive() {
        // A waiter released early by `cancel parallel` runs its ordered
        // section out of turn — ordering is forfeit, but two section
        // bodies must never overlap (user code relies on the exclusion
        // for unsynchronized writes).
        with_cancellation(|| {
            for round in 0..5 {
                let in_section = AtomicUsize::new(0);
                fork(ForkSpec::with_num_threads(4), |ctx| {
                    ctx.ws_for_ordered(0..64, Schedule::static_chunk(1), false, |i, ord| {
                        if i == 5 + round {
                            ctx.cancel(crate::CancelKind::Parallel);
                        }
                        ord.section(|| {
                            assert_eq!(
                                in_section.fetch_add(1, Ordering::SeqCst),
                                0,
                                "two ordered bodies ran concurrently"
                            );
                            for _ in 0..200 {
                                std::hint::spin_loop();
                            }
                            in_section.fetch_sub(1, Ordering::SeqCst);
                        });
                    });
                });
            }
        });
    }

    #[test]
    fn cancel_parallel_discards_unstarted_tasks() {
        with_cancellation(|| {
            // Team of one: tasks sit deferred (nobody can steal), so
            // cancelling before the region-end drain means every body
            // must be discarded — deterministically zero runs.
            let ran = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(1), |ctx| {
                let tok = 0u8;
                ctx.task_spec(crate::TaskSpec::new().output(&tok), || {});
                for _ in 0..8 {
                    let r = &ran;
                    // Dependence-stalled behind the head: the discard
                    // path must release and discard the whole chain.
                    ctx.task_spec(crate::TaskSpec::new().inout(&tok), move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    });
                }
                assert!(ctx.cancel(crate::CancelKind::Parallel));
            });
            assert_eq!(ran.load(Ordering::Relaxed), 0, "tasks were not discarded");
        });
    }

    #[test]
    fn reduce_value_sequences_multiple_types() {
        // Alternating types across reduction generations exercises the
        // double-buffered cells.
        fork(ForkSpec::with_num_threads(4), |ctx| {
            let t = ctx.thread_num();
            for round in 0..6 {
                let s: usize = ctx.reduce_value(crate::reduction::SumOp, t + round);
                assert_eq!(s, 4 * round + 6);
                let m: f64 = ctx.reduce_value(crate::reduction::MaxOp, t as f64);
                assert_eq!(m, 3.0);
            }
        });
    }
}
