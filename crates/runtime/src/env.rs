//! `OMP_*` environment-variable parsing.
//!
//! The recognised set matches what the paper's runtime (LLVM libomp)
//! honours for the constructs it implements, plus one romp extension:
//!
//! | Variable | ICV | Syntax |
//! |---|---|---|
//! | `OMP_NUM_THREADS` | `nthreads-var` | `n[,n2[,…]]` per nesting level |
//! | `OMP_SCHEDULE` | `run-sched-var` | `kind[,chunk]` |
//! | `OMP_DYNAMIC` | `dyn-var` | `true`/`false` |
//! | `OMP_MAX_ACTIVE_LEVELS` | `max-active-levels-var` | integer |
//! | `OMP_NESTED` (deprecated) | `max-active-levels-var` | `true` → ∞ |
//! | `OMP_THREAD_LIMIT` | `thread-limit-var` | integer |
//! | `OMP_WAIT_POLICY` | `wait-policy-var` | `active`/`passive` |
//! | `OMP_PROC_BIND` | `bind-var` | per-level list of `true/false/close/spread/master/primary` |
//! | `OMP_PLACES` | `place-partition-var` | `threads`/`cores`/`sockets` or `{a,b},{lo:count[:stride]},…` |
//! | `OMP_STACKSIZE` | `stacksize-var` | `n[B|K|M|G]` (default KiB) |
//! | `OMP_CANCELLATION` | `cancel-var` | `true`/`false` (default false) |
//! | `ROMP_BARRIER` | barrier algorithm | `central`/`dissemination` |
//! | `ROMP_HOT_TEAMS` | hot-team caching | `true`/`false` (default true) |
//! | `ROMP_CANCELLATION` | `cancel-var` override | `true`/`false` (wins over `OMP_CANCELLATION`) |
//! | `ROMP_POOL_SHARDS` | worker-pool shard count | positive integer (default auto) |
//! | `ROMP_TUNE` | schedule autotuner | `0`/`off`/`1`/`greedy` (default greedy) |
//!
//! Malformed values are ignored (with the spec-sanctioned fallback to the
//! default), never fatal: an HPC batch job must not die because of a typo
//! in a site-wide profile. Every parser here is a pure function over the
//! string so tests can cover it without touching the process environment.
//! For the values where silent fallback is most likely to surprise —
//! `OMP_THREAD_LIMIT=0` would quietly serialize every region if honored
//! (the spec requires a *positive* thread limit, so `0` is rejected),
//! and a malformed `ROMP_POOL_SHARDS` silently changes scaling behavior
//! — the rejection is additionally reported: once on stderr at startup,
//! and in a `ROMP WARNINGS` block of the [`display_env`] banner.
//!
//! Defaults derived from hardware concurrency (`nthreads-var` with no
//! `OMP_NUM_THREADS`, the `thread-limit-var` default) read a
//! process-lifetime snapshot of `available_parallelism` taken on first
//! use ([`crate::icv::hardware_threads`]): a cgroup CPU-quota change
//! after startup (container resize) is not observed. Set
//! `OMP_NUM_THREADS`/`OMP_THREAD_LIMIT` explicitly where that matters.

use crate::barrier::BarrierKind;
use crate::icv::{Icvs, ProcBind, TuneMode, WaitPolicy};
use crate::sched::Schedule;

/// Parse `OMP_NUM_THREADS` syntax: a comma-separated positive-integer
/// list.
pub fn parse_num_threads(s: &str) -> Option<Vec<usize>> {
    let vals: Option<Vec<usize>> = s
        .split(',')
        .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n > 0))
        .collect();
    vals.filter(|v| !v.is_empty())
}

/// Parse an OpenMP boolean (`true`/`false`, case-insensitive, also `1`/`0`).
pub fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" | "1" | "yes" | "on" => Some(true),
        "false" | "0" | "no" | "off" => Some(false),
        _ => None,
    }
}

/// Parse `OMP_STACKSIZE`: `size[B|K|M|G]`, unsuffixed means KiB.
pub fn parse_stacksize(s: &str) -> Option<usize> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // Slicing `..s.len() - 1` below cannot split a UTF-8 character:
    // it only happens when the last *byte* matched B/K/M/G (ASCII, so
    // a one-byte character — continuation bytes are 0x80..=0xBF and
    // never match). The index itself is guarded by the is_empty check.
    let (num, mult) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
        b'B' => (&s[..s.len() - 1], 1usize),
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1024),
    };
    let n: usize = num.trim().parse().ok()?;
    n.checked_mul(mult).filter(|&b| b > 0)
}

/// Parse one `OMP_PROC_BIND` policy token.
pub fn parse_proc_bind(s: &str) -> Option<ProcBind> {
    match s.trim().to_ascii_lowercase().as_str() {
        "false" => Some(ProcBind::False),
        "true" => Some(ProcBind::True),
        "close" => Some(ProcBind::Close),
        "spread" => Some(ProcBind::Spread),
        "master" | "primary" => Some(ProcBind::Master),
        _ => None,
    }
}

/// Parse the full `OMP_PROC_BIND` syntax: a comma-separated per-level
/// policy list (`spread,close` = spread the outer team, pack inner
/// teams). All-or-nothing, like `OMP_NUM_THREADS`.
pub fn parse_proc_bind_list(s: &str) -> Option<Vec<ProcBind>> {
    let v: Option<Vec<ProcBind>> = s.split(',').map(parse_proc_bind).collect();
    v.filter(|v| !v.is_empty())
}

/// Parse `OMP_PLACES` into a place list (each place a non-empty set of
/// CPU ids). Accepted syntax:
///
/// * `threads` / `cores` — one place per hardware thread (romp does not
///   distinguish SMT siblings from cores; the spec allows this
///   degeneration on topology-blind runtimes);
/// * `sockets` — one place per physical package, read from
///   `/sys/devices/system/cpu/*/topology/physical_package_id`, falling
///   back to a single all-CPU place where sysfs is unavailable;
/// * an explicit list of brace groups: `{0,1},{2,3}`, `{0:4}` (start:
///   count), `{0:4:2}` (start:count:stride), and combinations.
///
/// Anything else is rejected (`None`) — the caller warns and disables
/// placement rather than guessing.
pub fn parse_places(s: &str) -> Option<Vec<Vec<usize>>> {
    match s.trim().to_ascii_lowercase().as_str() {
        "threads" | "cores" => Some(
            (0..crate::icv::hardware_threads())
                .map(|c| vec![c])
                .collect(),
        ),
        "sockets" => Some(socket_places()),
        _ => parse_place_list(s),
    }
}

/// Group the CPUs by physical package id (sysfs), one place per socket.
fn socket_places() -> Vec<Vec<usize>> {
    let hw = crate::icv::hardware_threads();
    let mut sockets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for cpu in 0..hw {
        let id = std::fs::read_to_string(format!(
            "/sys/devices/system/cpu/cpu{cpu}/topology/physical_package_id"
        ))
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(0);
        sockets.entry(id).or_default().push(cpu);
    }
    if sockets.is_empty() {
        vec![(0..hw).collect()]
    } else {
        sockets.into_values().collect()
    }
}

/// The explicit `{..},{..}` arm of [`parse_places`].
fn parse_place_list(s: &str) -> Option<Vec<Vec<usize>>> {
    let mut places = Vec::new();
    let mut rest = s.trim();
    if rest.is_empty() {
        return None;
    }
    loop {
        rest = rest.trim_start();
        rest = rest.strip_prefix('{')?;
        let end = rest.find('}')?;
        let mut cpus = Vec::new();
        for part in rest[..end].split(',') {
            let mut it = part.trim().split(':');
            let start: usize = it.next()?.trim().parse().ok()?;
            match it.next() {
                None => cpus.push(start),
                Some(count) => {
                    let count: usize = count.trim().parse().ok().filter(|&c| c > 0)?;
                    let stride: usize = match it.next() {
                        None => 1,
                        Some(st) => st.trim().parse().ok().filter(|&v| v > 0)?,
                    };
                    if it.next().is_some() {
                        return None;
                    }
                    cpus.extend((0..count).map(|k| start + k * stride));
                }
            }
        }
        if cpus.is_empty() {
            return None;
        }
        places.push(cpus);
        rest = rest[end + 1..].trim_start();
        if rest.is_empty() {
            return Some(places);
        }
        rest = rest.strip_prefix(',')?;
    }
}

/// Parse `OMP_WAIT_POLICY`.
pub fn parse_wait_policy(s: &str) -> Option<WaitPolicy> {
    match s.trim().to_ascii_lowercase().as_str() {
        "active" => Some(WaitPolicy::Active),
        "passive" => Some(WaitPolicy::Passive),
        _ => None,
    }
}

/// Parse `ROMP_BARRIER`.
pub fn parse_barrier_kind(s: &str) -> Option<BarrierKind> {
    match s.trim().to_ascii_lowercase().as_str() {
        "central" | "centralized" => Some(BarrierKind::Central),
        "dissemination" | "dissem" => Some(BarrierKind::Dissemination),
        _ => None,
    }
}

/// Parse `OMP_THREAD_LIMIT`: a **positive** integer, per the spec
/// (`thread-limit-var` bounds the whole contention group; `0` would
/// mean "no threads at all" and, if honored, silently serialize every
/// region through the `saturating_sub(1)` worker cap). `0`, negative
/// and garbage values are all rejected.
pub fn parse_thread_limit(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&v| v > 0)
}

/// Parse `ROMP_POOL_SHARDS`: a positive shard count (`0` is rejected —
/// "auto" is spelled by leaving the variable unset).
pub fn parse_pool_shards(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&v| v > 0)
}

/// Parse `ROMP_TUNE`: the OpenMP boolean spellings plus the learner
/// name (`greedy`) — `0|off|false|no` disarms, `1|on|true|yes|greedy`
/// arms the probe-then-lock learner.
pub fn parse_tune(s: &str) -> Option<TuneMode> {
    match s.trim().to_ascii_lowercase().as_str() {
        "greedy" => Some(TuneMode::Greedy),
        _ => parse_bool(s).map(|b| if b { TuneMode::Greedy } else { TuneMode::Off }),
    }
}

/// Build an ICV block from an abstract environment lookup. Pure — tests
/// drive it with a closure over a map. Discards warnings; use
/// [`icvs_from_lookup_with_warnings`] to observe them.
pub fn icvs_from_lookup(get: impl Fn(&str) -> Option<String>) -> Icvs {
    icvs_from_lookup_with_warnings(get).0
}

/// [`icvs_from_lookup`] plus the list of rejected-value warnings the
/// parse produced (empty when every set variable parsed cleanly).
pub fn icvs_from_lookup_with_warnings(get: impl Fn(&str) -> Option<String>) -> (Icvs, Vec<String>) {
    let mut warnings = Vec::new();
    let mut icvs = Icvs::default();
    if let Some(v) = get("OMP_NUM_THREADS")
        .as_deref()
        .and_then(parse_num_threads)
    {
        icvs.nthreads = v;
    }
    if let Some(v) = get("OMP_DYNAMIC").as_deref().and_then(parse_bool) {
        icvs.dynamic = v;
    }
    if let Some(v) = get("OMP_SCHEDULE").and_then(|s| Schedule::parse(&s).ok()) {
        // `OMP_SCHEDULE=runtime` would be circular; keep the default then.
        if v != Schedule::Runtime {
            icvs.run_sched = v;
        }
    }
    if let Some(v) = get("OMP_MAX_ACTIVE_LEVELS").and_then(|s| s.trim().parse::<usize>().ok()) {
        icvs.max_active_levels = v;
    } else if let Some(true) = get("OMP_NESTED").as_deref().and_then(parse_bool) {
        icvs.max_active_levels = usize::MAX;
    }
    if let Some(raw) = get("OMP_THREAD_LIMIT") {
        match parse_thread_limit(&raw) {
            Some(v) => icvs.thread_limit = v,
            None => warnings.push(format!(
                "OMP_THREAD_LIMIT='{}' ignored: the thread limit must be a \
                 positive integer (keeping {})",
                raw.trim(),
                icvs.thread_limit
            )),
        }
    }
    if let Some(v) = get("OMP_WAIT_POLICY")
        .as_deref()
        .and_then(parse_wait_policy)
    {
        icvs.wait_policy = v;
    }
    if let Some(raw) = get("OMP_PROC_BIND") {
        match parse_proc_bind_list(&raw) {
            Some(v) => icvs.proc_bind = v,
            None => warnings.push(format!(
                "OMP_PROC_BIND='{}' ignored: expected a comma-separated list of \
                 true|false|master|primary|close|spread, one per nesting level \
                 (keeping no binding)",
                raw.trim()
            )),
        }
    }
    if let Some(raw) = get("OMP_PLACES") {
        match parse_places(&raw) {
            Some(v) => icvs.places = Some(std::sync::Arc::new(v)),
            None => warnings.push(format!(
                "OMP_PLACES='{}' ignored: expected threads|cores|sockets or an \
                 explicit {{a,b}},{{lo:count[:stride]}} list (affinity disabled)",
                raw.trim()
            )),
        }
    }
    if let Some(v) = get("OMP_STACKSIZE").as_deref().and_then(parse_stacksize) {
        icvs.stacksize = Some(v);
    }
    if let Some(v) = get("ROMP_BARRIER").as_deref().and_then(parse_barrier_kind) {
        icvs.barrier_kind = v;
    }
    if let Some(v) = get("ROMP_HOT_TEAMS").as_deref().and_then(parse_bool) {
        icvs.hot_teams = v;
    }
    if let Some(v) = get("OMP_CANCELLATION").as_deref().and_then(parse_bool) {
        icvs.cancellation = v;
    }
    // The romp knob wins over the portable one, so a site-wide OpenMP
    // profile cannot disarm (or arm) romp cancellation by accident.
    if let Some(v) = get("ROMP_CANCELLATION").as_deref().and_then(parse_bool) {
        icvs.cancellation = v;
    }
    if let Some(raw) = get("ROMP_POOL_SHARDS") {
        match parse_pool_shards(&raw) {
            Some(v) => icvs.pool_shards = v,
            None => warnings.push(format!(
                "ROMP_POOL_SHARDS='{}' ignored: the shard count must be a \
                 positive integer (keeping auto)",
                raw.trim()
            )),
        }
    }
    if let Some(raw) = get("ROMP_TUNE") {
        match parse_tune(&raw) {
            Some(v) => icvs.tune = v,
            None => warnings.push(format!(
                "ROMP_TUNE='{}' ignored: expected 0|off|1|greedy (keeping greedy)",
                raw.trim()
            )),
        }
    }
    (icvs, warnings)
}

/// Warnings produced when the process environment was first parsed into
/// the global ICV block (empty until [`icvs_from_env`] has run, and
/// empty forever if every set variable parsed cleanly).
pub fn env_warnings() -> &'static [String] {
    ENV_WARNINGS.get().map(Vec::as_slice).unwrap_or(&[])
}

static ENV_WARNINGS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();

/// Build the ICV block from the real process environment. Rejected
/// values are reported once on stderr and retained for the
/// [`display_env`] banner ([`env_warnings`]).
pub fn icvs_from_env() -> Icvs {
    let (icvs, warnings) = icvs_from_lookup_with_warnings(|k| std::env::var(k).ok());
    if ENV_WARNINGS.set(warnings.clone()).is_ok() {
        for w in &warnings {
            eprintln!("ROMP WARNING: {w}");
        }
    }
    icvs
}

/// Render the effective ICVs in the style of libomp's
/// `OMP_DISPLAY_ENV=TRUE` banner.
pub fn display_env(icvs: &Icvs) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ROMP DISPLAY ENVIRONMENT BEGIN");
    let _ = writeln!(out, "  _ROMP_VERSION = '{}'", env!("CARGO_PKG_VERSION"));
    let nthreads = if icvs.nthreads.is_empty() {
        format!("{}", crate::icv::hardware_threads())
    } else {
        icvs.nthreads
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(out, "  OMP_NUM_THREADS = '{nthreads}'");
    let _ = writeln!(out, "  OMP_SCHEDULE = '{}'", icvs.run_sched);
    let _ = writeln!(out, "  OMP_DYNAMIC = '{}'", icvs.dynamic);
    let _ = writeln!(
        out,
        "  OMP_MAX_ACTIVE_LEVELS = '{}'",
        icvs.max_active_levels
    );
    let _ = writeln!(out, "  OMP_THREAD_LIMIT = '{}'", icvs.thread_limit);
    let _ = writeln!(
        out,
        "  OMP_WAIT_POLICY = '{}'",
        match icvs.wait_policy {
            crate::icv::WaitPolicy::Active => "ACTIVE",
            crate::icv::WaitPolicy::Passive => "PASSIVE",
            crate::icv::WaitPolicy::Hybrid => "HYBRID (default)",
        }
    );
    let proc_bind = if icvs.proc_bind.is_empty() {
        "false".to_string()
    } else {
        icvs.proc_bind
            .iter()
            .map(|b| match b {
                ProcBind::False => "false",
                ProcBind::True => "true",
                ProcBind::Close => "close",
                ProcBind::Spread => "spread",
                ProcBind::Master => "master",
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(out, "  OMP_PROC_BIND = '{proc_bind}'");
    let places = match icvs.places.as_deref() {
        None => "unset".to_string(),
        Some(list) => list
            .iter()
            .map(|p| {
                format!(
                    "{{{}}}",
                    p.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(","),
    };
    let _ = writeln!(out, "  OMP_PLACES = '{places}'");
    let _ = writeln!(
        out,
        "  OMP_STACKSIZE = '{}'",
        icvs.stacksize
            .map(|b| format!("{b}B"))
            .unwrap_or_else(|| "default".into())
    );
    let _ = writeln!(out, "  OMP_CANCELLATION = '{}'", icvs.cancellation);
    let _ = writeln!(out, "  ROMP_BARRIER = '{:?}'", icvs.barrier_kind);
    let _ = writeln!(out, "  ROMP_HOT_TEAMS = '{}'", icvs.hot_teams);
    let _ = writeln!(
        out,
        "  ROMP_POOL_SHARDS = '{}'",
        if icvs.pool_shards == 0 {
            "auto".to_string()
        } else {
            icvs.pool_shards.to_string()
        }
    );
    let _ = writeln!(
        out,
        "  ROMP_TUNE = '{}'",
        match icvs.tune {
            TuneMode::Off => "off",
            TuneMode::Greedy => "greedy",
        }
    );
    let warnings = env_warnings();
    if !warnings.is_empty() {
        let _ = writeln!(out, "ROMP WARNINGS BEGIN");
        for w in warnings {
            let _ = writeln!(out, "  {w}");
        }
        let _ = writeln!(out, "ROMP WARNINGS END");
    }
    let _ = writeln!(out, "ROMP DISPLAY ENVIRONMENT END");
    // Task-scheduler counters ride along so one banner shows both the
    // configuration and what the tasking machinery actually did.
    out.push_str(&crate::stats::display_stats());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, &str)]) -> Icvs {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        icvs_from_lookup(|k| map.get(k).cloned())
    }

    #[test]
    fn num_threads_single_and_list() {
        assert_eq!(parse_num_threads("8"), Some(vec![8]));
        assert_eq!(parse_num_threads(" 4 , 2 "), Some(vec![4, 2]));
        assert_eq!(parse_num_threads("0"), None);
        assert_eq!(parse_num_threads("four"), None);
        assert_eq!(parse_num_threads(""), None);
        assert_eq!(parse_num_threads("4,,2"), None);
    }

    #[test]
    fn bools() {
        for t in ["true", "TRUE", "1", "yes", "on"] {
            assert_eq!(parse_bool(t), Some(true));
        }
        for f in ["false", "False", "0", "no", "off"] {
            assert_eq!(parse_bool(f), Some(false));
        }
        assert_eq!(parse_bool("maybe"), None);
    }

    #[test]
    fn stacksize_suffixes() {
        assert_eq!(parse_stacksize("512"), Some(512 * 1024)); // default KiB
        assert_eq!(parse_stacksize("512B"), Some(512));
        assert_eq!(parse_stacksize("4K"), Some(4096));
        assert_eq!(parse_stacksize("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_stacksize("1g"), Some(1024 * 1024 * 1024));
        assert_eq!(parse_stacksize("0"), None);
        assert_eq!(parse_stacksize("lots"), None);
    }

    #[test]
    fn full_block_from_lookup() {
        let icvs = env(&[
            ("OMP_NUM_THREADS", "4,2"),
            ("OMP_DYNAMIC", "true"),
            ("OMP_SCHEDULE", "guided,7"),
            ("OMP_MAX_ACTIVE_LEVELS", "3"),
            ("OMP_THREAD_LIMIT", "32"),
            ("OMP_WAIT_POLICY", "passive"),
            ("OMP_PROC_BIND", "spread"),
            ("OMP_STACKSIZE", "8M"),
            ("ROMP_BARRIER", "dissemination"),
            ("ROMP_HOT_TEAMS", "false"),
            ("OMP_CANCELLATION", "true"),
        ]);
        assert_eq!(icvs.nthreads, vec![4, 2]);
        assert!(icvs.dynamic);
        assert_eq!(icvs.run_sched, Schedule::Guided { chunk: 7 });
        assert_eq!(icvs.max_active_levels, 3);
        assert_eq!(icvs.thread_limit, 32);
        assert_eq!(icvs.wait_policy, WaitPolicy::Passive);
        assert_eq!(icvs.proc_bind, vec![ProcBind::Spread]);
        assert_eq!(icvs.stacksize, Some(8 * 1024 * 1024));
        assert_eq!(icvs.barrier_kind, BarrierKind::Dissemination);
        assert!(!icvs.hot_teams);
        assert!(icvs.cancellation);
    }

    #[test]
    fn romp_cancellation_overrides_omp_cancellation() {
        // Default: disarmed.
        assert!(!env(&[]).cancellation);
        assert!(env(&[("OMP_CANCELLATION", "true")]).cancellation);
        // The romp knob wins in both directions.
        let icvs = env(&[("OMP_CANCELLATION", "true"), ("ROMP_CANCELLATION", "false")]);
        assert!(!icvs.cancellation);
        let icvs = env(&[("OMP_CANCELLATION", "false"), ("ROMP_CANCELLATION", "true")]);
        assert!(icvs.cancellation);
        // Malformed values fall back without disturbing the other knob.
        let icvs = env(&[("OMP_CANCELLATION", "true"), ("ROMP_CANCELLATION", "maybe")]);
        assert!(icvs.cancellation);
    }

    #[test]
    fn malformed_values_fall_back_to_defaults() {
        let icvs = env(&[
            ("OMP_NUM_THREADS", "banana"),
            ("OMP_SCHEDULE", "fair,none"),
            ("OMP_THREAD_LIMIT", "-3"),
            ("OMP_WAIT_POLICY", "later"),
        ]);
        let def = Icvs::default();
        assert_eq!(icvs.nthreads, def.nthreads);
        assert_eq!(icvs.run_sched, def.run_sched);
        assert_eq!(icvs.thread_limit, def.thread_limit);
        assert_eq!(icvs.wait_policy, def.wait_policy);
    }

    #[test]
    fn omp_nested_true_unlocks_nesting() {
        let icvs = env(&[("OMP_NESTED", "true")]);
        assert_eq!(icvs.max_active_levels, usize::MAX);
        // Explicit MAX_ACTIVE_LEVELS wins over OMP_NESTED.
        let icvs = env(&[("OMP_NESTED", "true"), ("OMP_MAX_ACTIVE_LEVELS", "2")]);
        assert_eq!(icvs.max_active_levels, 2);
    }

    #[test]
    fn display_env_renders_all_icvs() {
        let banner = display_env(&Icvs::default());
        for key in [
            "OMP_NUM_THREADS",
            "OMP_SCHEDULE",
            "OMP_DYNAMIC",
            "OMP_MAX_ACTIVE_LEVELS",
            "OMP_THREAD_LIMIT",
            "OMP_WAIT_POLICY",
            "OMP_PROC_BIND",
            "OMP_STACKSIZE",
            "OMP_CANCELLATION",
            "ROMP_BARRIER",
            "ROMP_HOT_TEAMS",
        ] {
            assert!(banner.contains(key), "missing {key} in:\n{banner}");
        }
        let custom = display_env(&env(&[("OMP_NUM_THREADS", "4,2")]));
        assert!(custom.contains("'4,2'"), "{custom}");
    }

    #[test]
    fn schedule_runtime_is_rejected_as_circular() {
        let icvs = env(&[("OMP_SCHEDULE", "runtime")]);
        assert_eq!(icvs.run_sched, Icvs::default().run_sched);
    }

    fn env_warn(pairs: &[(&str, &str)]) -> (Icvs, Vec<String>) {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        icvs_from_lookup_with_warnings(|k| map.get(k).cloned())
    }

    #[test]
    fn thread_limit_zero_is_rejected_with_warning() {
        // The spec requires a positive thread-limit-var; 0 must not be
        // honored (it would serialize every region via the worker cap's
        // saturating_sub), and the rejection must be loud.
        let (icvs, warnings) = env_warn(&[("OMP_THREAD_LIMIT", "0")]);
        assert_eq!(icvs.thread_limit, Icvs::default().thread_limit);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("OMP_THREAD_LIMIT"), "{warnings:?}");
        assert!(warnings[0].contains("positive"), "{warnings:?}");
    }

    #[test]
    fn thread_limit_negative_and_garbage_are_rejected() {
        assert_eq!(parse_thread_limit("0"), None);
        assert_eq!(parse_thread_limit("-3"), None);
        assert_eq!(parse_thread_limit("lots"), None);
        assert_eq!(parse_thread_limit(""), None);
        assert_eq!(parse_thread_limit(" 32 "), Some(32));
        for bad in ["-3", "banana", ""] {
            let (icvs, warnings) = env_warn(&[("OMP_THREAD_LIMIT", bad)]);
            assert_eq!(icvs.thread_limit, Icvs::default().thread_limit, "{bad:?}");
            assert_eq!(warnings.len(), 1, "{bad:?} -> {warnings:?}");
        }
        // A valid limit produces no warning.
        let (icvs, warnings) = env_warn(&[("OMP_THREAD_LIMIT", "16")]);
        assert_eq!(icvs.thread_limit, 16);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn pool_shards_parses_positive_and_warns_on_invalid() {
        assert_eq!(parse_pool_shards("4"), Some(4));
        assert_eq!(parse_pool_shards(" 16 "), Some(16));
        assert_eq!(parse_pool_shards("0"), None);
        assert_eq!(parse_pool_shards("-2"), None);
        assert_eq!(parse_pool_shards("many"), None);
        let icvs = env(&[("ROMP_POOL_SHARDS", "4")]);
        assert_eq!(icvs.pool_shards, 4);
        let (icvs, warnings) = env_warn(&[("ROMP_POOL_SHARDS", "0")]);
        assert_eq!(icvs.pool_shards, 0, "0 must fall back to auto");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("ROMP_POOL_SHARDS"), "{warnings:?}");
    }

    #[test]
    fn proc_bind_list_parses_per_level() {
        assert_eq!(
            parse_proc_bind_list("spread,close"),
            Some(vec![ProcBind::Spread, ProcBind::Close])
        );
        assert_eq!(
            parse_proc_bind_list(" PRIMARY "),
            Some(vec![ProcBind::Master])
        );
        assert_eq!(parse_proc_bind_list("spread,,close"), None);
        assert_eq!(parse_proc_bind_list("banana"), None);
        assert_eq!(parse_proc_bind_list(""), None);
        let icvs = env(&[("OMP_PROC_BIND", "spread,close")]);
        assert_eq!(icvs.proc_bind_for_level(0), ProcBind::Spread);
        assert_eq!(icvs.proc_bind_for_level(1), ProcBind::Close);
        assert_eq!(icvs.proc_bind_for_level(3), ProcBind::Close);
    }

    #[test]
    fn proc_bind_garbage_warns_and_keeps_no_binding() {
        let (icvs, warnings) = env_warn(&[("OMP_PROC_BIND", "banana")]);
        assert!(icvs.proc_bind.is_empty());
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("OMP_PROC_BIND"), "{warnings:?}");
        let (_, warnings) = env_warn(&[("OMP_PROC_BIND", "spread")]);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn places_named_sets_cover_all_cpus() {
        let hw = crate::icv::hardware_threads();
        let cores = parse_places("cores").unwrap();
        assert_eq!(cores.len(), hw);
        assert!(cores.iter().enumerate().all(|(i, p)| p == &vec![i]));
        assert_eq!(parse_places("threads").unwrap().len(), hw);
        let sockets = parse_places("sockets").unwrap();
        assert!(!sockets.is_empty());
        let total: usize = sockets.iter().map(Vec::len).sum();
        assert_eq!(total, hw, "sockets must cover every cpu: {sockets:?}");
    }

    #[test]
    fn places_explicit_lists_and_intervals() {
        assert_eq!(
            parse_places("{0,1},{2,3}"),
            Some(vec![vec![0, 1], vec![2, 3]])
        );
        assert_eq!(parse_places("{0:4}"), Some(vec![vec![0, 1, 2, 3]]));
        assert_eq!(
            parse_places("{0:2:4},{1:2:4}"),
            Some(vec![vec![0, 4], vec![1, 5]])
        );
        assert_eq!(
            parse_places(" {0} , {8:2} "),
            Some(vec![vec![0], vec![8, 9]])
        );
    }

    #[test]
    fn places_garbage_warns_and_disables_affinity() {
        for bad in [
            "0,1",       // braces required for explicit lists
            "{}",        // empty place
            "{0:0}",     // zero-length interval
            "{a}",       // not a number
            "{0},",      // trailing comma
            "{0}{1}",    // missing separator
            "numa",      // unknown keyword
            "{0:2:1:9}", // too many fields
        ] {
            assert_eq!(parse_places(bad), None, "{bad:?}");
            let (icvs, warnings) = env_warn(&[("OMP_PLACES", bad)]);
            assert!(icvs.places.is_none(), "{bad:?}");
            assert_eq!(warnings.len(), 1, "{bad:?} -> {warnings:?}");
            assert!(warnings[0].contains("OMP_PLACES"), "{warnings:?}");
        }
        let (icvs, warnings) = env_warn(&[("OMP_PLACES", "{0,1},{2,3}")]);
        assert_eq!(icvs.places.as_deref(), Some(&vec![vec![0, 1], vec![2, 3]]));
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn display_env_renders_proc_bind_and_places() {
        let banner = display_env(&Icvs::default());
        assert!(banner.contains("OMP_PROC_BIND = 'false'"), "{banner}");
        assert!(banner.contains("OMP_PLACES = 'unset'"), "{banner}");
        let banner = display_env(&env(&[
            ("OMP_PROC_BIND", "spread,close"),
            ("OMP_PLACES", "{0,1},{2,3}"),
        ]));
        assert!(
            banner.contains("OMP_PROC_BIND = 'spread,close'"),
            "{banner}"
        );
        assert!(banner.contains("OMP_PLACES = '{0,1},{2,3}'"), "{banner}");
    }

    #[test]
    fn display_env_renders_pool_shards() {
        let banner = display_env(&Icvs::default());
        assert!(banner.contains("ROMP_POOL_SHARDS = 'auto'"), "{banner}");
        let banner = display_env(&env(&[("ROMP_POOL_SHARDS", "8")]));
        assert!(banner.contains("ROMP_POOL_SHARDS = '8'"), "{banner}");
    }

    #[test]
    fn tune_parses_booleans_and_learner_name() {
        for on in ["1", "true", "on", "yes", "greedy", " GREEDY "] {
            assert_eq!(parse_tune(on), Some(TuneMode::Greedy), "{on:?}");
        }
        for off in ["0", "false", "off", "no"] {
            assert_eq!(parse_tune(off), Some(TuneMode::Off), "{off:?}");
        }
        for bad in ["maybe", "2", "epsilon", ""] {
            assert_eq!(parse_tune(bad), None, "{bad:?}");
        }
        assert_eq!(env(&[("ROMP_TUNE", "off")]).tune, TuneMode::Off);
        assert_eq!(env(&[("ROMP_TUNE", "greedy")]).tune, TuneMode::Greedy);
        assert_eq!(env(&[]).tune, TuneMode::Greedy, "default is armed");
    }

    #[test]
    fn tune_garbage_warns_but_does_not_abort() {
        let (icvs, warnings) = env_warn(&[("ROMP_TUNE", "banana")]);
        assert_eq!(icvs.tune, TuneMode::Greedy, "falls back to the default");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("ROMP_TUNE"), "{warnings:?}");
        // A clean value produces no warning, and the rest of the block
        // still parses around a bad ROMP_TUNE.
        let (icvs, warnings) = env_warn(&[("ROMP_TUNE", "0"), ("OMP_NUM_THREADS", "3")]);
        assert_eq!(icvs.tune, TuneMode::Off);
        assert_eq!(icvs.nthreads, vec![3]);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn display_env_renders_tune_mode() {
        let banner = display_env(&Icvs::default());
        assert!(banner.contains("ROMP_TUNE = 'greedy'"), "{banner}");
        let banner = display_env(&env(&[("ROMP_TUNE", "0")]));
        assert!(banner.contains("ROMP_TUNE = 'off'"), "{banner}");
    }
}
