//! romp-tune: adaptive schedule selection and kernel-variant learning.
//!
//! OpenMP leaves `schedule(auto)` entirely to the implementation, and
//! most runtimes (libomp included) quietly alias it to static — which
//! is exactly wrong for skewed iteration spaces. This subsystem makes
//! `auto` mean something: every `schedule(auto)` worksharing loop (and
//! every `schedule(runtime)` loop whose `run-sched-var` is `auto`) is a
//! *tuned site*. The runtime measures each construct's per-thread busy
//! time, feeds the slowest-thread cost to a per-site learner (the
//! `policy` module), and after a short probing phase locks the site to
//! the measured-fastest of four candidate schedules (static, static(c),
//! dynamic(c), guided). History persists across regions in a sharded
//! global table keyed by [`SiteKey`]: call site × log2 trip bucket, so a
//! loop that grows re-probes at its new scale while a steady-state loop
//! pays only the locked schedule plus one pair of short critical
//! sections per construct.
//!
//! The architecture in one construct:
//!
//! 1. the worksharing driver sees an auto-like schedule on a team
//!    forked with tuning armed ([`crate::icv::TuneMode::Greedy`], the
//!    default — `ROMP_TUNE=0` disarms) and routes to the tuned path;
//! 2. the thread that installs the construct's `WsSlot` asks the site's
//!    learner for a decision and publishes it through the slot, so the
//!    whole team executes the same candidate;
//! 3. every thread accumulates its busy time across its chunks (two
//!    `wtime` reads per chunk — only on this path; disarmed constructs
//!    add zero work);
//! 4. the last thread to finish aggregates sum/max busy time into a
//!    cost and an imbalance ratio and records the sample.
//!
//! The same probe-then-lock learner powers the **kernel-variant
//! registry** ([`registry`], re-exported as `variants`): N
//! interchangeable closures registered under a name, round-robined
//! through measurement windows, then locked to the best throughput —
//! the GHOST `sell_kacz` dispatch pattern with the table learned at run
//! time.
//!
//! Observability: [`display_tune_table`] renders every live site
//! (chosen schedule, imbalance before/after) and appears in the stats
//! banner; [`dump`] is the machine-readable hook benches embed in their
//! JSON. The variant registry mirrors both —
//! [`variants::display_variants_table`](registry::display_variants_table)
//! is its banner section and [`variants::dump`](registry::dump) its
//! machine-readable snapshot. `tune_probes` / `tune_converged` /
//! `tune_evictions` count in [`crate::stats`].

pub mod registry;

mod policy;
mod site;

/// The kernel-variant registry under its public name: `variants::run`,
/// `variants::select`, `variants::record`.
pub use registry as variants;

pub use policy::TuneSample;
pub use site::{trip_bucket, SiteId, SiteKey};

pub(crate) use policy::{decode_decision, SiteEntry};
pub(crate) use site::site_entry;

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::Arc;

thread_local! {
    static SITE_OVERRIDE: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Scope guard returned by [`site_override`]; restores the previous
/// override when dropped.
#[derive(Debug)]
pub struct SiteOverrideGuard {
    prev: Option<&'static str>,
}

impl Drop for SiteOverrideGuard {
    fn drop(&mut self) {
        SITE_OVERRIDE.with(|s| s.set(self.prev));
    }
}

/// Name the next worksharing construct on this thread (the macro
/// `site("…")` clause lowers to this; the builder has `.site()`
/// instead). The override is consumed by the first construct that
/// starts while the guard is live, and the guard restores the previous
/// override on drop.
pub fn site_override(name: &'static str) -> SiteOverrideGuard {
    SiteOverrideGuard {
        prev: SITE_OVERRIDE.with(|s| s.replace(Some(name))),
    }
}

/// Consume this thread's pending site override, if any.
pub(crate) fn take_site_override() -> Option<&'static str> {
    SITE_OVERRIDE.with(|s| s.take())
}

/// Machine-readable snapshot of every live tuned site (the bench dump
/// hook).
pub fn dump() -> Vec<TuneSample> {
    site::entries().iter().map(|e| e.sample()).collect()
}

/// Render the tune table: one line per live site with its learning
/// state. Shown in the stats banner (`ROMP_DISPLAY_ENV=true` and the
/// bench reports); the kernel-variant registry renders as its own
/// section right after it ([`registry::display_variants_table`]).
pub fn display_tune_table() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ROMP TUNE TABLE BEGIN");
    let entries: Vec<Arc<SiteEntry>> = site::entries();
    if entries.is_empty() {
        let _ = writeln!(out, "  (no tuned sites)");
    }
    for e in &entries {
        let s = e.sample();
        let chosen = match &s.chosen {
            Some(c) => format!("schedule({c})"),
            None => "probing".to_string(),
        };
        let _ = writeln!(
            out,
            "  site '{}' [2^{}] = {} (probes={} imbalance {:.2} -> {:.2})",
            s.site, s.bucket, chosen, s.probes, s.imbalance_first, s.imbalance_last
        );
    }
    let _ = writeln!(out, "ROMP TUNE TABLE END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_override_is_consumed_once_and_restores() {
        assert_eq!(take_site_override(), None);
        {
            let _g = site_override("outer");
            {
                let _g2 = site_override("inner");
                assert_eq!(take_site_override(), Some("inner"));
                // Consumed: a second construct would fall back to its
                // caller location.
                assert_eq!(take_site_override(), None);
            }
            // Dropping the inner guard restores the outer name.
            assert_eq!(take_site_override(), Some("outer"));
        }
        assert_eq!(take_site_override(), None);
    }

    #[test]
    fn tune_table_renders_named_sites() {
        let e = site_entry(SiteKey::new(SiteId::Named("tune-mod-display-test"), 512));
        let bits = e.decide(512, 4);
        let (arm, _) = decode_decision(bits);
        e.record(arm, 1.0, 2.0);
        let table = display_tune_table();
        assert!(table.contains("ROMP TUNE TABLE BEGIN"));
        assert!(table.contains("tune-mod-display-test"));
        assert!(table.contains("ROMP TUNE TABLE END"));
        let dumped = dump();
        assert!(dumped.iter().any(|s| s.site == "tune-mod-display-test"));
    }
}
