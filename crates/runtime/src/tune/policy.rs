//! The learning policy: probe-then-lock over a candidate set.
//!
//! One [`Learner`] drives both halves of the subsystem — schedule
//! selection for `schedule(auto)` sites and implementation selection in
//! the kernel-variant registry. The policy is deterministic greedy
//! probing (the ε=0 corner of ε-greedy): cycle the arms round-robin
//! until each has [`PROBE_ROUNDS`] cost samples, then lock to the arm
//! with the lowest mean cost. Round-robin probing makes every arm's
//! sample count equal before the comparison (the fairness property
//! successive halving also relies on), and locking makes the steady
//! state free of exploration noise — the right trade for loop sites
//! that run thousands of times with a stationary best schedule. A site
//! whose behavior shifts with scale is re-probed through the trip
//! bucket in its [`SiteKey`], not by unlocking.

use super::site::SiteKey;
use crate::sched::Schedule;
use parking_lot::Mutex;

/// Cost samples per arm before the lock-in comparison.
pub(crate) const PROBE_ROUNDS: u32 = 3;

/// Probe-then-lock arm selector over `arms` candidates.
#[derive(Debug)]
pub(crate) struct Learner {
    next: usize,
    count: Vec<u32>,
    total: Vec<f64>,
    locked: Option<usize>,
}

impl Learner {
    pub(crate) fn new(arms: usize) -> Self {
        debug_assert!(arms > 0);
        Learner {
            next: 0,
            count: vec![0; arms],
            total: vec![0.0; arms],
            locked: None,
        }
    }

    /// The arm to play now.
    pub(crate) fn decide(&mut self) -> usize {
        self.locked.unwrap_or(self.next)
    }

    /// Record one cost sample for `arm`. Returns `true` on the sample
    /// that causes the learner to lock (convergence).
    pub(crate) fn record(&mut self, arm: usize, cost: f64) -> bool {
        if self.locked.is_some() || arm >= self.count.len() {
            return false;
        }
        self.count[arm] += 1;
        self.total[arm] += cost.max(0.0);
        // Advance the probe cursor past fully-sampled arms. Concurrent
        // teams can over-sample an arm (decide/decide/record/record);
        // the cursor just skips ahead.
        while self.next < self.count.len() && self.count[self.next] >= PROBE_ROUNDS {
            self.next += 1;
        }
        if self.next < self.count.len() {
            return false;
        }
        // Every arm fully sampled: lock to the lowest mean cost.
        let best = (0..self.count.len())
            .min_by(|&a, &b| self.mean(a).total_cmp(&self.mean(b)))
            .unwrap_or(0);
        self.locked = Some(best);
        true
    }

    pub(crate) fn mean(&self, arm: usize) -> f64 {
        if self.count[arm] == 0 {
            f64::INFINITY
        } else {
            self.total[arm] / self.count[arm] as f64
        }
    }

    pub(crate) fn locked(&self) -> Option<usize> {
        self.locked
    }
}

/// Candidate schedules for a site with `trip` iterations on `threads`
/// threads: the four families of the issue's candidate set, with chunk
/// sizes scaled so each candidate is a *reasonable* member of its
/// family (≈4 chunks/thread static, ≈8 chunks/thread dynamic — enough
/// slack to rebalance without drowning in dispatch).
pub(crate) fn candidates(trip: u64, threads: usize) -> [Schedule; 4] {
    let t = threads.max(1) as u64;
    [
        Schedule::static_block(),
        Schedule::static_chunk((trip / (t * 4)).max(1)),
        Schedule::dynamic_chunk((trip / (t * 8)).max(1)),
        Schedule::guided(),
    ]
}

// The team-uniform decision travels through one `WsSlot` atomic:
// `arm << 56 | kind << 48 | chunk`. Chunks above 2^48 saturate — a
// chunk that large covers any real trip in one piece anyway.
const CHUNK_MASK: u64 = (1 << 48) - 1;

pub(crate) fn encode_decision(arm: usize, sched: Schedule) -> u64 {
    let (kind, chunk) = match sched {
        Schedule::Static { chunk: None } => (0u64, 0u64),
        Schedule::Static { chunk: Some(c) } => (1, c),
        Schedule::Dynamic { chunk } => (2, chunk),
        Schedule::Guided { chunk } => (3, chunk),
        // `candidates` never emits these.
        Schedule::Runtime | Schedule::Auto => (0, 0),
    };
    ((arm as u64) << 56) | (kind << 48) | chunk.min(CHUNK_MASK)
}

pub(crate) fn decode_decision(bits: u64) -> (usize, Schedule) {
    let arm = (bits >> 56) as usize;
    let chunk = bits & CHUNK_MASK;
    let sched = match (bits >> 48) & 0xff {
        0 => Schedule::static_block(),
        1 => Schedule::static_chunk(chunk.max(1)),
        2 => Schedule::dynamic_chunk(chunk.max(1)),
        _ => Schedule::guided_chunk(chunk.max(1)),
    };
    (arm, sched)
}

/// Mutable learner state for one site, behind the entry's mutex.
#[derive(Debug)]
struct SiteState {
    learner: Learner,
    /// Fixed at the first decision from the first-seen (trip, threads);
    /// trips within the bucket are within 2× of each other, so the set
    /// stays representative.
    candidates: Option<[Schedule; 4]>,
    probes: u64,
    imbalance_first: Option<f64>,
    imbalance_last: f64,
}

/// One site's history-table entry: the learner plus its observability
/// surface (probe count, imbalance trajectory).
#[derive(Debug)]
pub struct SiteEntry {
    key: SiteKey,
    state: Mutex<SiteState>,
}

impl SiteEntry {
    pub(crate) fn new(key: SiteKey) -> Self {
        SiteEntry {
            key,
            state: Mutex::new(SiteState {
                learner: Learner::new(4),
                candidates: None,
                probes: 0,
                imbalance_first: None,
                imbalance_last: 1.0,
            }),
        }
    }

    pub(crate) fn key(&self) -> &SiteKey {
        &self.key
    }

    /// The schedule this construct should run, encoded for the slot.
    /// Called by the one thread that installs the worksharing slot, so
    /// the whole team executes the same candidate.
    pub(crate) fn decide(&self, trip: u64, threads: usize) -> u64 {
        let mut s = self.state.lock();
        let cands = *s
            .candidates
            .get_or_insert_with(|| candidates(trip, threads));
        // `Learner::decide` returns `locked.unwrap_or(next)`, and
        // `record` locks in the very call that advances `next` to
        // `len`, so an unlocked learner always has `next < len` and
        // the index below cannot overrun. Clamp anyway: this runs on
        // the slot-installing thread mid-construct, where an index
        // panic would abort the whole team's region — replaying the
        // last probe arm is the strictly better failure mode.
        let arm = s.learner.decide().min(cands.len() - 1);
        encode_decision(arm, cands[arm])
    }

    /// Record one construct's measured cost (the slowest thread's busy
    /// time, in seconds) and imbalance ratio (max/mean busy time, ≥ 1).
    /// Called by the last thread to finish the construct.
    pub(crate) fn record(&self, arm: usize, cost: f64, imbalance: f64) {
        let mut s = self.state.lock();
        if s.imbalance_first.is_none() {
            s.imbalance_first = Some(imbalance);
        }
        s.imbalance_last = imbalance;
        if s.learner.locked().is_none() {
            s.probes += 1;
            crate::stats::bump(&crate::stats::stats().tune_probes);
            if s.learner.record(arm, cost) {
                crate::stats::bump(&crate::stats::stats().tune_converged);
            }
        }
    }

    /// Observability snapshot for the tune table / bench dump.
    pub(crate) fn sample(&self) -> TuneSample {
        let s = self.state.lock();
        let chosen = s
            .learner
            .locked()
            .and_then(|arm| s.candidates.map(|c| c[arm]));
        TuneSample {
            site: self.key.site.to_string(),
            bucket: self.key.bucket,
            converged: chosen.is_some(),
            chosen: chosen.map(|sched| sched.to_string()),
            probes: s.probes,
            imbalance_first: s.imbalance_first.unwrap_or(1.0),
            imbalance_last: s.imbalance_last,
        }
    }
}

/// Machine-readable view of one site's learning state (the bench dump
/// hook: see [`crate::tune::dump`]).
#[derive(Debug, Clone)]
pub struct TuneSample {
    /// Site display name (`file:line:col` or the explicit name).
    pub site: String,
    /// Log2 trip bucket.
    pub bucket: u32,
    /// Has the learner locked to a schedule?
    pub converged: bool,
    /// The locked schedule, rendered in clause syntax.
    pub chosen: Option<String>,
    /// Probe constructs recorded before convergence.
    pub probes: u64,
    /// Imbalance ratio of the first recorded construct.
    pub imbalance_first: f64,
    /// Imbalance ratio of the most recent construct.
    pub imbalance_last: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learner_probes_round_robin_then_locks_to_cheapest() {
        let mut l = Learner::new(3);
        let costs = [5.0, 1.0, 3.0];
        let mut converged_events = 0;
        for _ in 0..(3 * PROBE_ROUNDS) {
            let arm = l.decide();
            if l.record(arm, costs[arm]) {
                converged_events += 1;
            }
        }
        assert_eq!(converged_events, 1);
        assert_eq!(l.locked(), Some(1));
        // Locked: decide is stable and record is a no-op.
        assert_eq!(l.decide(), 1);
        assert!(!l.record(1, 100.0));
        assert_eq!(l.locked(), Some(1));
    }

    #[test]
    fn learner_tolerates_oversampling() {
        let mut l = Learner::new(2);
        // Two teams probing concurrently: decide twice, record twice.
        // Extra samples pile onto the cursor arm, but the learner still
        // reaches full coverage and locks.
        let mut rounds = 0;
        while l.locked().is_none() {
            rounds += 1;
            assert!(rounds < 100, "oversampled learner never locked");
            let a = l.decide();
            let b = l.decide();
            l.record(a, 2.0);
            l.record(b, 2.0);
        }
        assert!(l.locked().is_some());
    }

    #[test]
    fn decision_encoding_round_trips() {
        for (arm, sched) in [
            (0usize, Schedule::static_block()),
            (1, Schedule::static_chunk(17)),
            (2, Schedule::dynamic_chunk(1)),
            (3, Schedule::guided_chunk(9)),
        ] {
            let (a, s) = decode_decision(encode_decision(arm, sched));
            assert_eq!(a, arm);
            assert_eq!(s, sched);
        }
        // Oversized chunks saturate instead of corrupting the kind bits.
        let (a, s) = decode_decision(encode_decision(2, Schedule::dynamic_chunk(u64::MAX)));
        assert_eq!(a, 2);
        assert!(matches!(s, Schedule::Dynamic { chunk } if chunk == (1 << 48) - 1));
    }

    #[test]
    fn candidates_cover_the_four_families_with_sane_chunks() {
        let c = candidates(1000, 4);
        assert_eq!(c[0], Schedule::static_block());
        assert!(matches!(c[1], Schedule::Static { chunk: Some(ch) } if ch >= 1));
        assert!(matches!(c[2], Schedule::Dynamic { chunk } if chunk >= 1));
        assert!(matches!(c[3], Schedule::Guided { chunk } if chunk >= 1));
        // Tiny trips degrade to chunk 1, never 0.
        let c = candidates(1, 8);
        assert!(matches!(c[1], Schedule::Static { chunk: Some(1) }));
        assert!(matches!(c[2], Schedule::Dynamic { chunk: 1 }));
    }

    #[test]
    fn site_entry_converges_and_reports() {
        let e = SiteEntry::new(SiteKey::new(
            super::super::SiteId::Named("policy-test"),
            100,
        ));
        let mut iters = 0;
        loop {
            iters += 1;
            let bits = e.decide(100, 4);
            let (arm, _) = decode_decision(bits);
            // Arm 2 (dynamic) is fastest in this synthetic cost model.
            let cost = if arm == 2 { 1.0 } else { 4.0 };
            e.record(arm, cost, 1.5);
            if e.sample().converged {
                break;
            }
            assert!(iters < 100, "never converged");
        }
        let s = e.sample();
        assert_eq!(s.probes as u32, 4 * PROBE_ROUNDS);
        assert!(s.chosen.as_deref().unwrap().starts_with("dynamic"));
        assert_eq!(s.bucket, 7);
    }
}
