//! Loop-site identity and the sharded history table.
//!
//! Every worksharing loop that reaches the tuner is identified by a
//! [`SiteKey`]: *where* the loop lives ([`SiteId`]) × *how big* it is
//! (a log2 trip-count bucket). The key indexes a process-global table
//! of [`SiteEntry`] learners. The table is sharded the same way as the
//! idle-worker pool (PR 6): a key hashes to one of a fixed set of
//! mutex-protected maps, so concurrent teams tuning different sites
//! never serialize on a single global lock — and a construct takes at
//! most two short critical sections (decide at install, record at the
//! last report), never one per chunk.

use super::policy::SiteEntry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Identity of one worksharing-loop site.
///
/// The macro and builder front ends stamp sites automatically through
/// `#[track_caller]` propagation (the location of the `omp_for!` /
/// `par_for` invocation in *user* code); an explicit name — the builder
/// `.site("…")` method, the macro `site("…")` clause, or the translator
/// stamp carrying the original `//#omp` source position — overrides it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteId {
    /// An explicitly named site.
    Named(&'static str),
    /// A `#[track_caller]` call site.
    Caller {
        /// Source file of the invocation.
        file: &'static str,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
}

impl SiteId {
    /// Build a site id from a caller location.
    pub fn from_caller(loc: &'static core::panic::Location<'static>) -> Self {
        SiteId::Caller {
            file: loc.file(),
            line: loc.line(),
            col: loc.column(),
        }
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteId::Named(name) => f.write_str(name),
            SiteId::Caller { file, line, col } => write!(f, "{file}:{line}:{col}"),
        }
    }
}

/// Log2 trip-count bucket: trips within a factor of two share a bucket
/// (and therefore a learner), so the chosen schedule tracks the loop's
/// *scale* without fragmenting history over exact trip counts.
pub fn trip_bucket(trip: u64) -> u32 {
    64 - trip.leading_zeros()
}

/// History-table key: loop site × trip bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteKey {
    /// Where the loop lives.
    pub site: SiteId,
    /// [`trip_bucket`] of the normalized trip count.
    pub bucket: u32,
}

impl SiteKey {
    /// Key for `site` running `trip` iterations.
    pub fn new(site: SiteId, trip: u64) -> Self {
        SiteKey {
            site,
            bucket: trip_bucket(trip),
        }
    }
}

impl fmt::Display for SiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [2^{}]", self.site, self.bucket)
    }
}

/// Shard count. Fixed (not hardware-derived): the table is consulted
/// once per tuned construct, not per chunk, so 16 ways of parallelism
/// is plenty while keeping the full-table snapshot cheap.
const SHARDS: usize = 16;

/// Per-shard entry cap. A site set larger than `SHARDS * SHARD_CAP`
/// (1024 live learners) evicts arbitrarily — tuning degrades to
/// re-probing, never to unbounded memory.
const SHARD_CAP: usize = 64;

struct Table {
    shards: Vec<Mutex<HashMap<SiteKey, Arc<SiteEntry>>>>,
}

fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| Table {
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
    })
}

fn shard_of(key: &SiteKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Fetch (or create) the learner for `key`.
pub(crate) fn site_entry(key: SiteKey) -> Arc<SiteEntry> {
    site_entry_in(table(), key)
}

fn site_entry_in(t: &Table, key: SiteKey) -> Arc<SiteEntry> {
    let mut shard = t.shards[shard_of(&key)].lock();
    if let Some(e) = shard.get(&key) {
        return e.clone();
    }
    if shard.len() >= SHARD_CAP {
        // Capacity: drop an arbitrary resident learner. Its site will
        // simply re-probe if it comes back.
        if let Some(victim) = shard.keys().next().copied() {
            shard.remove(&victim);
            crate::stats::bump(&crate::stats::stats().tune_evictions);
        }
    }
    let e = Arc::new(SiteEntry::new(key));
    shard.insert(key, e.clone());
    e
}

/// Snapshot every live learner, ordered by site for stable display.
pub(crate) fn entries() -> Vec<Arc<SiteEntry>> {
    let mut all: Vec<Arc<SiteEntry>> = Vec::new();
    for shard in &table().shards {
        all.extend(shard.lock().values().cloned());
    }
    all.sort_by_key(|e| (e.key().to_string(), e.key().bucket));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_bucket_is_log2() {
        assert_eq!(trip_bucket(0), 0);
        assert_eq!(trip_bucket(1), 1);
        assert_eq!(trip_bucket(2), 2);
        assert_eq!(trip_bucket(3), 2);
        assert_eq!(trip_bucket(4), 3);
        assert_eq!(trip_bucket(1 << 20), 21);
        assert_eq!(trip_bucket(u64::MAX), 64);
    }

    #[test]
    fn same_site_same_bucket_shares_an_entry() {
        let site = SiteId::Named("tune-site-test-a");
        let a = site_entry(SiteKey::new(site, 1000));
        let b = site_entry(SiteKey::new(site, 1023)); // same 2^10 bucket
        assert!(Arc::ptr_eq(&a, &b));
        let c = site_entry(SiteKey::new(site, 5000)); // different bucket
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn distinct_sites_get_distinct_entries() {
        let a = site_entry(SiteKey::new(SiteId::Named("tune-site-test-b"), 64));
        let b = site_entry(SiteKey::new(SiteId::Named("tune-site-test-c"), 64));
        assert!(!Arc::ptr_eq(&a, &b));
        let ca = site_entry(SiteKey::new(
            SiteId::Caller {
                file: "x.rs",
                line: 1,
                col: 5,
            },
            64,
        ));
        let cb = site_entry(SiteKey::new(
            SiteId::Caller {
                file: "x.rs",
                line: 2,
                col: 5,
            },
            64,
        ));
        assert!(!Arc::ptr_eq(&ca, &cb));
    }

    #[test]
    fn shard_cap_evicts_instead_of_growing() {
        // Flood a private table far past its capacity (the live global
        // table is shared with concurrently running tests); every
        // shard must stay at or under its cap.
        let t = Table {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        };
        let evicted_before = crate::stats::stats()
            .tune_evictions
            .load(std::sync::atomic::Ordering::Relaxed);
        for line in 0..(SHARDS as u32 * SHARD_CAP as u32 * 3) {
            site_entry_in(
                &t,
                SiteKey::new(
                    SiteId::Caller {
                        file: "tune-site-test-flood.rs",
                        line,
                        col: 1,
                    },
                    64,
                ),
            );
        }
        for shard in &t.shards {
            assert!(shard.lock().len() <= SHARD_CAP);
        }
        let evicted_after = crate::stats::stats()
            .tune_evictions
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(evicted_after > evicted_before);
    }
}
