//! Kernel-variant registry: measured selection between interchangeable
//! implementations.
//!
//! The GHOST library keys its sparse kernels by run-time parameters and
//! picks an implementation at call time; this module is that pattern
//! with the choice *learned* instead of table-driven. A call site
//! registers N interchangeable closures under a name; the registry
//! round-robins measurement windows across them (the same
//! probe-then-lock learner as the schedule autotuner, cost = seconds
//! per unit of work, i.e. the
//! reciprocal of throughput) and then locks to the best-throughput
//! variant. The key includes the log2 work bucket, so a kernel whose
//! best variant depends on problem scale re-probes when the scale
//! changes.
//!
//! ```
//! use romp_runtime::tune::variants;
//!
//! let n = 1u64 << 14;
//! let out = variants::run("demo-sum", n, 2, |which| match which {
//!     0 => (0..n).sum::<u64>(),
//!     _ => n * (n - 1) / 2,
//! });
//! assert_eq!(out, n * (n - 1) / 2);
//! ```
//!
//! Selection happens on the calling thread — for a parallel kernel,
//! select *before* the fork (or outside the construct) so the whole
//! team runs the same variant.

use super::policy::Learner;
use super::site::trip_bucket;
use crate::wtime::get_wtime;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
struct VarState {
    learner: Learner,
    probes: u64,
}

#[derive(Debug)]
struct VarEntry {
    name: &'static str,
    bucket: u32,
    variants: usize,
    state: Mutex<VarState>,
}

/// (kernel name, log2 work bucket) → variant learner.
type VarMap = HashMap<(&'static str, u32), Arc<VarEntry>>;

fn registry() -> &'static Mutex<VarMap> {
    static REGISTRY: OnceLock<Mutex<VarMap>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn entry(name: &'static str, bucket: u32, n_variants: usize) -> Arc<VarEntry> {
    let mut reg = registry().lock();
    reg.entry((name, bucket))
        .or_insert_with(|| {
            Arc::new(VarEntry {
                name,
                bucket,
                variants: n_variants.max(1),
                state: Mutex::new(VarState {
                    learner: Learner::new(n_variants.max(1)),
                    probes: 0,
                }),
            })
        })
        .clone()
}

/// A pending variant selection: which implementation to run, plus the
/// key for reporting the measurement back via [`record`].
#[derive(Debug)]
#[must_use = "run the chosen variant and report it back with `record`"]
pub struct VariantChoice {
    entry: Arc<VarEntry>,
    index: usize,
    work: u64,
}

impl VariantChoice {
    /// Index of the variant to execute (`0..n_variants`).
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Choose which of `n_variants` implementations of `name` to run for a
/// call doing `work` units (iterations, rows, bytes — any unit, as long
/// as it is proportional to the call's intrinsic cost).
pub fn select(name: &'static str, work: u64, n_variants: usize) -> VariantChoice {
    let e = entry(name, trip_bucket(work), n_variants);
    // `e.variants` is `n_variants.max(1)` at construction, so the `- 1`
    // cannot underflow even for a (nonsensical) zero-variant call; the
    // `min` also pins the index inside the *cached* entry's arm count
    // when a kernel name is re-registered with a different n_variants.
    let index = e.state.lock().learner.decide().min(e.variants - 1);
    VariantChoice {
        entry: e,
        index,
        work: work.max(1),
    }
}

/// Report the measured wall time of the variant chosen by [`select`].
pub fn record(choice: VariantChoice, elapsed_sec: f64) {
    let mut s = choice.entry.state.lock();
    if s.learner.locked().is_none() {
        s.probes += 1;
        crate::stats::bump(&crate::stats::stats().tune_probes);
        // Cost per unit of work: the learner minimizes it, which
        // maximizes throughput.
        if s.learner
            .record(choice.index, elapsed_sec.max(0.0) / choice.work as f64)
        {
            crate::stats::bump(&crate::stats::stats().tune_converged);
        }
    }
}

/// Select, time and record in one call: run the `body` with the chosen
/// variant index and return its result.
pub fn run<R>(
    name: &'static str,
    work: u64,
    n_variants: usize,
    body: impl FnOnce(usize) -> R,
) -> R {
    let choice = select(name, work, n_variants);
    let index = choice.index();
    let t0 = get_wtime();
    let out = body(index);
    record(choice, get_wtime() - t0);
    out
}

/// Machine-readable snapshot of one registry entry: the counterpart of
/// [`crate::tune::TuneSample`] for kernel-variant selection, so bench
/// JSON and tests can see *which* implementation each (kernel, scale)
/// pair locked to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSample {
    /// Kernel name as registered with [`select`]/[`run`].
    pub name: &'static str,
    /// Log2 work bucket the entry is keyed under.
    pub bucket: u32,
    /// How many interchangeable implementations were offered.
    pub n_variants: usize,
    /// The locked variant index, or `None` while still probing.
    pub chosen: Option<usize>,
    /// Measurement windows recorded so far.
    pub probes: u64,
}

/// Machine-readable snapshot of every live registry entry, sorted by
/// (name, bucket) — the variant-registry counterpart of
/// [`crate::tune::dump`].
pub fn dump() -> Vec<VariantSample> {
    let mut entries: Vec<Arc<VarEntry>> = registry().lock().values().cloned().collect();
    entries.sort_by_key(|e| (e.name, e.bucket));
    entries
        .iter()
        .map(|e| {
            let s = e.state.lock();
            VariantSample {
                name: e.name,
                bucket: e.bucket,
                n_variants: e.variants,
                chosen: s.learner.locked(),
                probes: s.probes,
            }
        })
        .collect()
}

/// Render the registry as a stats-banner section (mirrors
/// [`crate::tune::display_tune_table`]): one line per (kernel, bucket)
/// with the locked variant or probe progress.
pub fn display_variants_table() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ROMP VARIANT REGISTRY BEGIN");
    let samples = dump();
    if samples.is_empty() {
        let _ = writeln!(out, "  (no registered kernels)");
    }
    for s in samples {
        let chosen = match s.chosen {
            Some(i) => format!("variant {i}/{}", s.n_variants),
            None => format!("probing {}-way", s.n_variants),
        };
        let _ = writeln!(
            out,
            "  kernel '{}' [2^{}] = {} (probes={})",
            s.name, s.bucket, chosen, s.probes
        );
    }
    let _ = writeln!(out, "ROMP VARIANT REGISTRY END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune::policy::PROBE_ROUNDS;

    #[test]
    fn registry_locks_to_the_fastest_variant() {
        // Unique name per test process run is unnecessary — the key is
        // this literal, private to this test.
        let name = "registry-test-fastest";
        let work = 1u64 << 10;
        let mut seen = Vec::new();
        for _ in 0..(3 * PROBE_ROUNDS + 4) {
            let c = select(name, work, 3);
            let i = c.index();
            seen.push(i);
            // Variant 1 is 10x faster.
            record(c, if i == 1 { 1e-6 } else { 1e-5 });
        }
        // After probing, every further selection is the fast variant.
        assert!(seen[(3 * PROBE_ROUNDS) as usize..].iter().all(|&i| i == 1));
    }

    #[test]
    fn bucket_change_reprobes() {
        let name = "registry-test-buckets";
        for _ in 0..PROBE_ROUNDS * 2 {
            let c = select(name, 100, 2);
            record(c, 1e-6);
        }
        // A different work scale lands in a fresh learner: probing
        // restarts from variant 0.
        let c = select(name, 1 << 20, 2);
        assert_eq!(c.index(), 0);
        record(c, 1e-6);
    }

    #[test]
    fn run_helper_returns_the_body_result() {
        let out = run("registry-test-run", 64, 2, |which| which + 41);
        assert!(out == 41 || out == 42);
    }

    #[test]
    fn dump_and_banner_expose_selection_state() {
        let name = "registry-test-dump";
        for _ in 0..(2 * PROBE_ROUNDS + 2) {
            let c = select(name, 1 << 8, 2);
            let i = c.index();
            record(c, if i == 0 { 1e-6 } else { 1e-5 });
        }
        let sample = dump()
            .into_iter()
            .find(|s| s.name == name)
            .expect("dumped entry");
        assert_eq!(sample.n_variants, 2);
        assert_eq!(sample.chosen, Some(0), "locked to the fast variant");
        assert!(sample.probes > 0);
        let banner = display_variants_table();
        assert!(banner.contains("ROMP VARIANT REGISTRY BEGIN"));
        assert!(banner.contains(name));
        assert!(banner.contains("variant 0/2"));
        assert!(banner.contains("ROMP VARIANT REGISTRY END"));
    }
}
