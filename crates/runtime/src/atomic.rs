//! `omp atomic` support for floating-point types.
//!
//! OpenMP's `atomic` construct covers `x += expr` on doubles, which has
//! no native hardware atomic on most ISAs; implementations lower it to a
//! compare-exchange loop on the bit pattern. [`AtomicF64`] provides that
//! lowering, so romp code can write the idiomatic translation of
//! `#pragma omp atomic` without a critical section (ablation A3 shows
//! the gap).

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` with atomic read-modify-write operations, via CAS on the
/// bit representation.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// New atomic double.
    pub fn new(v: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.bits.load(order))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.bits.store(v.to_bits(), order);
    }

    /// Atomic read-modify-write with an arbitrary pure update function;
    /// returns the previous value. The CAS loop retries under
    /// contention, so `f` may run multiple times.
    #[inline]
    pub fn fetch_update_with(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(seen) => cur = seen,
            }
        }
    }

    /// `#pragma omp atomic` `x += v`; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        self.fetch_update_with(|x| x + v)
    }

    /// `x *= v`.
    #[inline]
    pub fn fetch_mul(&self, v: f64) -> f64 {
        self.fetch_update_with(|x| x * v)
    }

    /// `x = min(x, v)`.
    #[inline]
    pub fn fetch_min(&self, v: f64) -> f64 {
        self.fetch_update_with(|x| x.min(v))
    }

    /// `x = max(x, v)`.
    #[inline]
    pub fn fetch_max(&self, v: f64) -> f64 {
        self.fetch_update_with(|x| x.max(v))
    }

    /// Consume and return the value.
    pub fn into_inner(self) -> f64 {
        f64::from_bits(self.bits.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{fork, ForkSpec};
    use crate::sched::Schedule;

    #[test]
    fn basic_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(Ordering::SeqCst), 1.5);
        assert_eq!(a.fetch_add(2.0), 1.5);
        assert_eq!(a.load(Ordering::SeqCst), 3.5);
        assert_eq!(a.fetch_mul(2.0), 3.5);
        assert_eq!(a.load(Ordering::SeqCst), 7.0);
        a.fetch_min(5.0);
        assert_eq!(a.load(Ordering::SeqCst), 5.0);
        a.fetch_max(6.5);
        assert_eq!(a.into_inner(), 6.5);
    }

    #[test]
    fn store_overwrites() {
        let a = AtomicF64::new(0.0);
        a.store(-3.25, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), -3.25);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let acc = AtomicF64::new(0.0);
        fork(ForkSpec::with_num_threads(4), |ctx| {
            ctx.ws_for(0..10_000, Schedule::dynamic_chunk(64), false, |_i| {
                acc.fetch_add(0.5);
            });
        });
        assert_eq!(acc.load(Ordering::SeqCst), 5_000.0);
    }

    #[test]
    fn concurrent_max_finds_global_max() {
        let data: Vec<f64> = (0..5000).map(|i| ((i * 7919) % 4999) as f64).collect();
        let m = AtomicF64::new(f64::NEG_INFINITY);
        fork(ForkSpec::with_num_threads(4), |ctx| {
            ctx.ws_for(0..data.len(), Schedule::static_block(), false, |i| {
                m.fetch_max(data[i]);
            });
        });
        let expect = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(m.load(Ordering::SeqCst), expect);
    }
}
