//! Internal control variables (ICVs), OpenMP 5.2 §2.
//!
//! A single global ICV block is initialized once from the `OMP_*`
//! environment (see [`crate::env`]) and may be adjusted afterwards through
//! the `omp_set_*` API (which lands in a per-thread `TlsOverride`) or
//! through [`with_global_mut`]. Tests that must not perturb concurrently
//! running tests drive per-thread knobs via the TLS override instead of
//! mutating the global block.
//!
//! Simplification relative to the full spec: `nthreads-var` and friends
//! are process-global plus a per-OS-thread override, rather than being
//! carried per *data environment*. For the flat and one-level-nested
//! regions the paper exercises this is observationally equivalent; the
//! difference would only show up when a task changes an ICV and expects
//! siblings not to see it.

use crate::barrier::BarrierKind;
use crate::sched::Schedule;
use parking_lot::RwLock;
use std::cell::RefCell;
use std::sync::OnceLock;

/// How threads wait at barriers and for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Spin aggressively (`OMP_WAIT_POLICY=active`): lowest latency,
    /// burns CPU.
    Active,
    /// Park almost immediately (`OMP_WAIT_POLICY=passive`).
    Passive,
    /// Spin briefly, then park (the default).
    Hybrid,
}

impl WaitPolicy {
    /// Number of spin iterations before parking.
    pub fn spin_budget(self) -> u32 {
        match self {
            WaitPolicy::Active => u32::MAX,
            WaitPolicy::Passive => 8,
            WaitPolicy::Hybrid => 20_000,
        }
    }
}

/// Thread-affinity policy (`OMP_PROC_BIND` / `proc_bind` clause). The
/// policy is **enforced** where the platform allows: at fork time the
/// team partitions its master's `OMP_PLACES` slice per this policy and
/// each thread is pinned with `sched_setaffinity` (see
/// [`crate::affinity`]); where the syscall is unavailable the policy
/// degrades to advisory — counted and warned once, never fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcBind {
    /// No binding requested.
    False,
    /// Bind, placement unspecified.
    True,
    /// Pack threads close to the master.
    Close,
    /// Spread threads across places.
    Spread,
    /// Keep threads on the master's place.
    Master,
}

/// Schedule-autotuner mode (romp extension, `ROMP_TUNE`). See
/// [`crate::tune`] for the subsystem this arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TuneMode {
    /// Tuning disarmed: `schedule(auto)` degrades to the static default
    /// and the worksharing drivers add zero measurement work.
    Off,
    /// Probe-then-lock greedy learner (the default): `schedule(auto)`
    /// sites cycle a candidate set under measurement, then lock to the
    /// fastest.
    #[default]
    Greedy,
}

/// The ICV block.
#[derive(Debug, Clone)]
pub struct Icvs {
    /// `nthreads-var`: requested team sizes per nesting level
    /// (`OMP_NUM_THREADS=4,2` means 4-thread outer teams, 2-thread inner).
    /// Empty = use the hardware concurrency.
    pub nthreads: Vec<usize>,
    /// `dyn-var`: may the runtime shrink teams under load?
    pub dynamic: bool,
    /// `max-active-levels-var`: nesting depth that may still fork.
    pub max_active_levels: usize,
    /// `thread-limit-var`: hard cap on pool size.
    pub thread_limit: usize,
    /// `run-sched-var`: what `schedule(runtime)` resolves to.
    pub run_sched: Schedule,
    /// `wait-policy-var`.
    pub wait_policy: WaitPolicy,
    /// `bind-var`: requested thread-affinity policy per nesting level
    /// (`OMP_PROC_BIND=spread,close` means spread the outer team over
    /// the places, pack each inner team close to its master). Empty =
    /// no binding requested ([`ProcBind::False`] at every level).
    pub proc_bind: Vec<ProcBind>,
    /// `place-partition-var` seed: the parsed `OMP_PLACES` list (each
    /// place a set of CPU ids). `None` = no places configured; binding
    /// requests then fall back to one place per hardware thread.
    pub places: Option<std::sync::Arc<Vec<Vec<usize>>>>,
    /// `stacksize-var` (`OMP_STACKSIZE`), bytes; applied to spawned
    /// workers.
    pub stacksize: Option<usize>,
    /// Which barrier algorithm teams use (romp extension,
    /// `ROMP_BARRIER=central|dissemination`).
    pub barrier_kind: BarrierKind,
    /// May the runtime cache **hot teams** — the master's last team,
    /// kept bound to its workers between consecutive parallel regions
    /// so a fork is a doorbell ring instead of a pool round-trip (romp
    /// extension, `ROMP_HOT_TEAMS=true|false`, default true; the
    /// analogue of libomp's `KMP_HOT_TEAMS_MODE`).
    pub hot_teams: bool,
    /// `cancel-var` (`OMP_CANCELLATION`, default false): is the
    /// cancellation machinery armed? When false, `cancel` is a no-op
    /// and every `cancellation point` reports "not cancelled", per the
    /// spec. The `ROMP_CANCELLATION` variable overrides
    /// `OMP_CANCELLATION` when both are set (romp extension, so the
    /// romp knob wins in environments with a site-wide OpenMP profile).
    pub cancellation: bool,
    /// Number of idle-worker pool shards (romp extension,
    /// `ROMP_POOL_SHARDS`; 0 = auto-size from the hardware thread
    /// count). Each forking master hashes to a home shard, so
    /// concurrent masters acquire and release workers without
    /// serializing on one global lock. Read **once**, at first pool
    /// use, and frozen for the process lifetime; later changes are not
    /// observed. `ROMP_POOL_SHARDS=1` restores the pre-sharding global
    /// free list (the baseline the syncbench server mode measures
    /// against).
    pub pool_shards: usize,
    /// Schedule-autotuner mode (romp extension,
    /// `ROMP_TUNE=0|1|off|greedy`, default greedy): whether
    /// `schedule(auto)` loops are measured and adapted by
    /// [`crate::tune`]. Snapshotted into the team at fork time, so a
    /// region's loops are uniformly armed or uniformly disarmed.
    pub tune: TuneMode,
}

/// Hardware concurrency with a sane floor. Cached **for the process
/// lifetime**: the runtime consults this on every fork (team sizing,
/// oversubscription heuristics, the default `thread-limit-var`), and
/// `std::thread::available_parallelism` re-reads the cgroup quota files
/// on every call — ~10µs of syscalls that would dwarf a hot fork. The
/// deliberate consequence is that a cgroup CPU-quota change at runtime
/// (container resize) is not observed; set `OMP_NUM_THREADS` /
/// `OMP_THREAD_LIMIT` explicitly where that matters.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

impl Default for Icvs {
    fn default() -> Self {
        Icvs {
            nthreads: Vec::new(),
            dynamic: false,
            max_active_levels: 1,
            thread_limit: 4 * hardware_threads().max(64),
            run_sched: Schedule::Static { chunk: None },
            wait_policy: WaitPolicy::Hybrid,
            proc_bind: Vec::new(),
            places: None,
            stacksize: None,
            barrier_kind: BarrierKind::Central,
            hot_teams: true,
            cancellation: false,
            pool_shards: 0,
            tune: TuneMode::default(),
        }
    }
}

impl Icvs {
    /// Requested team size for a region starting at nesting `level`
    /// (0 = outermost).
    pub fn nthreads_for_level(&self, level: usize) -> usize {
        if self.nthreads.is_empty() {
            hardware_threads()
        } else {
            let idx = level.min(self.nthreads.len() - 1);
            self.nthreads[idx].max(1)
        }
    }

    /// Requested affinity policy for a region starting at nesting
    /// `level` (same per-level-list-then-saturate rule as
    /// [`Self::nthreads_for_level`]; empty list = no binding).
    pub fn proc_bind_for_level(&self, level: usize) -> ProcBind {
        if self.proc_bind.is_empty() {
            ProcBind::False
        } else {
            self.proc_bind[level.min(self.proc_bind.len() - 1)]
        }
    }
}

fn global_cell() -> &'static RwLock<Icvs> {
    static GLOBAL: OnceLock<RwLock<Icvs>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(crate::env::icvs_from_env()))
}

/// Read a copy of the global ICVs (with any thread-local overrides from
/// `omp_set_*` applied on top).
pub fn current() -> Icvs {
    let mut base = global_cell().read().clone();
    TLS_OVERRIDE.with(|o| {
        if let Some(ovr) = o.borrow().as_ref() {
            if let Some(n) = ovr.num_threads {
                base.nthreads = vec![n];
            }
            if let Some(d) = ovr.dynamic {
                base.dynamic = d;
            }
            if let Some(m) = ovr.max_active_levels {
                base.max_active_levels = m;
            }
            if let Some(s) = ovr.run_sched {
                base.run_sched = s;
            }
            if let Some(h) = ovr.hot_teams {
                base.hot_teams = h;
            }
            if let Some(c) = ovr.cancellation {
                base.cancellation = c;
            }
            if let Some(t) = ovr.tune {
                base.tune = t;
            }
            if let Some(pb) = ovr.proc_bind.as_ref() {
                base.proc_bind = pb.clone();
            }
            if let Some(pl) = ovr.places.as_ref() {
                base.places = Some(pl.clone());
            }
        }
    });
    base
}

/// Mutate the global block in place.
pub fn with_global_mut<R>(f: impl FnOnce(&mut Icvs) -> R) -> R {
    f(&mut global_cell().write())
}

/// Per-OS-thread ICV overrides set through the `omp_set_*` API.
#[derive(Debug, Default, Clone)]
pub(crate) struct TlsOverride {
    pub num_threads: Option<usize>,
    pub dynamic: Option<bool>,
    pub max_active_levels: Option<usize>,
    pub run_sched: Option<Schedule>,
    /// Per-thread hot-team opt-out. No `omp_set_*` sets this; it lets
    /// tests drive the cold path hermetically without mutating the
    /// process-global block out from under concurrently-running tests.
    pub hot_teams: Option<bool>,
    /// Per-thread `cancel-var` override (see
    /// [`set_cancellation_override`]). OpenMP fixes `cancel-var` at
    /// startup; this romp extension lets early-exit kernels and tests
    /// arm/disarm cancellation for the forks of one thread without
    /// mutating the process-global block under concurrent tests.
    pub cancellation: Option<bool>,
    /// Per-thread autotuner override (see [`set_tune_override`]): lets
    /// benches and tests arm/disarm tuning for the forks of one thread
    /// without mutating the process-global block under concurrent
    /// tests.
    pub tune: Option<TuneMode>,
    /// Per-thread `bind-var` override (see [`set_proc_bind_override`]):
    /// lets tests and benches request a binding policy for the forks of
    /// one thread without mutating the process-global block.
    pub proc_bind: Option<Vec<ProcBind>>,
    /// Per-thread place-list override (see [`set_places_override`]):
    /// lets tests drive partition logic with a synthetic `OMP_PLACES`
    /// list, hermetically.
    pub places: Option<std::sync::Arc<Vec<Vec<usize>>>>,
}

thread_local! {
    pub(crate) static TLS_OVERRIDE: RefCell<Option<TlsOverride>> = const { RefCell::new(None) };
}

pub(crate) fn tls_override_mut(f: impl FnOnce(&mut TlsOverride)) {
    TLS_OVERRIDE.with(|o| {
        let mut b = o.borrow_mut();
        f(b.get_or_insert_with(TlsOverride::default));
    });
}

/// This thread's explicit `omp_set_schedule` override, if any.
pub(crate) fn tls_run_sched_override() -> Option<Schedule> {
    TLS_OVERRIDE.with(|o| o.borrow().as_ref().and_then(|t| t.run_sched))
}

/// Discard this thread's `omp_set_*` overrides. Pool workers call this
/// before each region: an implicit task starts with a fresh data
/// environment inherited from the team, so overrides a worker set while
/// serving an earlier region must not leak into later teams.
pub(crate) fn tls_clear_overrides() {
    TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
}

/// Override `cancel-var` for forks from the calling thread (romp
/// extension; OpenMP fixes `cancel-var` at process startup, which would
/// make early-exit kernels depend on the site environment). `Some(v)`
/// shadows the global ICV, `None` restores it. Returns the previous
/// override so callers can scope the change.
pub fn set_cancellation_override(v: Option<bool>) -> Option<bool> {
    TLS_OVERRIDE.with(|o| {
        let mut b = o.borrow_mut();
        let slot = b.get_or_insert_with(TlsOverride::default);
        std::mem::replace(&mut slot.cancellation, v)
    })
}

/// Override the autotuner mode for forks from the calling thread (romp
/// extension). `Some(v)` shadows the global ICV, `None` restores it.
/// Returns the previous override so callers can scope the change.
pub fn set_tune_override(v: Option<TuneMode>) -> Option<TuneMode> {
    TLS_OVERRIDE.with(|o| {
        let mut b = o.borrow_mut();
        let slot = b.get_or_insert_with(TlsOverride::default);
        std::mem::replace(&mut slot.tune, v)
    })
}

/// Override the per-level `bind-var` list for forks from the calling
/// thread (romp extension). `Some(v)` shadows the global ICV, `None`
/// restores it. Returns the previous override so callers can scope the
/// change.
pub fn set_proc_bind_override(v: Option<Vec<ProcBind>>) -> Option<Vec<ProcBind>> {
    TLS_OVERRIDE.with(|o| {
        let mut b = o.borrow_mut();
        let slot = b.get_or_insert_with(TlsOverride::default);
        std::mem::replace(&mut slot.proc_bind, v)
    })
}

/// Override the place list for forks from the calling thread (romp
/// extension; tests use synthetic places so partition assertions don't
/// depend on the host's CPU count). `Some(v)` shadows the global ICV,
/// `None` restores it. Returns the previous override.
pub fn set_places_override(
    v: Option<std::sync::Arc<Vec<Vec<usize>>>>,
) -> Option<std::sync::Arc<Vec<Vec<usize>>>> {
    TLS_OVERRIDE.with(|o| {
        let mut b = o.borrow_mut();
        let slot = b.get_or_insert_with(TlsOverride::default);
        std::mem::replace(&mut slot.places, v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_icvs_are_sane() {
        let icvs = Icvs::default();
        assert!(icvs.thread_limit >= hardware_threads());
        assert_eq!(icvs.max_active_levels, 1);
        assert!(!icvs.dynamic);
    }

    #[test]
    fn nthreads_for_level_uses_list_then_saturates() {
        let icvs = Icvs {
            nthreads: vec![4, 2],
            ..Icvs::default()
        };
        assert_eq!(icvs.nthreads_for_level(0), 4);
        assert_eq!(icvs.nthreads_for_level(1), 2);
        // Deeper levels reuse the last entry.
        assert_eq!(icvs.nthreads_for_level(5), 2);
    }

    #[test]
    fn nthreads_empty_list_means_hardware() {
        let icvs = Icvs::default();
        assert_eq!(icvs.nthreads_for_level(0), hardware_threads());
    }

    #[test]
    fn tls_override_shadows_global() {
        tls_override_mut(|o| o.num_threads = Some(3));
        assert_eq!(current().nthreads, vec![3]);
        TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
    }

    #[test]
    fn cancellation_override_shadows_and_restores() {
        assert!(!Icvs::default().cancellation);
        let prev = set_cancellation_override(Some(true));
        assert!(current().cancellation);
        set_cancellation_override(prev);
        assert_eq!(current().cancellation, global_cell().read().cancellation);
        TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
    }

    #[test]
    fn proc_bind_for_level_uses_list_then_saturates() {
        let icvs = Icvs {
            proc_bind: vec![ProcBind::Spread, ProcBind::Close],
            ..Icvs::default()
        };
        assert_eq!(icvs.proc_bind_for_level(0), ProcBind::Spread);
        assert_eq!(icvs.proc_bind_for_level(1), ProcBind::Close);
        assert_eq!(icvs.proc_bind_for_level(7), ProcBind::Close);
        assert_eq!(Icvs::default().proc_bind_for_level(0), ProcBind::False);
    }

    #[test]
    fn proc_bind_and_places_overrides_shadow_and_restore() {
        let prev = set_proc_bind_override(Some(vec![ProcBind::Spread]));
        assert_eq!(current().proc_bind_for_level(0), ProcBind::Spread);
        set_proc_bind_override(prev);
        let places = std::sync::Arc::new(vec![vec![0usize], vec![1]]);
        let prev = set_places_override(Some(places.clone()));
        assert!(std::sync::Arc::ptr_eq(
            current().places.as_ref().unwrap(),
            &places
        ));
        set_places_override(prev);
        TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
    }

    #[test]
    fn wait_policy_budgets_ordered() {
        assert!(WaitPolicy::Active.spin_budget() > WaitPolicy::Hybrid.spin_budget());
        assert!(WaitPolicy::Hybrid.spin_budget() > WaitPolicy::Passive.spin_budget());
    }
}
