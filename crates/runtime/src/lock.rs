//! OpenMP-style locks: `omp_lock_t` and `omp_nest_lock_t` equivalents.
//!
//! These are *runtime objects*, not RAII guards: `set`/`unset` may happen
//! in different scopes, different functions, even different constructs —
//! exactly the (un-Rusty) API the OpenMP spec defines and the NPB codes
//! use. A scoped [`OmpLock::with`] helper is provided for idiomatic call
//! sites; `critical` sections build on it (see [`mod@crate::critical`]).
//!
//! The implementation is a test-and-test-and-set lock with bounded
//! exponential backoff, degrading to `yield` — the construction from the
//! "Rust Atomics and Locks" playbook. No OS futex is required, which
//! keeps the crate portable.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-unique id for the current OS thread (used for nest-lock
/// ownership; distinct from the OpenMP thread number, which is
/// team-relative).
pub(crate) fn os_thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|id| {
        let mut v = id.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            id.set(v);
        }
        v
    })
}

const UNLOCKED: usize = 0;
const LOCKED: usize = 1;

/// A simple (non-nestable) OpenMP lock: `omp_init_lock` / `omp_set_lock` /
/// `omp_unset_lock` / `omp_test_lock`.
#[derive(Debug, Default)]
pub struct OmpLock {
    state: AtomicUsize,
}

impl OmpLock {
    /// `omp_init_lock`.
    pub const fn new() -> Self {
        OmpLock {
            state: AtomicUsize::new(UNLOCKED),
        }
    }

    /// `omp_set_lock`: block until the lock is acquired.
    pub fn set(&self) {
        // Fast path.
        if self
            .state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        crate::stats::bump(&crate::stats::stats().contended_locks);
        let mut backoff = 1u32;
        loop {
            // Test-and-test-and-set: spin on a plain load first so the
            // cache line stays shared while the lock is held.
            while self.state.load(Ordering::Relaxed) == LOCKED {
                for _ in 0..backoff {
                    std::hint::spin_loop();
                }
                if backoff < 1 << 10 {
                    backoff <<= 1;
                } else {
                    std::thread::yield_now();
                }
            }
            if self
                .state
                .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// `omp_test_lock`: try to acquire without blocking.
    pub fn test(&self) -> bool {
        self.state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// `omp_unset_lock`. Panics if the lock is not held (which the spec
    /// declares undefined behaviour; we choose to catch it).
    pub fn unset(&self) {
        let prev = self.state.swap(UNLOCKED, Ordering::Release);
        assert_eq!(prev, LOCKED, "omp_unset_lock on an unlocked lock");
    }

    /// Scoped acquire: run `f` while holding the lock. Unlocks even if
    /// `f` panics.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.set();
        struct Unset<'a>(&'a OmpLock);
        impl Drop for Unset<'_> {
            fn drop(&mut self) {
                self.0.unset();
            }
        }
        let _guard = Unset(self);
        f()
    }
}

/// A nestable OpenMP lock (`omp_nest_lock_t`): the owning thread may
/// re-acquire; each `set` must be matched by an `unset`.
#[derive(Debug, Default)]
pub struct NestLock {
    inner: OmpLock,
    owner: AtomicU64,
    depth: AtomicUsize,
}

impl NestLock {
    /// `omp_init_nest_lock`.
    pub const fn new() -> Self {
        NestLock {
            inner: OmpLock::new(),
            owner: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        }
    }

    /// `omp_set_nest_lock`. Returns the nesting depth after acquiring
    /// (1 = outermost), mirroring `omp_test_nest_lock`'s counting.
    pub fn set(&self) -> usize {
        let me = os_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
            return d;
        }
        self.inner.set();
        self.owner.store(me, Ordering::Relaxed);
        self.depth.store(1, Ordering::Relaxed);
        1
    }

    /// `omp_test_nest_lock`: non-blocking; returns the new depth, or 0 if
    /// the lock is held elsewhere.
    pub fn test(&self) -> usize {
        let me = os_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            return self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        }
        if self.inner.test() {
            self.owner.store(me, Ordering::Relaxed);
            self.depth.store(1, Ordering::Relaxed);
            1
        } else {
            0
        }
    }

    /// `omp_unset_nest_lock`. Panics when called by a non-owner.
    pub fn unset(&self) {
        let me = os_thread_id();
        assert_eq!(
            self.owner.load(Ordering::Relaxed),
            me,
            "omp_unset_nest_lock by non-owning thread"
        );
        let d = self.depth.fetch_sub(1, Ordering::Relaxed);
        assert!(d >= 1, "omp_unset_nest_lock underflow");
        if d == 1 {
            self.owner.store(0, Ordering::Relaxed);
            self.inner.unset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_provides_mutual_exclusion() {
        let lock = Arc::new(OmpLock::new());
        // Cell is !Sync; smuggle its address through usize to create a
        // race that only the lock prevents. The cell outlives the threads
        // because we join them before reading.
        let shared = Box::new(Cell::new(0i64));
        let addr = shared.as_ref() as *const Cell<i64> as usize;
        let mut handles = vec![];
        for _ in 0..8 {
            let lock = lock.clone();
            handles.push(std::thread::spawn(move || {
                let cell = unsafe { &*(addr as *const Cell<i64>) };
                for _ in 0..10_000 {
                    lock.with(|| {
                        cell.set(cell.get() + 1);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.get(), 80_000);
    }

    #[test]
    fn test_lock_reports_contention() {
        let lock = OmpLock::new();
        assert!(lock.test());
        assert!(!lock.test());
        lock.unset();
        assert!(lock.test());
        lock.unset();
    }

    #[test]
    #[should_panic(expected = "unlocked lock")]
    fn unset_of_unlocked_panics() {
        OmpLock::new().unset();
    }

    #[test]
    fn with_unlocks_on_panic() {
        let lock = OmpLock::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lock.with(|| panic!("boom"));
        }));
        assert!(r.is_err());
        assert!(lock.test(), "lock must be released after panic");
        lock.unset();
    }

    #[test]
    fn nest_lock_reentrant_on_same_thread() {
        let lock = NestLock::new();
        assert_eq!(lock.set(), 1);
        assert_eq!(lock.set(), 2);
        assert_eq!(lock.test(), 3);
        lock.unset();
        lock.unset();
        lock.unset();
        // Fully released: another "thread" (here: same, after release) can
        // take it again from scratch.
        assert_eq!(lock.set(), 1);
        lock.unset();
    }

    #[test]
    fn nest_lock_blocks_other_threads() {
        let lock = Arc::new(NestLock::new());
        lock.set();
        let l2 = lock.clone();
        let h = std::thread::spawn(move || l2.test());
        assert_eq!(h.join().unwrap(), 0, "other thread must not acquire");
        lock.unset();
        let l3 = lock.clone();
        let h = std::thread::spawn(move || {
            let d = l3.set();
            l3.unset();
            d
        });
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn os_thread_ids_are_unique() {
        let a = os_thread_id();
        let b = std::thread::spawn(os_thread_id).join().unwrap();
        assert_ne!(a, b);
        assert_eq!(a, os_thread_id(), "stable within a thread");
    }
}
