//! Runtime statistics counters.
//!
//! Cheap relaxed atomic counters recording how often the runtime's major
//! code paths fire. The ablation benchmarks (`romp-bench`) and several
//! tests use these to assert that the intended machinery actually ran
//! (e.g. that a `schedule(dynamic)` loop really went through the shared
//! dispatcher, or that task stealing occurred under imbalance).

use std::sync::atomic::{AtomicU64, Ordering};

/// Global counters, one per interesting runtime event.
#[derive(Debug, Default)]
pub struct Stats {
    /// Parallel regions started (including serialized ones).
    pub forks: AtomicU64,
    /// Parallel regions that were serialized (team of one).
    pub serialized_forks: AtomicU64,
    /// Explicit + implicit barrier episodes completed.
    pub barriers: AtomicU64,
    /// Chunks handed out by dynamic/guided dispatchers.
    pub dispatched_chunks: AtomicU64,
    /// Explicit tasks executed.
    pub tasks_executed: AtomicU64,
    /// Tasks executed by a thread other than the one that created them.
    pub tasks_stolen: AtomicU64,
    /// Worker threads ever spawned by the pool.
    pub workers_spawned: AtomicU64,
    /// Lock acquisitions that had to spin (contended).
    pub contended_locks: AtomicU64,
}

static STATS: Stats = Stats {
    forks: AtomicU64::new(0),
    serialized_forks: AtomicU64::new(0),
    barriers: AtomicU64::new(0),
    dispatched_chunks: AtomicU64::new(0),
    tasks_executed: AtomicU64::new(0),
    tasks_stolen: AtomicU64::new(0),
    workers_spawned: AtomicU64::new(0),
    contended_locks: AtomicU64::new(0),
};

/// Access the global statistics block.
pub fn stats() -> &'static Stats {
    &STATS
}

/// A point-in-time copy of all counters, convenient for before/after diffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// See [`Stats::forks`].
    pub forks: u64,
    /// See [`Stats::serialized_forks`].
    pub serialized_forks: u64,
    /// See [`Stats::barriers`].
    pub barriers: u64,
    /// See [`Stats::dispatched_chunks`].
    pub dispatched_chunks: u64,
    /// See [`Stats::tasks_executed`].
    pub tasks_executed: u64,
    /// See [`Stats::tasks_stolen`].
    pub tasks_stolen: u64,
    /// See [`Stats::workers_spawned`].
    pub workers_spawned: u64,
    /// See [`Stats::contended_locks`].
    pub contended_locks: u64,
}

impl Stats {
    /// Copy every counter at once.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            forks: self.forks.load(Ordering::Relaxed),
            serialized_forks: self.serialized_forks.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            dispatched_chunks: self.dispatched_chunks.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            contended_locks: self.contended_locks.load(Ordering::Relaxed),
        }
    }
}

impl Snapshot {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &Snapshot) -> Snapshot {
        Snapshot {
            forks: later.forks - self.forks,
            serialized_forks: later.serialized_forks - self.serialized_forks,
            barriers: later.barriers - self.barriers,
            dispatched_chunks: later.dispatched_chunks - self.dispatched_chunks,
            tasks_executed: later.tasks_executed - self.tasks_executed,
            tasks_stolen: later.tasks_stolen - self.tasks_stolen,
            workers_spawned: later.workers_spawned - self.workers_spawned,
            contended_locks: later.contended_locks - self.contended_locks,
        }
    }
}

#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_monotone() {
        let before = stats().snapshot();
        bump(&stats().forks);
        bump(&stats().forks);
        bump(&stats().barriers);
        let after = stats().snapshot();
        let d = before.delta(&after);
        assert!(d.forks >= 2);
        assert!(d.barriers >= 1);
    }
}
