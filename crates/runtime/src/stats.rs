//! Runtime statistics counters.
//!
//! Cheap relaxed atomic counters recording how often the runtime's major
//! code paths fire. The ablation benchmarks (`romp-bench`) and several
//! tests use these to assert that the intended machinery actually ran
//! (e.g. that a `schedule(dynamic)` loop really went through the shared
//! dispatcher, or that task stealing occurred under imbalance). The
//! tasking counters — spawned / executed / inline / stolen /
//! dependence-stalled — make the dependence-graph scheduler observable:
//! [`display_stats`] renders them in the style of the
//! `OMP_DISPLAY_ENV` banner ([`crate::env::display_env`] appends it).

use std::sync::atomic::{AtomicU64, Ordering};

/// Global counters, one per interesting runtime event.
#[derive(Debug, Default)]
pub struct Stats {
    /// Parallel regions started (including serialized ones).
    pub forks: AtomicU64,
    /// Parallel regions that were serialized (team of one).
    pub serialized_forks: AtomicU64,
    /// Explicit + implicit barrier episodes completed.
    pub barriers: AtomicU64,
    /// Chunks handed out by dynamic/guided dispatchers.
    pub dispatched_chunks: AtomicU64,
    /// Explicit tasks created (deferred or undeferred).
    pub tasks_spawned: AtomicU64,
    /// Explicit tasks executed.
    pub tasks_executed: AtomicU64,
    /// Explicit tasks executed undeferred on the encountering thread
    /// (`if(false)`, `final`, included tasks).
    pub tasks_inline: AtomicU64,
    /// Tasks executed by a thread other than the one that created them.
    pub tasks_stolen: AtomicU64,
    /// Tasks held back by the dependence graph (unmet `depend`
    /// predecessors at creation time).
    pub tasks_dep_stalled: AtomicU64,
    /// Worker threads ever spawned by the pool.
    pub workers_spawned: AtomicU64,
    /// Worker spawn attempts that failed (OS refused the thread, or a
    /// test injected a failure); each one rolled back its thread-limit
    /// reservation and degraded the requesting fork to a short team.
    pub worker_spawn_failures: AtomicU64,
    /// Idle workers a master acquired from its own home shard.
    pub pool_acquires_local: AtomicU64,
    /// Idle workers a master had to steal from another master's shard
    /// (its home shard had run dry).
    pub pool_acquires_stolen: AtomicU64,
    /// Shard free-list `try_lock` misses — two masters collided on the
    /// same shard at the same instant.
    pub pool_shard_contention: AtomicU64,
    /// Lock acquisitions that had to spin (contended).
    pub contended_locks: AtomicU64,
    /// Forks served by a cached hot team (doorbell fast path).
    pub hot_team_hits: AtomicU64,
    /// Forks that had to build a hot team from the pool (no cache).
    pub hot_team_misses: AtomicU64,
    /// Forks that rebuilt a cached hot team because `num_threads` or a
    /// team-shape ICV (wait policy, barrier kind, `dyn-var`) changed.
    pub hot_team_resizes: AtomicU64,
    /// Hot-team hits at nesting level ≥ 1 (a worker's own cached
    /// sub-team answered a nested fork; also counted in
    /// `hot_team_hits`).
    pub hot_team_nested_hits: AtomicU64,
    /// Hot-team builds at nesting level ≥ 1 (also counted in
    /// `hot_team_misses`/`hot_team_resizes`).
    pub hot_team_nested_misses: AtomicU64,
    /// Threads successfully bound to an `OMP_PLACES` place
    /// (`sched_setaffinity` accepted the mask).
    pub affinity_binds: AtomicU64,
    /// Bind attempts the kernel (or an unsupported platform) rejected;
    /// each degrades gracefully to an unbound thread.
    pub affinity_bind_failures: AtomicU64,
    /// `cancel` requests that activated cancellation (cancel-var was
    /// true and the flag was raised).
    pub cancels_activated: AtomicU64,
    /// Explicit tasks discarded without running their body (their
    /// taskgroup or parallel region was cancelled before they started).
    pub tasks_discarded: AtomicU64,
    /// Explicit tasks dropped by `TaskSystem::purge`
    /// after an aborted (panicked) region, without running their body.
    /// Together with executed + discarded this closes the task ledger:
    /// every spawned task is accounted by exactly one of the three.
    pub tasks_purged: AtomicU64,
    /// Tuned constructs measured while their site was still probing
    /// (schedule sites and variant-registry entries alike).
    pub tune_probes: AtomicU64,
    /// Tune learners that locked to a winner (schedule sites and
    /// variant-registry entries alike).
    pub tune_converged: AtomicU64,
    /// Site-table entries evicted because a shard hit its capacity cap.
    pub tune_evictions: AtomicU64,
}

static STATS: Stats = Stats {
    forks: AtomicU64::new(0),
    serialized_forks: AtomicU64::new(0),
    barriers: AtomicU64::new(0),
    dispatched_chunks: AtomicU64::new(0),
    tasks_spawned: AtomicU64::new(0),
    tasks_executed: AtomicU64::new(0),
    tasks_inline: AtomicU64::new(0),
    tasks_stolen: AtomicU64::new(0),
    tasks_dep_stalled: AtomicU64::new(0),
    workers_spawned: AtomicU64::new(0),
    worker_spawn_failures: AtomicU64::new(0),
    pool_acquires_local: AtomicU64::new(0),
    pool_acquires_stolen: AtomicU64::new(0),
    pool_shard_contention: AtomicU64::new(0),
    contended_locks: AtomicU64::new(0),
    hot_team_hits: AtomicU64::new(0),
    hot_team_misses: AtomicU64::new(0),
    hot_team_resizes: AtomicU64::new(0),
    hot_team_nested_hits: AtomicU64::new(0),
    hot_team_nested_misses: AtomicU64::new(0),
    affinity_binds: AtomicU64::new(0),
    affinity_bind_failures: AtomicU64::new(0),
    cancels_activated: AtomicU64::new(0),
    tasks_discarded: AtomicU64::new(0),
    tasks_purged: AtomicU64::new(0),
    tune_probes: AtomicU64::new(0),
    tune_converged: AtomicU64::new(0),
    tune_evictions: AtomicU64::new(0),
};

/// Access the global statistics block.
pub fn stats() -> &'static Stats {
    &STATS
}

/// A point-in-time copy of all counters, convenient for before/after diffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// See [`Stats::forks`].
    pub forks: u64,
    /// See [`Stats::serialized_forks`].
    pub serialized_forks: u64,
    /// See [`Stats::barriers`].
    pub barriers: u64,
    /// See [`Stats::dispatched_chunks`].
    pub dispatched_chunks: u64,
    /// See [`Stats::tasks_spawned`].
    pub tasks_spawned: u64,
    /// See [`Stats::tasks_executed`].
    pub tasks_executed: u64,
    /// See [`Stats::tasks_inline`].
    pub tasks_inline: u64,
    /// See [`Stats::tasks_stolen`].
    pub tasks_stolen: u64,
    /// See [`Stats::tasks_dep_stalled`].
    pub tasks_dep_stalled: u64,
    /// See [`Stats::workers_spawned`].
    pub workers_spawned: u64,
    /// See [`Stats::worker_spawn_failures`].
    pub worker_spawn_failures: u64,
    /// See [`Stats::pool_acquires_local`].
    pub pool_acquires_local: u64,
    /// See [`Stats::pool_acquires_stolen`].
    pub pool_acquires_stolen: u64,
    /// See [`Stats::pool_shard_contention`].
    pub pool_shard_contention: u64,
    /// See [`Stats::contended_locks`].
    pub contended_locks: u64,
    /// See [`Stats::hot_team_hits`].
    pub hot_team_hits: u64,
    /// See [`Stats::hot_team_misses`].
    pub hot_team_misses: u64,
    /// See [`Stats::hot_team_resizes`].
    pub hot_team_resizes: u64,
    /// See [`Stats::hot_team_nested_hits`].
    pub hot_team_nested_hits: u64,
    /// See [`Stats::hot_team_nested_misses`].
    pub hot_team_nested_misses: u64,
    /// See [`Stats::affinity_binds`].
    pub affinity_binds: u64,
    /// See [`Stats::affinity_bind_failures`].
    pub affinity_bind_failures: u64,
    /// See [`Stats::cancels_activated`].
    pub cancels_activated: u64,
    /// See [`Stats::tasks_discarded`].
    pub tasks_discarded: u64,
    /// See [`Stats::tasks_purged`].
    pub tasks_purged: u64,
    /// See [`Stats::tune_probes`].
    pub tune_probes: u64,
    /// See [`Stats::tune_converged`].
    pub tune_converged: u64,
    /// See [`Stats::tune_evictions`].
    pub tune_evictions: u64,
}

impl Stats {
    /// Copy every counter at once.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            forks: self.forks.load(Ordering::Relaxed),
            serialized_forks: self.serialized_forks.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            dispatched_chunks: self.dispatched_chunks.load(Ordering::Relaxed),
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_inline: self.tasks_inline.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            tasks_dep_stalled: self.tasks_dep_stalled.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            worker_spawn_failures: self.worker_spawn_failures.load(Ordering::Relaxed),
            pool_acquires_local: self.pool_acquires_local.load(Ordering::Relaxed),
            pool_acquires_stolen: self.pool_acquires_stolen.load(Ordering::Relaxed),
            pool_shard_contention: self.pool_shard_contention.load(Ordering::Relaxed),
            contended_locks: self.contended_locks.load(Ordering::Relaxed),
            hot_team_hits: self.hot_team_hits.load(Ordering::Relaxed),
            hot_team_misses: self.hot_team_misses.load(Ordering::Relaxed),
            hot_team_resizes: self.hot_team_resizes.load(Ordering::Relaxed),
            hot_team_nested_hits: self.hot_team_nested_hits.load(Ordering::Relaxed),
            hot_team_nested_misses: self.hot_team_nested_misses.load(Ordering::Relaxed),
            affinity_binds: self.affinity_binds.load(Ordering::Relaxed),
            affinity_bind_failures: self.affinity_bind_failures.load(Ordering::Relaxed),
            cancels_activated: self.cancels_activated.load(Ordering::Relaxed),
            tasks_discarded: self.tasks_discarded.load(Ordering::Relaxed),
            tasks_purged: self.tasks_purged.load(Ordering::Relaxed),
            tune_probes: self.tune_probes.load(Ordering::Relaxed),
            tune_converged: self.tune_converged.load(Ordering::Relaxed),
            tune_evictions: self.tune_evictions.load(Ordering::Relaxed),
        }
    }
}

impl Snapshot {
    /// Counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &Snapshot) -> Snapshot {
        Snapshot {
            forks: later.forks - self.forks,
            serialized_forks: later.serialized_forks - self.serialized_forks,
            barriers: later.barriers - self.barriers,
            dispatched_chunks: later.dispatched_chunks - self.dispatched_chunks,
            tasks_spawned: later.tasks_spawned - self.tasks_spawned,
            tasks_executed: later.tasks_executed - self.tasks_executed,
            tasks_inline: later.tasks_inline - self.tasks_inline,
            tasks_stolen: later.tasks_stolen - self.tasks_stolen,
            tasks_dep_stalled: later.tasks_dep_stalled - self.tasks_dep_stalled,
            workers_spawned: later.workers_spawned - self.workers_spawned,
            worker_spawn_failures: later.worker_spawn_failures - self.worker_spawn_failures,
            pool_acquires_local: later.pool_acquires_local - self.pool_acquires_local,
            pool_acquires_stolen: later.pool_acquires_stolen - self.pool_acquires_stolen,
            pool_shard_contention: later.pool_shard_contention - self.pool_shard_contention,
            contended_locks: later.contended_locks - self.contended_locks,
            hot_team_hits: later.hot_team_hits - self.hot_team_hits,
            hot_team_misses: later.hot_team_misses - self.hot_team_misses,
            hot_team_resizes: later.hot_team_resizes - self.hot_team_resizes,
            hot_team_nested_hits: later.hot_team_nested_hits - self.hot_team_nested_hits,
            hot_team_nested_misses: later.hot_team_nested_misses - self.hot_team_nested_misses,
            affinity_binds: later.affinity_binds - self.affinity_binds,
            affinity_bind_failures: later.affinity_bind_failures - self.affinity_bind_failures,
            cancels_activated: later.cancels_activated - self.cancels_activated,
            tasks_discarded: later.tasks_discarded - self.tasks_discarded,
            tasks_purged: later.tasks_purged - self.tasks_purged,
            tune_probes: later.tune_probes - self.tune_probes,
            tune_converged: later.tune_converged - self.tune_converged,
            tune_evictions: later.tune_evictions - self.tune_evictions,
        }
    }
}

/// Render a snapshot's task-scheduler counters as a banner in the
/// `OMP_DISPLAY_ENV` style. The benchmark harness prints this after a
/// run so scheduler behavior (stealing, dependence stalls, inlining) is
/// visible next to the timings.
pub fn display_stats_snapshot(s: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ROMP TASK STATISTICS BEGIN");
    let _ = writeln!(out, "  tasks_spawned = '{}'", s.tasks_spawned);
    let _ = writeln!(out, "  tasks_executed = '{}'", s.tasks_executed);
    let _ = writeln!(out, "  tasks_inline = '{}'", s.tasks_inline);
    let _ = writeln!(out, "  tasks_stolen = '{}'", s.tasks_stolen);
    let _ = writeln!(out, "  tasks_dep_stalled = '{}'", s.tasks_dep_stalled);
    let _ = writeln!(out, "  hot_team_hits = '{}'", s.hot_team_hits);
    let _ = writeln!(out, "  hot_team_misses = '{}'", s.hot_team_misses);
    let _ = writeln!(out, "  hot_team_resizes = '{}'", s.hot_team_resizes);
    let _ = writeln!(out, "  hot_team_nested_hits = '{}'", s.hot_team_nested_hits);
    let _ = writeln!(
        out,
        "  hot_team_nested_misses = '{}'",
        s.hot_team_nested_misses
    );
    let _ = writeln!(out, "  affinity_binds = '{}'", s.affinity_binds);
    let _ = writeln!(
        out,
        "  affinity_bind_failures = '{}'",
        s.affinity_bind_failures
    );
    let _ = writeln!(out, "  cancels_activated = '{}'", s.cancels_activated);
    let _ = writeln!(out, "  tasks_discarded = '{}'", s.tasks_discarded);
    let _ = writeln!(out, "  tasks_purged = '{}'", s.tasks_purged);
    let _ = writeln!(out, "  workers_spawned = '{}'", s.workers_spawned);
    let _ = writeln!(
        out,
        "  worker_spawn_failures = '{}'",
        s.worker_spawn_failures
    );
    let _ = writeln!(out, "  pool_acquires_local = '{}'", s.pool_acquires_local);
    let _ = writeln!(out, "  pool_acquires_stolen = '{}'", s.pool_acquires_stolen);
    let _ = writeln!(
        out,
        "  pool_shard_contention = '{}'",
        s.pool_shard_contention
    );
    let _ = writeln!(out, "  tune_probes = '{}'", s.tune_probes);
    let _ = writeln!(out, "  tune_converged = '{}'", s.tune_converged);
    let _ = writeln!(out, "  tune_evictions = '{}'", s.tune_evictions);
    let _ = writeln!(out, "ROMP TASK STATISTICS END");
    out
}

/// Render the worker pool's per-shard counters (acquired / stolen /
/// contended, one line per shard) in the same banner style. The
/// aggregate `pool_*` counters above say *whether* masters collided;
/// this says *where* — a single overloaded shard reads very differently
/// from uniform load.
pub fn display_pool_shards() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ROMP POOL SHARDS BEGIN");
    let _ = writeln!(out, "  pool_shards = '{}'", crate::pool::shard_count());
    for (i, (acquired, stolen, contended)) in crate::pool::shard_counters().iter().enumerate() {
        let _ = writeln!(
            out,
            "  pool_shard[{i}] = 'acquired={acquired} stolen={stolen} contended={contended}'"
        );
    }
    let _ = writeln!(out, "ROMP POOL SHARDS END");
    out
}

/// [`display_stats_snapshot`] over the live global counters, followed by
/// the live per-shard pool counters ([`display_pool_shards`]), the
/// autotuner's site table ([`crate::tune::display_tune_table`]) and the
/// kernel-variant registry
/// ([`crate::tune::variants::display_variants_table`]).
pub fn display_stats() -> String {
    let mut out = display_stats_snapshot(&stats().snapshot());
    out.push_str(&display_pool_shards());
    out.push_str(&crate::tune::display_tune_table());
    out.push_str(&crate::tune::variants::display_variants_table());
    out
}

#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_monotone() {
        let before = stats().snapshot();
        bump(&stats().forks);
        bump(&stats().forks);
        bump(&stats().barriers);
        let after = stats().snapshot();
        let d = before.delta(&after);
        assert!(d.forks >= 2);
        assert!(d.barriers >= 1);
    }

    #[test]
    fn display_stats_lists_all_task_counters() {
        let banner = display_stats();
        for key in [
            "tasks_spawned",
            "tasks_executed",
            "tasks_inline",
            "tasks_stolen",
            "tasks_dep_stalled",
            "hot_team_hits",
            "hot_team_misses",
            "hot_team_resizes",
            "hot_team_nested_hits",
            "hot_team_nested_misses",
            "affinity_binds",
            "affinity_bind_failures",
            "cancels_activated",
            "tasks_discarded",
            "tasks_purged",
            "workers_spawned",
            "worker_spawn_failures",
            "pool_acquires_local",
            "pool_acquires_stolen",
            "pool_shard_contention",
            "pool_shards",
            "pool_shard[0]",
            "tune_probes",
            "tune_converged",
            "tune_evictions",
            "ROMP TUNE TABLE BEGIN",
        ] {
            assert!(banner.contains(key), "missing {key} in:\n{banner}");
        }
    }
}
