//! Thread→CPU binding: the enforcement half of `OMP_PLACES` /
//! `OMP_PROC_BIND`.
//!
//! [`crate::env`] parses `OMP_PLACES` into a **place list** (each place
//! is a set of CPU ids); this module turns a place list plus a
//! `proc_bind` policy into a per-team `TeamPlaces` partition at fork
//! time, and applies it with `sched_setaffinity` when a team thread
//! starts a region.
//!
//! ## The partition model (OpenMP `place-partition-var`)
//!
//! Every thread owns a contiguous *sub-partition* `(first, count)` of
//! the place list, inherited from its team:
//!
//! * the initial thread owns the whole list;
//! * `spread` splits the master's partition into `size` disjoint
//!   contiguous chunks — thread `i` owns chunk `i` and binds to its
//!   first place (so a nested `close` team inherits a socket-local
//!   slice, the GHOST/CARP zone-per-socket pattern);
//! * `close` keeps the master's partition for every thread and binds
//!   thread `i` to the `i`-th place after the master's, cyclically;
//! * `master`/`primary` binds every thread to the master's own place;
//! * `true` behaves like `close`; `false` disables binding (no
//!   `TeamPlaces` is built and the fork pays nothing).
//!
//! ## Graceful degradation
//!
//! The actual syscall is a raw `sched_setaffinity` behind a
//! target-gated shim — no libc dependency. Where the syscall is
//! unavailable (non-Linux) or fails (mask names CPUs the machine does
//! not have, cpuset restrictions), the failure is **counted**
//! ([`crate::stats`] `affinity_bind_failures`) and warned **once** per
//! process; the runtime carries on unbound. Placement never affects
//! correctness, only locality.

use crate::icv::{Icvs, ProcBind};
use std::cell::Cell;
use std::sync::{Arc, OnceLock};

/// A parsed `OMP_PLACES` list: each place is a non-empty set of CPU ids.
pub type PlaceList = Vec<Vec<usize>>;

/// A team's place partition, computed once per fork (and per hot-team
/// recycle) by [`team_places`]. Indexed by `thread_num`.
#[derive(Debug)]
pub(crate) struct TeamPlaces {
    /// The full place list this partition indexes into.
    pub list: Arc<PlaceList>,
    /// Per-thread inherited sub-partition `(first_place, place_count)`;
    /// the thread's own nested forks partition *this* range.
    pub parts: Vec<(usize, usize)>,
    /// Per-thread place index the thread binds to while running the
    /// region.
    pub place_of: Vec<usize>,
}

/// Default place list when binding is requested (`proc_bind` ≠ false)
/// but `OMP_PLACES` is unset: one place per hardware thread, the
/// moral equivalent of `OMP_PLACES=cores`.
fn default_places() -> Arc<PlaceList> {
    static DEFAULT: OnceLock<Arc<PlaceList>> = OnceLock::new();
    DEFAULT
        .get_or_init(|| {
            Arc::new(
                (0..crate::icv::hardware_threads())
                    .map(|c| vec![c])
                    .collect(),
            )
        })
        .clone()
}

/// Compute the place partition for a team of `size` threads forked
/// under `bind`. Returns `None` when binding is off (`proc_bind=false`)
/// or no usable place list exists — the region then runs unbound and
/// pays no affinity cost at all.
///
/// The master's own sub-partition (and current place) come from the
/// innermost enclosing region that carries places, so nested teams
/// partition their parent's slice, not the whole machine; the initial
/// thread partitions the full `OMP_PLACES` list (or the one-place-per-
/// CPU default when binding is requested without places).
pub(crate) fn team_places(bind: ProcBind, size: usize, icvs: &Icvs) -> Option<Arc<TeamPlaces>> {
    if bind == ProcBind::False || size == 0 {
        return None;
    }
    let (list, first, count, cur) = match crate::ctx::current_place_partition() {
        Some(t) => t,
        None => {
            let list = icvs.places.clone().unwrap_or_else(default_places);
            let n = list.len();
            if n == 0 {
                return None;
            }
            (list, 0, n, 0)
        }
    };
    debug_assert!(count >= 1 && first + count <= list.len());
    let mut parts = Vec::with_capacity(size);
    let mut place_of = Vec::with_capacity(size);
    match bind {
        ProcBind::Spread => {
            if count >= size {
                // Split the master's partition into `size` disjoint
                // contiguous chunks (balanced to within one place).
                for i in 0..size {
                    let lo = first + i * count / size;
                    let hi = first + (i + 1) * count / size;
                    parts.push((lo, hi - lo));
                    place_of.push(lo);
                }
            } else {
                // More threads than places: wrap, one place each.
                for i in 0..size {
                    let p = first + i % count;
                    parts.push((p, 1));
                    place_of.push(p);
                }
            }
        }
        ProcBind::Close | ProcBind::True => {
            // Everybody keeps the master's partition; threads occupy
            // consecutive places starting from the master's.
            let off = cur.saturating_sub(first) % count;
            for i in 0..size {
                parts.push((first, count));
                place_of.push(first + (off + i) % count);
            }
        }
        ProcBind::Master => {
            for _ in 0..size {
                parts.push((first, count));
                place_of.push(cur);
            }
        }
        ProcBind::False => unreachable!("filtered above"),
    }
    Some(Arc::new(TeamPlaces {
        list,
        parts,
        place_of,
    }))
}

/// Number of places in the effective place list (`OMP_PLACES`, or the
/// one-place-per-hardware-thread default). Backs `omp_get_num_places`.
pub fn place_list_len() -> usize {
    match crate::icv::current().places {
        Some(list) => list.len(),
        None => default_places().len(),
    }
}

thread_local! {
    /// Last (place-list identity, place index) this OS thread bound to;
    /// skips the syscall when a recycled hot team re-binds identically.
    /// Recorded even on failure so an impossible mask (CPUs the machine
    /// lacks) is attempted — and counted — once per target, not per fork.
    static LAST_BIND: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// Bind the calling thread to its place for `thread_num` in `p`.
/// Idempotent per thread via [`LAST_BIND`]; failures degrade gracefully.
pub(crate) fn apply(p: &TeamPlaces, thread_num: usize) {
    let place = p.place_of[thread_num];
    let key = (Arc::as_ptr(&p.list) as *const () as usize, place);
    let stale = LAST_BIND.with(|c| {
        if c.get() == key {
            false
        } else {
            c.set(key);
            true
        }
    });
    if stale {
        bind_to_cpus(&p.list[place]);
    }
}

/// Forget this thread's bind memo (test hook: forces the next
/// [`apply`] to issue the syscall again).
#[cfg(test)]
pub(crate) fn forget_last_bind() {
    LAST_BIND.with(|c| c.set((0, usize::MAX)));
}

/// Bind the calling thread to the given CPU set. Returns whether the
/// kernel accepted the mask; the outcome is counted either way and the
/// first failure warns once per process.
pub(crate) fn bind_to_cpus(cpus: &[usize]) -> bool {
    if cpus.is_empty() {
        return false;
    }
    let words = cpus.iter().max().map(|&m| m / 64 + 1).unwrap_or(1);
    let mut mask = vec![0u64; words];
    for &c in cpus {
        mask[c / 64] |= 1u64 << (c % 64);
    }
    match sys_sched_setaffinity(&mask) {
        Ok(()) => {
            crate::stats::bump(&crate::stats::stats().affinity_binds);
            true
        }
        Err(err) => {
            crate::stats::bump(&crate::stats::stats().affinity_bind_failures);
            warn_once(err);
            false
        }
    }
}

/// Emit the one-per-process "affinity unavailable" warning.
fn warn_once(err: i32) {
    static WARNED: OnceLock<()> = OnceLock::new();
    WARNED.get_or_init(|| {
        eprintln!(
            "ROMP WARNING: thread affinity unavailable on this system \
             (sched_setaffinity failed, errno {err}); OMP_PLACES/OMP_PROC_BIND \
             placement is advisory from here on"
        );
    });
}

/// `sched_setaffinity(0, len, mask)` as a raw syscall — x86_64 Linux.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sys_sched_setaffinity(mask: &[u64]) -> Result<(), i32> {
    let ret: isize;
    // SAFETY: sched_setaffinity reads `size` bytes from a live buffer;
    // pid 0 means the calling thread; no memory is written.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,                 // pid 0 = current thread
            in("rsi") std::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly)
        );
    }
    if ret < 0 {
        Err(-(ret as i32))
    } else {
        Ok(())
    }
}

/// `sched_setaffinity(0, len, mask)` as a raw syscall — aarch64 Linux.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sys_sched_setaffinity(mask: &[u64]) -> Result<(), i32> {
    let ret: isize;
    // SAFETY: as above; aarch64 passes the number in x8, args in x0-x2.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") 122usize, // __NR_sched_setaffinity
            inlateout("x0") 0usize => ret,
            in("x1") std::mem::size_of_val(mask),
            in("x2") mask.as_ptr(),
            options(nostack, readonly)
        );
    }
    if ret < 0 {
        Err(-(ret as i32))
    } else {
        Ok(())
    }
}

/// Stub for targets without a supported `sched_setaffinity` path: every
/// bind "fails" (counted, warned once), the runtime stays unbound.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sys_sched_setaffinity(_mask: &[u64]) -> Result<(), i32> {
    Err(38) // ENOSYS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icv::Icvs;

    fn places(n: usize) -> Arc<PlaceList> {
        Arc::new((0..n).map(|c| vec![c]).collect())
    }

    fn icvs_with_places(n: usize) -> Icvs {
        Icvs {
            places: Some(places(n)),
            ..Icvs::default()
        }
    }

    #[test]
    fn spread_partitions_are_disjoint_and_cover() {
        // 4 places, 2 threads: each gets a disjoint contiguous half.
        let p = team_places(ProcBind::Spread, 2, &icvs_with_places(4)).unwrap();
        assert_eq!(p.parts, vec![(0, 2), (2, 2)]);
        assert_eq!(p.place_of, vec![0, 2]);
        // 4 places, 3 threads: balanced to within one place, still disjoint.
        let p = team_places(ProcBind::Spread, 3, &icvs_with_places(4)).unwrap();
        let total: usize = p.parts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        for w in p.parts.windows(2) {
            assert_eq!(
                w[0].0 + w[0].1,
                w[1].0,
                "contiguous + disjoint: {:?}",
                p.parts
            );
        }
    }

    #[test]
    fn spread_wraps_when_threads_exceed_places() {
        let p = team_places(ProcBind::Spread, 4, &icvs_with_places(2)).unwrap();
        assert_eq!(p.place_of, vec![0, 1, 0, 1]);
        assert!(p.parts.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn close_keeps_partition_and_packs_places() {
        let p = team_places(ProcBind::Close, 3, &icvs_with_places(4)).unwrap();
        assert!(p.parts.iter().all(|&part| part == (0, 4)));
        assert_eq!(p.place_of, vec![0, 1, 2]);
    }

    #[test]
    fn master_pins_everyone_to_the_masters_place() {
        let p = team_places(ProcBind::Master, 3, &icvs_with_places(4)).unwrap();
        assert_eq!(p.place_of, vec![0, 0, 0]);
    }

    #[test]
    fn bind_false_builds_nothing() {
        assert!(team_places(ProcBind::False, 4, &icvs_with_places(4)).is_none());
    }

    #[test]
    fn bind_without_places_defaults_to_one_place_per_cpu() {
        let p = team_places(ProcBind::Spread, 1, &Icvs::default()).unwrap();
        assert_eq!(p.list.len(), crate::icv::hardware_threads());
    }

    #[test]
    fn impossible_mask_fails_gracefully_and_is_counted() {
        let before = crate::stats::stats().snapshot();
        // CPU 4095 does not exist in any CI container; the syscall must
        // fail without panicking and the outcome must be counted.
        let ok = bind_to_cpus(&[4095]);
        let d = before.delta(&crate::stats::stats().snapshot());
        if ok {
            assert!(d.affinity_binds >= 1);
        } else {
            assert!(d.affinity_bind_failures >= 1);
        }
    }

    #[test]
    fn apply_memoizes_the_bound_target() {
        // Dedicated thread: LAST_BIND is per OS thread.
        std::thread::spawn(|| {
            let p = team_places(ProcBind::Close, 2, &icvs_with_places(2)).unwrap();
            forget_last_bind();
            apply(&p, 0);
            let key = (Arc::as_ptr(&p.list) as *const () as usize, p.place_of[0]);
            assert_eq!(
                LAST_BIND.with(|c| c.get()),
                key,
                "apply must record the target it bound (or tried to)"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn binding_to_cpu0_succeeds_on_linux() {
        #[cfg(target_os = "linux")]
        {
            let before = crate::stats::stats().snapshot();
            assert!(bind_to_cpus(&[0]), "cpu 0 always exists");
            let d = before.delta(&crate::stats::stats().snapshot());
            assert!(d.affinity_binds >= 1);
        }
    }
}
