//! Wall-clock timing, the `omp_get_wtime` / `omp_get_wtick` equivalents.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Elapsed wall-clock seconds since an arbitrary (but fixed) point in the
/// past, exactly like `omp_get_wtime`. Differences between two calls are
/// meaningful; absolute values are not.
pub fn get_wtime() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// Timer resolution in seconds (`omp_get_wtick`). `Instant` is
/// nanosecond-granular on every platform we target.
pub fn get_wtick() -> f64 {
    1e-9
}

/// Convenience: time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = get_wtime();
    let out = f();
    (out, get_wtime() - t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wtime_is_monotone() {
        let a = get_wtime();
        let b = get_wtime();
        assert!(b >= a);
    }

    #[test]
    fn wtime_measures_sleep() {
        let t0 = get_wtime();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let dt = get_wtime() - t0;
        assert!(dt >= 0.009, "slept 10ms but measured {dt}");
    }

    #[test]
    fn wtick_positive() {
        assert!(get_wtick() > 0.0);
        assert!(get_wtick() <= 1e-6);
    }

    #[test]
    fn timed_returns_value() {
        let (v, dt) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(dt >= 0.0);
    }
}
