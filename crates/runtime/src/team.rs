//! Team state: everything the threads of one parallel region share.
//!
//! A [`Team`] is created per `parallel` construct (the analogue of
//! libomp's `kmp_team_t`). Besides the barrier and panic plumbing it owns
//! a small ring of **worksharing slots** (`WsSlot`): the shared state a
//! `dynamic`/`guided` loop, a `single`, a `sections` or an `ordered`
//! construct needs.
//!
//! ## The slot protocol
//!
//! OpenMP requires every thread of a team to encounter the same sequence
//! of worksharing constructs. Each thread therefore keeps a private
//! *generation* counter that increments at every slot-using construct; a
//! construct's shared state lives in `slots[gen % WS_SLOTS]`. Because
//! `nowait` lets fast threads run ahead, a slot may still be occupied by
//! an older generation when a thread arrives; the protocol is:
//!
//! * `gen == mine, state == READY` — join the construct;
//! * `gen == mine, state == FREE` — race to install (first CAS wins);
//! * `gen < mine` — the older construct must fully drain
//!   (`done == team size`) before one arriving thread recycles the slot
//!   by CAS-ing `state: READY → INSTALLING`.
//!
//! `done == size` can only be reached after *every* team thread has left
//! the construct, so a slot is never recycled under a thread still using
//! it, and all threads racing to install target the same generation
//! (a thread can only want generation `g + WS_SLOTS` after finishing
//! `g`, which requires `g` to be fully done).

use crate::affinity::TeamPlaces;
use crate::barrier::{BarrierKind, TeamBarrier};
use crate::icv::{ProcBind, WaitPolicy};
use crate::task::TaskSystem;
use parking_lot::{Condvar, Mutex, RwLock};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of in-flight worksharing constructs a team supports before
/// fast threads must wait for slow ones (libomp uses 7 dispatch buffers).
pub const WS_SLOTS: usize = 8;

const STATE_FREE: u8 = 0;
const STATE_INSTALLING: u8 = 1;
const STATE_READY: u8 = 2;

/// Dispatch kind stored in a slot.
pub(crate) const KIND_DYNAMIC: u8 = 0;
pub(crate) const KIND_GUIDED: u8 = 1;

/// Shared state for one worksharing construct.
#[derive(Debug)]
pub(crate) struct WsSlot {
    /// Generation currently installed in this slot.
    gen: AtomicU64,
    state: AtomicU8,
    /// Threads that have finished the installed construct.
    done: AtomicUsize,
    /// Dispatch cursor (next unclaimed iteration, normalized space).
    pub next: AtomicU64,
    /// One past the last iteration.
    pub end: AtomicU64,
    /// Chunk size (dynamic) / minimum chunk (guided).
    pub chunk: AtomicU64,
    /// `KIND_DYNAMIC` or `KIND_GUIDED`.
    pub kind: AtomicU8,
    /// `single`: set by the one thread that executes the block.
    pub claimed: AtomicBool,
    /// `ordered`: the iteration whose turn it is.
    pub ordered_next: AtomicU64,
    /// Tuned constructs: the encoded schedule decision the installer
    /// published for the whole team (see `tune::policy`).
    pub tune: AtomicU64,
    /// Tuned constructs: sum of per-thread busy nanoseconds.
    pub busy_ns_sum: AtomicU64,
    /// Tuned constructs: max of per-thread busy nanoseconds.
    pub busy_ns_max: AtomicU64,
    /// Tuned constructs: threads that have flushed their busy time; the
    /// last one (== team size) aggregates and records the sample.
    pub reporters: AtomicUsize,
}

impl WsSlot {
    fn new(initial_gen: u64) -> Self {
        WsSlot {
            gen: AtomicU64::new(initial_gen),
            state: AtomicU8::new(STATE_FREE),
            done: AtomicUsize::new(0),
            next: AtomicU64::new(0),
            end: AtomicU64::new(0),
            chunk: AtomicU64::new(1),
            kind: AtomicU8::new(KIND_DYNAMIC),
            claimed: AtomicBool::new(false),
            ordered_next: AtomicU64::new(0),
            tune: AtomicU64::new(0),
            busy_ns_sum: AtomicU64::new(0),
            busy_ns_max: AtomicU64::new(0),
            reporters: AtomicUsize::new(0),
        }
    }

    /// Enter this slot for construct generation `gen`, installing the
    /// shared state with `init` if we win the installation race.
    /// Returns `false` if the team aborted — or was cancelled (`cancel
    /// parallel`) — while we waited: after cancellation threads skip
    /// constructs unevenly, so an older generation may never drain and
    /// a waiter must not spin on it forever. Callers disambiguate via
    /// the team's flags (abort unwinds, cancel returns early).
    pub(crate) fn enter(
        &self,
        gen: u64,
        team_size: usize,
        abort: &AtomicBool,
        cancel: &AtomicBool,
        init: impl FnOnce(&WsSlot),
    ) -> bool {
        let mut init = Some(init);
        let mut spins = 0u32;
        loop {
            if abort.load(Ordering::Relaxed) || cancel.load(Ordering::Relaxed) {
                return false;
            }
            let cur = self.gen.load(Ordering::Acquire);
            if cur == gen {
                #[allow(clippy::collapsible_match)] // explicit state machine
                match self.state.load(Ordering::Acquire) {
                    STATE_READY => return true,
                    STATE_FREE => {
                        if self
                            .state
                            .compare_exchange(
                                STATE_FREE,
                                STATE_INSTALLING,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            self.done.store(0, Ordering::Relaxed);
                            // Unreachable panic: `init` is `Some` on
                            // entry and every `take()` path returns
                            // from `enter` immediately after running
                            // it, so the installer can be consumed at
                            // most once per call. (Covered by the
                            // chaos soak's fork/join churn, which
                            // drives this CAS race continuously.)
                            (init.take().expect("installer runs once"))(self);
                            self.state.store(STATE_READY, Ordering::Release);
                            return true;
                        }
                    }
                    _ => {} // being installed by someone else; spin
                }
            } else {
                debug_assert!(
                    cur < gen,
                    "workshare slot generation ran backwards ({cur} > {gen}); \
                     team threads encountered different construct sequences"
                );
                // Recycle only once the previous construct fully drained.
                if self.state.load(Ordering::Acquire) == STATE_READY
                    && self.done.load(Ordering::Acquire) == team_size
                    && self
                        .state
                        .compare_exchange(
                            STATE_READY,
                            STATE_INSTALLING,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                {
                    self.done.store(0, Ordering::Relaxed);
                    // Same single-consumption proof as the FREE arm
                    // above: winning the READY→INSTALLING CAS is the
                    // only way here, and this arm returns right after.
                    (init.take().expect("installer runs once"))(self);
                    self.gen.store(gen, Ordering::Relaxed);
                    self.state.store(STATE_READY, Ordering::Release);
                    return true;
                }
            }
            spins += 1;
            if spins > 10_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Mark this thread as finished with the construct it entered.
    pub(crate) fn leave(&self) {
        self.done.fetch_add(1, Ordering::AcqRel);
    }

    /// Return the slot to its just-constructed state for generation
    /// `initial_gen`. Hot-team recycling: called by the master between
    /// regions, while every team thread is parked at its doorbell, so
    /// plain stores suffice (the doorbell ring publishes them).
    pub(crate) fn reset(&self, initial_gen: u64) {
        self.gen.store(initial_gen, Ordering::Relaxed);
        self.state.store(STATE_FREE, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
    }
}

/// One generation-tagged reduction accumulator (see `Team::reduce_cells`).
#[derive(Debug)]
pub(crate) struct RedCell {
    /// Which reduction generation currently owns the cell; `u64::MAX`
    /// means never used.
    pub gen: u64,
    pub value: Option<Box<dyn Any + Send>>,
}

impl RedCell {
    fn new() -> Self {
        RedCell {
            gen: u64::MAX,
            value: None,
        }
    }
}

/// Per-fork snapshot of the master's data environment: ICV-derived
/// values that are fixed for the duration of one region but change from
/// region to region. A cold team takes them at construction; a recycled
/// hot team overwrites them at each fork ([`Team::recycle`]), which is
/// why they live behind one `RwLock` instead of being plain fields.
#[derive(Debug, Clone)]
pub(crate) struct ForkSnap {
    /// `run-sched-var` snapshot from the master's data environment at
    /// fork time: `schedule(runtime)` loops must resolve identically on
    /// every team thread, so the resolution source is bound to the team
    /// (per OpenMP ICV inheritance), not read per-thread mid-loop.
    pub run_sched: crate::sched::Schedule,
    /// Effective thread affinity request for this region: the
    /// `proc_bind` clause if present, else the per-level `bind-var`
    /// ICV. Reported (`omp_get_proc_bind`) and enforced through
    /// [`ForkSnap::places`] where the platform supports it.
    pub proc_bind: ProcBind,
    /// Place partition for this region (None = unbound): per-thread
    /// place assignment plus the sub-partition each thread hands to its
    /// own nested teams. Recomputed at every fork — including hot-team
    /// recycles — so a binding change re-pins a reused team.
    pub places: Option<Arc<TeamPlaces>>,
    /// Is this team a **league** of teams (a `teams` construct lowered
    /// onto an outer parallel region)? Reported through
    /// `omp_get_num_teams`/`omp_get_team_num`.
    pub league: bool,
    /// `cancel-var` snapshot: is cancellation armed for this region?
    /// Fork-time so a recycled hot team observes ICV changes, and so
    /// the non-cancelled hot path can skip every flag check with one
    /// boolean read per construct.
    pub cancellable: bool,
    /// Autotuner snapshot (`ROMP_TUNE` at fork time): may this region's
    /// `schedule(auto)` loops be measured and adapted? One fork-time
    /// boolean, so disarmed regions add zero per-chunk work and a
    /// region is never half-tuned.
    pub tune: bool,
}

/// Shared state of one parallel region's team.
pub struct Team {
    /// Number of threads in the team (including the master).
    pub(crate) size: usize,
    /// Nesting level of the region this team executes (1 = outermost
    /// parallel region; the sequential part is level 0).
    pub(crate) level: usize,
    /// Number of enclosing *active* (size > 1) regions, including this one
    /// if active.
    pub(crate) active_level: usize,
    pub(crate) barrier: TeamBarrier,
    /// Raised when any team thread panics; all barrier/slot waits watch it.
    pub(crate) abort: AtomicBool,
    /// Raised by `cancel parallel`: team threads skip remaining
    /// barriers/constructs and proceed (cooperatively) to the region
    /// end; not-yet-started tasks are discarded. Unlike `abort` it does
    /// not unwind — a cancelled region completes normally, with an
    /// unspecified partial result, exactly as the spec allows.
    pub(crate) cancel_parallel: AtomicBool,
    /// `cancel for`/`cancel sections` request, scoped to one
    /// worksharing construct: `0` = none, `g + 1` = the construct with
    /// cancellable-construct generation `g` is cancelled (every team
    /// thread encounters the same construct sequence, so the per-thread
    /// generation counters agree). A stale value simply never matches a
    /// later construct's generation — no end-of-construct reset races.
    pub(crate) cancel_ws: AtomicU64,
    /// First panic payload, rethrown by the master after the join.
    pub(crate) panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Workers (not the master) that have not yet finished the region.
    pub(crate) remaining: AtomicUsize,
    pub(crate) join_lock: Mutex<()>,
    pub(crate) join_cv: Condvar,
    pub(crate) slots: [WsSlot; WS_SLOTS],
    pub(crate) tasks: TaskSystem,
    /// `copyprivate` broadcast cell for `single` constructs.
    pub(crate) copy_cell: Mutex<Option<Box<dyn Any + Send>>>,
    /// Double-buffered type-erased accumulators for in-region reductions
    /// (`ThreadCtx::reduce_value`); indexed by reduction generation
    /// parity, tagged with the generation so stale values are discarded
    /// on reuse.
    pub(crate) reduce_cells: [Mutex<RedCell>; 2],
    /// `(thread_num, team_size)` per enclosing level, index 0 = initial
    /// implicit task. Used by `omp_get_ancestor_thread_num`.
    pub(crate) ancestors: Vec<(usize, usize)>,
    /// Per-fork ICV snapshot (see [`ForkSnap`]); rewritten on recycle.
    pub(crate) snap: RwLock<ForkSnap>,
    /// Was this region forked from inside a `final` task? Then every
    /// team thread's implicit task is final too (descendants of a final
    /// task are included tasks), which each worker re-establishes in
    /// its own TLS when it runs the region.
    pub(crate) parent_final: bool,
    /// Is this a cached **hot team** (workers bound to doorbells, state
    /// recycled between regions)? Hot teams skip the closing barrier
    /// episode at region end: the master's join on `remaining` is the
    /// region-end rendezvous and the next doorbell ring is the release.
    pub(crate) hot: bool,
    /// The forking master's thread handle: hot-team workers `unpark` it
    /// to signal region completion (the cold path uses the join condvar).
    pub(crate) master: std::thread::Thread,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("size", &self.size)
            .field("level", &self.level)
            .field("active_level", &self.active_level)
            .finish_non_exhaustive()
    }
}

impl Team {
    /// Build a team of `size` threads at nesting `level`.
    #[allow(clippy::too_many_arguments)] // fork-time snapshot, two call sites
    pub(crate) fn new(
        size: usize,
        level: usize,
        active_level: usize,
        barrier_kind: BarrierKind,
        wait_policy: WaitPolicy,
        ancestors: Vec<(usize, usize)>,
        snap: ForkSnap,
        parent_final: bool,
        hot: bool,
    ) -> Self {
        Team {
            size,
            level,
            active_level,
            barrier: TeamBarrier::new(size, barrier_kind, wait_policy),
            abort: AtomicBool::new(false),
            cancel_parallel: AtomicBool::new(false),
            cancel_ws: AtomicU64::new(0),
            panic_payload: Mutex::new(None),
            remaining: AtomicUsize::new(size.saturating_sub(1)),
            join_lock: Mutex::new(()),
            join_cv: Condvar::new(),
            slots: std::array::from_fn(|i| WsSlot::new(i as u64)),
            tasks: TaskSystem::new(size),
            copy_cell: Mutex::new(None),
            reduce_cells: [Mutex::new(RedCell::new()), Mutex::new(RedCell::new())],
            ancestors,
            snap: RwLock::new(snap),
            parent_final,
            hot,
            master: std::thread::current(),
        }
    }

    /// Team size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The team's `schedule(runtime)` resolution source (fork-time
    /// snapshot of `run-sched-var`).
    pub(crate) fn run_sched(&self) -> crate::sched::Schedule {
        self.snap.read().run_sched
    }

    /// The region's effective `proc_bind` (clause, else `bind-var`).
    pub(crate) fn proc_bind(&self) -> ProcBind {
        self.snap.read().proc_bind
    }

    /// The region's place partition (`None` = threads run unbound).
    pub(crate) fn places(&self) -> Option<Arc<TeamPlaces>> {
        self.snap.read().places.clone()
    }

    /// Is this team a league of teams (`teams` construct)?
    pub(crate) fn is_league(&self) -> bool {
        self.snap.read().league
    }

    /// Is cancellation armed for this region (`cancel-var` snapshot)?
    pub(crate) fn cancellable(&self) -> bool {
        self.snap.read().cancellable
    }

    /// Is the schedule autotuner armed for this region (`ROMP_TUNE`
    /// snapshot)?
    pub(crate) fn tunable(&self) -> bool {
        self.snap.read().tune
    }

    /// Recycle this hot team's shared state for the next region, in
    /// place of a fresh allocation.
    ///
    /// Contract: the caller (the master, between its join and the next
    /// doorbell ring) has verified that every worker finished the
    /// previous region (`remaining == 0`) and that no task is pending,
    /// so no other thread touches the team until the ring publishes
    /// these writes.
    pub(crate) fn recycle(&self, snap: ForkSnap) {
        debug_assert!(self.hot, "recycle is a hot-team protocol");
        debug_assert_eq!(self.remaining.load(Ordering::Acquire), 0);
        self.abort.store(false, Ordering::Relaxed);
        self.cancel_parallel.store(false, Ordering::Relaxed);
        self.cancel_ws.store(0, Ordering::Relaxed);
        *self.panic_payload.lock() = None;
        self.remaining
            .store(self.size.saturating_sub(1), Ordering::Relaxed);
        self.barrier.reset();
        for (i, s) in self.slots.iter().enumerate() {
            s.reset(i as u64);
        }
        self.tasks.recycle();
        *self.copy_cell.lock() = None;
        for cell in &self.reduce_cells {
            let mut c = cell.lock();
            c.gen = u64::MAX;
            c.value = None;
        }
        *self.snap.write() = snap;
    }

    /// Slot for a construct generation.
    pub(crate) fn slot(&self, gen: u64) -> &WsSlot {
        &self.slots[(gen as usize) % WS_SLOTS]
    }

    /// Record a panic from a team thread and raise the abort flag.
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        // Sibling-abort echoes are not interesting; keep the first real one.
        let mut slot = self.panic_payload.lock();
        if slot.is_none() && !payload.is::<crate::ctx::SiblingPanic>() {
            *slot = Some(payload);
        }
        self.abort.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn test_team(size: usize) -> Team {
        Team::new(
            size,
            1,
            1,
            BarrierKind::Central,
            WaitPolicy::Hybrid,
            vec![(0, 1)],
            ForkSnap {
                run_sched: crate::sched::Schedule::default(),
                proc_bind: ProcBind::False,
                places: None,
                league: false,
                cancellable: false,
                tune: false,
            },
            false,
            true, // hot, so recycle() is exercisable
        )
    }

    #[test]
    fn slot_install_then_join() {
        let team = test_team(2);
        let abort = AtomicBool::new(false);
        let cancel = AtomicBool::new(false);
        let slot = team.slot(0);
        // First thread installs.
        assert!(slot.enter(0, 2, &abort, &cancel, |s| {
            s.next.store(0, Ordering::Relaxed);
            s.end.store(100, Ordering::Relaxed);
        }));
        // Second thread joins without re-initializing.
        assert!(slot.enter(0, 2, &abort, &cancel, |_| panic!("double install")));
        assert_eq!(slot.end.load(Ordering::Relaxed), 100);
        slot.leave();
        slot.leave();
    }

    #[test]
    fn slot_recycles_after_all_leave() {
        let team = test_team(1);
        let abort = AtomicBool::new(false);
        let cancel = AtomicBool::new(false);
        // Generations 0 and WS_SLOTS map to the same slot.
        let g2 = WS_SLOTS as u64;
        let slot = team.slot(0);
        assert!(slot.enter(0, 1, &abort, &cancel, |s| s.end.store(7, Ordering::Relaxed)));
        slot.leave();
        assert!(slot.enter(g2, 1, &abort, &cancel, |s| s
            .end
            .store(9, Ordering::Relaxed)));
        assert_eq!(slot.end.load(Ordering::Relaxed), 9);
        slot.leave();
    }

    #[test]
    fn slot_enter_aborts() {
        let team = test_team(2);
        let abort = AtomicBool::new(false);
        let cancel = AtomicBool::new(false);
        let slot = team.slot(0);
        assert!(slot.enter(0, 2, &abort, &cancel, |_| {}));
        // Generation WS_SLOTS can't recycle (done != size), but the abort
        // flag must still release the waiter.
        abort.store(true, Ordering::SeqCst);
        assert!(!slot.enter(WS_SLOTS as u64, 2, &abort, &cancel, |_| {}));
    }

    #[test]
    fn slot_enter_released_by_cancellation() {
        // After `cancel parallel` threads skip constructs unevenly: an
        // older generation may never drain, and a waiter must still get
        // out (returning `false`, not unwinding).
        let team = test_team(2);
        let abort = AtomicBool::new(false);
        let cancel = AtomicBool::new(false);
        let slot = team.slot(0);
        assert!(slot.enter(0, 2, &abort, &cancel, |_| {}));
        cancel.store(true, Ordering::SeqCst);
        assert!(!slot.enter(WS_SLOTS as u64, 2, &abort, &cancel, |_| {}));
    }

    #[test]
    fn concurrent_install_race_single_winner() {
        let team = Arc::new(test_team(8));
        let abort = Arc::new(AtomicBool::new(false));
        let cancel = Arc::new(AtomicBool::new(false));
        let installs = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let team = team.clone();
            let abort = abort.clone();
            let cancel = cancel.clone();
            let installs = installs.clone();
            handles.push(std::thread::spawn(move || {
                let slot = team.slot(3);
                assert!(slot.enter(3, 8, &abort, &cancel, |_| {
                    installs.fetch_add(1, Ordering::SeqCst);
                }));
                slot.leave();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(installs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn recycle_resets_slots_panic_state_and_snapshot() {
        let team = test_team(2);
        let abort = AtomicBool::new(false);
        let cancel = AtomicBool::new(false);
        // Dirty the team: advance a slot generation, record a panic,
        // poison a reduce cell, consume the join counter.
        let slot = team.slot(0);
        assert!(slot.enter(0, 2, &abort, &cancel, |s| s
            .end
            .store(11, Ordering::Relaxed)));
        slot.leave();
        slot.leave();
        team.record_panic(Box::new("boom"));
        team.cancel_parallel.store(true, Ordering::SeqCst);
        team.cancel_ws.store(7, Ordering::SeqCst);
        team.reduce_cells[0].lock().gen = 0;
        team.remaining.store(0, Ordering::SeqCst);

        team.recycle(ForkSnap {
            run_sched: crate::sched::Schedule::dynamic_chunk(5),
            proc_bind: ProcBind::Spread,
            places: None,
            league: true,
            cancellable: true,
            tune: true,
        });

        assert!(!team.abort.load(Ordering::SeqCst));
        assert!(!team.cancel_parallel.load(Ordering::SeqCst));
        assert_eq!(team.cancel_ws.load(Ordering::SeqCst), 0);
        assert!(team.cancellable());
        assert!(team.panic_payload.lock().is_none());
        assert_eq!(team.remaining.load(Ordering::SeqCst), 1);
        assert_eq!(team.run_sched(), crate::sched::Schedule::dynamic_chunk(5));
        assert_eq!(team.proc_bind(), ProcBind::Spread);
        assert!(team.is_league());
        assert_eq!(team.reduce_cells[0].lock().gen, u64::MAX);
        // Slot generation is back at its initial value: a fresh thread
        // (generation counter 0) can install again.
        let slot = team.slot(0);
        assert!(slot.enter(0, 2, &abort, &cancel, |s| s
            .end
            .store(99, Ordering::Relaxed)));
        assert_eq!(slot.end.load(Ordering::Relaxed), 99);
        slot.leave();
        slot.leave();
    }

    #[test]
    fn record_panic_keeps_first_real_payload() {
        let team = test_team(2);
        team.record_panic(Box::new(crate::ctx::SiblingPanic));
        assert!(team.panic_payload.lock().is_none());
        assert!(team.abort.load(Ordering::Relaxed));
        team.record_panic(Box::new("real"));
        team.record_panic(Box::new("second"));
        let p = team.panic_payload.lock().take().unwrap();
        assert_eq!(*p.downcast::<&str>().unwrap(), "real");
    }
}
