//! The worker pool, the hot-team cache, and the fork/join entry point.
//!
//! [`fork`] is romp's `__kmpc_fork_call`: the directive layer outlines a
//! parallel region into a closure and passes it here; the calling thread
//! becomes thread 0 of a team whose other members are drawn from a
//! lazily-grown, process-global pool of parked worker threads.
//!
//! ## The sharded pool
//!
//! The idle free list is **sharded**: each forking master hashes to a
//! home shard, acquires from it first (stealing from the other shards
//! only when it runs dry) and releases back to it, so many concurrent
//! masters — the "server" scenario of the syncbench server mode — fork
//! without serializing on one global lock. Thread-limit accounting is a
//! lock-free atomic reservation counter with a rollback path for failed
//! spawns. See `Pool` (private) for the design notes and
//! `ROMP_POOL_SHARDS` for the knob.
//!
//! ## The hot-team fast path
//!
//! The paper's whole premise is that the fork call is cheap enough to
//! wrap *every* loop. Re-acquiring workers from the process-global pool
//! under a lock and handing them assignments through per-worker
//! mutex+condvar mailboxes — the **cold path** below — is not that: it
//! pays a pool round-trip, a fresh `Arc<Team>` allocation (task deques,
//! barrier, worksharing slots) and a mailbox dance per worker per
//! region. Like libomp's *hot teams* (`KMP_HOT_TEAMS_MODE`), the master
//! therefore caches its last team: workers stay **bound** between
//! regions, parked at a per-worker `HotChannel` doorbell, and a
//! consecutive fork of the same shape is
//!
//! 1. `Team::recycle` — reset the previous region's barrier,
//!    worksharing-slot, reduction and task-graph state in place;
//! 2. a doorbell **ring** per worker — publish the new job pointer and
//!    bump the channel epoch (spin-then-park wait on the worker side,
//!    gated by `OMP_WAIT_POLICY`);
//! 3. the master's own trip through the region;
//! 4. `hot_join` — wait for the workers' completion signals, helping
//!    with any still-pending tasks.
//!
//! Hot teams also drop the closing barrier episode: the join counter
//! *is* the region-end rendezvous (no thread can leave [`fork`] before
//! every member signalled completion) and the next ring is the release,
//! saving a wake-everyone broadcast per region.
//!
//! The cache lives in a thread-local on the master (`HOT_TEAM`) and is
//! invalidated — workers released back to the pool — when the requested
//! team shape changes (`num_threads`, wait policy, barrier kind,
//! `dyn-var`), when a region panics, when `ROMP_HOT_TEAMS` is turned
//! off, or when the master thread exits (TLS drop). Nested forks and
//! forks from inside a `final` task always take the cold path. The cold
//! path is kept fully intact both as the fallback and as the measured
//! baseline for the syncbench overhead suite (`ROMP_HOT_TEAMS=0`).
//!
//! ## Safety of the lifetime erasure
//!
//! The region closure lives on the master's stack and is executed
//! concurrently by workers through a raw pointer (`Job`). This is sound
//! because `fork` does not return until every team member has signalled
//! completion (`Team::remaining` reaching zero), so the closure —
//! and everything it borrows — strictly outlives all worker access.
//! The paper's Zig implementation relies on the identical contract when
//! it passes function pointers plus pointers into the enclosing stack
//! frame to the LLVM OpenMP runtime. The hot path preserves the
//! contract: a bound worker reads the job pointer only between a ring
//! and its completion signal, and the master rings only between joins.
//!
//! ## Panic handling
//!
//! A panicking team thread records its payload in the team and raises the
//! team abort flag; sibling threads waiting at barriers or dispatch slots
//! observe the flag and unwind with a [`SiblingPanic`] marker. After the
//! join, the master rethrows the first real payload, so a panic inside a
//! parallel region behaves like a panic in serial code. A panic also
//! invalidates the hot team — the next fork rebuilds from the pool — so
//! a poisoned cache can never serve a later region.

use crate::ctx::{
    forking_ancestors, forking_position, RegionInfo, SiblingPanic, ThreadCtx, REGION_STACK,
};
use crate::icv::{self, Icvs, ProcBind, WaitPolicy};
use crate::stats::{bump, stats};
use crate::team::{ForkSnap, Team};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// How a `parallel` construct is launched; carries the clause values the
/// paper's directive supports (`num_threads`, `if`, `proc_bind`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ForkSpec {
    /// `num_threads(n)` clause; `None` = use the `nthreads-var` ICV.
    pub num_threads: Option<usize>,
    /// `if(expr)` clause; `Some(false)` forces a serialized (team-of-one)
    /// region.
    pub if_clause: Option<bool>,
    /// `proc_bind(kind)` clause; `None` = use the `bind-var` ICV. The
    /// effective policy is recorded on the team and, where the OS allows,
    /// enforced by partitioning the place list across the team at fork
    /// (see [`crate::affinity`]).
    pub proc_bind: Option<ProcBind>,
    /// `teams` semantics: the region forms a league and each team member
    /// is an initial team of one. Implies `proc_bind(spread)` unless a
    /// bind was given explicitly, so leagues land on disjoint place
    /// subsets and nested `parallel` regions inherit a local slice.
    pub league: bool,
}

impl ForkSpec {
    /// Default spec: team size from the ICVs.
    pub fn new() -> Self {
        ForkSpec::default()
    }

    /// Request an explicit team size (the `num_threads` clause).
    pub fn with_num_threads(n: usize) -> Self {
        ForkSpec {
            num_threads: Some(n),
            ..ForkSpec::default()
        }
    }

    /// Attach an `if` clause.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.if_clause = Some(cond);
        self
    }

    /// Attach a `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Attach a `proc_bind` clause.
    pub fn proc_bind(mut self, bind: ProcBind) -> Self {
        self.proc_bind = Some(bind);
        self
    }

    /// Request `teams(n)` semantics: a league of `n` initial teams that
    /// spreads across the place partition (unless an explicit `proc_bind`
    /// overrides the spread default).
    pub fn teams(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self.league = true;
        self
    }
}

/// Type-erased pointer to the region closure plus its call trampoline.
/// The second trampoline argument is a type-erased `&ThreadCtx<'env>`.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), *const ()),
}

// SAFETY: the pointee is `Sync` (bound enforced by `make_job`) and the
// master keeps it alive for the duration of all worker access.
unsafe impl Send for Job {}

fn make_job<'env, F>(f: &F) -> Job
where
    F: Fn(&ThreadCtx<'env>) + Sync,
{
    unsafe fn call<'env, F>(data: *const (), ctx: *const ())
    where
        F: Fn(&ThreadCtx<'env>) + Sync,
    {
        // SAFETY: `data` was produced from `&F` in `make_job` and is kept
        // alive by the forking master until the join completes; `ctx`
        // points at the executing thread's live `ThreadCtx`, whose
        // lifetime parameter is erased here and re-conjured — sound
        // because the context never stores `'env` data, it only brands
        // the `task` bound (see `ThreadCtx` docs).
        let f = unsafe { &*(data as *const F) };
        let ctx = unsafe { &*(ctx as *const ThreadCtx<'env>) };
        f(ctx);
    }
    Job {
        data: f as *const F as *const (),
        call: call::<F>,
    }
}

/// What a pooled worker finds in its mailbox.
enum Assignment {
    /// Cold path: run one region as `thread_num` of `team`, then return
    /// to the pool.
    Run {
        team: Arc<Team>,
        thread_num: usize,
        job: Job,
    },
    /// Hot path: bind to a master's cached team and serve regions from
    /// the channel's doorbell until released.
    Bind(Arc<HotChannel>),
}

struct WorkerSlot {
    mailbox: Mutex<Option<Assignment>>,
    cv: Condvar,
    /// Index of the shard this slot is released to — the **home shard of
    /// the master that last acquired it** (written at acquire time, read
    /// at release time). Keeping release affinity with the acquiring
    /// master means a master that forks repeatedly keeps finding its own
    /// workers in its own shard, uncontended, and a hot-team resize
    /// re-acquires the just-released slots without touching other shards.
    /// Relaxed ordering suffices: every read is separated from the write
    /// by the shard mutex or by the mailbox handshake.
    home: AtomicUsize,
}

/// One shard of the idle-worker free list, plus its observability
/// counters (surfaced in the stats banner — see
/// [`crate::stats::display_stats`]).
struct Shard {
    idle: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Idle slots handed out from this shard to its *own* masters
    /// (masters whose home hash lands here).
    acquired: AtomicU64,
    /// Idle slots stolen *from* this shard by masters homed elsewhere
    /// (their own shard ran dry).
    stolen: AtomicU64,
    /// `try_lock` misses on this shard's free list — a direct measure of
    /// how often two masters collided on the same shard.
    contended: AtomicU64,
}

/// The process-global worker pool: N independent free-list shards plus
/// one atomic thread-limit account.
///
/// The pre-sharding design — a single `Mutex<Vec<WorkerSlot>>` — made
/// every cold fork and every hot-team resize in the process serialize on
/// one lock, which is exactly the wrong shape for the "server" scenario
/// of many concurrent masters forking small regions. Here each master
/// hashes to a **home shard** ([`Pool::home_index`]); acquire pops from
/// the home shard first and sweeps the other shards only when it runs
/// dry (work-stealing fallback, so a worker parked in any shard is
/// always reachable and none can strand); release pushes to the slot's
/// recorded home. Thread-limit accounting was already lock-free
/// (`total` is an atomic reservation counter) and stays that way; a
/// failed reservation is simply not taken, and a reservation whose
/// spawn fails is **rolled back** (see [`Pool::acquire`]).
struct Pool {
    shards: Box<[Shard]>,
    total: AtomicUsize,
}

/// Shard count resolution: `ROMP_POOL_SHARDS` if set (≥1), otherwise
/// the hardware thread count rounded up to a power of two, floored at 8
/// — contention comes from concurrent *masters*, which may well
/// outnumber cores on an oversubscribed host — and capped at 64. Frozen
/// for the process lifetime at first pool use (like
/// [`icv::hardware_threads`]).
fn resolved_shard_count() -> usize {
    let configured = icv::current().pool_shards;
    if configured > 0 {
        configured.min(1024)
    } else {
        icv::hardware_threads().next_power_of_two().clamp(8, 64)
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let shards = (0..resolved_shard_count())
            .map(|_| Shard {
                idle: Mutex::new(Vec::new()),
                acquired: AtomicU64::new(0),
                stolen: AtomicU64::new(0),
                contended: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Pool {
            shards,
            total: AtomicUsize::new(0),
        }
    })
}

thread_local! {
    /// Memoized home-shard index of this thread (`usize::MAX` = not yet
    /// computed). The shard count is process-lifetime constant, so the
    /// hash never needs re-evaluation.
    static HOME_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

impl Pool {
    /// This thread's home shard: a Fibonacci hash of the OS thread id,
    /// so masters spread evenly over the shards regardless of how the
    /// platform allocates thread ids.
    fn home_index(&self) -> usize {
        HOME_SHARD.with(|c| {
            let cached = c.get();
            if cached != usize::MAX {
                return cached;
            }
            let h = crate::lock::os_thread_id().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let idx = (h >> 32) as usize % self.shards.len();
            c.set(idx);
            idx
        })
    }

    /// Pop up to `want - got.len()` idle slots from shard `idx`,
    /// counting a `try_lock` miss as contention.
    fn take_idle(&self, idx: usize, want: usize, got: &mut Vec<Arc<WorkerSlot>>) -> usize {
        let shard = &self.shards[idx];
        let mut idle = match shard.idle.try_lock() {
            Some(g) => g,
            None => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                bump(&stats().pool_shard_contention);
                shard.idle.lock()
            }
        };
        let before = got.len();
        while got.len() < want {
            match idle.pop() {
                Some(w) => got.push(w),
                None => break,
            }
        }
        got.len() - before
    }

    /// Take up to `want` idle workers, spawning new ones while under the
    /// thread limit. May return fewer than requested (the spec permits
    /// delivering fewer threads than asked).
    ///
    /// Order of supply: the caller's home shard, then a stealing sweep
    /// over the remaining shards (so no idle worker is ever stranded
    /// behind someone else's hash), then fresh spawns under an atomic
    /// `total` reservation. A reservation whose spawn *fails* is rolled
    /// back and the team is delivered short — spec-legal, and strictly
    /// better than taking the process down mid-request.
    fn acquire(&self, want: usize, icvs: &Icvs) -> Vec<Arc<WorkerSlot>> {
        let mut got = Vec::with_capacity(want);
        if want == 0 {
            return got;
        }
        let home = self.home_index();
        let local = self.take_idle(home, want, &mut got);
        if local > 0 {
            self.shards[home]
                .acquired
                .fetch_add(local as u64, Ordering::Relaxed);
            stats()
                .pool_acquires_local
                .fetch_add(local as u64, Ordering::Relaxed);
        }
        if got.len() < want && self.shards.len() > 1 {
            for off in 1..self.shards.len() {
                let victim = (home + off) % self.shards.len();
                let stolen = self.take_idle(victim, want, &mut got);
                if stolen > 0 {
                    self.shards[victim]
                        .stolen
                        .fetch_add(stolen as u64, Ordering::Relaxed);
                    stats()
                        .pool_acquires_stolen
                        .fetch_add(stolen as u64, Ordering::Relaxed);
                }
                if got.len() == want {
                    break;
                }
            }
        }
        // Re-home everything we picked up (stolen slots included) to the
        // acquiring master's shard: that is where the release will look
        // for them next.
        for w in &got {
            w.home.store(home, Ordering::Relaxed);
        }
        // The limit counts all threads; reserve one for the initial thread.
        let worker_cap = icvs.thread_limit.saturating_sub(1);
        while got.len() < want {
            if self
                .total
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                    (t < worker_cap).then_some(t + 1)
                })
                .is_err()
            {
                break;
            }
            match spawn_worker(icvs.stacksize, home) {
                Ok(w) => got.push(w),
                Err(_) => {
                    // Roll back the reservation the failed spawn was
                    // holding — leaking it would permanently shrink the
                    // effective thread limit — and degrade to a short
                    // team rather than panicking the whole process.
                    self.total.fetch_sub(1, Ordering::AcqRel);
                    bump(&stats().worker_spawn_failures);
                    break;
                }
            }
        }
        got
    }

    fn release(&self, slot: Arc<WorkerSlot>) {
        let idx = slot.home.load(Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[idx];
        let mut idle = match shard.idle.try_lock() {
            Some(g) => g,
            None => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                bump(&stats().pool_shard_contention);
                shard.idle.lock()
            }
        };
        idle.push(slot);
    }
}

/// Test hook: make the next `n` worker spawns *from this thread's
/// forks* fail with an injected error, exercising the
/// reservation-rollback / short-team degradation path in
/// [`Pool::acquire`] without needing to exhaust real OS thread
/// resources.
///
/// The count is thread-local (spawns happen on the forking master's
/// thread, inside `acquire`), so an armed count can never leak into
/// unrelated tests running concurrently in the same process — the
/// process-global counter this replaced poisoned whichever suite
/// forked next. Randomized spawn-failure injection across threads goes
/// through the `chaos` feature's [`crate::chaos::Site::WorkerSpawn`]
/// site instead.
#[doc(hidden)]
pub fn inject_spawn_failures(n: usize) {
    FAIL_SPAWNS.with(|c| c.set(n));
}

thread_local! {
    /// Pending injected spawn failures for forks from this thread.
    static FAIL_SPAWNS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Consume one injected spawn failure, if armed on this thread.
fn take_injected_spawn_failure() -> bool {
    FAIL_SPAWNS.with(|c| {
        let n = c.get();
        if n > 0 {
            c.set(n - 1);
            true
        } else {
            false
        }
    })
}

/// Monotonic worker-id allocator for thread naming. Deliberately *not*
/// the `workers_spawned` stats counter: concurrent spawns from
/// different masters used to interleave bump/read pairs on that counter
/// and produce duplicate-looking names.
static NEXT_WORKER_ID: AtomicU64 = AtomicU64::new(0);

fn spawn_worker(stacksize: Option<usize>, shard: usize) -> std::io::Result<Arc<WorkerSlot>> {
    if take_injected_spawn_failure()
        || matches!(
            crate::chaos::chaos_point!(crate::chaos::Site::WorkerSpawn),
            Some(crate::chaos::Injected::SpawnFail)
        )
    {
        return Err(std::io::Error::other("injected romp worker spawn failure"));
    }
    let slot = Arc::new(WorkerSlot {
        mailbox: Mutex::new(None),
        cv: Condvar::new(),
        home: AtomicUsize::new(shard),
    });
    let their_slot = slot.clone();
    let id = NEXT_WORKER_ID.fetch_add(1, Ordering::Relaxed);
    let mut builder = std::thread::Builder::new().name(format!("romp-worker-{id}.s{shard}"));
    if let Some(bytes) = stacksize {
        builder = builder.stack_size(bytes);
    }
    builder.spawn(move || worker_main(their_slot))?;
    bump(&stats().workers_spawned);
    Ok(slot)
}

fn worker_main(slot: Arc<WorkerSlot>) {
    loop {
        let assignment = {
            let mut mb = slot.mailbox.lock();
            loop {
                if let Some(a) = mb.take() {
                    break a;
                }
                slot.cv.wait(&mut mb);
            }
        };
        match assignment {
            Assignment::Run {
                team,
                thread_num,
                job,
            } => {
                // Fresh implicit-task data environment: `omp_set_*`
                // overrides from regions this worker served earlier must
                // not leak in.
                icv::tls_clear_overrides();
                run_region(&team, thread_num, job);
                // Signal completion, then return to the pool. Nothing
                // after the decrement may touch the job or team borrows.
                signal_completion(&team);
                drop(team);
                // A worker must never carry nested sub-team leases into
                // the idle pool: their cache keys pin the identity of a
                // parent team this worker is no longer part of.
                drop_hot_leases_from(0);
            }
            Assignment::Bind(channel) => {
                hot_worker_loop(&channel);
                // Release order matters: leases this worker grew while
                // bound (it was a nested master) are parented by
                // `channel.team`, which the channel Arc keeps alive
                // until the line after next.
                drop_hot_leases_from(0);
                drop(channel);
                // The releasing master already pushed this slot back to
                // the idle list (`HotTeam::drop`); self-releasing too
                // would duplicate it and let two masters acquire the
                // same worker. Go straight back to the mailbox wait —
                // an assignment may even be waiting there already.
                continue;
            }
        }
        pool().release(slot.clone());
    }
}

/// Decrement the team's outstanding-worker count and wake the joining
/// master if this was the last one. Hot teams use the master's park
/// token (`hot_join` idles through [`IdleWait`]); cold teams use the
/// join condvar.
fn signal_completion(team: &Team) {
    let prev = team.remaining.fetch_sub(1, Ordering::AcqRel);
    if prev == 1 {
        if team.hot {
            team.master.unpark();
        } else {
            let _g = team.join_lock.lock();
            drop(_g);
            team.join_cv.notify_one();
        }
    }
}

/// Run a region body as `thread_num` of `team` on the current thread:
/// maintain the region TLS stack, catch panics into the team, and execute
/// the implicit end-of-region barrier (which drains deferred tasks; for
/// hot teams it degenerates to the task drain — see
/// `ThreadCtx::end_of_region_barrier`).
fn run_region(team: &Arc<Team>, thread_num: usize, job: Job) {
    REGION_STACK.with(|s| {
        s.borrow_mut().push(RegionInfo {
            team: team.clone(),
            thread_num,
        })
    });
    // Pin this thread to its place before any user code runs. The
    // placement rides in the fork snapshot, so a recycled hot team
    // re-reads it every region; the per-thread memo in `apply` makes
    // the unchanged case syscall-free.
    if let Some(places) = team.places() {
        crate::affinity::apply(&places, thread_num);
    }
    // A region forked from a final task is executed by final implicit
    // tasks on *every* team thread: re-establish the TLS flag here so
    // tasks spawned by any member come out included (undeferred).
    let _final = team.parent_final.then(crate::task::FinalGuard::enter);
    let ctx: ThreadCtx<'_> = ThreadCtx::new(team.clone(), thread_num);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // SAFETY: the master blocks in `join` until every team thread has
        // finished with the job, so the closure behind `job.data` (and
        // everything it borrows) outlives this call.
        unsafe { (job.call)(job.data, &ctx as *const ThreadCtx<'_> as *const ()) };
        ctx.end_of_region_barrier();
    }));
    if let Err(payload) = result {
        team.record_panic(payload);
    }
    REGION_STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

// ---------------------------------------------------------------------
// Hot-team machinery
// ---------------------------------------------------------------------

/// Spin → yield → park idle ladder, derived from `OMP_WAIT_POLICY`.
///
/// The yield rung is what makes hot teams fast on oversubscribed hosts:
/// a yielding thread donates its timeslice to whichever sibling it is
/// waiting for (master at the join, workers at their doorbells) without
/// the futex round trip that parking costs, and without the timeslice
/// theft that spinning costs. `active` spins indefinitely; `passive`
/// parks almost immediately, as the spec intends; the default hybrid
/// policy climbs all three rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IdleWait {
    /// Busy-spin rounds before yielding (`u32::MAX` = spin forever).
    spin: u32,
    /// `yield_now` rounds before parking.
    yields: u32,
}

impl IdleWait {
    /// Common policy table: only the hybrid rung differs between the
    /// doorbell and join ladders, so it is the one parameter.
    fn ladder(policy: WaitPolicy, oversubscribed: bool, hybrid: IdleWait) -> Self {
        match policy {
            // Spin-forever only when a core is actually free for it:
            // oversubscribed active degrades to a yield loop (same
            // heuristic the barrier applies), or it would burn whole
            // timeslices the sibling being waited for needs.
            WaitPolicy::Active if oversubscribed => IdleWait {
                spin: 64,
                yields: u32::MAX,
            },
            WaitPolicy::Active => IdleWait {
                spin: u32::MAX,
                yields: 0,
            },
            WaitPolicy::Passive => IdleWait { spin: 8, yields: 0 },
            WaitPolicy::Hybrid => hybrid,
        }
    }

    /// Ladder for a worker idling at its doorbell. On an oversubscribed
    /// host the worker parks almost immediately: a freshly-woken worker
    /// has the lowest virtual runtime, so any post-completion yield
    /// phase keeps the CPU away from the master that is trying to reach
    /// the next ring (measured: one such region costs ~20µs instead of
    /// ~3µs), while a park/unpark round trip is cheap.
    fn doorbell(policy: WaitPolicy, oversubscribed: bool) -> Self {
        let hybrid = if oversubscribed {
            IdleWait {
                spin: 8,
                yields: 32,
            }
        } else {
            IdleWait {
                spin: 512,
                yields: 256,
            }
        };
        Self::ladder(policy, oversubscribed, hybrid)
    }

    /// Ladder for the master's join. The master *wants* to donate its
    /// timeslice to the workers it waits for, so the hybrid ladder
    /// leans on yields (cheap directed switches on an oversubscribed
    /// host) with the park only as a backstop for long regions.
    fn join(policy: WaitPolicy, oversubscribed: bool) -> Self {
        let hybrid = IdleWait {
            spin: if oversubscribed { 0 } else { 512 },
            yields: 4096,
        };
        Self::ladder(policy, oversubscribed, hybrid)
    }

    /// Execute idle round number `idle` (1-based, saturating).
    ///
    /// `timed_park` selects the park rung's flavor: the doorbell uses
    /// an untimed `park` (pure token protocol — a direct ring bumps the
    /// epoch before its `unpark`, a chain-forwarded wake only reaches a
    /// worker whose channel the master already primed because the hit
    /// path primes in reverse chain order, and the worker re-checks the
    /// epoch around every park — so a park can never consume a token
    /// against a stale epoch and strand the worker; timed parks were
    /// measured to cost tens of µs in timer bookkeeping on some
    /// kernels). The join keeps a timed park as a liveness backstop:
    /// a dependence release can land work on a busy worker's deque,
    /// and the master must wake up to steal it even though no
    /// completion signal fires.
    fn wait(&self, idle: u32, timed_park: bool) {
        if self.spin == u32::MAX || idle < self.spin {
            std::hint::spin_loop();
        } else if idle - self.spin < self.yields {
            std::thread::yield_now();
        } else {
            // Chaos: a delay here stretches the window between the
            // caller's last condition check and the park — the exact
            // schedule in which a forgotten wake token strands a waiter.
            let _ = crate::chaos::chaos_point!(crate::chaos::Site::Park);
            if timed_park {
                std::thread::park_timeout(std::time::Duration::from_millis(1));
            } else {
                std::thread::park();
            }
        }
    }
}

/// Per-bound-worker doorbell: the channel a hot master rings to
/// dispatch the next region to a worker that stays attached between
/// regions.
///
/// Protocol: the master writes `job`, then bumps `epoch` (release), then
/// `unpark`s the worker. The worker idles on `epoch` through the wait
/// policy's spin → yield → park ladder ([`IdleWait`]); `unpark`'s token
/// semantics make the park/ring race benign without any lock — an
/// unpark delivered while the worker is still running simply makes its
/// next park return immediately, and the worker re-checks the epoch
/// around every park anyway. (A mutex+condvar doorbell was measured to
/// cost a full context-switch round trip per ring on an oversubscribed
/// host: the master blocks on the lock the about-to-park worker holds.)
struct HotChannel {
    team: Arc<Team>,
    thread_num: usize,
    /// Doorbell generation; bumped once per dispatched region.
    epoch: AtomicU64,
    /// Master orders the worker back to the global pool.
    release: AtomicBool,
    /// The region closure for the current epoch. Written by the master
    /// strictly between joins; read by the worker strictly between a
    /// ring and its completion signal.
    job: UnsafeCell<Option<Job>>,
    /// The bound worker's thread handle, registered when it first
    /// services the channel; `ring` unparks it. (The first region's job
    /// is pre-armed before the `Bind` is mailed, so the master never
    /// needs to ring before registration.)
    worker: OnceLock<std::thread::Thread>,
    /// The next sibling in the team's **wake chain**: the master
    /// unparks only the first worker, and each worker forwards the wake
    /// before running its own share of the region. Wake syscalls thus
    /// ride on threads that are about to park anyway instead of
    /// preempting the master once per worker (which serialized the ring
    /// loop into per-worker context-switch round trips). Sound only
    /// because the hit path primes channels in **reverse** chain order:
    /// a forwarded wake always finds its target's epoch already bumped.
    next: Option<Arc<HotChannel>>,
    /// Idle ladder of the team's wait policy (`OMP_WAIT_POLICY`).
    idle: IdleWait,
}

impl HotChannel {
    /// Unpark the bound worker (token-based, cheap if it is not parked).
    fn wake(&self) {
        if let Some(w) = self.worker.get() {
            w.unpark();
        }
    }
}

// SAFETY: the only non-Sync field is `job`; master writes and worker
// reads are separated by the epoch/remaining handshake (the master
// writes only after the previous join, the worker reads only after
// observing the epoch bump), so accesses never overlap.
unsafe impl Send for HotChannel {}
unsafe impl Sync for HotChannel {}

/// Publish the next region's job on a doorbell **without** waking the
/// worker (the wake arrives via the chain, or from [`ring`]).
fn prime(ch: &HotChannel, job: Option<Job>) {
    // Chaos: delay between the previous channel's publication and this
    // one — the hit path's reverse-order priming is only sound if no
    // interleaving can let a forwarded wake outrun an unprimed channel.
    let _ = crate::chaos::chaos_point!(crate::chaos::Site::DoorbellPrime);
    // SAFETY: see `HotChannel::job` — the worker finished the previous
    // region (the master joined) and has not yet observed the bump below,
    // so no concurrent access to the cell exists.
    unsafe {
        *ch.job.get() = job;
    }
    ch.epoch.fetch_add(1, Ordering::Release);
}

/// Ring a bound worker's doorbell with the next region's job and wake it
/// directly (used on the release path; normal forks prime every channel
/// and let the wake chain propagate from the first worker).
fn ring(ch: &HotChannel, job: Option<Job>) {
    prime(ch, job);
    // Chaos: delay between publication and wake — a worker that can
    // only make progress through this wake must still get it.
    let _ = crate::chaos::chaos_point!(crate::chaos::Site::DoorbellRing);
    ch.wake();
}

/// A bound worker's service loop: wait at the doorbell, run the region,
/// signal completion, repeat — until released back to the pool.
fn hot_worker_loop(ch: &HotChannel) {
    let _ = ch.worker.set(std::thread::current());
    // The channel arrives pre-armed: epoch 1 with the first region's job
    // already published, so starting from 0 runs it immediately.
    let mut seen = 0u64;
    loop {
        // Doorbell wait: the wait policy's spin → yield → park ladder.
        let mut idle = 0u32;
        loop {
            let e = ch.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            idle = idle.saturating_add(1);
            ch.idle.wait(idle, false);
        }
        if ch.release.load(Ordering::SeqCst) {
            return;
        }
        // Forward the wake down the chain before touching our own
        // share, so siblings start (and, on a multicore host, run)
        // concurrently with us.
        if let Some(next) = &ch.next {
            next.wake();
        }
        // SAFETY: the master published the job before the epoch bump we
        // just observed and will not touch the cell again until we
        // signal completion below.
        let Some(job) = (unsafe { *ch.job.get() }) else {
            // Unreachable by the doorbell protocol: the job write
            // happens-before the epoch bump we just observed (release
            // store, acquire load). But a panic *here* — runtime-
            // internal code, outside any region's catch_unwind — would
            // kill the worker without signalling completion and hang
            // the master's join forever. An empty ring degrades to a
            // spurious wake instead: warn and re-wait at the doorbell.
            eprintln!(
                "ROMP WARNING: doorbell epoch {seen} rang without a job \
                 (thread {}); treating as a spurious wake",
                ch.thread_num
            );
            continue;
        };
        icv::tls_clear_overrides();
        run_region(&ch.team, ch.thread_num, job);
        signal_completion(&ch.team);
    }
}

/// Cache key: the team shape plus, for nested leases, the identity of
/// the enclosing team. A fork whose key differs rebuilds the hot team
/// (counted as a resize).
///
/// The effective `proc_bind`/places are deliberately **not** part of
/// the key: the placement rides in the [`ForkSnap`], which
/// `Team::recycle` rewrites on every hit, and `run_region` re-applies
/// it per thread through the [`crate::affinity`] memo — so a binding
/// change re-pins the *reused* team instead of tearing it down
/// (asserted by `hot_reuse_survives_proc_bind_change` in
/// `tests/hot_team.rs`).
#[derive(Clone, Copy, PartialEq, Eq)]
struct HotKey {
    /// Requested team size (post `if`/nesting/limit clamping).
    n: usize,
    barrier_kind: crate::barrier::BarrierKind,
    /// The **raw** `OMP_WAIT_POLICY` ICV — deliberately not the
    /// oversubscription-adjusted effective policy (see [`hot_fork`]), so
    /// a policy change always rebuilds even when oversubscription would
    /// mask it at the barrier.
    wait_policy: WaitPolicy,
    /// `dyn-var`: a change re-evaluates team sizing, so it rebuilds.
    dynamic: bool,
    /// Identity of the enclosing team (`Arc::as_ptr`), 0 for an
    /// outermost fork. A nested lease is only valid while its parent
    /// team is alive and unchanged; the parent's own lease (or the
    /// worker's channel binding) keeps that team allocation alive for
    /// exactly as long as this lease can exist, so the pointer cannot
    /// be ABA-reused while the key is live (see the teardown notes on
    /// [`drop_hot_leases_from`]).
    parent: usize,
    /// This thread's rank within the enclosing team — a different rank
    /// means a different inherited place partition.
    parent_thread: usize,
}

/// The master's cached team: the `Team` allocation plus the doorbells
/// and pool slots of the workers still bound to it.
struct HotTeam {
    key: HotKey,
    team: Arc<Team>,
    channels: Vec<Arc<HotChannel>>,
    /// The bound workers' pool slots, retained so the release can hand
    /// them back to the idle list synchronously (see [`Drop`]).
    slots: Vec<Arc<WorkerSlot>>,
}

impl Drop for HotTeam {
    /// Release every bound worker back to the global pool (on cache
    /// invalidation, `ROMP_HOT_TEAMS=0`, or master thread exit).
    ///
    /// The slots are pushed back to the idle list *here*, synchronously,
    /// rather than by the workers themselves once they wake: a resize
    /// calls `acquire` immediately after this drop, and an
    /// asynchronous return would make it spawn fresh OS threads (creep
    /// toward `thread-limit-var` on alternating shapes) or deliver a
    /// short team under a tight limit even though enough workers exist
    /// in flight. Re-acquiring a slot before its worker has woken is
    /// safe: the next assignment just waits in the mailbox, which the
    /// worker checks before blocking on the condvar.
    fn drop(&mut self) {
        for ch in &self.channels {
            ch.release.store(true, Ordering::SeqCst);
            ring(ch, None);
        }
        if self.slots.is_empty() {
            return;
        }
        // All bound slots were re-homed to the releasing master's shard
        // at acquire time, so one shard lock covers the whole batch —
        // and an immediately-following resize acquire from this same
        // master starts its search exactly there.
        let p = pool();
        let idx = self.slots[0].home.load(Ordering::Relaxed) % p.shards.len();
        let mut idle = p.shards[idx].idle.lock();
        idle.extend(self.slots.drain(..));
    }
}

/// Deepest forking level the hot cache serves. The busy mask is one
/// machine word; forks nested deeper than this (absurd in practice)
/// take the cold pool path.
const MAX_HOT_LEVELS: usize = 64;

thread_local! {
    /// This thread's hot-team leases, indexed by **forking level** (0 =
    /// outermost). Slot 0 is the classic flat hot team; a thread that
    /// becomes a nested master — a bound worker, or the master forking
    /// from inside its own region — leases its own doorbell-driven
    /// sub-team at its forking level. Together with every other
    /// thread's vector this forms the process-wide team tree: each node
    /// is owned by the thread that is its master.
    ///
    /// Teardown discipline (what makes the raw parent pointer in
    /// [`HotKey`] sound): rebuilding or evicting the lease at level `L`
    /// first drops all deeper leases (they are parented by the team
    /// being torn down), and a worker drops its whole vector before
    /// releasing the channel that keeps its parent team alive.
    static HOT_TEAMS_TLS: RefCell<Vec<Option<HotTeam>>> = const { RefCell::new(Vec::new()) };
    /// Re-entrancy backstop, one bit per forking level: bit `L` is set
    /// while this thread is between a hot ring at level `L` and the
    /// completion of the matching join. In the current code no `fork`
    /// can observe its own level's bit — every task executed while
    /// joining runs with the region stack pushed
    /// (`execute_joining_task`), so such forks see forking level `L+1`
    /// and consult bit `L+1`, which is clear. Kept as a cheap guard
    /// against a future task-execution path that forgets to push the
    /// stack: recycling a team mid-region would be memory-unsafe, not
    /// just wrong.
    static HOT_BUSY: Cell<u64> = const { Cell::new(0) };
}

/// Drop this thread's hot-team leases at `level` and deeper (releasing
/// their bound workers back to the global pool). Dropping a prefix is
/// never valid — a lease at `L+1` is parented by the lease at `L`'s
/// team — which is why the only teardown primitive is suffix
/// truncation.
fn drop_hot_leases_from(level: usize) {
    HOT_TEAMS_TLS.with(|cell| {
        let mut cache = cell.borrow_mut();
        if cache.len() > level {
            // Deepest first: a lease's parent team must still be alive
            // (and its workers bound) while the lease's own release
            // rings go out.
            while cache.len() > level {
                cache.pop();
            }
        }
    });
}

/// Effective wait policy for a team of `size`: oversubscribed teams
/// (more threads than cores) park immediately — spinning at barriers
/// steals the timeslice from the sibling that would release us (libomp
/// applies the same heuristic).
fn effective_wait_policy(size: usize, icvs: &Icvs) -> WaitPolicy {
    if size > icv::hardware_threads() {
        WaitPolicy::Passive
    } else {
        icvs.wait_policy
    }
}

/// Fork through the hot-team cache at forking level `level` (0 =
/// outermost; a nested master leases its own sub-team at its level).
/// Returns the team so the caller can rethrow a recorded panic.
fn hot_fork(
    n: usize,
    level: usize,
    active_level: usize,
    icvs: &Icvs,
    snap: ForkSnap,
    job: Job,
) -> Arc<Team> {
    // The barrier and idle ladders adjust per the oversubscription
    // heuristic, but the key carries the *raw* ICV (the adjustment is a
    // pure function of it and the delivered size), so an
    // `OMP_WAIT_POLICY` change always rebuilds — even when
    // oversubscription would mask it at the barrier.
    let (parent, parent_thread) =
        crate::ctx::with_current(|r| (Arc::as_ptr(&r.team) as usize, r.thread_num), || (0, 0));
    let key = HotKey {
        n,
        barrier_kind: icvs.barrier_kind,
        wait_policy: icvs.wait_policy,
        dynamic: icvs.dynamic,
        parent,
        parent_thread,
    };
    // A team that the pool delivered short (thread-limit pressure) is
    // never cached — it could never hit (a hit requires delivered size
    // == requested), so caching it would only make every subsequent
    // same-shape fork tear it down as a bogus "resize". It still runs
    // through the hot machinery; the lease is dropped after the join.
    let mut uncached: Option<HotTeam> = None;
    let team = HOT_TEAMS_TLS.with(|cell| {
        let mut cache = cell.borrow_mut();
        if cache.len() <= level {
            cache.resize_with(level + 1, || None);
        }
        // A hit requires the cached team to have actually delivered the
        // requested size (short teams are not cached — see above), so a
        // capped build retries acquisition on every fork, like the cold
        // path does.
        if let Some(ht) = cache[level].as_ref().filter(|ht| ht.key == key) {
            // Hit: recycle in place and ring the doorbells. Prime in
            // *reverse* chain order: a still-spinning worker can observe
            // its own epoch bump the instant it lands and immediately
            // forward the chain wake to its successor, so the successor's
            // channel must already be primed by then — otherwise the
            // forwarded unpark token is consumed by a stale-epoch
            // re-park and, the doorbell park being untimed, the worker
            // is stranded forever (and the join with it).
            bump(&stats().hot_team_hits);
            if level > 0 {
                bump(&stats().hot_team_nested_hits);
            }
            ht.team.recycle(snap);
            for ch in ht.channels.iter().rev() {
                prime(ch, Some(job));
            }
            if let Some(first) = ht.channels.first() {
                // Chaos: delay between the last prime and the chain-head
                // wake — the lost-wakeup-critical edge this path's
                // reverse-order priming exists to protect.
                let _ = crate::chaos::chaos_point!(crate::chaos::Site::DoorbellRing);
                first.wake();
            }
            return ht.team.clone();
        }
        // Rebuild: leases deeper than this level are parented by the
        // team about to be dropped, so they must go first (deepest
        // first — see `drop_hot_leases_from`).
        while cache.len() > level + 1 {
            cache.pop();
        }
        if cache[level].take().is_some() {
            // Shape changed: drop the lease (workers return to the
            // pool, possibly to be re-acquired two lines down).
            bump(&stats().hot_team_resizes);
        } else {
            bump(&stats().hot_team_misses);
        }
        if level > 0 {
            bump(&stats().hot_team_nested_misses);
        }
        let workers = pool().acquire(n.saturating_sub(1), icvs);
        let size = workers.len() + 1;
        // Oversubscription keys on the *delivered* size, like the cold
        // path: a thread-limit-capped team that fits the cores must not
        // get park-early wait behavior just because more was requested.
        let barrier_policy = effective_wait_policy(size, icvs);
        let bell = IdleWait::doorbell(icvs.wait_policy, size > icv::hardware_threads());
        let team = Arc::new(Team::new(
            size,
            level + 1,
            // Same active-level rule as the cold path: a team delivered
            // short at size 1 is not an active region.
            active_level + usize::from(size > 1),
            icvs.barrier_kind,
            barrier_policy,
            forking_ancestors(),
            snap,
            false,
            true,
        ));
        // Built back to front so each channel can point at its wake-chain
        // successor; the `Bind` mails (which wake every worker through
        // its pool mailbox) then go out in any order.
        let mut channels: Vec<Arc<HotChannel>> = Vec::with_capacity(workers.len());
        let mut next: Option<Arc<HotChannel>> = None;
        for (i, _) in workers.iter().enumerate().rev() {
            // Pre-arm the doorbell with the first region's job so the
            // worker starts it straight out of the `Bind`.
            let ch = Arc::new(HotChannel {
                team: team.clone(),
                thread_num: i + 1,
                epoch: AtomicU64::new(1),
                release: AtomicBool::new(false),
                job: UnsafeCell::new(Some(job)),
                worker: OnceLock::new(),
                next: next.take(),
                idle: bell,
            });
            next = Some(ch.clone());
            channels.push(ch);
        }
        channels.reverse();
        for (w, ch) in workers.iter().zip(&channels) {
            let mut mb = w.mailbox.lock();
            *mb = Some(Assignment::Bind(ch.clone()));
            drop(mb);
            w.cv.notify_one();
        }
        let ht = HotTeam {
            key,
            team: team.clone(),
            channels,
            slots: workers,
        };
        if size == key.n {
            cache[level] = Some(ht);
        } else {
            uncached = Some(ht);
        }
        team
    });
    if team.size() == 1 {
        bump(&stats().serialized_forks);
    }
    let join_idle = IdleWait::join(icvs.wait_policy, team.size() > icv::hardware_threads());
    run_region(&team, 0, job);
    hot_join(&team, join_idle);
    // A short team's lease ends with its one region (Drop rings the
    // release and hands the slots back) — safe only now, after the join.
    // Any deeper leases this master grew *inside* the region are
    // parented by the uncached team: deepest first, parent last.
    if uncached.is_some() {
        drop_hot_leases_from(level + 1);
        drop(uncached);
    }
    team
}

/// The hot master's join: wait until every bound worker has signalled
/// completion *and* the task graph is drained, helping to execute
/// pending tasks meanwhile (a worker may have left its share of the
/// graph behind, and tasks the master spawned after the workers finished
/// are its own to run). Doubles as the region-end rendezvous — hot
/// regions have no closing barrier episode.
fn hot_join(team: &Arc<Team>, idle: IdleWait) {
    let mut seed = crate::lock::os_thread_id() | 1;
    let mut rounds = 0u32;
    loop {
        let workers_done = team.remaining.load(Ordering::Acquire) == 0;
        let pending = team.tasks.pending();
        if workers_done && (pending == 0 || team.abort.load(Ordering::Relaxed)) {
            break;
        }
        if pending > 0 {
            if let Some(t) = team.tasks.pop_or_steal(0, &mut seed) {
                execute_joining_task(team, t);
                rounds = 0;
                continue;
            }
        }
        rounds = rounds.saturating_add(1);
        // The last worker's completion signal is an `unpark`, so the
        // ladder's park rung is woken promptly (and timed regardless).
        idle.wait(rounds, true);
    }
}

/// Run one task on the joining master. The region stack is re-pushed so
/// the task observes itself inside the region (as it would when executed
/// by any other team thread), and a panic is recorded rather than
/// propagated — the join must still complete; `fork` rethrows after.
fn execute_joining_task(team: &Arc<Team>, task: crate::task::RawTask) {
    REGION_STACK.with(|s| {
        s.borrow_mut().push(RegionInfo {
            team: team.clone(),
            thread_num: 0,
        })
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        team.tasks.execute(0, task);
    }));
    REGION_STACK.with(|s| {
        s.borrow_mut().pop();
    });
    if let Err(payload) = result {
        team.record_panic(payload);
    }
}

// ---------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------

/// Fork a parallel region: run `f` once per team thread, join, and
/// propagate panics. The analogue of `__kmpc_fork_call`.
///
/// Team size resolution follows the spec: the `if` clause can force
/// serialization; otherwise `num_threads`, then the `nthreads-var` ICV;
/// nesting beyond `max-active-levels` serializes; everything is clamped
/// by `thread-limit-var` and by how many workers the pool can actually
/// deliver.
///
/// Forks go through the hot-team cache (see the module docs) unless
/// `ROMP_HOT_TEAMS=0` — including **nested** forks: a thread that is
/// already inside a hot region leases its own sub-team at its forking
/// level, so after warmup an inner region is as cheap as an outer one.
/// Forks from final tasks, forks whose enclosing team is cold, and
/// forks nested deeper than `MAX_HOT_LEVELS` take the cold pool path.
///
/// The `'env` lifetime plays the role of `std::thread::scope`'s
/// environment lifetime: closures handed to
/// [`ThreadCtx::task`] may borrow anything that outlives the `fork`
/// call, because the region's implicit end barrier drains all deferred
/// tasks before `fork` returns.
pub fn fork<'env, F>(spec: ForkSpec, f: F)
where
    F: Fn(&ThreadCtx<'env>) + Sync,
{
    let mut icvs = icv::current();
    // ICV inheritance for nested regions: the child team's
    // `run-sched-var` comes from the enclosing team's fork-time
    // snapshot (not this OS thread's view of the global ICV), unless
    // this thread explicitly called `omp_set_schedule` in the region.
    if icv::tls_run_sched_override().is_none() {
        crate::ctx::with_current(|r| icvs.run_sched = r.team.run_sched(), || ());
    }
    let (level, active_level) = forking_position();
    let parent_final = crate::task::in_final();
    let mut n = match spec.if_clause {
        Some(false) => 1,
        _ => spec
            .num_threads
            .unwrap_or_else(|| icvs.nthreads_for_level(level)),
    };
    if active_level >= icvs.max_active_levels {
        n = 1;
    }
    n = n.clamp(1, icvs.thread_limit.max(1));
    bump(&stats().forks);

    let job = make_job(&f);
    // The effective binding: clause beats the per-level `bind-var`
    // list. A league defaults to `spread` so member teams land on
    // disjoint place subsets.
    let bind = spec.proc_bind.unwrap_or_else(|| {
        let b = icvs.proc_bind_for_level(level);
        if spec.league && b == ProcBind::False {
            ProcBind::Spread
        } else {
            b
        }
    });
    // The place partition is recomputed at *every* fork — including hot
    // recycles, where it rides into the team through `recycle`'s snap
    // rewrite — so placement never needs to participate in the cache
    // key (see [`HotKey`]). Serialized regions keep the enclosing
    // partition (the stack walk in `affinity::team_places` starts from
    // the innermost *placed* region).
    let places = if n > 1 {
        crate::affinity::team_places(bind, n, &icvs)
    } else {
        None
    };
    let snap = ForkSnap {
        run_sched: icvs.run_sched,
        proc_bind: bind,
        places,
        league: spec.league,
        cancellable: icvs.cancellation,
        tune: icvs.tune != crate::icv::TuneMode::Off,
    };

    // Hot fast path: actual teams only, at any nesting level whose
    // enclosing team is itself hot (a cold or final-task parent cannot
    // guarantee the lease's parent-identity key stays alive — see
    // [`HotKey`]). Serialized regions (`if(false)`, `num_threads(1)`,
    // nesting beyond `max-active-levels`) fall through to the inline
    // path below *without touching the cache* — evicting a
    // multi-thread lease for a team of one would thrash workers on
    // every serial/parallel alternation, and a serial region gains
    // nothing from cached workers anyway.
    let parent_hot = level == 0 || crate::ctx::with_current(|r| r.team.hot, || false);
    if !parent_final
        && parent_hot
        && level < MAX_HOT_LEVELS
        && HOT_BUSY.with(|b| b.get()) & (1u64 << level) == 0
    {
        if icvs.hot_teams && n > 1 {
            struct BusyGuard(usize);
            impl Drop for BusyGuard {
                fn drop(&mut self) {
                    HOT_BUSY.with(|b| b.set(b.get() & !(1u64 << self.0)));
                }
            }
            HOT_BUSY.with(|b| b.set(b.get() | (1u64 << level)));
            let _busy = BusyGuard(level);
            let team = hot_fork(n, level, active_level, &icvs, snap, job);
            if team.abort.load(Ordering::Acquire) {
                // Never reuse a team a panic tore through: release the
                // workers (and any sub-leases parented by them) and
                // rebuild cold state on the next fork.
                drop_hot_leases_from(level);
                rethrow(&team);
            }
            return;
        }
        if !icvs.hot_teams {
            // Hot teams were switched off between regions: stop
            // hoarding the bound workers at this level and deeper
            // (shallower leases belong to still-active enclosing
            // regions).
            drop_hot_leases_from(level);
        }
    }

    if n == 1 {
        bump(&stats().serialized_forks);
        let team = Arc::new(Team::new(
            1,
            level + 1,
            active_level,
            icvs.barrier_kind,
            icvs.wait_policy,
            forking_ancestors(),
            snap,
            parent_final,
            false,
        ));
        run_region(&team, 0, job);
        rethrow(&team);
        return;
    }

    let workers = pool().acquire(n - 1, &icvs);
    let size = workers.len() + 1;
    if size == 1 {
        bump(&stats().serialized_forks);
    }
    let wait_policy = effective_wait_policy(size, &icvs);
    let team = Arc::new(Team::new(
        size,
        level + 1,
        // A region only counts as active when it actually has more than
        // one thread (OpenMP 5.2 §1.2.2) — a team delivered short at
        // size 1 under pool pressure must report the same
        // omp_in_parallel()/active-level as the hot path does.
        active_level + usize::from(size > 1),
        icvs.barrier_kind,
        wait_policy,
        forking_ancestors(),
        snap,
        parent_final,
        false,
    ));
    for (i, w) in workers.iter().enumerate() {
        let mut mb = w.mailbox.lock();
        *mb = Some(Assignment::Run {
            team: team.clone(),
            thread_num: i + 1,
            job,
        });
        drop(mb);
        w.cv.notify_one();
    }
    run_region(&team, 0, job);
    join(&team, &icvs);
    rethrow(&team);
}

/// Block until every worker of `team` has signalled completion (the
/// cold-path join; hot teams use [`hot_join`]).
fn join(team: &Arc<Team>, icvs: &Icvs) {
    let spin_budget = icvs.wait_policy.spin_budget();
    let mut spins = 0u32;
    while team.remaining.load(Ordering::Acquire) > 0 {
        spins += 1;
        if spins >= spin_budget {
            break;
        }
        std::hint::spin_loop();
    }
    let mut guard = team.join_lock.lock();
    while team.remaining.load(Ordering::Acquire) > 0 {
        team.join_cv
            .wait_for(&mut guard, std::time::Duration::from_millis(1));
    }
}

/// After the join: if any team thread panicked, rethrow on the master.
fn rethrow(team: &Arc<Team>) {
    if team.abort.load(Ordering::Acquire) {
        // Leftover tasks must die here, on the master, while the `'env`
        // frame their closures may borrow is still alive (see
        // `TaskSystem::purge`). Every caller reaches this after the
        // join, so no worker touches the task system concurrently.
        team.tasks.purge();
        let payload = team.panic_payload.lock().take();
        match payload {
            Some(p) => std::panic::resume_unwind(p),
            None => std::panic::panic_any(SiblingPanic),
        }
    }
}

/// Number of workers currently alive in the global pool (diagnostic).
pub fn pool_size() -> usize {
    pool().total.load(Ordering::Acquire)
}

/// Number of workers currently parked on idle free lists, summed across
/// all shards (diagnostic). When no fork is in flight and no hot-team
/// lease is held, this converges to [`pool_size`] — the "no stranded
/// workers" invariant the many-master stress suite pins.
pub fn idle_workers() -> usize {
    pool().shards.iter().map(|s| s.idle.lock().len()).sum()
}

/// Number of free-list shards the pool was built with (diagnostic;
/// resolved once per process — see `resolved_shard_count`).
pub fn shard_count() -> usize {
    pool().shards.len()
}

/// Per-shard `(acquired, stolen, contended)` counter snapshot, in shard
/// order (diagnostic; rendered by [`crate::stats::display_stats`]).
pub fn shard_counters() -> Vec<(u64, u64, u64)> {
    pool()
        .shards
        .iter()
        .map(|s| {
            (
                s.acquired.load(Ordering::Relaxed),
                s.stolen.load(Ordering::Relaxed),
                s.contended.load(Ordering::Relaxed),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Schedule;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fork_runs_body_once_per_thread() {
        let hits = AtomicUsize::new(0);
        let distinct = Mutex::new(std::collections::HashSet::new());
        fork(ForkSpec::with_num_threads(4), |ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
            distinct.lock().insert(ctx.thread_num());
            assert_eq!(ctx.num_threads(), 4);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(distinct.lock().len(), 4);
    }

    #[test]
    fn if_false_serializes() {
        fork(ForkSpec::new().num_threads(8).if_clause(false), |ctx| {
            assert_eq!(ctx.num_threads(), 1);
            assert_eq!(ctx.thread_num(), 0);
        });
    }

    #[test]
    fn team_of_one_still_supports_constructs() {
        let sum = AtomicU64::new(0);
        fork(ForkSpec::with_num_threads(1), |ctx| {
            ctx.ws_for(0..10, Schedule::dynamic(), false, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            ctx.barrier();
            assert!(ctx.single(false, || ()).is_some());
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn workers_are_reused_across_regions() {
        // Warm the pool.
        fork(ForkSpec::with_num_threads(4), |_| {});
        let spawned_before = stats().workers_spawned.load(Ordering::Relaxed);
        for _ in 0..50 {
            fork(ForkSpec::with_num_threads(4), |_| {});
        }
        let spawned_after = stats().workers_spawned.load(Ordering::Relaxed);
        // Other tests run concurrently and may spawn workers of their own,
        // but 50 sequential same-size regions must not need 50 new teams'
        // worth of threads.
        assert!(
            spawned_after - spawned_before < 50 * 3,
            "pool failed to reuse workers: {spawned_before} -> {spawned_after}"
        );
    }

    #[test]
    fn hot_team_consecutive_forks_hit_the_cache() {
        // Run on a dedicated thread: the cache is per master thread, so
        // the counters below can only be disturbed by *this* thread.
        // Force-enable hot teams via the TLS knob — the suite must pass
        // even under ROMP_HOT_TEAMS=0 in the environment.
        std::thread::spawn(|| {
            icv::tls_override_mut(|o| o.hot_teams = Some(true));
            fork(ForkSpec::with_num_threads(3), |_| {});
            let before = stats().snapshot();
            for _ in 0..20 {
                fork(ForkSpec::with_num_threads(3), |_| {});
            }
            let d = before.delta(&stats().snapshot());
            assert!(
                d.hot_team_hits >= 20,
                "20 same-shape forks should all hit, saw {}",
                d.hot_team_hits
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn hot_team_disabled_takes_cold_path() {
        std::thread::spawn(|| {
            // Drive the cold path hermetically through this thread's TLS
            // override: the global block stays untouched, so sibling
            // tests asserting hot-team hit counts never see a
            // hot_teams=false window.
            icv::TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
            icv::tls_override_mut(|o| o.hot_teams = Some(false));
            let before = stats().snapshot();
            let hits = AtomicUsize::new(0);
            for _ in 0..5 {
                fork(ForkSpec::with_num_threads(2), |_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            assert_eq!(hits.load(Ordering::SeqCst), 10);
            let d = before.delta(&stats().snapshot());
            // This thread contributed no hot activity; other test
            // threads may have, so only check our own forks landed.
            assert!(d.forks >= 5);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn panic_in_region_propagates_to_caller() {
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(4), |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("worker exploded");
                }
                // Other threads park at a barrier; the abort flag must
                // release them.
                ctx.barrier();
            });
        });
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "worker exploded");
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(4), |_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn master_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(2), |ctx| {
                if ctx.is_master() {
                    panic!("master exploded");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_fork_serializes_by_default() {
        // max_active_levels defaults to 1.
        fork(ForkSpec::with_num_threads(2), |outer| {
            let outer_n = outer.num_threads();
            let outer_level = outer.level();
            fork(ForkSpec::with_num_threads(4), move |inner| {
                assert_eq!(inner.num_threads(), 1, "inner region must serialize");
                assert_eq!(inner.level(), outer_level + 1);
            });
            assert!(outer_n <= 2);
        });
    }

    #[test]
    fn borrowed_data_is_visible_and_writable() {
        let mut data = vec![0u64; 1000];
        let chunks: Vec<_> = data.chunks_mut(250).collect();
        let chunks = Mutex::new(chunks);
        fork(ForkSpec::with_num_threads(4), |_ctx| {
            // Each thread takes one disjoint chunk.
            let mine = chunks.lock().pop();
            if let Some(chunk) = mine {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = i as u64;
                }
            }
        });
        for chunk in data.chunks(250) {
            for (i, &x) in chunk.iter().enumerate() {
                assert_eq!(x, i as u64);
            }
        }
    }

    #[test]
    fn proc_bind_clause_is_recorded_and_reported() {
        fork(
            ForkSpec::with_num_threads(2).proc_bind(ProcBind::Spread),
            |ctx| {
                assert_eq!(ctx.proc_bind(), ProcBind::Spread);
                assert_eq!(crate::api::omp_get_proc_bind(), ProcBind::Spread);
            },
        );
        // Without the clause the bind-var ICV shows through.
        fork(ForkSpec::with_num_threads(2), |ctx| {
            assert_eq!(ctx.proc_bind(), icv::current().proc_bind_for_level(0));
        });
    }

    #[test]
    fn teams_spec_forms_a_spread_league() {
        fork(ForkSpec::new().teams(2), |ctx| {
            assert_eq!(ctx.proc_bind(), ProcBind::Spread);
            let (num_teams, team_num) = ctx.league_position();
            assert_eq!(num_teams, ctx.num_threads());
            assert_eq!(team_num, ctx.thread_num());
        });
        // An explicit proc_bind clause beats the league's spread default.
        fork(ForkSpec::new().teams(2).proc_bind(ProcBind::Close), |ctx| {
            assert_eq!(ctx.proc_bind(), ProcBind::Close);
        });
    }

    #[test]
    fn home_shard_is_stable_and_in_range() {
        let n = shard_count();
        assert!(n >= 1);
        let a = pool().home_index();
        let b = pool().home_index();
        assert_eq!(a, b, "home shard must be memoized per thread");
        assert!(a < n);
    }

    #[test]
    fn released_workers_are_reacquired_from_the_home_shard() {
        // A fresh master thread: its cold forks release workers to its
        // home shard, and the next acquire must find them there instead
        // of spawning (local-acquire counter moves, spawn counter not).
        std::thread::spawn(|| {
            icv::tls_override_mut(|o| o.hot_teams = Some(false));
            fork(ForkSpec::with_num_threads(3), |_| {});
            // Wait for the workers' asynchronous self-release to land.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while idle_workers() < 2 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            let before = stats().snapshot();
            fork(ForkSpec::with_num_threads(3), |_| {});
            let d = before.delta(&stats().snapshot());
            // Concurrent tests may steal from us, so only assert that
            // the acquire path reused pooled workers (local or stolen)
            // rather than spawning a full team's worth.
            assert!(
                d.pool_acquires_local + d.pool_acquires_stolen >= 1,
                "second fork should reuse pooled workers: {d:?}"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn steal_sweep_reaches_workers_in_foreign_shards() {
        // Masters on different OS threads hash to (generally) different
        // shards. Whatever shard the releases landed in, a later
        // acquire from any thread must be able to reach every idle
        // worker — the no-stranding guarantee of the sweep.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    icv::tls_override_mut(|o| o.hot_teams = Some(false));
                    fork(ForkSpec::with_num_threads(2), |_| {});
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // One big acquire from a fresh thread: it must gather workers
        // across shards (or spawn, under the limit) and deliver.
        std::thread::spawn(|| {
            icv::tls_override_mut(|o| o.hot_teams = Some(false));
            let hits = AtomicUsize::new(0);
            fork(ForkSpec::with_num_threads(4), |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn fork_from_task_during_hot_join_takes_cold_path() {
        // A deferred task that itself forks: if the master picks it up
        // while joining, the inner fork must not recycle the in-flight
        // hot team. Wherever the task lands — a worker mid-region or
        // the joining master — it observes itself at nesting level 1
        // (the join-time executor re-pushes the region info), so the
        // inner fork serializes identically everywhere.
        std::thread::spawn(|| {
            let inner_ran = AtomicUsize::new(0);
            for _ in 0..10 {
                fork(ForkSpec::with_num_threads(2), |ctx| {
                    if ctx.is_master() {
                        ctx.task(|| {
                            fork(ForkSpec::with_num_threads(2), |inner| {
                                assert_eq!(inner.num_threads(), 1);
                                inner_ran.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
            }
            assert_eq!(inner_ran.load(Ordering::SeqCst), 10);
        })
        .join()
        .unwrap();
    }
}
